// Quickstart: measure how much slack a GPU workload tolerates.
//
// Runs the paper's slack proxy (a square-matmul loop on the simulated
// A100-class device) at one configuration, with and without 100 us of
// injected per-call slack — the latency of ~20 km of fibre — and reports
// the Equation-1-normalized penalty.
//
//   $ ./quickstart [matrix_n] [threads] [slack_us]
#include <cstdlib>
#include <iostream>

#include "interconnect/link.hpp"
#include "proxy/proxy.hpp"

int main(int argc, char** argv) {
  using namespace rsd;

  proxy::ProxyConfig config;
  config.matrix_n = argc > 1 ? std::atoll(argv[1]) : (1 << 11);
  config.threads = argc > 2 ? std::atoi(argv[2]) : 1;
  const double slack_us = argc > 3 ? std::atof(argv[3]) : 100.0;

  const proxy::ProxyRunner runner;  // A100-class device behind PCIe gen4

  const proxy::ProxyResult baseline = runner.run(config);
  if (!baseline.fits_memory) {
    std::cerr << "configuration does not fit in the 40 GiB device\n";
    return 1;
  }

  config.slack = duration::microseconds(slack_us);
  const proxy::ProxyResult slacked = runner.run(config);

  const double normalized = slacked.no_slack_time / baseline.no_slack_time;
  std::cout << "matrix " << config.matrix_n << " x " << config.matrix_n << ", "
            << config.threads << " thread(s), N = " << baseline.iterations << " iterations\n"
            << "  kernel time          : " << format_duration(baseline.kernel_duration) << "\n"
            << "  baseline loop        : " << format_duration(baseline.loop_runtime) << "\n"
            << "  with " << slack_us << " us slack    : " << format_duration(slacked.loop_runtime)
            << "\n"
            << "  Eq.1 no-slack time   : " << format_duration(slacked.no_slack_time) << "\n"
            << "  normalized runtime   : " << normalized << "\n"
            << "  starvation penalty   : " << (normalized - 1.0) * 100.0 << "%\n"
            << "  equivalent distance  : "
            << interconnect::reach_km_for_slack(config.slack) << " km of fibre\n";
  return 0;
}
