// Figure 1 in code: where does the time go when a host talks to a GPU
// through a traditional PCIe link vs a row-scale / cluster-scale CDI
// network?
//
// Prints the latency anatomy of one 16 MiB H2D transfer + one 1 ms kernel
// under three interconnects, and the slack <-> fibre-distance conversion.
#include <iostream>

#include "core/table.hpp"
#include "interconnect/link.hpp"

int main() {
  using namespace rsd;
  using namespace rsd::interconnect;

  const Bytes payload = 16 * kMiB;

  struct Config {
    const char* name;
    CdiNetworkParams net;
    bool traditional;
  };
  CdiNetworkParams row;  // defaults: 50 m of fibre, 2 hops
  CdiNetworkParams cluster = row;
  cluster.fibre_km = 20.0;
  cluster.switch_hops = 6;
  const Config configs[] = {
      {"traditional (PCIe gen4 x16)", row, true},
      {"row-scale CDI (~50 m)", row, false},
      {"cluster-scale CDI (20 km)", cluster, false},
  };

  Table table{"Interconnect", "Slack (one-way)", "Link latency", "16 MiB transfer",
              "Reach [km]"};
  for (const auto& cfg : configs) {
    const Link link = cfg.traditional ? make_pcie_gen4_x16() : make_cdi_link(cfg.net);
    const SimDuration slack = cfg.traditional ? SimDuration::zero() : cfg.net.slack();
    table.add_row(cfg.name, format_duration(slack), format_duration(link.latency()),
                  format_duration(link.transfer_time(payload)),
                  fmt_fixed(reach_km_for_slack(slack), 2));
  }
  table.print(std::cout);

  std::cout << "\nSlack anatomy of the cluster-scale path (per direction):\n"
            << "  2 x NIC traversal : " << format_duration(cluster.nic_latency * std::int64_t{2})
            << "\n"
            << "  " << cluster.switch_hops << " x switch hop   : "
            << format_duration(cluster.per_hop_latency * std::int64_t{cluster.switch_hops})
            << "\n"
            << "  " << cluster.fibre_km
            << " km of fibre   : " << format_duration(fibre_delay(cluster.fibre_km)) << "\n"
            << "  total slack       : " << format_duration(cluster.slack()) << "\n\n"
            << "The paper's headline conversion: 100 us of tolerated slack buys "
            << reach_km_for_slack(duration::microseconds(100.0))
            << " km of reach — datacenter scale, not just rack scale.\n";
  return 0;
}
