// Composition what-if planner: given a machine (CPU nodes + GPU pool) and a
// mixed job queue, compare what a traditional node architecture and a CDI
// architecture can serve, and what each wastes.
#include <iostream>
#include <vector>

#include "cluster/composition.hpp"
#include "core/table.hpp"

int main() {
  using namespace rsd;
  using namespace rsd::cluster;

  const int nodes = 16;
  const NodeShape shape{48, 4};  // Narval-like: 48 cores + 4 GPUs per node
  const std::vector<JobRequest> queue{
      {"md_simulation", 192, 4},    // CPU-heavy, few GPUs
      {"training_run", 8, 24},      // GPU-hungry
      {"preprocessing", 96, 0},     // CPU only
      {"inference_fleet", 12, 12},  // balanced-ish
  };

  std::cout << "Machine: " << nodes << " nodes x (" << shape.cpu_cores << " cores, "
            << shape.gpus << " GPUs) = " << nodes * shape.cpu_cores << " cores, "
            << nodes * shape.gpus << " GPUs\n\n";

  Table table{"Job", "Arch", "Granted cores", "Granted GPUs", "Trapped cores",
              "Trapped GPUs"};

  TraditionalCluster traditional{nodes, shape};
  CdiCluster cdi{nodes, shape.cpu_cores, nodes * shape.gpus};
  bool traditional_full = false;

  for (const auto& job : queue) {
    try {
      const Allocation a = traditional.allocate(job);
      table.add_row(job.name, "traditional", std::to_string(a.cpu_cores),
                    std::to_string(a.gpus), std::to_string(a.trapped_cores),
                    std::to_string(a.trapped_gpus));
    } catch (const Error&) {
      traditional_full = true;
      table.add_row(job.name, "traditional", "-", "-", "(out of nodes)", "-");
    }
    const Allocation a = cdi.allocate(job);
    table.add_row(job.name, "cdi", std::to_string(a.cpu_cores), std::to_string(a.gpus), "0",
                  "0");
  }

  table.print(std::cout);
  std::cout << "\nTraditional: " << traditional.total_trapped_cores() << " cores and "
            << traditional.total_trapped_gpus() << " GPUs trapped"
            << (traditional_full ? ", queue did NOT fit" : "") << "\n"
            << "CDI: nothing trapped; " << cdi.free_cores() << " cores and "
            << cdi.free_gpus() << " GPUs still schedulable (" << cdi.powered_down_gpus()
            << " GPUs eligible for power-down)\n";
  return 0;
}
