// Predict the CDI slack penalty of an application from its trace file —
// the paper's method as a command-line tool.
//
//   $ ./predict_from_trace <trace.csv> [parallelism] [slack_us ...]
//
// The trace CSV uses the schema of Trace::ops_to_csv (an NSys export can
// be converted to it: one row per kernel/memcpy with timestamps and
// sizes). Without arguments, a demo trace is generated from the LAMMPS
// workload so the tool runs out of the box.
#include <cstdlib>
#include <iostream>

#include "apps/lammps.hpp"
#include "core/table.hpp"
#include "interconnect/link.hpp"
#include "model/slack_model.hpp"
#include "proxy/proxy.hpp"
#include "proxy/sweep_cache.hpp"
#include "trace/import.hpp"

int main(int argc, char** argv) {
  using namespace rsd;

  trace::Trace app_trace;
  if (argc > 1) {
    app_trace = trace::load_ops_csv(argv[1]);
    std::cout << "loaded " << app_trace.ops().size() << " ops from " << argv[1] << "\n";
  } else {
    std::cout << "no trace given; generating a demo trace (LAMMPS box 60, 4 ranks)\n";
    apps::LammpsConfig cfg;
    cfg.box = 60;
    cfg.procs = 4;
    cfg.steps = 180;
    cfg.capture_trace = true;
    app_trace = apps::run_lammps(cfg).trace;
  }
  const int parallelism = argc > 2 ? std::atoi(argv[2]) : 4;

  std::vector<SimDuration> slacks;
  for (int i = 3; i < argc; ++i) {
    slacks.push_back(duration::microseconds(std::atof(argv[i])));
  }
  if (slacks.empty()) {
    slacks = {duration::microseconds(1.0), duration::microseconds(10.0),
              duration::microseconds(100.0), duration::milliseconds(1.0)};
  }

  std::cout << "building the proxy response surface (Figure 3 sweep)...\n";
  const proxy::ProxyRunner runner;
  proxy::SweepConfig sweep_cfg;
  const auto sweep = proxy::SweepCache::global().get_or_run(runner, sweep_cfg);
  const model::SlackModel slack_model{model::ResponseSurface::from_sweep(sweep)};

  Table table{"Slack / call", "Fibre reach [km]", "SP lower", "SP upper"};
  for (const SimDuration slack : slacks) {
    const auto pred = slack_model.predict(app_trace, parallelism, slack);
    table.add_row(format_duration(slack),
                  fmt_fixed(interconnect::reach_km_for_slack(slack), 2),
                  fmt_pct(pred.total.lower, 3), fmt_pct(pred.total.upper, 3));
  }
  table.print(std::cout);
  return 0;
}
