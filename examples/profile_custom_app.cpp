// Profile your own workload for CDI-readiness — the paper's end-to-end
// method, applied to a user-authored application:
//
//   1. Write the workload against the CUDA-like gpu::Context API.
//   2. Run it once on the simulated node with tracing on (the NSys step).
//   3. Sweep the slack proxy to build the response surface (Figure 3).
//   4. Cross-analyse trace vs surface with Equations 2-3 (Table IV) to get
//      lower/upper slack-penalty bounds — i.e., how far from its GPUs this
//      application could live.
//
// The example workload is a bulk-synchronous iterative solver: per
// iteration, a halo-sized H2D, a stencil kernel, a reduction kernel, and a
// residual D2H.
#include <iostream>

#include "core/table.hpp"
#include "gpusim/context.hpp"
#include "gpusim/device.hpp"
#include "interconnect/link.hpp"
#include "model/slack_model.hpp"
#include "proxy/proxy.hpp"
#include "proxy/sweep_cache.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "trace/trace.hpp"

namespace {

using namespace rsd;
using namespace rsd::literals;

/// The user's application: 2 solver ranks sharing the GPU.
sim::Task<> solver_rank(gpu::Device& device, int rank, sim::WaitGroup& wg) {
  gpu::Context ctx{device, rank, nullptr, /*process_id=*/rank};
  gpu::DeviceBuffer halo = co_await ctx.dmalloc(12 * kMiB);
  gpu::DeviceBuffer residual = co_await ctx.dmalloc(2 * kMiB);

  for (int iter = 0; iter < 200; ++iter) {
    co_await sim::delay(300_us);  // CPU: assemble boundary data
    co_await ctx.memcpy_h2d(halo, "h2d_halo");
    co_await ctx.launch_sync("stencil", 2_ms);
    co_await ctx.launch_sync("reduce_residual", 80_us);
    co_await ctx.memcpy_d2h(residual, "d2h_residual");
    co_await ctx.synchronize();
  }
  co_await ctx.dfree(halo);
  co_await ctx.dfree(residual);
  wg.done();
}

}  // namespace

int main() {
  // Step 1-2: trace the workload on the simulated node.
  sim::Scheduler sched;
  gpu::Device device{sched, gpu::DeviceParams{}, interconnect::make_pcie_gen4_x16()};
  trace::TraceRecorder recorder;
  device.set_record_sink(&recorder);

  sim::WaitGroup wg{sched};
  wg.add(2);
  sched.spawn(solver_rank(device, 0, wg));
  sched.spawn(solver_rank(device, 1, wg));
  sched.run();

  const trace::Trace& app_trace = recorder.trace();
  std::cout << "traced " << app_trace.kernel_count() << " kernels and "
            << app_trace.memcpy_count() << " transfers over "
            << format_duration(app_trace.span()) << "\n\n";

  // Step 3: build the proxy response surface (memoized across processes;
  // a warm cache loads it in milliseconds).
  const proxy::ProxyRunner runner;
  proxy::SweepConfig sweep_cfg;
  sweep_cfg.thread_counts = {1, 2};
  const auto sweep = proxy::SweepCache::global().get_or_run(runner, sweep_cfg);
  const model::SlackModel slack_model{model::ResponseSurface::from_sweep(sweep)};

  // Step 4: predict the penalty at candidate deployment distances.
  Table table{"Slack / call", "Fibre reach", "SP lower", "SP upper"};
  for (const SimDuration slack : {1_us, 10_us, 100_us, 1_ms}) {
    const auto pred = slack_model.predict(app_trace, /*parallelism=*/2, slack);
    table.add_row(format_duration(slack),
                  fmt_fixed(interconnect::reach_km_for_slack(slack), 2) + " km",
                  fmt_pct(pred.total.lower, 3), fmt_pct(pred.total.upper, 3));
  }
  table.print(std::cout);
  std::cout << "\nInterpretation: if the pessimistic (upper) penalty is acceptable at\n"
               "a given slack, the GPUs can live that far away from this solver.\n";
  return 0;
}
