#!/usr/bin/env python3
"""Render critical-path attribution reports from a rsd_bench v4 manifest.

Usage: report.py MANIFEST.json [EXPERIMENT ...]

Prints, for every experiment that recorded an "attribution" block (all of
them by default, or just the named ones), the same breakdown `rsd_bench
--report` prints live: per entry the makespan and the percentage of it
attributed to each critical-path component, plus — for slacked entries —
the observed slack-wake share against its predicted Eq 2-3 band.

Experiments that drove the partitioned engine or the modeled links also
get an engine line: epochs, the lookahead-stall fraction (stalled
partition-epochs over partition-epochs), the accumulated horizon gain,
and the express-path share of network transfers.

Exit status: 0 when every selected experiment carries at least one
attribution and every banded share lies inside its band; 1 otherwise.
This is what the `attribution_report` ctest asserts: the manifest's
attribution data is renderable *and* self-consistent.
"""

import json
import sys

COMPONENTS = (
    ("compute_ns", "compute"),
    ("reconfig_ns", "reconfig"),
    ("nic_ns", "nic"),
    ("fabric_ns", "fabric"),
    ("queue_ns", "queue"),
    ("wake_ns", "wake"),
    ("idle_ns", "idle"),
)


def fail(msg):
    print(f"report: {msg}", file=sys.stderr)
    sys.exit(1)


def render_entry(experiment, entry):
    """Print one attribution entry; return False if its band check fails."""
    makespan = entry["makespan_ns"]
    components = entry["components"]
    print(f"  {experiment}/{entry['label']}: makespan {makespan / 1e6:.3f} ms")
    shares = "  ".join(
        f"{label} {100.0 * components[key] / makespan:.1f}%"
        for key, label in COMPONENTS
    )
    print(f"    {shares}")
    if "band" not in entry:
        return True
    share = entry["slack_share"]
    lower, upper = entry["band"]
    within = lower <= share <= upper
    verdict = "" if within else "  (OUTSIDE BAND)"
    print(f"    slack share {share:.4f} vs Eq 2-3 band "
          f"[{lower:.4f}, {upper:.4f}]{verdict}")
    return within


def render_engine_metrics(experiment, metrics):
    """Print the partitioned-engine / network fast-path line, if any."""
    if not isinstance(metrics, dict):
        return
    epochs = metrics.get("pardes.epochs")
    stalls = metrics.get("pardes.lookahead_stalls")
    gain = metrics.get("pardes.horizon_gain")
    transfers = metrics.get("net.transfers")
    express = metrics.get("net.express")
    parts = []
    if isinstance(epochs, (int, float)) and epochs > 0:
        parts.append(f"epochs {epochs:.0f}")
        # pardes.partition_events observes one value per partition per
        # engine run, so stalls / (epochs * count) is the exact stall
        # fraction for a single-engine experiment and a fleet-level
        # approximation when several engines flushed into one entry.
        events = metrics.get("pardes.partition_events")
        if isinstance(stalls, (int, float)) and isinstance(events, dict):
            partitions = events.get("count", 0)
            if partitions > 0:
                parts.append(
                    f"stall fraction {stalls / (epochs * partitions):.4f}")
        if isinstance(gain, (int, float)):
            parts.append(f"horizon gain {gain / 1e6:.2f} ms")
    if isinstance(transfers, (int, float)) and transfers > 0 \
            and isinstance(express, (int, float)):
        parts.append(f"express share {express / transfers:.1%}")
    if parts:
        print(f"  {experiment}: engine {'  '.join(parts)}")


def main():
    if len(sys.argv) < 2:
        fail("usage: report.py MANIFEST.json [EXPERIMENT ...]")
    path, selected = sys.argv[1], sys.argv[2:]
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")
    if manifest.get("schema") != "rsd-bench-manifest-v4":
        fail(f"unexpected schema {manifest.get('schema')!r} "
             "(want rsd-bench-manifest-v4)")

    experiments = manifest.get("experiments", [])
    names = {e.get("name") for e in experiments}
    for name in selected:
        if name not in names:
            fail(f"no experiment {name!r} in {path}")

    printed = 0
    ok = True
    print("[report] critical-path attribution")
    for entry in experiments:
        name = entry.get("name", "?")
        if selected and name not in selected:
            continue
        for attribution in entry.get("attribution", []):
            try:
                ok &= render_entry(name, attribution)
            except (KeyError, TypeError, ZeroDivisionError) as err:
                fail(f"{name}: malformed attribution entry ({err!r}); run "
                     "check_manifest.py for a precise diagnostic")
            printed += 1
        render_engine_metrics(name, entry.get("metrics"))

    if printed == 0:
        which = " ".join(selected) if selected else "any experiment"
        fail(f"no attribution recorded for {which} — run an experiment that "
             "records one (e.g. rsd_bench attribution_fabrics)")
    if not ok:
        fail("a slack-wake share fell outside its predicted Eq 2-3 band")
    print(f"[report] {printed} attribution entr"
          f"{'y' if printed == 1 else 'ies'}, all bands hold")


if __name__ == "__main__":
    main()
