#!/usr/bin/env python3
"""Validate a rsd_bench run manifest against the rsd-bench-manifest-v2 schema.

Usage: check_manifest.py MANIFEST.json

Checks (exit 0 on success, 1 with a diagnostic on the first violation):
  * the file is valid JSON with schema "rsd-bench-manifest-v2";
  * top-level run parameters (threads/runs/seed/results_dir) are present
    and well-typed; trace_dir, when present, is a non-empty string;
  * every experiment entry has a name, a tag list, an "ok"/"failed"
    status (with an error string when failed), finite wall_s when
    present, a csv path list, and a metrics object;
  * metrics values are either numbers (counters/gauges) or histogram
    objects with count/sum/mean/min/max, all finite;
  * link-network counters (metrics named "net.*") are non-negative, and a
    successful fabric_compare entry must carry net.transfers and
    net.reconfigs — the Network flushes them at destruction, so their
    absence means the experiment never drove the modeled links.
"""

import json
import math
import sys


def fail(msg):
    print(f"check_manifest: {msg}", file=sys.stderr)
    sys.exit(1)


def check_finite_number(value, where):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{where}: expected a number, got {type(value).__name__}")
    if not math.isfinite(value):
        fail(f"{where}: non-finite value {value!r}")


def check_metrics(metrics, where):
    if not isinstance(metrics, dict):
        fail(f"{where}: metrics must be an object")
    for name, value in metrics.items():
        if not name:
            fail(f"{where}: empty metric name")
        if isinstance(value, dict):
            for key in ("count", "sum", "mean", "min", "max"):
                if key not in value:
                    fail(f"{where}: histogram {name!r} missing {key!r}")
                check_finite_number(value[key], f"{where}: {name}.{key}")
            if value["count"] < 0 or value["min"] > value["max"]:
                fail(f"{where}: histogram {name!r} is inconsistent")
        else:
            check_finite_number(value, f"{where}: {name}")
            if name.startswith("net.") and value < 0:
                fail(f"{where}: link-network counter {name!r} is negative")


def check_experiment(entry, index):
    where = f"experiments[{index}]"
    if not isinstance(entry, dict):
        fail(f"{where}: expected an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where}: missing experiment name")
    where = f"experiments[{index}] ({name})"
    tags = entry.get("tags")
    if not isinstance(tags, list) or not all(isinstance(t, str) for t in tags):
        fail(f"{where}: tags must be a list of strings")
    status = entry.get("status")
    if status not in ("ok", "failed"):
        fail(f"{where}: status must be 'ok' or 'failed', got {status!r}")
    if status == "failed" and not isinstance(entry.get("error"), str):
        fail(f"{where}: failed entry must carry an error string")
    if "wall_s" in entry:
        check_finite_number(entry["wall_s"], f"{where}: wall_s")
        if entry["wall_s"] < 0:
            fail(f"{where}: negative wall_s")
    csv = entry.get("csv")
    if not isinstance(csv, list) or not all(isinstance(p, str) for p in csv):
        fail(f"{where}: csv must be a list of path strings")
    if "metrics" not in entry:
        fail(f"{where}: missing metrics object (manifest-v2 requires one)")
    check_metrics(entry["metrics"], where)
    if name == "fabric_compare" and status == "ok":
        for counter in ("net.transfers", "net.reconfigs"):
            if counter not in entry["metrics"]:
                fail(f"{where}: ok entry is missing {counter!r} (the Network "
                     "flushes link counters at destruction)")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_manifest.py MANIFEST.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as err:
        fail(f"cannot read {sys.argv[1]}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{sys.argv[1]} is not valid JSON: {err}")

    if not isinstance(manifest, dict):
        fail("top level must be an object")
    schema = manifest.get("schema")
    if schema != "rsd-bench-manifest-v2":
        fail(f"unexpected schema {schema!r} (want rsd-bench-manifest-v2)")
    for key in ("threads", "runs"):
        value = manifest.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"{key} must be a non-negative integer, got {value!r}")
    if "seed" not in manifest:
        fail("missing seed")
    if not isinstance(manifest.get("results_dir"), str):
        fail("results_dir must be a string")
    if "trace_dir" in manifest:
        trace_dir = manifest["trace_dir"]
        if not isinstance(trace_dir, str) or not trace_dir:
            fail("trace_dir, when present, must be a non-empty string")
    experiments = manifest.get("experiments")
    if not isinstance(experiments, list):
        fail("experiments must be a list")
    for i, entry in enumerate(experiments):
        check_experiment(entry, i)

    print(f"check_manifest: OK ({len(experiments)} experiments, schema {schema})")


if __name__ == "__main__":
    main()
