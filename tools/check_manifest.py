#!/usr/bin/env python3
"""Validate a rsd_bench run manifest against the rsd-bench-manifest-v4 schema.

Usage: check_manifest.py MANIFEST.json

Checks (exit 0 on success, 1 with a diagnostic on the first violation):
  * the file is valid JSON with schema "rsd-bench-manifest-v4";
  * top-level run parameters (threads/runs/seed/results_dir) are present
    and well-typed; trace_dir, when present, is a non-empty string;
  * every experiment entry has a name, a tag list, an "ok"/"failed"
    status (with an error string when failed), finite wall_s when
    present, a csv path list, and a metrics object;
  * metrics values are either numbers (counters/gauges) or histogram
    objects with count/sum/mean/min/max plus interpolated p50/p90/p99
    quantiles satisfying min <= p50 <= p90 <= p99 <= max, all finite;
  * link-network counters (metrics named "net.*") are non-negative, and a
    successful fabric_compare entry must carry net.transfers, net.reconfigs,
    net.express, and net.route_hits — the Network flushes them at quiesce
    boundaries, so their absence means the experiment never drove the
    modeled links (or predates the fast-path counters);
  * the partitioned engine's pardes.horizon_gain counter is non-negative —
    the lookahead matrix can only widen epoch horizons, so a negative gain
    means the horizon computation regressed;
  * attribution blocks (v4) decompose a positive makespan into seven
    non-negative components (v4 adds nic_ns, the NIC/fibre serialisation
    of cross-chassis transfers) that sum to it exactly, and each banded
    entry carries a finite slack_share plus an ordered [lower, upper] band;
  * a successful attribution_fabrics entry must record at least one
    attribution with a band (the slacked replays);
  * a successful multichassis_contention entry must carry non-negative
    net.nic_transfers and net.fibre_busy_ns counters — it drives traffic
    across chassis NICs by construction, so their absence means the
    multi-chassis graph was never built.
"""

import json
import math
import sys

ATTRIBUTION_COMPONENTS = (
    "compute_ns", "reconfig_ns", "nic_ns", "fabric_ns", "queue_ns", "wake_ns",
    "idle_ns",
)


def fail(msg):
    print(f"check_manifest: {msg}", file=sys.stderr)
    sys.exit(1)


def check_finite_number(value, where):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{where}: expected a number, got {type(value).__name__}")
    if not math.isfinite(value):
        fail(f"{where}: non-finite value {value!r}")


def check_metrics(metrics, where):
    if not isinstance(metrics, dict):
        fail(f"{where}: metrics must be an object")
    for name, value in metrics.items():
        if not name:
            fail(f"{where}: empty metric name")
        if isinstance(value, dict):
            for key in ("count", "sum", "mean", "min", "max", "p50", "p90", "p99"):
                if key not in value:
                    fail(f"{where}: histogram {name!r} missing {key!r}")
                check_finite_number(value[key], f"{where}: {name}.{key}")
            if value["count"] < 0 or value["min"] > value["max"]:
                fail(f"{where}: histogram {name!r} is inconsistent")
            if not (value["min"] <= value["p50"] <= value["p90"] <= value["p99"]
                    <= value["max"]):
                fail(f"{where}: histogram {name!r} quantiles are not ordered "
                     "within [min, max]")
        else:
            check_finite_number(value, f"{where}: {name}")
            if name.startswith("net.") and value < 0:
                fail(f"{where}: link-network counter {name!r} is negative")
            if name == "pardes.horizon_gain" and value < 0:
                fail(f"{where}: {name!r} is negative (the lookahead matrix "
                     "can only widen horizons over the uniform floor)")


def check_attribution(entries, where):
    if not isinstance(entries, list) or not entries:
        fail(f"{where}: attribution must be a non-empty list")
    banded = 0
    for i, entry in enumerate(entries):
        at = f"{where}: attribution[{i}]"
        if not isinstance(entry, dict):
            fail(f"{at}: expected an object")
        label = entry.get("label")
        if not isinstance(label, str) or not label:
            fail(f"{at}: missing label")
        at = f"{where}: attribution[{i}] ({label})"
        makespan = entry.get("makespan_ns")
        check_finite_number(makespan, f"{at}: makespan_ns")
        if makespan <= 0:
            fail(f"{at}: makespan_ns must be positive")
        components = entry.get("components")
        if not isinstance(components, dict):
            fail(f"{at}: missing components object")
        total = 0
        for key in ATTRIBUTION_COMPONENTS:
            if key not in components:
                fail(f"{at}: components missing {key!r}")
            check_finite_number(components[key], f"{at}: components.{key}")
            if components[key] < 0:
                fail(f"{at}: components.{key} is negative")
            total += components[key]
        if total != makespan:
            fail(f"{at}: components sum to {total}, not the makespan "
                 f"{makespan} (the decomposition must be exact)")
        if ("slack_share" in entry) != ("band" in entry):
            fail(f"{at}: slack_share and band must appear together")
        if "band" in entry:
            banded += 1
            check_finite_number(entry["slack_share"], f"{at}: slack_share")
            if entry["slack_share"] < 0:
                fail(f"{at}: slack_share is negative")
            band = entry["band"]
            if not isinstance(band, list) or len(band) != 2:
                fail(f"{at}: band must be [lower, upper]")
            check_finite_number(band[0], f"{at}: band lower")
            check_finite_number(band[1], f"{at}: band upper")
            if band[0] > band[1]:
                fail(f"{at}: band lower {band[0]} exceeds upper {band[1]}")
    return banded


def check_experiment(entry, index):
    where = f"experiments[{index}]"
    if not isinstance(entry, dict):
        fail(f"{where}: expected an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where}: missing experiment name")
    where = f"experiments[{index}] ({name})"
    tags = entry.get("tags")
    if not isinstance(tags, list) or not all(isinstance(t, str) for t in tags):
        fail(f"{where}: tags must be a list of strings")
    status = entry.get("status")
    if status not in ("ok", "failed"):
        fail(f"{where}: status must be 'ok' or 'failed', got {status!r}")
    if status == "failed" and not isinstance(entry.get("error"), str):
        fail(f"{where}: failed entry must carry an error string")
    if "wall_s" in entry:
        check_finite_number(entry["wall_s"], f"{where}: wall_s")
        if entry["wall_s"] < 0:
            fail(f"{where}: negative wall_s")
    csv = entry.get("csv")
    if not isinstance(csv, list) or not all(isinstance(p, str) for p in csv):
        fail(f"{where}: csv must be a list of path strings")
    if "metrics" not in entry:
        fail(f"{where}: missing metrics object (manifest-v4 requires one)")
    check_metrics(entry["metrics"], where)
    if name == "fabric_compare" and status == "ok":
        for counter in ("net.transfers", "net.reconfigs", "net.express",
                        "net.route_hits"):
            if counter not in entry["metrics"]:
                fail(f"{where}: ok entry is missing {counter!r} (the Network "
                     "flushes link counters at quiesce boundaries)")
    if name == "multichassis_contention" and status == "ok":
        for counter in ("net.nic_transfers", "net.fibre_busy_ns"):
            value = entry["metrics"].get(counter)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"{where}: ok entry is missing {counter!r} (cross-chassis "
                     "traffic must traverse the NIC/fibre links)")
            if value < 0:
                fail(f"{where}: {counter!r} is negative")
    banded = 0
    if "attribution" in entry:
        banded = check_attribution(entry["attribution"], where)
    if name == "attribution_fabrics" and status == "ok":
        if "attribution" not in entry:
            fail(f"{where}: ok entry must record attributions")
        if banded == 0:
            fail(f"{where}: no attribution carries an Eq 2-3 band (the "
                 "slacked replays must)")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_manifest.py MANIFEST.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as err:
        fail(f"cannot read {sys.argv[1]}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{sys.argv[1]} is not valid JSON: {err}")

    if not isinstance(manifest, dict):
        fail("top level must be an object")
    schema = manifest.get("schema")
    if schema != "rsd-bench-manifest-v4":
        fail(f"unexpected schema {schema!r} (want rsd-bench-manifest-v4)")
    for key in ("threads", "runs"):
        value = manifest.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"{key} must be a non-negative integer, got {value!r}")
    if "seed" not in manifest:
        fail("missing seed")
    if not isinstance(manifest.get("results_dir"), str):
        fail("results_dir must be a string")
    if "trace_dir" in manifest:
        trace_dir = manifest["trace_dir"]
        if not isinstance(trace_dir, str) or not trace_dir:
            fail("trace_dir, when present, must be a non-empty string")
    experiments = manifest.get("experiments")
    if not isinstance(experiments, list):
        fail("experiments must be a list")
    for i, entry in enumerate(experiments):
        check_experiment(entry, i)

    print(f"check_manifest: OK ({len(experiments)} experiments, schema {schema})")


if __name__ == "__main__":
    main()
