#!/usr/bin/env python3
"""Compare two rsd_bench run manifests experiment by experiment.

Usage: bench_compare.py BASELINE_MANIFEST.json CANDIDATE_MANIFEST.json

Prints a per-experiment table of wall_s (baseline, candidate, speedup),
then fleet totals. Experiments present in only one manifest are listed
separately. Exit 0 on a clean comparison; exit 1 on malformed input or
when --max-regression is given and any shared experiment slowed down by
more than that factor (e.g. --max-regression 1.25 fails on >25% slower).

This is how the BENCH_simcore.json before/after record was produced:
run the fleet at a fixed commit into one results dir, at the candidate
commit into another, then compare the two run_manifest.json files.
"""

import argparse
import json
import math
import sys


def fail(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(1)


def load_walls(path):
    try:
        with open(path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if manifest.get("schema") not in ("rsd-bench-manifest-v2", "rsd-bench-manifest-v3"):
        fail(f"{path}: unexpected schema {manifest.get('schema')!r}")
    walls = {}
    for exp in manifest.get("experiments", []):
        name = exp.get("name")
        wall = exp.get("wall_s")
        if not name or exp.get("status") != "ok":
            continue
        if not isinstance(wall, (int, float)) or not math.isfinite(wall):
            fail(f"{path}: experiment {name!r} has no finite wall_s")
        walls[name] = float(wall)
    if not walls:
        fail(f"{path}: no successful experiments")
    return walls


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail (exit 1) if any shared experiment's candidate wall_s "
        "exceeds baseline * FACTOR",
    )
    args = parser.parse_args()

    base = load_walls(args.baseline)
    cand = load_walls(args.candidate)
    shared = sorted(set(base) & set(cand))
    removed = sorted(set(base) - set(cand))  # baseline-only
    added = sorted(set(cand) - set(base))  # candidate-only

    # The experiment sets are allowed to differ (a PR that adds or retires
    # an experiment still needs its before/after record): shared names are
    # compared, the rest are reported as added/removed, never an error.
    name_w = max(len(n) for n in shared + removed + added + ["TOTAL (shared)"])
    header = f"{'experiment':<{name_w}}  {'base_s':>8}  {'cand_s':>8}  {'speedup':>7}"
    print(header)
    print("-" * len(header))
    regressions = []
    for name in shared:
        b, c = base[name], cand[name]
        speedup = b / c if c > 0 else math.inf
        print(f"{name:<{name_w}}  {b:>8.3f}  {c:>8.3f}  {speedup:>6.2f}x")
        if args.max_regression is not None and c > b * args.max_regression:
            regressions.append(name)
    for name in removed:
        print(f"{name:<{name_w}}  {base[name]:>8.3f}  {'-':>8}  removed")
    for name in added:
        print(f"{name:<{name_w}}  {'-':>8}  {cand[name]:>8.3f}  added")

    print("-" * len(header))
    if shared:
        total_b = sum(base[n] for n in shared)
        total_c = sum(cand[n] for n in shared)
        print(
            f"{'TOTAL (shared)':<{name_w}}  {total_b:>8.3f}  {total_c:>8.3f}  "
            f"{(total_b / total_c if total_c > 0 else math.inf):>6.2f}x"
        )
    else:
        print("no shared experiments — nothing to compare")
    if removed or added:
        print(f"{len(removed)} removed, {len(added)} added (not compared)")

    if regressions:
        fail(
            f"{len(regressions)} experiment(s) regressed past "
            f"{args.max_regression}x: {', '.join(regressions)}"
        )


if __name__ == "__main__":
    main()
