#!/usr/bin/env python3
"""Compare two rsd_bench run manifests experiment by experiment.

Usage: bench_compare.py BASELINE_MANIFEST.json CANDIDATE_MANIFEST.json

Prints a per-experiment table of wall_s (baseline, candidate, speedup),
then fleet totals, then a side-by-side of the network fast-path counters
(net.express, net.route_hits, net.nic_transfers, net.fibre_busy_ns,
pardes.horizon_gain) for every experiment that reports them. Experiments present in only one manifest are listed
separately. Exit 0 on a clean comparison; exit 1 on malformed input,
when --max-regression is given and any shared experiment slowed down by
more than that factor (e.g. --max-regression 1.25 fails on >25% slower),
or when either manifest reports a negative pardes.horizon_gain (the
lookahead matrix can only widen horizons).

This is how the BENCH_simcore.json before/after record was produced:
run the fleet at a fixed commit into one results dir, at the candidate
commit into another, then compare the two run_manifest.json files.
"""

import argparse
import json
import math
import sys


def fail(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(1)


FASTPATH_COUNTERS = ("net.express", "net.route_hits", "net.nic_transfers",
                     "net.fibre_busy_ns", "pardes.horizon_gain")


def load_walls(path):
    try:
        with open(path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if manifest.get("schema") not in ("rsd-bench-manifest-v2", "rsd-bench-manifest-v3",
                                      "rsd-bench-manifest-v4"):
        fail(f"{path}: unexpected schema {manifest.get('schema')!r}")
    walls = {}
    counters = {}
    for exp in manifest.get("experiments", []):
        name = exp.get("name")
        wall = exp.get("wall_s")
        if not name or exp.get("status") != "ok":
            continue
        if not isinstance(wall, (int, float)) or not math.isfinite(wall):
            fail(f"{path}: experiment {name!r} has no finite wall_s")
        walls[name] = float(wall)
        metrics = exp.get("metrics", {})
        if isinstance(metrics, dict):
            gain = metrics.get("pardes.horizon_gain")
            if isinstance(gain, (int, float)) and gain < 0:
                fail(f"{path}: experiment {name!r} reports negative "
                     f"pardes.horizon_gain ({gain}) — the lookahead matrix "
                     "can only widen horizons")
            picked = {
                key: metrics[key]
                for key in FASTPATH_COUNTERS
                if isinstance(metrics.get(key), (int, float))
            }
            if picked:
                counters[name] = picked
    if not walls:
        fail(f"{path}: no successful experiments")
    return walls, counters


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail (exit 1) if any shared experiment's candidate wall_s "
        "exceeds baseline * FACTOR",
    )
    args = parser.parse_args()

    base, base_counters = load_walls(args.baseline)
    cand, cand_counters = load_walls(args.candidate)
    shared = sorted(set(base) & set(cand))
    removed = sorted(set(base) - set(cand))  # baseline-only
    added = sorted(set(cand) - set(base))  # candidate-only

    # The experiment sets are allowed to differ (a PR that adds or retires
    # an experiment still needs its before/after record): shared names are
    # compared, the rest are reported as added/removed, never an error.
    name_w = max(len(n) for n in shared + removed + added + ["TOTAL (shared)"])
    header = f"{'experiment':<{name_w}}  {'base_s':>8}  {'cand_s':>8}  {'speedup':>7}"
    print(header)
    print("-" * len(header))
    regressions = []
    for name in shared:
        b, c = base[name], cand[name]
        speedup = b / c if c > 0 else math.inf
        print(f"{name:<{name_w}}  {b:>8.3f}  {c:>8.3f}  {speedup:>6.2f}x")
        if args.max_regression is not None and c > b * args.max_regression:
            regressions.append(name)
    for name in removed:
        print(f"{name:<{name_w}}  {base[name]:>8.3f}  {'-':>8}  removed")
    for name in added:
        print(f"{name:<{name_w}}  {'-':>8}  {cand[name]:>8.3f}  added")

    print("-" * len(header))
    if shared:
        total_b = sum(base[n] for n in shared)
        total_c = sum(cand[n] for n in shared)
        print(
            f"{'TOTAL (shared)':<{name_w}}  {total_b:>8.3f}  {total_c:>8.3f}  "
            f"{(total_b / total_c if total_c > 0 else math.inf):>6.2f}x"
        )
    else:
        print("no shared experiments — nothing to compare")
    if removed or added:
        print(f"{len(removed)} removed, {len(added)} added (not compared)")

    # Fast-path counters: absent in older manifests (reported as "-"), so
    # a before/after across the netpath change still compares cleanly.
    counter_names = sorted(set(base_counters) | set(cand_counters))
    if counter_names:
        name_w = max(name_w, len("fast-path counters"))
        print()
        print(f"{'fast-path counters':<{name_w}}  "
              f"{'counter':<20}  {'base':>12}  {'cand':>12}")
        for name in counter_names:
            for key in FASTPATH_COUNTERS:
                b = base_counters.get(name, {}).get(key)
                c = cand_counters.get(name, {}).get(key)
                if b is None and c is None:
                    continue
                b_s = f"{b:.0f}" if b is not None else "-"
                c_s = f"{c:.0f}" if c is not None else "-"
                print(f"{name:<{name_w}}  {key:<20}  {b_s:>12}  {c_s:>12}")

    if regressions:
        fail(
            f"{len(regressions)} experiment(s) regressed past "
            f"{args.max_regression}x: {', '.join(regressions)}"
        )


if __name__ == "__main__":
    main()
