#include "gpusim/context.hpp"

#include "obs/tracer.hpp"

namespace rsd::gpu {
namespace {

// Host API call names, interned once per process instead of constructing a
// std::string per call (several exceed SSO capacity).
const NameRef kApiMemcpyH2D{"cudaMemcpyH2D"};
const NameRef kApiMemcpyD2H{"cudaMemcpyD2H"};
const NameRef kApiLaunchKernel{"cudaLaunchKernel"};
const NameRef kApiLaunchKernelSync{"cudaLaunchKernelSync"};
const NameRef kApiMemcpyAsyncH2D{"cudaMemcpyAsyncH2D"};
const NameRef kApiMemcpyAsyncD2H{"cudaMemcpyAsyncD2H"};
const NameRef kApiStreamWaitEvent{"cudaStreamWaitEvent"};
const NameRef kApiDeviceSynchronize{"cudaDeviceSynchronize"};

}  // namespace

sim::Task<DeviceBuffer> Context::dmalloc(Bytes bytes) {
  co_await sim::delay(kApiSubmitCost);
  const auto handle = device_.memory().allocate(bytes);
  co_return DeviceBuffer{handle, bytes};
}

sim::Task<> Context::dfree(DeviceBuffer& buffer) {
  co_await sim::delay(kApiSubmitCost);
  if (buffer.handle != 0) {
    device_.memory().free(buffer.handle);
    buffer = DeviceBuffer{};
  }
}

std::shared_ptr<sim::Event> Context::submit_op(OpKind kind, NameRef name, Bytes bytes,
                                               SimDuration service) {
  OpRecord rec;
  rec.kind = kind;
  rec.name = name;
  rec.context_id = id_;
  rec.process_id = process_id_;
  rec.bytes = bytes;
  rec.submit = sched_.now();

  auto done = sim::make_event(sched_);
  sched_.spawn(run_op(device_, tail_, std::move(pending_dep_), done, rec, service,
                      path_.submit_latency));
  tail_ = done;
  return done;
}

sim::Task<> Context::run_op(Device& device, std::shared_ptr<sim::Event> prev,
                            std::shared_ptr<sim::Event> dep, std::shared_ptr<sim::Event> done,
                            OpRecord rec, SimDuration service,
                            SimDuration command_travel) {
  // Command flight overlaps with earlier ops' execution (in-order arrival
  // is preserved because every command of this stream has equal travel).
  if (command_travel > SimDuration::zero()) co_await sim::delay(command_travel);
  if (prev) co_await prev->wait();
  if (dep) co_await dep->wait();
  co_await device.engine_for(rec.kind).execute(rec, service);
  if (auto* sink = device.record_sink(); sink != nullptr) sink->on_op(rec);
  done->trigger();
}

sim::Task<> Context::injected_sleep(SimDuration slack) {
  if (!binding_.bound()) {
    co_await sim::delay(slack);
    co_return;
  }
  // The injected sleep stands in for the command/ack round trips of a
  // row-scale CDI deployment. Route a zero-byte message through the
  // machine model — so FIFO queues and OCS circuit state see it — then
  // top up to the nominal slack: uncontended, the crossing costs exactly
  // the path latency and the call is delayed by `slack` as Equation 1
  // assumes; under congestion the crossing runs long and the overshoot
  // *is* the fabric-contention penalty.
  const SimTime t0 = sched_.now();
  co_await binding_.transport->transfer(binding_.host, binding_.gpu, 0, nullptr);
  const SimDuration crossed = sched_.now() - t0;
  if (crossed < slack) co_await sim::delay(slack - crossed);
}

sim::Task<> Context::begin_api() {
  if (slack_ != nullptr && slack_position_ == SlackPosition::kBeforeCall) {
    const SimDuration slack = slack_->on_api_call();
    if (slack > SimDuration::zero()) {
      if (const std::int32_t trace_id = device_.trace_id(); trace_id >= 0) {
        obs::Tracer::instance().complete_sim(trace_id, obs::kTrackSlack, sched_.now().ns(),
                                             slack.ns(), "slack", "slack_before",
                                             {obs::Arg::n("context", id_)});
      }
      co_await injected_sleep(slack);
    }
  }
}

sim::Task<> Context::finish_api(NameRef name, SimTime start) {
  ApiRecord api;
  api.name = name;
  api.context_id = id_;
  api.start = start;
  api.end = sched_.now();
  ++api_calls_;
  SimDuration slack = SimDuration::zero();
  if (slack_ != nullptr && slack_position_ == SlackPosition::kAfterCall) {
    slack = slack_->on_api_call();
  }
  api.slack_after = slack;
  if (auto* sink = device_.record_sink(); sink != nullptr) sink->on_api(api);
  if (const std::int32_t trace_id = device_.trace_id(); trace_id >= 0) {
    auto& tracer = obs::Tracer::instance();
    tracer.complete_sim(trace_id, obs::kTrackApiBase + id_, start.ns(), (api.end - start).ns(),
                        "gpu.api", name.str());
    if (slack > SimDuration::zero()) {
      tracer.complete_sim(trace_id, obs::kTrackSlack, api.end.ns(), slack.ns(), "slack",
                          "slack", {obs::Arg::n("context", id_)});
    }
  }
  if (slack > SimDuration::zero()) co_await injected_sleep(slack);
}

sim::Task<> Context::memcpy_h2d(const DeviceBuffer& dst, NameRef name) {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  SimDuration service;
  if (binding_.bound()) {
    // The payload crosses the row network to the chassis edge first (link
    // contention applies); the NIC->GPU last hop is the engine service.
    co_await binding_.transport->transfer(binding_.host, binding_.edge, dst.bytes, nullptr);
    service = binding_.transport->price(binding_.edge, binding_.gpu, dst.bytes);
  } else {
    service = device_.link().transfer_time(dst.bytes);
  }
  const auto done = submit_op(OpKind::kMemcpyH2D, name, dst.bytes, service);
  co_await done->wait();
  if (path_.completion_latency > SimDuration::zero()) {
    co_await sim::delay(path_.completion_latency);
  }
  co_await finish_api(kApiMemcpyH2D, start);
}

sim::Task<> Context::memcpy_d2h(const DeviceBuffer& src, NameRef name) {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  const SimDuration service = binding_.bound()
                                  ? binding_.transport->price(binding_.gpu, binding_.edge,
                                                              src.bytes)
                                  : device_.link().transfer_time(src.bytes);
  const auto done = submit_op(OpKind::kMemcpyD2H, name, src.bytes, service);
  co_await done->wait();
  if (binding_.bound()) {
    // Engine done = payload at the chassis edge; it still has to cross the
    // row network back to the host before the blocking call returns.
    co_await binding_.transport->transfer(binding_.edge, binding_.host, src.bytes, nullptr);
  }
  if (path_.completion_latency > SimDuration::zero()) {
    co_await sim::delay(path_.completion_latency);
  }
  co_await finish_api(kApiMemcpyD2H, start);
}

sim::Task<> Context::launch(NameRef name, SimDuration kernel_duration) {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  submit_op(OpKind::kKernel, name, 0, kernel_duration);
  co_await finish_api(kApiLaunchKernel, start);
}

sim::Task<std::shared_ptr<sim::Event>> Context::memcpy_h2d_async(const DeviceBuffer& dst,
                                                                 NameRef name) {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  SimDuration service;
  if (binding_.bound()) {
    // Source data is host-side: the submitting thread stages it across the
    // row network before the device-side copy can be queued (the same
    // pageable-memory behaviour real async copies exhibit).
    co_await binding_.transport->transfer(binding_.host, binding_.edge, dst.bytes, nullptr);
    service = binding_.transport->price(binding_.edge, binding_.gpu, dst.bytes);
  } else {
    service = device_.link().transfer_time(dst.bytes);
  }
  auto done = submit_op(OpKind::kMemcpyH2D, name, dst.bytes, service);
  co_await finish_api(kApiMemcpyAsyncH2D, start);
  co_return done;
}

sim::Task<std::shared_ptr<sim::Event>> Context::memcpy_d2h_async(const DeviceBuffer& src,
                                                                 NameRef name) {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  const SimDuration service = binding_.bound()
                                  ? binding_.transport->price(binding_.gpu, binding_.edge,
                                                              src.bytes)
                                  : device_.link().transfer_time(src.bytes);
  auto done = submit_op(OpKind::kMemcpyD2H, name, src.bytes, service);
  if (binding_.bound()) {
    // The returned event fires when the payload reaches the *host*, which
    // is one row-network crossing after the device engine finishes. The
    // binding rides by value so the tail task outlives this context.
    auto arrived = sim::make_event(sched_);
    sched_.spawn([](TransportBinding binding, std::shared_ptr<sim::Event> dev_done,
                    Bytes bytes, std::shared_ptr<sim::Event> evt) -> sim::Task<> {
      co_await dev_done->wait();
      co_await binding.transport->transfer(binding.edge, binding.host, bytes, nullptr);
      evt->trigger();
    }(binding_, done, src.bytes, arrived));
    done = std::move(arrived);
  }
  co_await finish_api(kApiMemcpyAsyncD2H, start);
  co_return done;
}

sim::Task<> Context::stream_wait(std::shared_ptr<sim::Event> event) {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  pending_dep_ = std::move(event);
  co_await finish_api(kApiStreamWaitEvent, start);
}

sim::Task<> Context::launch_sync(NameRef name, SimDuration kernel_duration) {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  const auto done = submit_op(OpKind::kKernel, name, 0, kernel_duration);
  co_await done->wait();
  if (path_.completion_latency > SimDuration::zero()) {
    co_await sim::delay(path_.completion_latency);
  }
  co_await finish_api(kApiLaunchKernelSync, start);
}

sim::Task<> Context::synchronize() {
  co_await begin_api();
  const SimTime start = sched_.now();
  co_await sim::delay(kApiSubmitCost);
  if (tail_) co_await tail_->wait();
  if (path_.completion_latency > SimDuration::zero()) {
    co_await sim::delay(path_.completion_latency);
  }
  co_await finish_api(kApiDeviceSynchronize, start);
}

}  // namespace rsd::gpu
