// CUDA-like host front-end to the simulated device.
//
// One `Context` per simulated host thread. The call surface mirrors the
// subset of the CUDA runtime the paper's proxy exercises:
//
//   dmalloc / dfree            cudaMalloc / cudaFree
//   memcpy_h2d / memcpy_d2h    cudaMemcpy (blocking)
//   launch                     kernel<<<...>>> (asynchronous)
//   synchronize                cudaDeviceSynchronize
//
// Each call costs a small host-side submission time (the CPU's kernel-push
// rate is a first-class quantity in the paper's CosmoFlow analysis) and, when
// a SlackInjector is attached, is followed by the injected slack — exactly
// the paper's sleep-after-every-CUDA-call emulation of row-scale CDI.
//
// Ops issued through one Context execute in order (one CUDA stream);
// separate Contexts interleave freely on the device engines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "core/units.hpp"
#include "gpusim/device.hpp"
#include "gpusim/records.hpp"
#include "interconnect/link.hpp"
#include "interconnect/slack.hpp"
#include "interconnect/transport.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::gpu {

/// Host-side cost of pushing one command to the driver/device queue.
inline constexpr SimDuration kApiSubmitCost = duration::microseconds(1.5);

/// Default op names, interned once at static initialisation so call sites
/// that rely on the defaults pay nothing per call.
inline const NameRef kMemcpyH2DName{"memcpy_h2d"};
inline const NameRef kMemcpyD2HName{"memcpy_d2h"};

/// Command-path latencies for a *native* disaggregated deployment: every
/// command crosses the network to reach the device, and every completion
/// notification crosses it back. A traditional PCIe-local device uses the
/// zero default. The paper emulates this path with host-side sleeps; the
/// native mode exists to validate that emulation (see
/// bench_extension_native_cdi).
struct CommandPath {
  SimDuration submit_latency = SimDuration::zero();      ///< host -> device
  SimDuration completion_latency = SimDuration::zero();  ///< device -> host

  [[nodiscard]] static CommandPath local() { return {}; }
  [[nodiscard]] static CommandPath over_network(const interconnect::CdiNetworkParams& net) {
    return CommandPath{net.slack(), net.slack()};
  }
  [[nodiscard]] SimDuration round_trip() const { return submit_latency + completion_latency; }
};

/// A device memory allocation owned by a Context (RAII-style via dfree).
struct DeviceBuffer {
  MemoryPool::Handle handle = 0;
  Bytes bytes = 0;
};

/// Routes a context's host-side traffic over the row-scale machine model
/// instead of the flat per-device link. When bound, memcpy payloads cross
/// `transport` between the CDI `host` endpoint and the device's chassis
/// NIC (`edge`) — FIFO link contention, OCS circuits, and the express fast
/// path all apply — and the engine service time becomes the NIC->GPU last
/// hop. Injected slack is realised as a zero-byte host->GPU crossing
/// topped up to the nominal value: an uncontended crossing costs exactly
/// the path latency, so Equation 1 accounting is unchanged, while fabric
/// congestion lengthens the crossing and feeds the Eq 2-3 penalty bounds.
struct TransportBinding {
  net::Transport* transport = nullptr;
  net::NodeId host = net::kInvalidNode;  ///< CDI host endpoint node.
  net::NodeId edge = net::kInvalidNode;  ///< Chassis NIC serving the device.
  net::NodeId gpu = net::kInvalidNode;   ///< The device's graph node.
  [[nodiscard]] bool bound() const { return transport != nullptr; }
};

/// Where injected slack lands relative to the API call. The paper's proxy
/// sleeps *after* each call (Section III-C); its LD_PRELOAD alternative
/// would delay *before* calling the target function (Section III-B). Both
/// are provided so the agreement the paper reports can be reproduced.
enum class SlackPosition { kAfterCall, kBeforeCall };

class Context {
 public:
  /// `slack` may be null (no injection). `id` tags records; `process_id`
  /// identifies the owning OS process — OpenMP threads of one application
  /// share a process_id (one CUDA context), MPI ranks get distinct ones.
  Context(Device& device, int id = 0, interconnect::SlackInjector* slack = nullptr,
          int process_id = 0, CommandPath path = CommandPath::local(),
          SlackPosition slack_position = SlackPosition::kAfterCall)
      : device_(device), sched_(device.scheduler()), id_(id), process_id_(process_id),
        slack_(slack), path_(path), slack_position_(slack_position) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] Device& device() { return device_; }
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int process_id() const { return process_id_; }

  /// Attach (or detach, with a default-constructed binding) the machine
  /// model. Unbound contexts price host<->device traffic off the device's
  /// own link, exactly as before the transport seam existed.
  void bind_transport(const TransportBinding& binding) { binding_ = binding; }
  [[nodiscard]] const TransportBinding& transport_binding() const { return binding_; }

  /// Allocate device memory; throws rsd::Error{kOutOfMemory} when full.
  /// Host-side cost only — allocation itself is immediate, like cudaMalloc
  /// from a pre-grown heap.
  [[nodiscard]] sim::Task<DeviceBuffer> dmalloc(Bytes bytes);

  sim::Task<> dfree(DeviceBuffer& buffer);

  /// Blocking host-to-device copy (cudaMemcpy H2D): resumes when the
  /// transfer has completed on the device. Names are interned `NameRef`s:
  /// hot loops hoist the ref once and pass it by value (no per-op string).
  sim::Task<> memcpy_h2d(const DeviceBuffer& dst, NameRef name = kMemcpyH2DName);

  /// Blocking device-to-host copy (cudaMemcpy D2H).
  sim::Task<> memcpy_d2h(const DeviceBuffer& src, NameRef name = kMemcpyD2HName);

  /// Asynchronous copies (cudaMemcpyAsync): resume after submission and
  /// return the op's completion event. Combined with a second Context as
  /// the "other stream" and stream_wait(), these enable the double-buffered
  /// pipelines the paper sets aside when it chooses the synchronous
  /// pessimistic case (Section III-B).
  sim::Task<std::shared_ptr<sim::Event>> memcpy_h2d_async(const DeviceBuffer& dst,
                                                          NameRef name = kMemcpyH2DName);
  sim::Task<std::shared_ptr<sim::Event>> memcpy_d2h_async(const DeviceBuffer& src,
                                                          NameRef name = kMemcpyD2HName);

  /// cudaStreamWaitEvent: the next op submitted through this context will
  /// not start on the device before `event` has triggered. Host-side cost
  /// only; does not block the host.
  sim::Task<> stream_wait(std::shared_ptr<sim::Event> event);

  /// Completion event of the most recently submitted op (cudaEventRecord).
  [[nodiscard]] std::shared_ptr<sim::Event> record_event() const { return tail_; }

  /// Asynchronous kernel launch: resumes after submission; the kernel
  /// executes on the device in stream order.
  sim::Task<> launch(NameRef name, SimDuration kernel_duration);

  /// Synchronous kernel launch: one API call that resumes only when the
  /// kernel has completed. The paper's proxy runs its GPU-side operations
  /// synchronously "to capture the pessimistic case" (Section III-B).
  sim::Task<> launch_sync(NameRef name, SimDuration kernel_duration);

  /// Convenience: launch an n x n single-precision matmul kernel, with the
  /// duration drawn from the device's cost model. Interns the name per call
  /// — loops should hoist a NameRef and call launch() directly.
  sim::Task<> launch_matmul(std::int64_t n) {
    return launch(NameRef{"sgemm_" + std::to_string(n)}, device_.matmul_kernel_duration(n));
  }

  /// Block until every op submitted through this context has completed
  /// (cudaDeviceSynchronize scoped to this stream).
  sim::Task<> synchronize();

  /// Number of API calls made through this context (memcpy/launch/sync —
  /// the calls the paper injects slack after; dmalloc/dfree excluded, as
  /// the proxy's allocation happens outside the timed loop).
  [[nodiscard]] std::int64_t api_calls() const { return api_calls_; }

 private:
  /// Enqueue a device op in stream order. Returns the completion event.
  /// The command spends `path_.submit_latency` in flight before it can
  /// start (overlapping with earlier ops' execution).
  std::shared_ptr<sim::Event> submit_op(OpKind kind, NameRef name, Bytes bytes,
                                        SimDuration service);

  /// The OpRecord rides by value in run_op's (arena-recycled) coroutine
  /// frame — no shared_ptr, no separate heap object per op.
  static sim::Task<> run_op(Device& device, std::shared_ptr<sim::Event> prev,
                            std::shared_ptr<sim::Event> dep,
                            std::shared_ptr<sim::Event> done,
                            OpRecord rec, SimDuration service,
                            SimDuration command_travel);

  /// Record the API call and apply injected slack (kAfterCall position).
  sim::Task<> finish_api(NameRef name, SimTime start);

  /// Apply injected slack at call entry (kBeforeCall position).
  sim::Task<> begin_api();

  /// Realise one injected sleep. Unbound: a plain delay of `slack`. Bound:
  /// a zero-byte host->GPU crossing of the row network topped up to the
  /// nominal value, so contention overshoots and nothing else changes.
  sim::Task<> injected_sleep(SimDuration slack);

  Device& device_;
  sim::Scheduler& sched_;
  int id_;
  int process_id_;
  interconnect::SlackInjector* slack_;
  CommandPath path_;
  SlackPosition slack_position_;
  TransportBinding binding_;
  std::shared_ptr<sim::Event> tail_;  ///< Completion of the last submitted op.
  std::shared_ptr<sim::Event> pending_dep_;  ///< From stream_wait().
  std::int64_t api_calls_ = 0;
};

}  // namespace rsd::gpu
