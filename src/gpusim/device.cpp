#include "gpusim/device.hpp"

#include <algorithm>
#include <utility>

#include "obs/tracer.hpp"

namespace rsd::gpu {

MemoryPool::Handle MemoryPool::allocate(Bytes bytes) {
  if (bytes == 0) throw Error{ErrorCode::kInvalidArgument, "zero-byte device allocation"};
  if (used_ + bytes > capacity_) {
    throw Error{ErrorCode::kOutOfMemory,
                "device OOM: requested " + format_bytes(bytes) + ", used " + format_bytes(used_) +
                    " of " + format_bytes(capacity_)};
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
    sizes_[idx] = bytes;
  } else {
    idx = static_cast<std::uint32_t>(sizes_.size());
    sizes_.push_back(bytes);
  }
  return static_cast<Handle>(idx) + 1;
}

void MemoryPool::free(Handle handle) {
  const std::size_t idx = static_cast<std::size_t>(handle) - 1;
  if (handle == 0 || idx >= sizes_.size() || sizes_[idx] == 0) {
    throw Error{ErrorCode::kNotFound, "free of unknown device allocation"};
  }
  used_ -= sizes_[idx];
  sizes_[idx] = 0;
  free_slots_.push_back(static_cast<std::uint32_t>(idx));
}

sim::Task<> Engine::execute(OpRecord& rec, SimDuration service) {
  // Pipelining: the setup overhead is exposed only when the engine had no
  // work at arrival (nothing to hide it behind).
  const bool exposed = (queued_ == 0);
  queue_depth_.observe(queued_);
  const SimTime arrival = sched_.now();
  ++queued_;
  const std::int32_t trace_id = device_.trace_id();
  if (trace_id >= 0) {
    obs::Tracer::instance().counter_sim(trace_id, track_, arrival.ns(), "gpu",
                                        name_ + ".queue", static_cast<double>(queued_));
  }
  co_await server_.acquire();
  sim::SemaphoreGuard guard{server_};

  const SimDuration wake = device_.begin_op();
  SimDuration switch_cost = SimDuration::zero();
  if (charges_switch_ && last_process_ >= 0 && last_process_ != rec.process_id) {
    switch_cost = device_.params().process_switch;
  }
  last_process_ = rec.process_id;
  const SimDuration pre = (exposed ? setup_ : SimDuration::zero()) + wake + switch_cost;
  rec.exposed_overhead = exposed ? setup_ : SimDuration::zero();
  rec.wake_penalty = wake;
  rec.switch_penalty = switch_cost;
  // `start`/`end` bracket the op's *execution*, as a profiler reports it;
  // setup, wake, and context-switch costs show up as queue delay instead.
  co_await sim::delay(pre);
  rec.start = sched_.now();
  co_await sim::delay(service);
  rec.end = sched_.now();
  busy_time_ += rec.end - rec.start;
  ++ops_;
  if (exposed) {
    ++exposed_count_;
    exposed_total_ += setup_;
  }

  device_.end_op();
  --queued_;
  if (trace_id >= 0) {
    auto& tracer = obs::Tracer::instance();
    std::vector<obs::Arg> args;
    // submit/context ride along so trace::from_timeline can rebuild the
    // full OpRecord (ns values < 2^53 are exact in a double).
    args.push_back(obs::Arg::n("submit_ns", static_cast<double>(rec.submit.ns())));
    args.push_back(obs::Arg::n("context", static_cast<double>(rec.context_id)));
    if (rec.bytes > 0) args.push_back(obs::Arg::n("bytes", static_cast<double>(rec.bytes)));
    if (exposed) args.push_back(obs::Arg::n("exposed_us", setup_.seconds() * 1e6));
    if (wake > SimDuration::zero()) {
      args.push_back(obs::Arg::n("wake_us", wake.seconds() * 1e6));
    }
    if (switch_cost > SimDuration::zero()) {
      args.push_back(obs::Arg::n("switch_us", switch_cost.seconds() * 1e6));
    }
    tracer.complete_sim(trace_id, track_, rec.start.ns(), (rec.end - rec.start).ns(), "gpu",
                        rec.name.str(), std::move(args));
    if (exposed) {
      tracer.instant_sim(trace_id, track_, arrival.ns(), "gpu", "exposed_launch",
                         {obs::Arg::n("ns", static_cast<double>(setup_.ns()))});
    }
    if (wake > SimDuration::zero()) {
      tracer.instant_sim(trace_id, track_, rec.start.ns(), "gpu", "wake_penalty",
                         {obs::Arg::n("ns", static_cast<double>(wake.ns()))});
    }
    tracer.counter_sim(trace_id, track_, rec.end.ns(), "gpu", name_ + ".queue",
                       static_cast<double>(queued_));
  }
}

Device::Device(sim::Scheduler& sched, DeviceParams params, interconnect::Link link)
    : sched_(sched),
      params_(std::move(params)),
      link_(std::move(link)),
      memory_(params_.memory_capacity),
      compute_(sched, *this, "compute", obs::kTrackCompute, params_.kernel_setup,
               /*charges_process_switch=*/true),
      h2d_(sched, *this, "copy-h2d", obs::kTrackCopyH2D, params_.copy_setup),
      d2h_(sched, *this, "copy-d2h", obs::kTrackCopyD2H, params_.copy_setup) {
  if (obs::Tracer::enabled()) trace_id_ = obs::Tracer::instance().acquire_sim_id();
}

Device::~Device() {
  const std::int64_t ops = compute_.ops_ + h2d_.ops_ + d2h_.ops_;
  if (ops == 0) return;
  auto& reg = obs::Registry::global();
  reg.counter("gpusim.devices").add(1);
  reg.counter("gpusim.ops").add(ops);
  reg.counter("gpusim.exposed_launches")
      .add(compute_.exposed_count_ + h2d_.exposed_count_ + d2h_.exposed_count_);
  reg.counter("gpusim.exposed_launch_ns")
      .add((compute_.exposed_total_ + h2d_.exposed_total_ + d2h_.exposed_total_).ns());
  reg.counter("gpusim.wake_events").add(wake_count_);
  reg.counter("gpusim.wake_penalty_ns").add(total_wake_.ns());
  reg.counter("gpusim.engine_busy_ns")
      .add((compute_.busy_time_ + h2d_.busy_time_ + d2h_.busy_time_).ns());
  auto& depth = reg.histogram("gpusim.queue_depth");
  depth.merge(compute_.queue_depth_);
  depth.merge(h2d_.queue_depth_);
  depth.merge(d2h_.queue_depth_);
  const SimTime now = sched_.now();
  if (now.ns() > 0) {
    reg.gauge("gpusim.compute_utilization").set(compute_.busy_time_.seconds() / now.seconds());
  }
}

Engine& Device::engine_for(OpKind kind) {
  switch (kind) {
    case OpKind::kMemcpyH2D: return h2d_;
    case OpKind::kMemcpyD2H: return d2h_;
    case OpKind::kKernel: return compute_;
  }
  RSD_ASSERT(false && "unreachable");
}

SimDuration matmul_kernel_duration(const DeviceParams& params, std::int64_t n) {
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const double seconds = flops / (params.matmul_tflops * 1e12);
  return params.kernel_base + duration::seconds(seconds);
}

SimDuration Device::matmul_kernel_duration(std::int64_t n) const {
  return gpu::matmul_kernel_duration(params_, n);
}

SimDuration Device::wake_penalty(SimDuration gap) const {
  if (gap <= params_.wake_t0) return SimDuration::zero();
  const SimDuration scaled = (gap - params_.wake_t0) * params_.wake_alpha;
  return std::min(scaled, params_.wake_max);
}

SimDuration Device::begin_op() {
  SimDuration wake = SimDuration::zero();
  if (busy_ops_ == 0 && warmed_up_) {
    const SimDuration gap = sched_.now() - idle_since_;
    wake = wake_penalty(gap);
    if (wake > SimDuration::zero()) {
      ++wake_count_;
      total_wake_ += wake;
    }
  }
  warmed_up_ = true;
  if (busy_ops_ == 0) busy_since_ = sched_.now();
  ++busy_ops_;
  return wake;
}

void Device::end_op() {
  RSD_ASSERT(busy_ops_ > 0);
  if (--busy_ops_ == 0) {
    idle_since_ = sched_.now();
    total_busy_ += sched_.now() - busy_since_;
  }
}

SimDuration Device::device_busy_time(SimTime now) const {
  SimDuration busy = total_busy_;
  if (busy_ops_ > 0) busy += now - busy_since_;
  return busy;
}

double Device::energy_joules(SimTime now) const {
  const SimDuration busy = device_busy_time(now);
  const SimDuration idle = (now - SimTime::zero()) - busy;
  return busy.seconds() * params_.busy_watts + idle.seconds() * params_.idle_watts;
}

}  // namespace rsd::gpu
