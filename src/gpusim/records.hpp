// Execution records emitted by the simulated GPU — the equivalent of an
// NSight Systems trace. `rsd::trace` aggregates these into the kernel and
// memcpy distributions of Figures 4 and 5.
#pragma once

#include <cstdint>

#include "core/names.hpp"
#include "core/units.hpp"

namespace rsd::gpu {

enum class OpKind : std::uint8_t {
  kMemcpyH2D,
  kMemcpyD2H,
  kKernel,
};

[[nodiscard]] constexpr const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kMemcpyH2D: return "memcpy_h2d";
    case OpKind::kMemcpyD2H: return "memcpy_d2h";
    case OpKind::kKernel: return "kernel";
  }
  return "?";
}

/// One device-side operation (kernel execution or DMA transfer).
///
/// `name` is an interned `NameRef`: callers on the hot path pass a
/// pre-interned ref (constant-time copy, no string allocation per op);
/// consumers read the text through `name.view()`.
struct OpRecord {
  OpKind kind = OpKind::kKernel;
  NameRef name;
  int context_id = 0;             ///< Which host thread / stream submitted it.
  int process_id = 0;             ///< Owning OS process (MPI rank). Threads of
                                  ///< one process share a CUDA context; ranks
                                  ///< do not, and switching contexts costs.
  SimTime submit;                 ///< Host submission time.
  SimTime start;                  ///< Device execution start.
  SimTime end;                    ///< Device execution end.
  Bytes bytes = 0;                ///< Payload for copies; 0 for kernels.
  SimDuration exposed_overhead;   ///< Launch/setup latency left uncovered.
  SimDuration wake_penalty;       ///< Power-state wake cost paid by this op.
  SimDuration switch_penalty;     ///< Inter-process context-switch cost paid.
  /// OCS circuit-retarget delay folded into a fabric transfer's service
  /// time (zero for kernels and non-optical fabrics). The causal edge the
  /// critical-path attribution uses to separate reconfiguration from
  /// serialisation inside one copy-engine occupation.
  SimDuration reconfig_penalty;

  [[nodiscard]] SimDuration duration() const { return end - start; }
  [[nodiscard]] SimDuration queue_delay() const { return start - submit; }
};

/// One host-side API call (the unit slack is injected after).
struct ApiRecord {
  NameRef name;
  int context_id = 0;
  SimTime start;
  SimTime end;                    ///< Includes blocking wait, excludes slack.
  SimDuration slack_after;        ///< Injected slack following the call.
};

/// Sink for simulator records. The trace module provides the standard
/// implementation; a null sink (nullptr) disables tracing.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_op(const OpRecord& op) = 0;
  virtual void on_api(const ApiRecord& api) = 0;
};

}  // namespace rsd::gpu
