// GPU-to-GPU collective cost models (Discussion section).
//
// The paper argues a CDI chassis can host many closely-coupled GPUs, so
// CPU-asynchronous operations like allreduce run faster than on GPUs
// scattered across traditional nodes. These are the standard alpha-beta
// models for ring and binary-tree allreduce over a given GPU interconnect.
//
// Since the link-graph machine model (interconnect/topology.hpp) landed,
// these closed forms are the documented *analytic cross-check* for the
// event-driven collectives in interconnect/collective.hpp: on an
// uncontended fabric the scheduled ring/tree algorithms must reproduce
// ring_allreduce_time / tree_allreduce_time exactly
// (tests/net_collective_test.cpp pins the parity).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>

#include "core/error.hpp"
#include "core/units.hpp"
#include "interconnect/link.hpp"

namespace rsd::gpu {

/// Point-to-point characteristics of the GPU<->GPU path.
struct GpuInterconnect {
  std::string name;
  double bandwidth_gib_s = 1.0;
  SimDuration latency = SimDuration::zero();
};

/// NVLink-class intra-chassis fabric.
[[nodiscard]] inline GpuInterconnect make_nvlink() {
  return GpuInterconnect{"nvlink-chassis", 200.0, duration::microseconds(2.0)};
}

/// PCIe peer-to-peer within one traditional node.
[[nodiscard]] inline GpuInterconnect make_pcie_p2p() {
  return GpuInterconnect{"pcie-p2p", 20.0, duration::microseconds(6.0)};
}

/// GPUs scattered across nodes: traffic crosses the PCIe stub, then NICs +
/// switches (+ fibre). Both terms come from the network parameters — the
/// stub hop from `pcie_stub_latency`, the NIC/switch/fibre path from
/// `slack()` — so a tuned CdiNetworkParams propagates instead of being
/// half-overridden by a hardcoded constant.
[[nodiscard]] inline GpuInterconnect make_scattered(
    const interconnect::CdiNetworkParams& net = {}) {
  return GpuInterconnect{"scattered-network", net.bandwidth_gib_s,
                         net.pcie_stub_latency + net.slack()};
}

namespace detail {
[[nodiscard]] inline SimDuration transfer(const GpuInterconnect& link, double bytes) {
  return link.latency +
         duration::seconds(bytes / (link.bandwidth_gib_s * static_cast<double>(kGiB)));
}
}  // namespace detail

/// Ring allreduce: 2(n-1) steps, each moving bytes/n per GPU.
/// Bandwidth-optimal; latency grows linearly with n.
[[nodiscard]] inline SimDuration ring_allreduce_time(Bytes bytes, int gpus,
                                                     const GpuInterconnect& link) {
  RSD_ASSERT(gpus >= 1);
  if (gpus == 1) return SimDuration::zero();
  const double chunk = static_cast<double>(bytes) / gpus;
  return std::int64_t{2} * std::int64_t{gpus - 1} * detail::transfer(link, chunk);
}

/// Binary-tree allreduce: 2*ceil(log2 n) steps of the full message.
/// Latency-optimal; bandwidth cost grows with log n.
[[nodiscard]] inline SimDuration tree_allreduce_time(Bytes bytes, int gpus,
                                                     const GpuInterconnect& link) {
  RSD_ASSERT(gpus >= 1);
  if (gpus == 1) return SimDuration::zero();
  const auto steps =
      static_cast<std::int64_t>(2 * std::ceil(std::log2(static_cast<double>(gpus))));
  return steps * detail::transfer(link, static_cast<double>(bytes));
}

/// What a tuned library (NCCL-style) would pick: the cheaper algorithm.
[[nodiscard]] inline SimDuration best_allreduce_time(Bytes bytes, int gpus,
                                                     const GpuInterconnect& link) {
  return std::min(ring_allreduce_time(bytes, gpus, link),
                  tree_allreduce_time(bytes, gpus, link));
}

}  // namespace rsd::gpu
