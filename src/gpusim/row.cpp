#include "gpusim/row.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "interconnect/link.hpp"
#include "sim/partition.hpp"
#include "sim/sync.hpp"

namespace rsd::gpu {

namespace {

net::Topology build_row_topology(const RowParams& params) {
  if (params.topology != nullptr) return {};  // shared fabric: nothing to own
  return net::build_fabric(net::FabricParams{
      .kind = params.fabric_kind,
      .gpus = params.gpus,
      .gpus_per_chassis = params.gpus_per_chassis,
      .link_bandwidth_gib_s = params.fabric.bandwidth_gib_s,
      .link_latency = params.fabric.latency,
      .ocs_reconfigure = params.ocs_reconfigure,
      .chassis_nics = params.chassis_nics,
  });
}

/// The engine's conservative lookahead: the shortest routed device-to-
/// device latency — no cross-partition message can arrive sooner. A
/// topology with a zero-latency device path cannot bound message arrival
/// at all, so it is a usage error, not an invariant violation.
SimDuration derive_lookahead(const net::Topology& topo, const RowParams& params) {
  const SimDuration lookahead =
      topo.device_count() >= 2 ? topo.min_device_path_latency() : params.fabric.latency;
  if (lookahead.ns() <= 0) {
    throw Error{ErrorCode::kInvalidArgument,
                "PartitionedRow: fabric '" + std::string{net::to_string(params.fabric_kind)} +
                    "' has a zero-latency device path; the conservative engine needs a "
                    "positive minimum link latency for lookahead"};
  }
  return lookahead;
}

}  // namespace

/// Partition-local state of one rank. The Device and both semaphores
/// belong to the rank's partition scheduler; nothing here is ever touched
/// from another partition (the arrival message below runs *inside* the
/// destination partition by construction).
struct PartitionedRow::Rank {
  Rank(sim::Scheduler& sched, const DeviceParams& params)
      : dev(sched, params, interconnect::make_pcie_gen4_x16()), inbound(sched, 0) {}

  Device dev;
  /// One permit per inbound chunk whose H2D DMA has completed.
  sim::Semaphore inbound;
  SimTime finished = SimTime::zero();
  std::vector<std::int64_t> step_ends;
};

/// Cross-partition payload: an allreduce chunk landing at `rank`. Runs in
/// the destination partition at arrival time; occupies the H2D engine for
/// the transfer duration, then posts an inbound permit.
struct RowArrival {
  PartitionedRow* row;
  int rank;
  Bytes chunk;
  SimDuration transfer;
  NameRef name;

  void operator()() const {
    PartitionedRow::Rank& r = *row->ranks_[static_cast<std::size_t>(rank)];
    r.dev.scheduler().spawn([](PartitionedRow::Rank& rk, Bytes bytes, SimDuration dur,
                               NameRef nm) -> sim::Task<> {
      OpRecord rec;
      rec.kind = OpKind::kMemcpyH2D;
      rec.name = nm;
      rec.bytes = bytes;
      co_await rk.dev.h2d_engine().execute(rec, dur);
      if (auto* sink = rk.dev.record_sink(); sink != nullptr) sink->on_op(rec);
      rk.inbound.release();
    }(r, chunk, transfer, name));
  }
};
static_assert(sizeof(RowArrival) <= sim::CrossCall::kInlineBytes);

PartitionedRow::PartitionedRow(RowParams params)
    : params_(std::move(params)),
      owned_topo_(build_row_topology(params_)),
      topo_(params_.topology != nullptr ? params_.topology : &owned_topo_),
      engine_(params_.gpus, {.threads = params_.sim_threads,
                             .lookahead = derive_lookahead(*topo_, params_),
                             .jitter_seed = params_.jitter_seed}) {
  RSD_ASSERT(params_.gpus >= 1);
  ranks_.reserve(static_cast<std::size_t>(params_.gpus));
  for (int i = 0; i < params_.gpus; ++i) {
    ranks_.emplace_back(
        new Rank{engine_.partition(static_cast<sim::PartitionId>(i)).scheduler(),
                 params_.device_params});
  }
}

PartitionedRow::~PartitionedRow() = default;

Device& PartitionedRow::device(int rank) {
  return ranks_.at(static_cast<std::size_t>(rank))->dev;
}

SimTime PartitionedRow::rank_finish_time(int rank) const {
  return ranks_.at(static_cast<std::size_t>(rank))->finished;
}

std::uint64_t PartitionedRow::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::int64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint64_t>(v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& r : ranks_) {
    mix(r->finished.ns());
    for (const std::int64_t t : r->step_ends) mix(t);
  }
  return h;
}

sim::Task<> PartitionedRow::rank_loop(int rank, const RowTraining& training) {
  Rank& self = *ranks_[static_cast<std::size_t>(rank)];
  sim::Partition& part = engine_.partition(static_cast<sim::PartitionId>(rank));
  sim::Scheduler& sched = part.scheduler();
  const int ranks = size();
  const int phases = 2 * (ranks - 1);
  const auto next = static_cast<sim::PartitionId>((rank + 1) % ranks);
  const NameRef send_name{"row_allreduce_send"};
  const NameRef recv_name{"row_allreduce_recv"};
  // Optical fabrics: this rank's uplink circuit must be pointed at the
  // ring neighbor before the first chunk leaves; the neighbor never
  // changes, so the retarget is paid exactly once per rank. (Precomputed
  // in run_training — the topology's route cache is not touched from
  // worker threads.)
  bool circuit_pending = ranks > 1 && edge_ocs_[static_cast<std::size_t>(rank)];
  const SimDuration edge_transfer =
      ranks > 1 ? edge_transfer_[static_cast<std::size_t>(rank)] : SimDuration::zero();
  const SimDuration edge_delay =
      ranks > 1 ? edge_delay_[static_cast<std::size_t>(rank)] : SimDuration::zero();

  for (int step = 0; step < training.steps; ++step) {
    // Host submission lane + compute: entirely partition-local.
    for (const RowKernel& k : training.kernels) {
      if (training.submit_cost.ns() > 0) co_await sim::delay(training.submit_cost);
      OpRecord rec;
      rec.kind = OpKind::kKernel;
      rec.name = k.name;
      rec.context_id = rank;
      rec.process_id = rank;
      co_await self.dev.compute_engine().execute(rec, k.duration);
      if (auto* sink = self.dev.record_sink(); sink != nullptr) sink->on_op(rec);
    }

    // Ring allreduce as message exchange. Each phase: start the outbound
    // DMA, post the chunk to the ring neighbor, then wait for both the
    // inbound chunk and the local DMA drain.
    for (int phase = 0; phase < phases; ++phase) {
      if (circuit_pending) {
        co_await sim::delay(topo_->ocs_reconfigure());
        circuit_pending = false;
      }
      sim::WaitGroup out_done{sched};
      out_done.add(1);
      sched.spawn([](Rank& rk, Bytes bytes, SimDuration dur, NameRef nm,
                     sim::WaitGroup& wg) -> sim::Task<> {
        OpRecord rec;
        rec.kind = OpKind::kMemcpyD2H;
        rec.name = nm;
        rec.bytes = bytes;
        co_await rk.dev.d2h_engine().execute(rec, dur);
        if (auto* sink = rk.dev.record_sink(); sink != nullptr) sink->on_op(rec);
        wg.done();
      }(self, chunk_, edge_transfer, send_name, out_done));
      part.send(next, edge_delay,
                RowArrival{this, static_cast<int>(next), chunk_, edge_transfer, recv_name});
      co_await self.inbound.acquire();
      co_await out_done.wait();
    }
    self.step_ends.push_back(sched.now().ns());
  }
  self.finished = sched.now();
}

SimTime PartitionedRow::run_training(const RowTraining& training) {
  RSD_ASSERT(training.steps >= 1);
  chunk_ = size() > 1 ? training.gradient_bytes / static_cast<Bytes>(size())
                      : training.gradient_bytes;
  if (size() > 1) {
    const auto n = static_cast<std::size_t>(size());
    edge_transfer_.resize(n);
    edge_delay_.resize(n);
    edge_ocs_.resize(n);
    if (topo_->nic_count() > 0) {
      // Multi-chassis graphs are not rank-symmetric: a ring edge that
      // crosses a chassis boundary routes over NIC + fibre while an
      // intra-chassis edge stays on the NVLink-class links, so every
      // edge is priced from its own routed path.
      for (int rank = 0; rank < size(); ++rank) {
        const net::NodeId src = topo_->device(rank);
        const net::NodeId dst = topo_->device((rank + 1) % size());
        edge_transfer_[static_cast<std::size_t>(rank)] =
            topo_->transfer_time(src, dst, chunk_);
        edge_delay_[static_cast<std::size_t>(rank)] = topo_->route(src, dst).latency;
        edge_ocs_[static_cast<std::size_t>(rank)] =
            topo_->route(src, dst).optical_hops > 0;
      }
    } else {
      // Ring-neighbor transfer cost from the machine model. All four flat
      // fabric shapes are rank-symmetric, so rank 0 -> rank 1 prices every
      // pair; on the default ring this is latency + chunk/bandwidth,
      // exactly the pre-machine-model arithmetic.
      edge_transfer_.assign(
          n, topo_->transfer_time(topo_->device(0), topo_->device(1), chunk_));
      edge_delay_.assign(n, topo_->route(topo_->device(0), topo_->device(1)).latency);
      edge_ocs_.assign(
          n, topo_->route(topo_->device(0), topo_->device(1)).optical_hops > 0);
    }
    if (params_.lookahead_matrix) {
      // Feed the engine the fabric's distances: the only remote sends are
      // ring-neighbor chunk posts at that edge's routed path latency, so
      // the lookahead graph is the rank ring with that bound per edge.
      std::vector<sim::LookaheadEdge> edges;
      edges.reserve(n);
      for (int rank = 0; rank < size(); ++rank) {
        edges.push_back(sim::LookaheadEdge{
            static_cast<sim::PartitionId>(rank),
            static_cast<sim::PartitionId>((rank + 1) % size()),
            edge_delay_[static_cast<std::size_t>(rank)]});
      }
      engine_.set_lookahead_edges(edges);
    }
  }
  for (int rank = 0; rank < size(); ++rank) {
    sim::Partition& part = engine_.partition(static_cast<sim::PartitionId>(rank));
    part.spawn([&] { return rank_loop(rank, training); });
  }
  engine_.run();
  RSD_ASSERT(engine_.unfinished_count() == 0);
  SimTime finish = SimTime::zero();
  for (const auto& r : ranks_) finish = std::max(finish, r->finished);
  return finish;
}

}  // namespace rsd::gpu
