#include "gpusim/chassis.hpp"

#include "sim/sync.hpp"

namespace rsd::gpu {

namespace {

/// One directed chunk transfer: occupies the sender's D2H engine and the
/// receiver's H2D engine for the duration (both ends of a fabric DMA).
/// Names are interned once per phase by the caller, not per transfer.
sim::Task<> fabric_transfer(Device& src, Device& dst, Bytes bytes, SimDuration duration,
                            NameRef send_name, NameRef recv_name, sim::WaitGroup& wg) {
  OpRecord send;
  send.kind = OpKind::kMemcpyD2H;
  send.name = send_name;
  send.bytes = bytes;
  OpRecord recv;
  recv.kind = OpKind::kMemcpyH2D;
  recv.name = recv_name;
  recv.bytes = bytes;

  sim::WaitGroup pair{src.scheduler()};
  pair.add(2);
  src.scheduler().spawn([](Device& d, OpRecord rec, SimDuration dur,
                           sim::WaitGroup& group) -> sim::Task<> {
    co_await d.d2h_engine().execute(rec, dur);
    if (auto* sink = d.record_sink(); sink != nullptr) sink->on_op(rec);
    group.done();
  }(src, std::move(send), duration, pair));
  src.scheduler().spawn([](Device& d, OpRecord rec, SimDuration dur,
                           sim::WaitGroup& group) -> sim::Task<> {
    co_await d.h2d_engine().execute(rec, dur);
    if (auto* sink = d.record_sink(); sink != nullptr) sink->on_op(rec);
    group.done();
  }(dst, std::move(recv), duration, pair));
  co_await pair.wait();
  wg.done();
}

}  // namespace

Chassis::Chassis(sim::Scheduler& sched, ChassisParams params)
    : sched_(sched), params_(std::move(params)) {
  RSD_ASSERT(params_.gpus >= 1);
  devices_.reserve(static_cast<std::size_t>(params_.gpus));
  for (int i = 0; i < params_.gpus; ++i) {
    // Each device keeps a PCIe host link; the chassis fabric is used for
    // GPU<->GPU traffic only.
    devices_.push_back(std::make_unique<Device>(sched_, params_.device_params,
                                                interconnect::make_pcie_gen4_x16()));
  }
}

void Chassis::set_record_sink(RecordSink* sink) {
  for (auto& d : devices_) d->set_record_sink(sink);
}

sim::Task<> Chassis::ring_allreduce(Bytes bytes_per_gpu, int participants, NameRef name) {
  RSD_ASSERT(participants >= 1);
  RSD_ASSERT(participants <= size());
  if (participants == 1) co_return;

  const Bytes chunk = bytes_per_gpu / static_cast<Bytes>(participants);
  const SimDuration per_transfer =
      params_.fabric.latency +
      duration::seconds(static_cast<double>(chunk) /
                        (params_.fabric.bandwidth_gib_s * static_cast<double>(kGiB)));

  // 2(k-1) phases: reduce-scatter then allgather. Phases are bulk
  // synchronous: every pairwise transfer of a phase completes before the
  // next phase starts (ring neighbors exchange in lockstep).
  const int phases = 2 * (participants - 1);
  for (int phase = 0; phase < phases; ++phase) {
    const std::string phase_tag = "_p" + std::to_string(phase);
    const NameRef send_name{name.str() + "_send" + phase_tag};
    const NameRef recv_name{name.str() + "_recv" + phase_tag};
    sim::WaitGroup wg{sched_};
    wg.add(participants);
    for (int i = 0; i < participants; ++i) {
      Device& src = device(i);
      Device& dst = device((i + 1) % participants);
      sched_.spawn(fabric_transfer(src, dst, chunk, per_transfer, send_name, recv_name, wg));
    }
    co_await wg.wait();
  }
}

}  // namespace rsd::gpu
