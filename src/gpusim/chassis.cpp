#include "gpusim/chassis.hpp"

#include "sim/sync.hpp"

namespace rsd::gpu {

namespace {

/// One directed chunk transfer: occupies the sender's D2H engine and the
/// receiver's H2D engine for the duration (both ends of a fabric DMA).
/// Names are interned once per phase by the caller, not per transfer.
sim::Task<> fabric_transfer(Device& src, Device& dst, Bytes bytes, SimDuration duration,
                            SimDuration reconfig, NameRef send_name, NameRef recv_name,
                            sim::WaitGroup& wg) {
  OpRecord send;
  send.kind = OpKind::kMemcpyD2H;
  send.name = send_name;
  send.bytes = bytes;
  send.reconfig_penalty = reconfig;  // the sender's circuit paid the retarget
  OpRecord recv;
  recv.kind = OpKind::kMemcpyH2D;
  recv.name = recv_name;
  recv.bytes = bytes;

  sim::WaitGroup pair{src.scheduler()};
  pair.add(2);
  src.scheduler().spawn([](Device& d, OpRecord rec, SimDuration dur,
                           sim::WaitGroup& group) -> sim::Task<> {
    co_await d.d2h_engine().execute(rec, dur);
    if (auto* sink = d.record_sink(); sink != nullptr) sink->on_op(rec);
    group.done();
  }(src, std::move(send), duration, pair));
  src.scheduler().spawn([](Device& d, OpRecord rec, SimDuration dur,
                           sim::WaitGroup& group) -> sim::Task<> {
    co_await d.h2d_engine().execute(rec, dur);
    if (auto* sink = d.record_sink(); sink != nullptr) sink->on_op(rec);
    group.done();
  }(dst, std::move(recv), duration, pair));
  co_await pair.wait();
  wg.done();
}

}  // namespace

Chassis::Chassis(sim::Scheduler& sched, ChassisParams params)
    : sched_(sched), params_(std::move(params)) {
  RSD_ASSERT(params_.gpus >= 1);
  topo_ = net::build_fabric(net::FabricParams{
      .kind = params_.fabric_kind,
      .gpus = params_.gpus,
      .gpus_per_chassis = params_.gpus_per_chassis,
      .link_bandwidth_gib_s = params_.fabric.bandwidth_gib_s,
      .link_latency = params_.fabric.latency,
      .ocs_reconfigure = params_.ocs_reconfigure,
      .chassis_nics = params_.chassis_nics,
      .max_chassis = params_.max_chassis,
      .host_endpoint = params_.host_endpoint,
  });
  // The event-driven row network exists only when the graph has NIC nodes:
  // flat chassis must not register quiesce hooks or acquire tracer
  // timelines, or their manifests and traces would shift.
  if (topo_.nic_count() > 0) net_ = std::make_unique<net::Network>(sched_, topo_);
  circuit_.assign(static_cast<std::size_t>(params_.gpus), -1);
  devices_.reserve(static_cast<std::size_t>(params_.gpus));
  for (int i = 0; i < params_.gpus; ++i) {
    // Each device keeps a PCIe host link; the chassis fabric is used for
    // GPU<->GPU traffic only.
    devices_.push_back(std::make_unique<Device>(sched_, params_.device_params,
                                                interconnect::make_pcie_gen4_x16()));
  }
}

void Chassis::set_record_sink(RecordSink* sink) {
  for (auto& d : devices_) d->set_record_sink(sink);
}

net::NodeId Chassis::nic_of(int device) const {
  if (topo_.nic_count() == 0) return net::kInvalidNode;
  return topo_.chassis_nic(topo_.node(topo_.device(device)).chassis);
}

void Chassis::spawn_transfer(int src, int dst, Bytes bytes, NameRef send_name,
                             NameRef recv_name, sim::WaitGroup& wg) {
  if (net_ != nullptr && topo_.node(topo_.device(src)).chassis !=
                             topo_.node(topo_.device(dst)).chassis) {
    sched_.spawn(networked_transfer(src, dst, bytes, send_name, recv_name, wg));
    return;
  }
  SimDuration reconfig;
  const SimDuration per_transfer = transfer_cost(src, dst, bytes, &reconfig);
  sched_.spawn(fabric_transfer(device(src), device(dst), bytes, per_transfer, reconfig,
                               send_name, recv_name, wg));
}

sim::Task<> Chassis::networked_transfer(int src, int dst, Bytes bytes, NameRef send_name,
                                        NameRef recv_name, sim::WaitGroup& wg) {
  const net::NodeId src_node = topo_.device(src);
  const net::NodeId dst_node = topo_.device(dst);
  const net::NodeId src_nic = topo_.chassis_nic(topo_.node(src_node).chassis);
  const net::NodeId dst_nic = topo_.chassis_nic(topo_.node(dst_node).chassis);
  const SimTime started = sched_.now();

  // Stage 1: the sender's D2H engine drains the payload to its chassis NIC.
  OpRecord send;
  send.kind = OpKind::kMemcpyD2H;
  send.name = send_name;
  send.bytes = bytes;
  co_await device(src).d2h_engine().execute(send, net_->price(src_node, src_nic, bytes));
  if (auto* sink = device(src).record_sink(); sink != nullptr) sink->on_op(send);

  // Stage 2: NIC -> NIC over the row fabric — FIFO queueing, circuit
  // retargets, and the express path all apply; no engine is occupied.
  const SimTime nic_start = sched_.now();
  net::TransferStats stats;
  co_await net_->transfer(src_nic, dst_nic, bytes, &stats);
  const SimDuration nic_leg = sched_.now() - nic_start;

  // Stage 3: the receiver's H2D engine pulls the payload off its NIC.
  OpRecord recv;
  recv.kind = OpKind::kMemcpyH2D;
  recv.name = recv_name;
  recv.bytes = bytes;
  co_await device(dst).h2d_engine().execute(recv, net_->price(dst_nic, dst_node, bytes));
  if (auto* sink = device(dst).record_sink(); sink != nullptr) sink->on_op(recv);

  if (transfer_log_ != nullptr) {
    transfer_log_->push_back(FabricTransferRecord{src, dst, bytes, started,
                                                  sched_.now() - started, stats.reconfig,
                                                  nic_start, nic_leg});
  }
  wg.done();
}

SimDuration Chassis::transfer_cost(int src, int dst, Bytes bytes, SimDuration* reconfig) {
  const net::NodeId a = topo_.device(src);
  const net::NodeId b = topo_.device(dst);
  SimDuration cost = topo_.transfer_time(a, b, bytes);
  SimDuration retarget = SimDuration::zero();
  if (topo_.route(a, b).optical_hops > 0 &&
      circuit_[static_cast<std::size_t>(src)] != dst) {
    retarget = topo_.ocs_reconfigure();
    cost = cost + retarget;
    circuit_[static_cast<std::size_t>(src)] = dst;
  }
  if (reconfig != nullptr) *reconfig = retarget;
  if (transfer_log_ != nullptr) {
    transfer_log_->push_back(
        FabricTransferRecord{src, dst, bytes, sched_.now(), cost, retarget});
  }
  return cost;
}

sim::Task<> Chassis::ring_over(std::vector<int> members, Bytes bytes_per_gpu, NameRef name) {
  const int k = static_cast<int>(members.size());
  if (k <= 1) co_return;
  const Bytes chunk = bytes_per_gpu / static_cast<Bytes>(k);

  // 2(k-1) phases: reduce-scatter then allgather. Phases are bulk
  // synchronous: every pairwise transfer of a phase completes before the
  // next phase starts (ring neighbors exchange in lockstep).
  const int phases = 2 * (k - 1);
  for (int phase = 0; phase < phases; ++phase) {
    const std::string phase_tag = "_p" + std::to_string(phase);
    const NameRef send_name{name.str() + "_send" + phase_tag};
    const NameRef recv_name{name.str() + "_recv" + phase_tag};
    sim::WaitGroup wg{sched_};
    wg.add(k);
    for (int i = 0; i < k; ++i) {
      const int src = members[static_cast<std::size_t>(i)];
      const int dst = members[static_cast<std::size_t>((i + 1) % k)];
      spawn_transfer(src, dst, chunk, send_name, recv_name, wg);
    }
    co_await wg.wait();
  }
}

sim::Task<> Chassis::ring_allreduce(Bytes bytes_per_gpu, int participants, NameRef name) {
  RSD_ASSERT(participants >= 1);
  RSD_ASSERT(participants <= size());
  std::vector<int> members(static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) members[static_cast<std::size_t>(i)] = i;
  return ring_over(std::move(members), bytes_per_gpu, name);
}

sim::Task<> Chassis::tree_allreduce(Bytes bytes_per_gpu, int participants, NameRef name) {
  RSD_ASSERT(participants >= 1);
  RSD_ASSERT(participants <= size());
  if (participants == 1) co_return;

  int rounds = 0;
  while ((1 << rounds) < participants) ++rounds;

  // Binomial reduce towards device 0, then binomial broadcast back out;
  // every transfer moves the full payload and rounds are bulk-synchronous
  // (a reduction needs both of its operands).
  for (int pass = 0; pass < 2; ++pass) {
    for (int step = 0; step < rounds; ++step) {
      const int r = pass == 0 ? step : rounds - 1 - step;
      const int stride = 1 << r;
      const std::string tag = (pass == 0 ? "_reduce_r" : "_bcast_r") + std::to_string(r);
      const NameRef send_name{name.str() + "_send" + tag};
      const NameRef recv_name{name.str() + "_recv" + tag};
      sim::WaitGroup wg{sched_};
      for (int i = stride; i < participants; i += 2 * stride) {
        const int lo = i - stride;
        const int src = pass == 0 ? i : lo;
        const int dst = pass == 0 ? lo : i;
        wg.add(1);
        spawn_transfer(src, dst, bytes_per_gpu, send_name, recv_name, wg);
      }
      if (wg.count() > 0) co_await wg.wait();
    }
  }
}

sim::Task<> Chassis::hierarchical_allreduce(Bytes bytes_per_gpu, int participants,
                                            NameRef name) {
  RSD_ASSERT(participants >= 1);
  RSD_ASSERT(participants <= size());
  if (participants == 1) co_return;

  // Group participants by their topology chassis tag, in device order.
  std::vector<std::vector<int>> groups;
  {
    std::vector<int> tag_of;
    for (int i = 0; i < participants; ++i) {
      const int tag = topo_.node(topo_.device(i)).chassis;
      std::size_t g = 0;
      for (; g < tag_of.size(); ++g) {
        if (tag_of[g] == tag) break;
      }
      if (g == tag_of.size()) {
        tag_of.push_back(tag);
        groups.emplace_back();
      }
      groups[g].push_back(i);
    }
  }

  const NameRef intra_name{name.str() + "_intra"};
  const NameRef inter_name{name.str() + "_inter"};

  // Stage 1: ring allreduce inside every group, all groups concurrent.
  {
    sim::WaitGroup wg{sched_};
    for (const auto& members : groups) {
      if (members.size() < 2) continue;
      wg.add(1);
      sched_.spawn([](Chassis& self, std::vector<int> group, Bytes bytes, NameRef nm,
                      sim::WaitGroup& group_wg) -> sim::Task<> {
        co_await self.ring_over(std::move(group), bytes, nm);
        group_wg.done();
      }(*this, members, bytes_per_gpu, intra_name, wg));
    }
    if (wg.count() > 0) co_await wg.wait();
  }

  // Stage 2: ring allreduce across the group leaders.
  std::vector<int> leaders;
  leaders.reserve(groups.size());
  for (const auto& members : groups) leaders.push_back(members.front());
  co_await ring_over(std::move(leaders), bytes_per_gpu, inter_name);

  // Stage 3: leaders fan the reduced payload back out to their groups;
  // the leaders' D2H engines serialise the copies.
  {
    const NameRef send_name{name.str() + "_bcast_send"};
    const NameRef recv_name{name.str() + "_bcast_recv"};
    sim::WaitGroup wg{sched_};
    for (const auto& members : groups) {
      for (std::size_t m = 1; m < members.size(); ++m) {
        wg.add(1);
        spawn_transfer(members.front(), members[m], bytes_per_gpu, send_name, recv_name, wg);
      }
    }
    if (wg.count() > 0) co_await wg.wait();
  }
}

sim::Task<> Chassis::allreduce(net::Algorithm algorithm, Bytes bytes_per_gpu,
                               int participants, NameRef name) {
  switch (algorithm) {
    case net::Algorithm::kRing:
      return ring_allreduce(bytes_per_gpu, participants, name);
    case net::Algorithm::kTree:
      return tree_allreduce(bytes_per_gpu, participants, name);
    case net::Algorithm::kHierarchical:
      return hierarchical_allreduce(bytes_per_gpu, participants, name);
  }
  throw Error{ErrorCode::kInvalidArgument, "Chassis::allreduce: unknown algorithm"};
}

}  // namespace rsd::gpu
