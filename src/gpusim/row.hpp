// A disaggregated GPU row on the partitioned engine (`gpu::PartitionedRow`).
//
// The sequential `Chassis` couples all of its devices to one Scheduler, so
// a row-scale composition (hundreds of GPUs) serializes on a single event
// queue. PartitionedRow assigns each simulated GPU to its own
// `sim::Partition` — device engines, host submission lane, and all per-rank
// events stay partition-local — and routes the only inter-GPU interaction,
// ring-allreduce chunk exchange, through timestamped cross-partition
// messages.
//
// The row's interconnect is a pluggable `net::Topology` (ring, full mesh,
// electrical switch, or optical circuit switch — net::build_fabric built
// from `fabric_kind` and the link characteristics in `fabric`). The
// conservative lookahead is the topology's minimum device-to-device path
// latency: no chunk can arrive sooner than the shortest routed path
// delivers it, which is exactly the slack the engine needs to run ranks in
// parallel. A topology with a zero-latency device path cannot bound
// message arrival and is rejected with rsd::Error{kInvalidArgument}.
//
// Timing model per ring phase (chunk = bytes / ranks):
//   * the sender's D2H engine is occupied for the routed transfer time —
//     path latency + chunk serialisation at the bottleneck link (on the
//     default ring fabric: latency + chunk/bandwidth, exactly the
//     pre-machine-model arithmetic);
//   * the chunk lands at the receiver one routed path latency after the
//     send and occupies the receiver's H2D engine for the same transfer
//     duration;
//   * on an optical-circuit fabric, a rank's first send additionally pays
//     the circuit reconfiguration delay (its uplink is retargeted once —
//     the ring neighbor never changes afterwards);
//   * a rank leaves the phase when its own outbound DMA has drained AND
//     its inbound chunk has landed — the neighbor dependency chain that
//     makes ring collectives bulk-synchronous without any global barrier.
//
// Every quantity below is simulated time, so results are byte-identical at
// any `sim_threads` (asserted by tests/par_des_determinism_test.cpp and
// tests/gpusim_row_fabric_test.cpp, the latter per fabric).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/names.hpp"
#include "core/units.hpp"
#include "gpusim/collective.hpp"
#include "gpusim/device.hpp"
#include "interconnect/fabric.hpp"
#include "interconnect/topology.hpp"
#include "sim/conservative.hpp"

namespace rsd::gpu {

struct RowParams {
  int gpus = 8;
  GpuInterconnect fabric = make_nvlink();
  DeviceParams device_params{};
  /// Shape of the row interconnect (net::build_fabric). The default ring
  /// reproduces the pre-machine-model row timing exactly.
  net::FabricKind fabric_kind = net::FabricKind::kRing;
  /// Chassis grouping recorded in the topology (device i -> chassis
  /// i / gpus_per_chassis); hierarchical collectives reduce per chassis.
  int gpus_per_chassis = 8;
  /// Build the fabric as a true multi-chassis graph (per-chassis NICs +
  /// inter-chassis fibre, net::FabricParams::chassis_nics). Ring edges
  /// that cross a chassis boundary are then priced over their routed
  /// NIC/fibre path *per edge* — the ring is no longer rank-symmetric.
  /// False keeps the flat single-graph row, byte-identical to before.
  bool chassis_nics = false;
  /// Circuit retarget cost when fabric_kind is kOpticalCircuit.
  SimDuration ocs_reconfigure = duration::microseconds(100.0);
  /// Worker threads for the engine; <= 0 resolves RSD_SIM_THREADS, else 1.
  int sim_threads = 0;
  /// Non-zero: seeded worker-claim jitter (determinism stress testing).
  std::uint64_t jitter_seed = 0;
  /// Feed the engine a per-partition-pair lookahead matrix derived from
  /// the fabric (ring-neighbor edges at the routed path latency) instead
  /// of the single global lookahead. Identical results either way — the
  /// matrix only lets epoch horizons advance further (asserted across
  /// fabrics and thread counts by tests/gpusim_row_fabric_test.cpp).
  bool lookahead_matrix = true;
  /// Prebuilt fabric topology to share (it must outlive the row and match
  /// the fabric parameters above); null builds a private one. Sharing
  /// keeps the dense route tables warm across rows (fabric_compare builds
  /// each fabric once for all of its sections).
  const net::Topology* topology = nullptr;
};

/// One kernel of a rank's per-step sequence.
struct RowKernel {
  NameRef name;
  SimDuration duration;
};

/// Data-parallel training shape: every rank runs `kernels` (each preceded
/// by `submit_cost` of host work), then ring-allreduces `gradient_bytes`,
/// `steps` times.
struct RowTraining {
  std::vector<RowKernel> kernels;
  SimDuration submit_cost = SimDuration::zero();
  Bytes gradient_bytes = 32 * kMiB;
  int steps = 8;
};

class PartitionedRow {
 public:
  explicit PartitionedRow(RowParams params);
  ~PartitionedRow();
  PartitionedRow(const PartitionedRow&) = delete;
  PartitionedRow& operator=(const PartitionedRow&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] Device& device(int rank);
  [[nodiscard]] sim::ParallelEngine& engine() { return engine_; }
  [[nodiscard]] const net::Topology& topology() const { return *topo_; }

  /// Run the training loop to completion on every rank. Returns the row
  /// finish time (max over ranks). Callable once per row.
  SimTime run_training(const RowTraining& training);

  /// Per-rank completion time of the last step (after run_training).
  [[nodiscard]] SimTime rank_finish_time(int rank) const;

  /// FNV-1a fingerprint of every rank's per-step completion times — the
  /// byte-identity probe the determinism tests compare across thread
  /// counts.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Rank;
  friend struct RowArrival;

  sim::Task<> rank_loop(int rank, const RowTraining& training);

  RowParams params_;
  net::Topology owned_topo_;          ///< Built here unless params.topology is set.
  const net::Topology* topo_;         ///< The fabric in use (owned or shared).
  sim::ParallelEngine engine_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  /// Ring-edge pricing, indexed by sender rank (edge rank -> rank+1).
  /// Flat fabrics are rank-symmetric so every entry is equal; multi-
  /// chassis graphs price chassis-crossing edges over NIC/fibre routes.
  std::vector<SimDuration> edge_transfer_;
  std::vector<SimDuration> edge_delay_;
  std::vector<bool> edge_ocs_;
  Bytes chunk_ = 0;
};

}  // namespace rsd::gpu
