// A disaggregated GPU row on the partitioned engine (`gpu::PartitionedRow`).
//
// The sequential `Chassis` couples all of its devices to one Scheduler, so
// a row-scale composition (hundreds of GPUs) serializes on a single event
// queue. PartitionedRow assigns each simulated GPU to its own
// `sim::Partition` — device engines, host submission lane, and all per-rank
// events stay partition-local — and routes the only inter-GPU interaction,
// ring-allreduce chunk exchange, through timestamped cross-partition
// messages. The fabric latency is the conservative lookahead: a chunk
// never arrives sooner than `fabric.latency` after it was sent, which is
// exactly the slack the engine needs to run ranks in parallel.
//
// Timing model per ring phase (chunk = bytes / ranks):
//   * the sender's D2H engine is occupied for latency + chunk/bandwidth
//     (the fabric DMA, as in Chassis::ring_allreduce);
//   * the chunk lands at the receiver `fabric.latency` after the send and
//     occupies the receiver's H2D engine for the same transfer duration;
//   * a rank leaves the phase when its own outbound DMA has drained AND
//     its inbound chunk has landed — the neighbor dependency chain that
//     makes ring collectives bulk-synchronous without any global barrier.
//
// Every quantity below is simulated time, so results are byte-identical at
// any `sim_threads` (asserted by tests/par_des_determinism_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/names.hpp"
#include "core/units.hpp"
#include "gpusim/collective.hpp"
#include "gpusim/device.hpp"
#include "sim/conservative.hpp"

namespace rsd::gpu {

struct RowParams {
  int gpus = 8;
  GpuInterconnect fabric = make_nvlink();
  DeviceParams device_params{};
  /// Worker threads for the engine; <= 0 resolves RSD_SIM_THREADS, else 1.
  int sim_threads = 0;
  /// Non-zero: seeded worker-claim jitter (determinism stress testing).
  std::uint64_t jitter_seed = 0;
};

/// One kernel of a rank's per-step sequence.
struct RowKernel {
  NameRef name;
  SimDuration duration;
};

/// Data-parallel training shape: every rank runs `kernels` (each preceded
/// by `submit_cost` of host work), then ring-allreduces `gradient_bytes`,
/// `steps` times.
struct RowTraining {
  std::vector<RowKernel> kernels;
  SimDuration submit_cost = SimDuration::zero();
  Bytes gradient_bytes = 32 * kMiB;
  int steps = 8;
};

class PartitionedRow {
 public:
  explicit PartitionedRow(RowParams params);
  ~PartitionedRow();
  PartitionedRow(const PartitionedRow&) = delete;
  PartitionedRow& operator=(const PartitionedRow&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] Device& device(int rank);
  [[nodiscard]] sim::ParallelEngine& engine() { return engine_; }

  /// Run the training loop to completion on every rank. Returns the row
  /// finish time (max over ranks). Callable once per row.
  SimTime run_training(const RowTraining& training);

  /// Per-rank completion time of the last step (after run_training).
  [[nodiscard]] SimTime rank_finish_time(int rank) const;

  /// FNV-1a fingerprint of every rank's per-step completion times — the
  /// byte-identity probe the determinism tests compare across thread
  /// counts.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Rank;
  friend struct RowArrival;

  sim::Task<> rank_loop(int rank, const RowTraining& training);

  RowParams params_;
  sim::ParallelEngine engine_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  SimDuration per_transfer_ = SimDuration::zero();
  Bytes chunk_ = 0;
};

}  // namespace rsd::gpu
