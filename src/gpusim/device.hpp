// The simulated GPU device (the paper's A100-class accelerator).
//
// Mechanics — chosen to reproduce the two starvation effects the paper's
// slack proxy exposes (Section IV-B, Figure 3):
//
//  1. Launch pipelining. Every operation carries a setup overhead
//     (command processing, DMA/kernel setup). When the target engine
//     already has work in flight the overhead is hidden behind execution;
//     when the engine is idle the overhead is exposed, extending the op.
//     This is why tiny kernels notice even 1 us of slack.
//
//  2. Power-state wake penalty. When the whole device has been idle for a
//     gap g, the first op after the gap pays W(g) = min(Wmax, alpha *
//     max(0, g - t0)) — an abstraction of clock/power ramping, which grows
//     with how deeply the device slept and saturates. The cap is what lets
//     multi-second kernels tolerate even 1 s of slack, and the growth is
//     what produces the sharp drop-off at ms-scale slack.
//
// Engines: one compute engine plus one copy engine per direction, matching
// the paper's observation that H2D/D2H DMAs and kernels proceed in
// parallel. Streams are in-order; different streams interleave freely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "gpusim/records.hpp"
#include "interconnect/link.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::gpu {

/// Calibration constants for the device model. Defaults approximate an
/// A100-SXM4-40GB running single-precision GEMM (see DESIGN.md).
struct DeviceParams {
  std::string name = "sim-a100";
  /// Effective matmul throughput (TFLOP/s). A100 TF32 tensor-core GEMM
  /// sustains on the order of 1e14 FLOP/s.
  double matmul_tflops = 100.0;
  /// Fixed kernel execution floor (scheduling, launch tail).
  SimDuration kernel_base = duration::microseconds(4.0);
  /// Setup overhead per op, hidden when the engine is already busy.
  SimDuration kernel_setup = duration::microseconds(8.0);
  SimDuration copy_setup = duration::microseconds(4.0);
  /// Power-state wake penalty W(g) = min(wake_max, wake_alpha*(g - wake_t0)).
  SimDuration wake_t0 = duration::microseconds(0.5);
  double wake_alpha = 0.10;
  SimDuration wake_max = duration::milliseconds(1.5);
  /// Cost of switching the device between OS processes (CUDA contexts):
  /// charged by the compute engine when consecutive kernels come from
  /// different processes. Threads within one process share a context and
  /// never pay it. This is what makes many MPI ranks sharing one GPU
  /// expensive (the Figure 2 small-box degradation).
  SimDuration process_switch = duration::microseconds(370.0);
  /// Device memory capacity (A100 40 GiB).
  Bytes memory_capacity = 40ULL * kGiB;
  /// Power model (A100-SXM4-40GB-class): draw while executing, while idle
  /// but composed/attached, and while powered down in a CDI pool — the
  /// efficiency lever the paper's introduction cites.
  double busy_watts = 400.0;
  double idle_watts = 55.0;
  double powered_down_watts = 8.0;
};

/// Duration of an n x n x n single-precision matmul kernel under these
/// params. Pure function of the params, so callers (proxy calibration,
/// program builders) need not construct a Device to size kernels.
[[nodiscard]] SimDuration matmul_kernel_duration(const DeviceParams& params, std::int64_t n);

/// Device memory accounting: byte-granular with capacity enforcement.
/// (Fragmentation is not modelled; the paper's exclusions are pure-capacity:
/// 3 x 4 GiB matrices x 4 threads > 40 GiB.)
///
/// Handles index a flat size array with a recycled-slot free list, so
/// allocate/free are O(1) with no node allocation — the former `std::map`
/// cost one red-black node per cudaMalloc. A handle is `slot index + 1`
/// (0 stays an invalid sentinel); `sizes_[idx] == 0` marks a free slot,
/// which is unambiguous because zero-byte allocations are rejected.
class MemoryPool {
 public:
  explicit MemoryPool(Bytes capacity) : capacity_(capacity) {}

  using Handle = std::uint64_t;

  /// Throws rsd::Error{kOutOfMemory} when the allocation does not fit.
  [[nodiscard]] Handle allocate(Bytes bytes);
  void free(Handle handle);

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes peak() const { return peak_; }
  [[nodiscard]] std::size_t allocation_count() const {
    return sizes_.size() - free_slots_.size();
  }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes peak_ = 0;
  std::vector<Bytes> sizes_;               ///< Per-slot live size; 0 = free.
  std::vector<std::uint32_t> free_slots_;  ///< Recycled slot indices (LIFO).
};

class Device;

/// One hardware execution engine (compute, H2D copy, or D2H copy): a FIFO
/// server with launch-pipelining semantics.
class Engine {
 public:
  Engine(sim::Scheduler& sched, Device& device, std::string name, std::int32_t trace_track,
         SimDuration setup_overhead, bool charges_process_switch = false)
      : sched_(sched), device_(device), name_(std::move(name)), track_(trace_track),
        setup_(setup_overhead), charges_switch_(charges_process_switch), server_(sched, 1) {}

  /// Execute one op of the given service duration. Fills the record's
  /// start/end/exposed/wake fields. Resumes when the op completes.
  sim::Task<> execute(OpRecord& rec, SimDuration service);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int64_t queue_length() const { return queued_; }
  [[nodiscard]] SimDuration busy_time() const { return busy_time_; }

 private:
  friend class Device;  ///< Metrics flush at device teardown.

  sim::Scheduler& sched_;
  Device& device_;
  std::string name_;
  std::int32_t track_;  ///< SimTrack row in the obs timeline.
  SimDuration setup_;
  bool charges_switch_;
  sim::Semaphore server_;
  std::int64_t queued_ = 0;
  int last_process_ = -1;
  SimDuration busy_time_ = SimDuration::zero();
  // Local tallies flushed into obs::Registry by ~Device (no per-op atomics).
  std::int64_t ops_ = 0;
  std::int64_t exposed_count_ = 0;
  SimDuration exposed_total_ = SimDuration::zero();
  obs::HistogramData queue_depth_;  ///< Depth seen by each arriving op.
};

/// The simulated GPU.
class Device {
 public:
  Device(sim::Scheduler& sched, DeviceParams params, interconnect::Link link);

  /// Flushes the accumulated engine/wake tallies into the global metrics
  /// registry (the per-run quiesce point of the obs design).
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceParams& params() const { return params_; }
  [[nodiscard]] const interconnect::Link& link() const { return link_; }
  [[nodiscard]] MemoryPool& memory() { return memory_; }
  [[nodiscard]] const MemoryPool& memory() const { return memory_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  [[nodiscard]] Engine& compute_engine() { return compute_; }
  [[nodiscard]] Engine& h2d_engine() { return h2d_; }
  [[nodiscard]] Engine& d2h_engine() { return d2h_; }
  [[nodiscard]] Engine& engine_for(OpKind kind);

  void set_record_sink(RecordSink* sink) { sink_ = sink; }
  [[nodiscard]] RecordSink* record_sink() const { return sink_; }

  /// Simulated-timeline id in the obs tracer, or -1 when tracing was off at
  /// construction. Instrumentation sites branch on this cached value, so a
  /// disabled tracer costs one member load per site.
  [[nodiscard]] std::int32_t trace_id() const { return trace_id_; }

  /// Duration of an n x n x n single-precision matmul kernel on this device.
  [[nodiscard]] SimDuration matmul_kernel_duration(std::int64_t n) const;

  /// Power-state wake penalty for an idle gap of length `gap`.
  [[nodiscard]] SimDuration wake_penalty(SimDuration gap) const;

  /// Total time the compute engine was busy (for utilisation metrics).
  [[nodiscard]] SimDuration kernel_busy_time() const { return compute_.busy_time(); }
  [[nodiscard]] SimDuration copy_busy_time() const {
    return h2d_.busy_time() + d2h_.busy_time();
  }

  /// Count of wake penalties paid (diagnostics / ablation).
  [[nodiscard]] std::int64_t wake_count() const { return wake_count_; }
  [[nodiscard]] SimDuration total_wake_penalty() const { return total_wake_; }

  /// Time the device had at least one op in flight, up to `now`.
  [[nodiscard]] SimDuration device_busy_time(SimTime now) const;

  /// Energy consumed up to `now`: busy time at busy_watts, the rest at
  /// idle_watts (the device is composed for the whole simulation).
  [[nodiscard]] double energy_joules(SimTime now) const;

 private:
  friend class Engine;

  /// Called by an engine at service start; returns the wake penalty the op
  /// must pay and marks the device busy.
  [[nodiscard]] SimDuration begin_op();
  void end_op();

  sim::Scheduler& sched_;
  DeviceParams params_;
  interconnect::Link link_;
  MemoryPool memory_;
  Engine compute_;
  Engine h2d_;
  Engine d2h_;
  RecordSink* sink_ = nullptr;
  std::int32_t trace_id_ = -1;

  int busy_ops_ = 0;
  bool warmed_up_ = false;  ///< First-ever op pays no wake (device starts warm).
  SimTime idle_since_ = SimTime::zero();
  SimTime busy_since_ = SimTime::zero();
  SimDuration total_busy_ = SimDuration::zero();
  std::int64_t wake_count_ = 0;
  SimDuration total_wake_ = SimDuration::zero();
};

}  // namespace rsd::gpu
