// A CDI GPU chassis: multiple simulated devices on a shared GPU fabric,
// with discrete-event collectives that actually occupy the devices' copy
// engines — the executable version of the Discussion's claim that
// chassis-coupled GPUs accelerate CPU-asynchronous collectives.
//
// Since the link-graph machine model landed, the chassis no longer prices
// a transfer off one scalar: it builds a `net::Topology` for its fabric
// (full mesh by default — NVLink is all-to-all inside a chassis) and takes
// every transfer's duration from the routed path (path latency +
// serialisation at the bottleneck link). Endpoint contention is modeled by
// the devices' FIFO D2H/H2D engines; an optical-circuit fabric
// additionally charges the reconfiguration delay whenever a sender's
// circuit has to retarget. On the default full mesh this reproduces the
// old `fabric.latency + bytes/bandwidth` arithmetic exactly.
#pragma once

#include <memory>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "gpusim/collective.hpp"
#include "gpusim/device.hpp"
#include "interconnect/fabric.hpp"
#include "interconnect/link.hpp"
#include "interconnect/network.hpp"
#include "interconnect/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace rsd::gpu {

/// One priced GPU<->GPU fabric transfer (program order): the causal record
/// behind a pair of kMemcpyD2H/H2D OpRecords. `reconfig` is the OCS
/// circuit-retarget component of `duration` (zero on non-optical fabrics).
struct FabricTransferRecord {
  int src = 0;
  int dst = 0;
  Bytes bytes = 0;
  SimTime priced_at;      ///< When the transfer was priced (phase start).
  SimDuration duration;   ///< Routed cost, reconfiguration included.
  SimDuration reconfig;   ///< OCS retarget share of `duration`.
  /// Cross-chassis transfers only: the NIC->NIC row-fabric leg executed by
  /// the net::Network (serialisation + fibre propagation + queueing), which
  /// no engine occupation covers — obs::critpath attributes this window to
  /// its NIC/fibre component. Zero-width on chassis-local transfers.
  SimTime nic_start;
  SimDuration nic;
};

struct ChassisParams {
  int gpus = 8;
  GpuInterconnect fabric = make_nvlink();
  DeviceParams device_params{};
  /// Shape of the GPU<->GPU fabric (net::build_fabric). Full mesh matches
  /// the pre-machine-model chassis timing exactly.
  net::FabricKind fabric_kind = net::FabricKind::kFullMesh;
  /// Grouping tag for the hierarchical algorithm: device i belongs to
  /// group i / gpus_per_chassis.
  int gpus_per_chassis = 8;
  /// Circuit retarget cost when fabric_kind is kOpticalCircuit.
  SimDuration ocs_reconfigure = duration::microseconds(100.0);
  /// Multi-chassis machine graph: emit per-chassis NICs and inter-chassis
  /// fibre (net::FabricParams::chassis_nics). Cross-chassis collective
  /// chunks then execute over an event-driven net::Network — FIFO link
  /// contention, OCS circuits, and the express fast path included —
  /// instead of the analytic routed price. Off by default; flat chassis
  /// build byte-identical graphs and timings to before.
  bool chassis_nics = false;
  /// Also emit the CDI host endpoint behind nic0 (requires chassis_nics);
  /// what Context transport bindings route host<->GPU traffic through.
  bool host_endpoint = false;
  /// Chassis-count cap forwarded to net::build_fabric (0 = unlimited).
  int max_chassis = 0;
};

class Chassis {
 public:
  Chassis(sim::Scheduler& sched, ChassisParams params);

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const GpuInterconnect& fabric() const { return params_.fabric; }
  [[nodiscard]] const net::Topology& topology() const { return topo_; }

  /// The event-driven row network; null unless the topology has NIC nodes
  /// (chassis_nics). Lazy so flat chassis register no quiesce hooks and
  /// acquire no tracer timelines — their observable output is unchanged.
  [[nodiscard]] net::Network* network() { return net_.get(); }
  /// The CDI host endpoint node (host_endpoint), or net::kInvalidNode.
  [[nodiscard]] net::NodeId host_node() const {
    return topo_.host_count() > 0 ? topo_.host(0) : net::kInvalidNode;
  }
  /// The NIC serving `device`'s chassis; net::kInvalidNode on flat fabrics.
  [[nodiscard]] net::NodeId nic_of(int device) const;

  /// Attach one sink to every device (chassis-wide trace).
  void set_record_sink(RecordSink* sink);

  /// Attach a fabric-transfer log: every priced transfer appends one
  /// record (in deterministic program order). Null detaches. The log must
  /// outlive the chassis' collectives.
  void set_transfer_log(std::vector<FabricTransferRecord>* log) { transfer_log_ = log; }

  /// Execute a ring allreduce of `bytes_per_gpu` across devices
  /// [0, participants): 2(participants-1) phases; in each phase every
  /// participant ships one chunk to its ring neighbor, occupying the
  /// sender's D2H and the receiver's H2D engine for the routed transfer
  /// time. Resumes when the collective completes on every device.
  sim::Task<> ring_allreduce(Bytes bytes_per_gpu, int participants,
                             NameRef name = NameRef{"allreduce"});

  /// Binomial-tree allreduce (reduce to device 0, broadcast back):
  /// 2*ceil(log2 participants) rounds of the full payload.
  sim::Task<> tree_allreduce(Bytes bytes_per_gpu, int participants,
                             NameRef name = NameRef{"allreduce"});

  /// Hierarchical allreduce: ring inside each chassis group (topology
  /// chassis tags), ring across the group leaders, then leaders broadcast
  /// the result back to their groups.
  sim::Task<> hierarchical_allreduce(Bytes bytes_per_gpu, int participants,
                                     NameRef name = NameRef{"allreduce"});

  /// Dispatch on `algorithm` (the wl replay hook).
  sim::Task<> allreduce(net::Algorithm algorithm, Bytes bytes_per_gpu, int participants,
                        NameRef name = NameRef{"allreduce"});

 private:
  /// Routed cost of one transfer, including any OCS circuit retarget by
  /// the sending device (tracked per sender, deterministic: transfers are
  /// priced in program order on the single scheduler). Appends to the
  /// attached transfer log and reports the reconfiguration share through
  /// `reconfig` when non-null.
  SimDuration transfer_cost(int src, int dst, Bytes bytes, SimDuration* reconfig = nullptr);

  /// Launch one directed transfer and signal `wg` when it completes.
  /// Chassis-local (or flat-fabric) transfers price analytically and
  /// occupy both engines for the routed duration; cross-chassis transfers
  /// run the three-stage store-and-forward path through the Network.
  void spawn_transfer(int src, int dst, Bytes bytes, NameRef send_name, NameRef recv_name,
                      sim::WaitGroup& wg);

  /// Cross-chassis store-and-forward: sender D2H engine drains to its
  /// chassis NIC, the Network carries NIC->NIC over the row fabric, the
  /// receiver's H2D engine pulls from its NIC. Appends a transfer-log
  /// record carrying the NIC-leg window.
  sim::Task<> networked_transfer(int src, int dst, Bytes bytes, NameRef send_name,
                                 NameRef recv_name, sim::WaitGroup& wg);

  /// Phased ring allreduce over an explicit member list (device indices).
  sim::Task<> ring_over(std::vector<int> members, Bytes bytes_per_gpu, NameRef name);

  sim::Scheduler& sched_;
  ChassisParams params_;
  net::Topology topo_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<Device>> devices_;
  /// Per-device OCS circuit target (device index; -1 = unconfigured).
  std::vector<int> circuit_;
  std::vector<FabricTransferRecord>* transfer_log_ = nullptr;
};

}  // namespace rsd::gpu
