// A CDI GPU chassis: multiple simulated devices on a shared GPU fabric,
// with a discrete-event ring allreduce that actually occupies the devices'
// copy engines — the executable version of the Discussion's claim that
// chassis-coupled GPUs accelerate CPU-asynchronous collectives.
#pragma once

#include <memory>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "gpusim/collective.hpp"
#include "gpusim/device.hpp"
#include "interconnect/link.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace rsd::gpu {

struct ChassisParams {
  int gpus = 8;
  GpuInterconnect fabric = make_nvlink();
  DeviceParams device_params{};
};

class Chassis {
 public:
  Chassis(sim::Scheduler& sched, ChassisParams params);

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const GpuInterconnect& fabric() const { return params_.fabric; }

  /// Attach one sink to every device (chassis-wide trace).
  void set_record_sink(RecordSink* sink);

  /// Execute a ring allreduce of `bytes_per_gpu` across devices
  /// [0, participants): 2(participants-1) phases; in each phase every
  /// participant ships one chunk to its ring neighbor, occupying the
  /// sender's D2H and the receiver's H2D engine for the fabric transfer
  /// time. Resumes when the collective completes on every device.
  sim::Task<> ring_allreduce(Bytes bytes_per_gpu, int participants,
                             NameRef name = NameRef{"allreduce"});

 private:
  sim::Scheduler& sched_;
  ChassisParams params_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace rsd::gpu
