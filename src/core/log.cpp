#include "core/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/tracer.hpp"

namespace rsd {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("RSD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Logger::Logger() : level_(level_from_env()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().instant("log", message,
                                    {obs::Arg::s("level", level_tag(level))});
  }
  std::lock_guard<std::mutex> lk(write_m_);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace rsd
