#include "core/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace rsd {

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void print_separator(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (const auto w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void print_row(std::ostream& os, const std::vector<std::string>& cells,
               const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string{};
    os << ' ' << cell;
    for (std::size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
    os << '|';
  }
  os << '\n';
}

}  // namespace

void Table::print(std::ostream& os) const {
  const auto widths = column_widths(header_, rows_);
  print_separator(os, widths);
  print_row(os, header_, widths);
  print_separator(os, widths);
  for (const auto& row : rows_) print_row(os, row, widths);
  print_separator(os, widths);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string fmt(const char* format, double value) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), format, value);
  return std::string{buf.data()};
}

std::string fmt_fixed(double value, int decimals) {
  std::array<char, 32> f{};
  std::snprintf(f.data(), f.size(), "%%.%df", decimals);
  return fmt(f.data(), value);
}

std::string fmt_sci(double value, int decimals) {
  std::array<char, 32> f{};
  std::snprintf(f.data(), f.size(), "%%.%de", decimals);
  return fmt(f.data(), value);
}

std::string fmt_pct(double fraction, int decimals) {
  std::array<char, 32> f{};
  std::snprintf(f.data(), f.size(), "%%.%df%%%%", decimals);
  return fmt(f.data(), fraction * 100.0);
}

}  // namespace rsd
