// ASCII table rendering for the experiment harnesses. Every bench binary
// prints its table/figure data through this so the output layout is uniform
// and diffable against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rsd {

/// A simple column-aligned text table.
///
///   Table t{"Box Size", "Total Atoms", "Runtime [s]"};
///   t.add_row("20", "32k", "5.473");
///   t.print(std::cout);
class Table {
 public:
  template <typename... Cols>
  explicit Table(Cols&&... headers) : header_{std::string(std::forward<Cols>(headers))...} {}

  explicit Table(std::vector<std::string> headers) : header_(std::move(headers)) {}

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    rows_.push_back({std::string(std::forward<Cells>(cells))...});
  }

  void add_row_vec(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void print(std::ostream& os) const;

  /// Render to a string (used in tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt(const char* format, double value);
[[nodiscard]] std::string fmt_fixed(double value, int decimals);
[[nodiscard]] std::string fmt_sci(double value, int decimals = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 2);

}  // namespace rsd
