#include "core/paths.hpp"

#include <cstdlib>
#include <system_error>

namespace rsd {

namespace {

namespace fs = std::filesystem;

/// A directory is the repo root if it is a git checkout or has the repo's
/// source layout (covers extracted tarballs without .git).
bool looks_like_repo_root(const fs::path& dir) {
  std::error_code ec;
  if (fs::exists(dir / ".git", ec)) return true;
  return fs::exists(dir / "CMakeLists.txt", ec) && fs::is_directory(dir / "src", ec) &&
         fs::is_directory(dir / "bench", ec);
}

fs::path& results_dir_override() {
  static fs::path override;
  return override;
}

}  // namespace

void set_results_dir(const fs::path& dir) { results_dir_override() = dir; }

fs::path results_dir() {
  if (!results_dir_override().empty()) return results_dir_override();
  if (const char* env = std::getenv("RSD_RESULTS_DIR")) {
    if (*env != '\0') return fs::path{env};
  }
  std::error_code ec;
  fs::path dir = fs::current_path(ec);
  if (!ec) {
    for (; !dir.empty(); dir = dir.parent_path()) {
      if (looks_like_repo_root(dir)) return dir / "bench_results";
      if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    }
  }
  return fs::path{"bench_results"};
}

}  // namespace rsd
