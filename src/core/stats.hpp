// Statistics primitives: streaming moments, exact quantiles over retained
// samples, and the five-number "violin" summaries used for Figures 4 and 5.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace rsd {

/// Streaming count/mean/variance/min/max (Welford). O(1) memory.
class StreamingStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const StreamingStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) { *this = other; return; }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolated quantile of a sorted span, q in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, and evaluates a quantile. O(n log n).
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// The summary a violin plot visualises: five-number summary + mean + count.
struct ViolinSummary {
  std::string label;
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double total = 0.0;  ///< Sum of samples (e.g. total kernel time).
};

/// Build a violin summary from raw samples.
[[nodiscard]] ViolinSummary summarize_violin(std::string label,
                                             std::span<const double> values);

/// Streaming quantile estimator (Jain & Chlamtac's P-square algorithm):
/// O(1) memory, suitable for traces too large to retain. Estimates a single
/// quantile q in (0, 1); accuracy improves with stream length.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact while fewer than 5 samples were seen.
  [[nodiscard]] double estimate() const;
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double quantile() const { return q_; }

 private:
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, double d) const;

  double q_;
  std::size_t count_ = 0;
  double heights_[5]{};
  double positions_[5]{};
  double desired_[5]{};
  double increments_[5]{};
};

/// Sample accumulator that keeps every observation (exact quantiles).
class SampleSet {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] std::span<const double> values() const { return values_; }

  [[nodiscard]] double quantile(double q) const {
    ensure_sorted();
    return quantile_sorted(values_, q);
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const { ensure_sorted(); return values_.empty() ? 0.0 : values_.front(); }
  [[nodiscard]] double max() const { ensure_sorted(); return values_.empty() ? 0.0 : values_.back(); }

  [[nodiscard]] ViolinSummary violin(std::string label) const {
    return summarize_violin(std::move(label), values_);
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace rsd
