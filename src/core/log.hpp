// Leveled logging. Experiments run quiet by default; RSD_LOG_LEVEL=debug in
// the environment (or set_level) turns on narration of simulator events.
//
// Thread-safe: the level is atomic (pool workers log while the harness
// adjusts verbosity) and stderr writes are serialized so concurrent log
// lines never interleave mid-line. When the obs tracer is enabled, every
// emitted line is also recorded as a timeline instant event.
#pragma once

#include <atomic>
#include <iosfwd>
#include <mutex>
#include <sstream>
#include <string>

namespace rsd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  /// Process-wide logger. Reads RSD_LOG_LEVEL on first use.
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= this->level(); }

  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex write_m_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream stream;

  LogLine(LogLevel lv) : level(lv) {}
  ~LogLine() { Logger::instance().write(level, stream.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream << v;
    return *this;
  }
};
}  // namespace detail

}  // namespace rsd

#define RSD_LOG(level)                                       \
  if (!::rsd::Logger::instance().enabled(level)) {           \
  } else                                                     \
    ::rsd::detail::LogLine { level }

#define RSD_DEBUG RSD_LOG(::rsd::LogLevel::kDebug)
#define RSD_INFO RSD_LOG(::rsd::LogLevel::kInfo)
#define RSD_WARN RSD_LOG(::rsd::LogLevel::kWarn)
#define RSD_ERROR RSD_LOG(::rsd::LogLevel::kError)
