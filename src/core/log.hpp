// Leveled logging. Experiments run quiet by default; RSD_LOG_LEVEL=debug in
// the environment (or set_level) turns on narration of simulator events.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace rsd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  /// Process-wide logger. Reads RSD_LOG_LEVEL on first use.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream stream;

  LogLine(LogLevel lv) : level(lv) {}
  ~LogLine() { Logger::instance().write(level, stream.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream << v;
    return *this;
  }
};
}  // namespace detail

}  // namespace rsd

#define RSD_LOG(level)                                       \
  if (!::rsd::Logger::instance().enabled(level)) {           \
  } else                                                     \
    ::rsd::detail::LogLine { level }

#define RSD_DEBUG RSD_LOG(::rsd::LogLevel::kDebug)
#define RSD_INFO RSD_LOG(::rsd::LogLevel::kInfo)
#define RSD_WARN RSD_LOG(::rsd::LogLevel::kWarn)
#define RSD_ERROR RSD_LOG(::rsd::LogLevel::kError)
