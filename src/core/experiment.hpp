// Repeated-run statistics — the paper averages every experiment across 5
// runs to absorb system noise. `repeat_runs` executes a seeded measurement
// n times and reports mean / stddev / extrema.
#pragma once

#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "exec/pool.hpp"

namespace rsd {

struct RepeatedStat {
  std::size_t runs = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

namespace detail {

/// The shared summarise step of both `repeat_runs` overloads — one place
/// for the StreamingStats -> RepeatedStat mapping, so the serial and
/// parallel paths cannot drift.
[[nodiscard]] inline RepeatedStat summarise_runs(const StreamingStats& stats) {
  RepeatedStat r;
  r.runs = stats.count();
  r.mean = stats.mean();
  r.stddev = stats.stddev();
  r.min = stats.min();
  r.max = stats.max();
  return r;
}

}  // namespace detail

/// Run `measure(seed)` for seeds base_seed .. base_seed + runs - 1 and
/// summarise. `measure` must return a double.
template <typename MeasureFn>
[[nodiscard]] RepeatedStat repeat_runs(int runs, MeasureFn&& measure,
                                       std::uint64_t base_seed = 1) {
  RSD_ASSERT(runs >= 1);
  StreamingStats stats;
  for (int i = 0; i < runs; ++i) {
    stats.add(measure(base_seed + static_cast<std::uint64_t>(i)));
  }
  return detail::summarise_runs(stats);
}

/// `repeat_runs`, with the seeds fanned out across `pool`. Each seed's
/// measurement is still a self-contained serial simulation; values are
/// accumulated in seed order, so the statistics are bit-identical to the
/// serial overload for any pool size.
template <typename MeasureFn>
[[nodiscard]] RepeatedStat repeat_runs_parallel(int runs, MeasureFn&& measure, exec::Pool& pool,
                                                std::uint64_t base_seed = 1) {
  RSD_ASSERT(runs >= 1);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) seeds.push_back(base_seed + static_cast<std::uint64_t>(i));
  const std::vector<double> values =
      pool.parallel_map(seeds, [&](const std::uint64_t& seed) { return measure(seed); });

  StreamingStats stats;
  for (const double v : values) stats.add(v);
  return detail::summarise_runs(stats);
}

}  // namespace rsd
