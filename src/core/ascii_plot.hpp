// Text rendering of distributions — the terminal stand-in for the paper's
// violin plots (Figures 4 and 5).
#pragma once

#include <span>
#include <string>

#include "core/histogram.hpp"

namespace rsd {

struct AsciiPlotOptions {
  std::size_t bins = 12;
  std::size_t bar_width = 40;   ///< Width of the longest bar.
  bool log_scale = true;        ///< Log-spaced bins (durations/sizes span decades).
  const char* unit = "";        ///< Appended to bin labels.
};

/// Render a horizontal-bar histogram of `values`. Returns "" for empty
/// input. Non-positive values fall into the first bin under log scaling.
[[nodiscard]] std::string ascii_distribution(std::span<const double> values,
                                             const AsciiPlotOptions& options = {});

}  // namespace rsd
