// Interposable heap-allocation counter for the perf harness.
//
// Linking a binary against any of these accessors pulls in replacement
// global `operator new`/`operator delete` definitions (alloc_counter.cpp)
// that count every heap allocation with one relaxed atomic increment.
// That is the hook `perf_sim_core` and the sim-core regression tests use
// to assert the proxy loop performs ZERO mallocs per op in steady state —
// a recorded artifact, not a claim. Binaries that never reference these
// symbols keep the toolchain's default allocator (the archive member is
// simply not linked).
//
// The counting allocator composes with sanitizers: the replacement
// operators delegate to malloc/free, which ASan/TSan intercept as usual.
#pragma once

#include <cstdint>

namespace rsd::alloc {

/// Heap allocations (operator new calls) since process start.
[[nodiscard]] std::int64_t allocation_count();

/// Heap deallocations (operator delete calls of a non-null pointer).
[[nodiscard]] std::int64_t deallocation_count();

}  // namespace rsd::alloc
