// Minimal CSV writer so every bench can also emit machine-readable series
// (one file per figure) next to its ASCII table.
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace rsd {

/// Streaming CSV writer with RFC-4180-style quoting for cells that need it.
class CsvWriter {
 public:
  /// Writes to an in-memory buffer; call `str()` to retrieve.
  CsvWriter() = default;

  template <typename... Cells>
  void row(Cells&&... cells) {
    std::vector<std::string> v;
    (v.push_back(to_cell(std::forward<Cells>(cells))), ...);
    row_vec(v);
  }

  void row_vec(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) buf_ << ',';
      buf_ << escape(cells[i]);
    }
    buf_ << '\n';
  }

  [[nodiscard]] std::string str() const { return buf_.str(); }

  /// Write accumulated contents to a file; throws on I/O failure.
  void save(const std::string& path) const {
    std::ofstream out{path};
    if (!out) throw std::runtime_error{"CsvWriter: cannot open " + path};
    out << buf_.str();
    if (!out) throw std::runtime_error{"CsvWriter: write failed for " + path};
  }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  /// Also accepts anything convertible to a view (e.g. an interned NameRef).
  static std::string to_cell(std::string_view s) { return std::string{s}; }
  static std::string to_cell(double v) {
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
  }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += '"';
    return out;
  }

  std::ostringstream buf_;
};

}  // namespace rsd
