#include "core/names.hpp"

#include <memory>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace rsd {

struct NameTable::Impl {
  mutable std::shared_mutex m;
  /// Keys view into `storage` entries, which are stable (unique_ptr) and
  /// never removed.
  std::unordered_map<std::string_view, std::uint32_t> ids;
  std::vector<std::unique_ptr<const std::string>> storage;
};

NameTable::NameTable() : impl_(new Impl) {
  impl_->storage.push_back(std::make_unique<const std::string>());
  impl_->ids.emplace(std::string_view{*impl_->storage.front()}, 0);
}

NameTable& NameTable::global() {
  // Leaked (never destroyed) so NameRef views stay valid during static
  // destruction of traces/metrics that may still print names.
  static NameTable* table = new NameTable;
  return *table;
}

NameRef NameTable::intern(std::string_view s) {
  {
    std::shared_lock lock{impl_->m};
    if (const auto it = impl_->ids.find(s); it != impl_->ids.end()) {
      return NameRef{it->second, std::string_view{*impl_->storage[it->second]}};
    }
  }
  std::unique_lock lock{impl_->m};
  if (const auto it = impl_->ids.find(s); it != impl_->ids.end()) {
    return NameRef{it->second, std::string_view{*impl_->storage[it->second]}};
  }
  const auto id = static_cast<std::uint32_t>(impl_->storage.size());
  impl_->storage.push_back(std::make_unique<const std::string>(s));
  const std::string_view stable{*impl_->storage.back()};
  impl_->ids.emplace(stable, id);
  return NameRef{id, stable};
}

std::string_view NameTable::view(std::uint32_t id) const {
  std::shared_lock lock{impl_->m};
  if (id >= impl_->storage.size()) return {};
  return std::string_view{*impl_->storage[id]};
}

std::size_t NameTable::size() const {
  std::shared_lock lock{impl_->m};
  return impl_->storage.size();
}

NameRef::NameRef(std::string_view s) : NameRef(NameTable::global().intern(s)) {}

std::ostream& operator<<(std::ostream& os, const NameRef& name) { return os << name.view(); }

}  // namespace rsd
