// Interned op names (`NameRef`): the hot-path contract between workload
// code and the simulator.
//
// Every simulated op used to carry a `std::string` name, heap-allocated
// and copied at each `gpu::Context` call — millions of times per Figure-3
// surface. A `NameRef` is a 16-byte value: an id into the process-wide
// append-only `NameTable` plus a cached `std::string_view` into the
// interned storage, so resolving a name back to text is free and needs no
// lock. Interning happens once per distinct string; constructing a
// `NameRef` from text costs one hash lookup (shared lock), so hot loops
// hoist the construction out of the loop and pay nothing per iteration.
//
// Interned strings are never freed: a `NameRef`'s view stays valid for the
// life of the process, which is what lets `OpRecord`/`ApiRecord` be
// trivially copyable and traces outlive the simulation that produced them.
//
// Determinism contract: ids are assigned in first-intern order, which
// varies across `exec::Pool` widths — never order anything observable by
// id. Ordered containers key on the text (`NameRef::operator<` compares
// lexicographically) so outputs stay byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace rsd {

class NameTable;

/// A cheap handle to an interned string (id + view). Implicitly
/// constructible from text so call sites read naturally; hoist the
/// conversion out of hot loops.
class NameRef {
 public:
  /// The empty name (id 0).
  constexpr NameRef() noexcept = default;
  NameRef(std::string_view s);                                   // NOLINT(google-explicit-*)
  NameRef(const char* s) : NameRef(std::string_view{s}) {}       // NOLINT
  NameRef(const std::string& s) : NameRef(std::string_view{s}) {}  // NOLINT

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::string_view view() const noexcept { return sv_; }
  [[nodiscard]] std::string str() const { return std::string{sv_}; }
  [[nodiscard]] bool empty() const noexcept { return sv_.empty(); }

  operator std::string_view() const noexcept { return sv_; }  // NOLINT

  friend bool operator==(const NameRef& a, const NameRef& b) noexcept {
    return a.id_ == b.id_;
  }
  friend bool operator==(const NameRef& a, std::string_view b) noexcept { return a.sv_ == b; }
  friend bool operator==(const NameRef& a, const char* b) noexcept {
    return a.sv_ == std::string_view{b};
  }
  /// Lexicographic, NOT id order — id order is pool-width dependent.
  friend bool operator<(const NameRef& a, const NameRef& b) noexcept { return a.sv_ < b.sv_; }

 private:
  friend class NameTable;
  constexpr NameRef(std::uint32_t id, std::string_view sv) noexcept : id_(id), sv_(sv) {}

  std::uint32_t id_ = 0;
  std::string_view sv_;
};

std::ostream& operator<<(std::ostream& os, const NameRef& name);

/// Process-wide append-only interner. Thread-safe; lookups of
/// already-interned names take a shared lock only.
class NameTable {
 public:
  [[nodiscard]] static NameTable& global();

  NameTable(const NameTable&) = delete;
  NameTable& operator=(const NameTable&) = delete;

  /// Intern `s` (idempotent) and return its ref.
  [[nodiscard]] NameRef intern(std::string_view s);

  /// Resolve an id produced by this table. Out-of-range ids yield "".
  [[nodiscard]] std::string_view view(std::uint32_t id) const;

  /// Number of distinct names interned so far (>= 1: "" is id 0).
  [[nodiscard]] std::size_t size() const;

 private:
  NameTable();
  struct Impl;
  Impl* impl_;  ///< Leaked on purpose: views must outlive static teardown.
};

}  // namespace rsd
