// Time and byte-size units used throughout the rowscale-cdi library.
//
// Simulated time is a strong type (`SimTime`) counting integer nanoseconds;
// durations are `SimDuration`. Integer arithmetic keeps discrete-event
// scheduling exactly reproducible across platforms. Byte quantities use
// `Bytes` (unsigned 64-bit) with MiB/GiB helpers matching the paper's units.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace rsd {

/// A span of simulated time in integer nanoseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration& operator+=(SimDuration d) { ns_ += d.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration d) { ns_ -= d.ns_; return *this; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) { return SimDuration{a.ns_ + b.ns_}; }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) { return SimDuration{a.ns_ - b.ns_}; }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) { return SimDuration{a.ns_ * k}; }
  friend constexpr SimDuration operator*(std::int64_t k, SimDuration a) { return SimDuration{a.ns_ * k}; }
  friend constexpr SimDuration operator*(SimDuration a, double k) {
    return SimDuration{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr SimDuration operator*(double k, SimDuration a) { return a * k; }
  friend constexpr SimDuration operator/(SimDuration a, std::int64_t k) { return SimDuration{a.ns_ / k}; }
  friend constexpr double operator/(SimDuration a, SimDuration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  [[nodiscard]] static constexpr SimDuration zero() { return SimDuration{0}; }
  [[nodiscard]] static constexpr SimDuration max() {
    return SimDuration{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock (ns since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime{t.ns_ + d.ns()}; }
  friend constexpr SimTime operator+(SimDuration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) { return SimTime{t.ns_ - d.ns()}; }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) { return SimDuration{a.ns_ - b.ns_}; }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t ns_ = 0;
};

namespace duration {
[[nodiscard]] constexpr SimDuration nanoseconds(std::int64_t v) { return SimDuration{v}; }
[[nodiscard]] constexpr SimDuration microseconds(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e3)};
}
[[nodiscard]] constexpr SimDuration milliseconds(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e6)};
}
[[nodiscard]] constexpr SimDuration seconds(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e9)};
}
}  // namespace duration

namespace literals {
[[nodiscard]] constexpr SimDuration operator""_ns(unsigned long long v) {
  return SimDuration{static_cast<std::int64_t>(v)};
}
[[nodiscard]] constexpr SimDuration operator""_us(unsigned long long v) {
  return SimDuration{static_cast<std::int64_t>(v) * 1000};
}
[[nodiscard]] constexpr SimDuration operator""_ms(unsigned long long v) {
  return SimDuration{static_cast<std::int64_t>(v) * 1'000'000};
}
[[nodiscard]] constexpr SimDuration operator""_s(unsigned long long v) {
  return SimDuration{static_cast<std::int64_t>(v) * 1'000'000'000};
}
}  // namespace literals

/// Byte quantities. Binary prefixes follow the paper (MiB, GiB).
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

[[nodiscard]] constexpr double to_mib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }
[[nodiscard]] constexpr double to_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }

/// Human-readable rendering, e.g. "12.5 MiB", "3.2 GiB".
[[nodiscard]] std::string format_bytes(Bytes b);

/// Human-readable rendering of a duration with an auto-selected unit,
/// e.g. "18.4 us", "73.2 ms", "4.71 s".
[[nodiscard]] std::string format_duration(SimDuration d);

}  // namespace rsd
