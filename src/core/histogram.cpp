#include "core/histogram.hpp"

#include <array>
#include <cstdio>

namespace rsd {

std::string EdgeHistogram::bin_label(std::size_t bin) const {
  std::array<char, 48> buf{};
  if (bin < edges_.size()) {
    std::snprintf(buf.data(), buf.size(), "<=%g", edges_[bin]);
  } else {
    std::snprintf(buf.data(), buf.size(), ">%g", edges_.back());
  }
  return std::string{buf.data()};
}

}  // namespace rsd
