#include "core/ascii_plot.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace rsd {

namespace {

std::string format_value(double v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3g", v);
  return std::string{buf.data()};
}

}  // namespace

std::string ascii_distribution(std::span<const double> values,
                               const AsciiPlotOptions& options) {
  if (values.empty()) return "";

  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  const bool log_scale = options.log_scale && lo > 0.0;
  if (hi <= lo) hi = lo + std::max(std::abs(lo), 1.0) * 1e-6;

  std::vector<std::size_t> counts(options.bins, 0);
  std::vector<double> edges(options.bins + 1);
  if (log_scale) {
    const double llo = std::log(lo);
    const double lhi = std::log(hi);
    for (std::size_t i = 0; i <= options.bins; ++i) {
      edges[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                    static_cast<double>(options.bins));
    }
    for (const double v : values) {
      const double f = (std::log(std::max(v, lo)) - llo) / (lhi - llo);
      auto idx = static_cast<std::size_t>(f * static_cast<double>(options.bins));
      if (idx >= options.bins) idx = options.bins - 1;
      ++counts[idx];
    }
  } else {
    for (std::size_t i = 0; i <= options.bins; ++i) {
      edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(options.bins);
    }
    for (const double v : values) {
      const double f = (v - lo) / (hi - lo);
      auto idx = static_cast<std::size_t>(f * static_cast<double>(options.bins));
      if (idx >= options.bins) idx = options.bins - 1;
      ++counts[idx];
    }
  }

  const std::size_t max_count = *std::max_element(counts.begin(), counts.end());
  std::ostringstream out;
  std::size_t label_width = 0;
  std::vector<std::string> labels(options.bins);
  for (std::size_t i = 0; i < options.bins; ++i) {
    labels[i] = format_value(edges[i]) + " - " + format_value(edges[i + 1]) +
                (options.unit[0] != '\0' ? std::string{" "} + options.unit : std::string{});
    label_width = std::max(label_width, labels[i].size());
  }
  for (std::size_t i = 0; i < options.bins; ++i) {
    out << "  " << labels[i] << std::string(label_width - labels[i].size(), ' ') << " |";
    const std::size_t bar =
        max_count > 0 ? counts[i] * options.bar_width / max_count : 0;
    out << std::string(bar, '#');
    if (counts[i] > 0) out << ' ' << counts[i];
    out << '\n';
  }
  return out.str();
}

}  // namespace rsd
