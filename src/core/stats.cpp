#include "core/stats.hpp"

#include <numeric>

#include "core/error.hpp"

namespace rsd {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double q) {
  std::vector<double> copy{values.begin(), values.end()};
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

ViolinSummary summarize_violin(std::string label, std::span<const double> values) {
  ViolinSummary s;
  s.label = std::move(label);
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted{values.begin(), values.end()};
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  s.mean = s.total / static_cast<double>(sorted.size());
  return s;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  RSD_ASSERT(q > 0.0 && q < 1.0);
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
  for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
}

double P2Quantile::parabolic(int i, double d) const {
  const double p = positions_[i];
  const double pm = positions_[i - 1];
  const double pp = positions_[i + 1];
  const double h = heights_[i];
  const double hm = heights_[i - 1];
  const double hp = heights_[i + 1];
  return h + d / (pp - pm) *
                 ((p - pm + d) * (hp - h) / (pp - p) + (pp - p - d) * (h - hm) / (p - pm));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double step = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, step);
      }
      positions_[i] += step;
    }
  }
  ++count_;
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::vector<double> sorted{heights_, heights_ + count_};
    std::sort(sorted.begin(), sorted.end());
    return quantile_sorted(sorted, q_);
  }
  return heights_[2];
}

double SampleSet::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double SampleSet::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

}  // namespace rsd
