#include "core/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace rsd {

namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3g %s", value, unit);
  return std::string{buf.data()};
}

}  // namespace

std::string format_bytes(Bytes b) {
  const auto v = static_cast<double>(b);
  if (b >= kGiB) return format_scaled(v / static_cast<double>(kGiB), "GiB");
  if (b >= kMiB) return format_scaled(v / static_cast<double>(kMiB), "MiB");
  if (b >= kKiB) return format_scaled(v / static_cast<double>(kKiB), "KiB");
  return format_scaled(v, "B");
}

std::string format_duration(SimDuration d) {
  const double ns = static_cast<double>(d.ns());
  const double mag = std::fabs(ns);
  if (mag >= 1e9) return format_scaled(ns * 1e-9, "s");
  if (mag >= 1e6) return format_scaled(ns * 1e-6, "ms");
  if (mag >= 1e3) return format_scaled(ns * 1e-3, "us");
  return format_scaled(ns, "ns");
}

}  // namespace rsd
