// Error handling: the library throws `rsd::Error` (with a category) for
// user-facing failures; internal invariants use RSD_ASSERT which aborts with
// a message — invariant violations are bugs, not recoverable conditions.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rsd {

enum class ErrorCode {
  kInvalidArgument,
  kOutOfMemory,     ///< Simulated device memory exhausted.
  kInvalidState,
  kNotFound,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfMemory: return "out_of_memory";
    case ErrorCode::kInvalidState: return "invalid_state";
    case ErrorCode::kNotFound: return "not_found";
  }
  return "unknown";
}

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string{to_string(code)} + ": " + message), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "RSD_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

}  // namespace rsd

#define RSD_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::rsd::detail::assert_fail(#expr, __FILE__, __LINE__))
