// Canonical output locations. Benches historically wrote bench_results/
// relative to the process CWD, so running from build/ and from the repo
// root produced two diverging result trees. `results_dir()` resolves one
// canonical location instead:
//
//   1. `RSD_RESULTS_DIR` (env), when set and non-empty;
//   2. `<repo root>/bench_results`, found by walking up from the CWD to
//      the first directory that looks like the repo checkout;
//   3. `<cwd>/bench_results` as a last resort.
#pragma once

#include <filesystem>

namespace rsd {

/// The directory bench CSVs / metadata are written to (not created here).
[[nodiscard]] std::filesystem::path results_dir();

}  // namespace rsd
