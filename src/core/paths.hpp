// Canonical output locations. Benches historically wrote bench_results/
// relative to the process CWD, so running from build/ and from the repo
// root produced two diverging result trees. `results_dir()` resolves one
// canonical location instead:
//
//   1. a programmatic override (`set_results_dir`, e.g. from
//      `rsd_bench --results-dir`), when set;
//   2. `RSD_RESULTS_DIR` (env), when set and non-empty;
//   3. `<repo root>/bench_results`, found by walking up from the CWD to
//      the first directory that looks like the repo checkout;
//   4. `<cwd>/bench_results` as a last resort.
#pragma once

#include <filesystem>

namespace rsd {

/// The directory bench CSVs / metadata are written to (not created here).
[[nodiscard]] std::filesystem::path results_dir();

/// Process-wide override for `results_dir()`, taking precedence over the
/// environment. An empty path clears the override.
void set_results_dir(const std::filesystem::path& dir);

}  // namespace rsd
