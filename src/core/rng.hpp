// Deterministic random number generation.
//
// Experiments must be exactly reproducible, so the library carries its own
// generator (xoshiro256**) instead of depending on platform-varying
// std::random distributions. SplitMix64 seeds substreams so independent
// components (each simulated thread, each workload generator) can draw from
// statistically independent streams derived from one experiment seed.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace rsd {

/// SplitMix64: used for seeding / stream splitting.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    SplitMix64 sm{seed};
    for (auto& s : s_) s = sm.next();
  }

  /// Derive an independent substream; deterministic in (parent seed, key).
  [[nodiscard]] Rng split(std::uint64_t key) const {
    SplitMix64 sm{s_[0] ^ (key * 0x9E3779B97F4A7C15ULL) ^ s_[3]};
    Rng child{sm.next()};
    return child;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface for interop with <algorithm>.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Rejection-free modulo bias is negligible for
  /// the n used here, but we use Lemire's method for exactness anyway.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0ULL - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal parameterised by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace rsd
