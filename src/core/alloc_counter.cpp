#include "core/alloc_counter.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::int64_t> g_allocs{0};
std::atomic<std::int64_t> g_frees{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t) ? std::aligned_alloc(align, (size + align - 1) / align * align)
                                              : std::malloc(size);
  return p;
}

void counted_free(void* p) {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace rsd::alloc {

std::int64_t allocation_count() { return g_allocs.load(std::memory_order_relaxed); }
std::int64_t deallocation_count() { return g_frees.load(std::memory_order_relaxed); }

}  // namespace rsd::alloc

// Replacement global allocation functions ([new.delete.single] set). Only
// linked into binaries that reference rsd::alloc — see the header.

void* operator new(std::size_t size) {
  void* p = counted_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
