// Histograms: linear and logarithmic binning, plus the explicit-edge binning
// used by the paper's Table III (transfer sizes binned at 1/16/256/4096 MiB).
#pragma once

#include <cstddef>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsd {

/// Histogram over explicit upper-edge bins: bin i holds values
/// <= edges[i] (and > edges[i-1]); one overflow bin holds values > edges.back().
///
/// This mirrors the paper's Table III layout where the columns are labelled
/// "<=1, <=16, <=256, <=4096, >4096" MiB.
class EdgeHistogram {
 public:
  explicit EdgeHistogram(std::vector<double> upper_edges)
      : edges_(std::move(upper_edges)), counts_(edges_.size() + 1, 0) {
    if (edges_.empty()) throw std::invalid_argument{"EdgeHistogram: no edges"};
    for (std::size_t i = 1; i < edges_.size(); ++i) {
      if (edges_[i] <= edges_[i - 1]) {
        throw std::invalid_argument{"EdgeHistogram: edges must be increasing"};
      }
    }
  }

  void add(double x, std::size_t weight = 1) {
    counts_[bin_index(x)] += weight;
    sum_ += x * static_cast<double>(weight);
    total_ += weight;
  }

  [[nodiscard]] std::size_t bin_index(double x) const {
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (x <= edges_[i]) return i;
    }
    return edges_.size();  // overflow bin
  }

  /// Number of bins, including the overflow bin.
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::span<const double> edges() const { return edges_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double mean() const {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Label for bin i: "<=edge" for interior bins, ">edge" for overflow.
  [[nodiscard]] std::string bin_label(std::size_t bin) const;

 private:
  std::vector<double> edges_;
  std::vector<std::size_t> counts_;
  double sum_ = 0.0;
  std::size_t total_ = 0;
};

/// Fixed-width linear histogram over [lo, hi); under/overflow clamp to the
/// first/last bin.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (bins == 0 || !(hi > lo)) throw std::invalid_argument{"LinearHistogram: bad range"};
  }

  void add(double x) {
    ++counts_[index_of(x)];
    ++total_;
  }

  [[nodiscard]] std::size_t index_of(double x) const {
    if (x <= lo_) return 0;
    if (x >= hi_) return counts_.size() - 1;
    const double frac = (x - lo_) / (hi_ - lo_);
    auto i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
    return i < counts_.size() ? i : counts_.size() - 1;
  }

  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Logarithmic histogram: bins of equal ratio between lo and hi.
/// Used for kernel-duration distributions spanning several decades.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins)
      : log_lo_(std::log(lo)), log_hi_(std::log(hi)), counts_(bins, 0) {
    if (bins == 0 || !(hi > lo) || !(lo > 0)) {
      throw std::invalid_argument{"LogHistogram: bad range"};
    }
  }

  void add(double x) {
    ++counts_[index_of(x)];
    ++total_;
  }

  [[nodiscard]] std::size_t index_of(double x) const {
    if (x <= 0) return 0;
    const double lx = std::log(x);
    if (lx <= log_lo_) return 0;
    if (lx >= log_hi_) return counts_.size() - 1;
    const double frac = (lx - log_lo_) / (log_hi_ - log_lo_);
    auto i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
    return i < counts_.size() ? i : counts_.size() - 1;
  }

  [[nodiscard]] double bin_lo(std::size_t i) const {
    return std::exp(log_lo_ + (log_hi_ - log_lo_) *
                                  static_cast<double>(i) / static_cast<double>(counts_.size()));
  }
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  double log_lo_;
  double log_hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rsd
