// Conservative parallel discrete-event engine (`sim::ParallelEngine`).
//
// Shards one simulation across `Partition`s (per device/chassis; see
// partition.hpp) and advances them in *epochs* under conservative
// lookahead:
//
//   1. t_min   = earliest pending work anywhere (local events and
//                undelivered cross-partition messages);
//   2. horizon = t_min + lookahead. Any message a partition can still
//                send carries timestamp >= its clock + lookahead >=
//                t_min + lookahead, so every event strictly below the
//                horizon is already causally complete;
//   3. all partitions, in parallel on an `exec::Team`, deliver inbound
//                messages, then run their local queues up to (not
//                including) the horizon;
//   4. barrier; outbox buffers flip; repeat until no work remains.
//
// This is the global-epoch-barrier member of the conservative family
// (null-message-free CMB): slack windows and cross-chassis link/copy
// latencies give the lookahead, and with lookahead L every epoch retires
// at least the events in [t_min, t_min + L) — guaranteed progress, no
// deadlock protocol.
//
// Determinism at any thread count — the invariant every tracked CSV
// depends on — holds by construction:
//   * epoch boundaries are pure functions of simulation state (min over
//     partition-local quantities), never of thread timing;
//   * within an epoch partitions share nothing; the Team only decides
//     WHICH OS thread runs a partition's sequential slice;
//   * inbound messages merge in sorted `(at, src, seq)` order, with seq
//     assigned by the (sequential) sender — arrival order is irrelevant.
//
// Memory: each partition's coroutine frames recycle through its own
// FrameArena (ArenaScope around every slice), so the allocation-free hot
// path of the sequential core survives partitioning, and a partition may
// be processed by a different worker every epoch without violating the
// arena's affinity rules.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "exec/team.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/arena.hpp"
#include "sim/partition.hpp"
#include "sim/scheduler.hpp"

namespace rsd::sim {

class ParallelEngine {
 public:
  struct Options {
    /// Execution width. <= 0 resolves to `exec::default_sim_thread_count()`
    /// (the RSD_SIM_THREADS env var, else 1). Output is identical at any
    /// value — threads are a throughput knob, never a semantic one.
    int threads = 0;
    /// Conservative lookahead: the guaranteed minimum delay of every
    /// cross-partition send. Natural values are the injected slack window
    /// or the cross-chassis link latency. Must be > 0.
    SimDuration lookahead = duration::microseconds(1.0);
    /// Non-zero seeds `exec::Team` claim jitter (determinism stress tests).
    std::uint64_t jitter_seed = 0;
  };

  explicit ParallelEngine(int partitions) : ParallelEngine(partitions, Options{}) {}

  ParallelEngine(int partitions, Options options)
      : lookahead_(options.lookahead),
        threads_(options.threads > 0 ? options.threads : exec::default_sim_thread_count()),
        team_(threads_) {
    RSD_ASSERT(partitions >= 1);
    RSD_ASSERT(lookahead_.ns() > 0);
    if (options.jitter_seed != 0) team_.set_claim_jitter(options.jitter_seed);
    parts_.reserve(static_cast<std::size_t>(partitions));
    for (int i = 0; i < partitions; ++i) {
      parts_.emplace_back(new Partition{*this, static_cast<PartitionId>(i)});
    }
    slots_.resize(parts_.size());
    scratch_.resize(parts_.size());
    timelines_.resize(parts_.size());
  }

  /// Partition teardown frees coroutine frames into the owning arenas, so
  /// each destruction runs under that partition's ArenaScope.
  ~ParallelEngine() {
    for (auto& p : parts_) {
      ArenaScope scope{p->arena_};
      p.reset();
    }
  }

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(parts_.size()); }
  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }
  [[nodiscard]] Partition& partition(PartitionId id) {
    return *parts_.at(static_cast<std::size_t>(id));
  }

  /// Run epochs until no partition holds events and no message is in
  /// flight, then drain root-task completions (rethrowing the first
  /// failure by partition index — a deterministic choice). After run(),
  /// `unfinished_count() > 0` indicates a simulated deadlock.
  void run() {
    obs::Span span{"pardes", "run",
                   {obs::Arg::n("partitions", static_cast<double>(parts_.size())),
                    obs::Arg::n("threads", static_cast<double>(threads_))}};
    const std::uint64_t epochs_before = epochs_;
    refresh();
    for (;;) {
      SimTime t_min = SimTime::max();
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        t_min = std::min(t_min, slots_[i].next_time);
        t_min = std::min(t_min, parts_[i]->out_min_);
      }
      if (t_min == SimTime::max()) break;
      const SimTime horizon = t_min + lookahead_;
      ++epochs_;
      fill_parity_ ^= 1;
      team_.run(parts_.size(), [this, horizon](std::size_t i) { process(i, horizon); });
    }
    for (auto& p : parts_) {
      ArenaScope scope{p->arena_};
      p->sched_.run();  // queue is empty: completion checks + rethrow only
    }
    flush_metrics(epochs_ - epochs_before);
  }

  /// Prime the per-partition next-event slots from the schedulers. run()
  /// calls this on entry (work spawned between runs is picked up); also
  /// useful to tests that inspect scheduling state before running.
  void refresh() {
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      slots_[i].next_time = parts_[i]->sched_.next_event_time();
    }
  }

  // -- Aggregate statistics (all deterministic) ---------------------------
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t executed_events() const {
    std::uint64_t n = 0;
    for (const auto& p : parts_) n += p->sched_.executed_events();
    return n;
  }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s.delivered;
    return n;
  }
  /// Partition-epochs that retired zero events while holding pending work
  /// beyond the horizon — the lookahead-stall tally. The stall *fraction*
  /// is this over (epochs * partitions).
  [[nodiscard]] std::uint64_t stalled_partition_epochs() const {
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s.stalls;
    return n;
  }
  [[nodiscard]] std::size_t unfinished_count() const {
    std::size_t n = 0;
    for (const auto& p : parts_) n += p->sched_.unfinished_count();
    return n;
  }

 private:
  friend class Partition;

  /// Per-partition engine-side state, cache-line padded: every worker
  /// writes only its claimed partitions' slots within an epoch.
  struct alignas(64) Slot {
    SimTime next_time = SimTime::max();
    std::uint64_t delivered = 0;
    std::uint64_t stalls = 0;
  };

  /// Reference into a source outbox, collected per destination and sorted
  /// by the deterministic merge key.
  struct InRef {
    SimTime at;
    PartitionId src;
    std::uint64_t seq;
    const CrossCall* call;

    [[nodiscard]] bool operator<(const InRef& o) const {
      if (at != o.at) return at < o.at;
      if (src != o.src) return src < o.src;
      return seq < o.seq;
    }
  };

  void process(std::size_t i, SimTime horizon) {
    Partition& p = *parts_[i];
    ArenaScope scope{p.arena_};

    // The buffer this partition fills now was drained by every reader two
    // epochs ago (the flip + barrier in between make the clear safe).
    auto& out = p.outbox_[fill_parity_];
    out.clear();
    p.out_cur_ = &out;
    p.out_min_ = SimTime::max();

    // Gather inbound messages from every source's drain-side buffer
    // (read-only scan), merge-sort by (at, src, seq), deliver.
    auto& in = scratch_[i];
    in.clear();
    const int drain = fill_parity_ ^ 1;
    for (const auto& sp : parts_) {
      for (const RemoteMsg& m : sp->outbox_[drain]) {
        if (m.dst == p.id_) in.push_back(InRef{m.at, sp->id_, m.seq, &m.call});
      }
    }
    std::sort(in.begin(), in.end());
    for (const InRef& r : in) {
      p.sched_.spawn_at(Partition::deliver(*r.call), r.at);
    }
    slots_[i].delivered += in.size();

    const std::uint64_t executed = p.sched_.run_before(horizon);
    const SimTime next = p.sched_.next_event_time();
    const bool stalled = executed == 0 && next != SimTime::max();
    if (stalled) ++slots_[i].stalls;
    slots_[i].next_time = next;

    // Epoch timeline sample. Each partition's ring is touched only by the
    // worker that claimed it this epoch, and epochs are barrier-separated,
    // so the ring needs no lock; which OS thread wrote a sample is
    // invisible in the data, keeping the flushed timeline byte-identical
    // at any thread count.
    if (obs::Tracer::enabled()) {
      EpochRing& ring = timelines_[i];
      if (ring.buf.size() < kEpochRingCapacity) ring.buf.resize(kEpochRingCapacity);
      if (ring.count == ring.buf.size()) {
        ++ring.dropped;
      } else {
        ++ring.count;
      }
      ring.buf[ring.next] =
          EpochSample{horizon.ns(), executed, static_cast<std::uint64_t>(in.size()), stalled};
      ring.next = (ring.next + 1) % ring.buf.size();
    }
  }

  /// Quiesce-point flush into the global registry (obs design: no per-event
  /// atomics on the hot path) plus the per-partition epoch timelines.
  void flush_metrics(std::uint64_t run_epochs) {
    auto& reg = obs::Registry::global();
    reg.counter("pardes.runs").add(1);
    reg.counter("pardes.epochs").add(static_cast<std::int64_t>(run_epochs));
    reg.counter("pardes.messages").add(static_cast<std::int64_t>(messages_delivered()));
    reg.counter("pardes.lookahead_stalls")
        .add(static_cast<std::int64_t>(stalled_partition_epochs()));
    reg.gauge("pardes.threads").set(static_cast<double>(threads_));
    auto& events_hist = reg.histogram("pardes.partition_events");
    obs::HistogramData local;
    for (const auto& p : parts_) {
      local.observe(static_cast<std::int64_t>(p->sched_.executed_events()));
    }
    events_hist.merge(local);

    // Drain the epoch rings into the engine's simulated timeline: one
    // counter track per partition (kTrackPardesBase + i), samples stamped
    // with the epoch horizon. The drain runs on the single flushing thread
    // in partition order, and horizons strictly increase across epochs, so
    // the emitted sequence is a pure function of the simulation — the
    // byte-identity anchor for trace.json under any --sim-threads.
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      if (sim_id_ < 0) sim_id_ = tracer.acquire_sim_id();
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        EpochRing& ring = timelines_[i];
        const std::int32_t track =
            obs::kTrackPardesBase + static_cast<std::int32_t>(i);
        const std::size_t cap = ring.buf.size();
        for (std::size_t k = 0; k < ring.count; ++k) {
          const EpochSample& s = ring.buf[(ring.next + cap - ring.count + k) % cap];
          tracer.counter_sim(sim_id_, track, s.horizon_ns, "pardes", "epoch.executed",
                             static_cast<double>(s.executed));
          tracer.counter_sim(sim_id_, track, s.horizon_ns, "pardes", "epoch.delivered",
                             static_cast<double>(s.delivered));
          tracer.counter_sim(sim_id_, track, s.horizon_ns, "pardes", "epoch.stall",
                             s.stalled ? 1.0 : 0.0);
        }
        if (ring.dropped > 0) {
          tracer.instant("pardes", "epoch_ring_dropped",
                         {obs::Arg::n("partition", static_cast<double>(i)),
                          obs::Arg::n("dropped", static_cast<double>(ring.dropped))});
        }
        ring.next = 0;
        ring.count = 0;
        ring.dropped = 0;
      }
    }
  }

  /// One epoch of one partition, as recorded for the tracer timeline.
  struct EpochSample {
    std::int64_t horizon_ns = 0;
    std::uint64_t executed = 0;
    std::uint64_t delivered = 0;
    bool stalled = false;
  };

  /// Fixed-capacity per-partition ring (oldest samples overwritten): a
  /// long fleet can never exhaust memory through its epoch timeline.
  struct EpochRing {
    std::vector<EpochSample> buf;  ///< Allocated on first traced epoch.
    std::size_t next = 0;
    std::size_t count = 0;
    std::uint64_t dropped = 0;
  };

  static constexpr std::size_t kEpochRingCapacity = 1u << 12;

  SimDuration lookahead_;
  int threads_;
  exec::Team team_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<Slot> slots_;
  std::vector<std::vector<InRef>> scratch_;
  std::vector<EpochRing> timelines_;
  int fill_parity_ = 0;
  std::uint64_t epochs_ = 0;
  std::int32_t sim_id_ = -1;  ///< Tracer timeline id, acquired at first flush.
};

inline void Partition::send(PartitionId dst, SimDuration delay, CrossCall call) {
  RSD_ASSERT(static_cast<std::size_t>(dst) < static_cast<std::size_t>(engine_.size()));
  const SimTime at = sched_.now() + delay;
  if (dst == id_) {
    // Local fast path: an ordinary event, no lookahead constraint.
    sched_.spawn_at(deliver(std::move(call)), at);
    return;
  }
  RSD_ASSERT(delay >= engine_.lookahead());
  RSD_ASSERT(out_cur_ != nullptr);  // only legal inside an epoch slice
  out_cur_->push_back(RemoteMsg{at, dst, send_seq_++, std::move(call)});
  out_min_ = std::min(out_min_, at);
}

}  // namespace rsd::sim
