// Conservative parallel discrete-event engine (`sim::ParallelEngine`).
//
// Shards one simulation across `Partition`s (per device/chassis; see
// partition.hpp) and advances them in *epochs* under conservative
// lookahead:
//
//   1. route   — a serial O(messages) pass moves every message sent last
//                epoch into its destination's inbox (replacing each of P
//                partitions scanning all P outboxes: the old O(P^2)
//                per-epoch walk dominated wall time on a 512-GPU row);
//   2. a_i     = earliest instant partition i can still act (its next
//                local event or an undelivered inbound message);
//   3. horizon — per partition. With the default *global* lookahead L,
//                every horizon is min_i(a_i) + L. With a declared
//                *lookahead-edge matrix* (set_lookahead_edges: each edge
//                src -> dst carries the minimum delay of any send on it,
//                e.g. the fabric's routed path latency), partition j's
//                horizon is the earliest any message chain could still
//                reach it: min over paths i -> ... -> j in the edge graph
//                of a_i + (sum of edge lookaheads) — one multi-source
//                Dijkstra per epoch, seeded with a_i. Distance-aware
//                horizons advance much further than min+L when activity
//                is spread out, so stalls drop; a partition no chain can
//                reach drains its queue entirely;
//   4. all partitions, in parallel on an `exec::Team`, deliver their
//                inbox, then run their local queues up to (not including)
//                their horizon;
//   5. barrier; outbox buffers flip; repeat until no work remains.
//
// This is the global-epoch-barrier member of the conservative family
// (null-message-free CMB): slack windows and cross-chassis link/copy
// latencies give the lookahead, and every epoch retires at least the
// events in [min a_i, min a_i + L_min) — guaranteed progress, no deadlock
// protocol. The matrix is sound for the same reason the global bound is:
// messages deliver only at epoch starts, so anything partition i sends
// during this epoch leaves no earlier than a_i, and every edge hop adds
// at least its declared lookahead (send() asserts per-pair minimum
// delays; sends over undeclared pairs are rejected in matrix mode).
//
// Determinism at any thread count — the invariant every tracked CSV
// depends on — holds by construction:
//   * epoch boundaries are pure functions of simulation state (min over
//     partition-local quantities), never of thread timing;
//   * within an epoch partitions share nothing; the Team only decides
//     WHICH OS thread runs a partition's sequential slice;
//   * inbound messages merge in sorted `(at, src, seq)` order, with seq
//     assigned by the (sequential) sender — arrival order is irrelevant.
//
// Memory: each partition's coroutine frames recycle through its own
// FrameArena (ArenaScope around every slice), so the allocation-free hot
// path of the sequential core survives partitioning, and a partition may
// be processed by a different worker every epoch without violating the
// arena's affinity rules.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "exec/team.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/arena.hpp"
#include "sim/partition.hpp"
#include "sim/scheduler.hpp"

namespace rsd::sim {

/// One directed edge of the lookahead matrix: any message from partition
/// `src` to partition `dst` is guaranteed to carry at least `lookahead`
/// of delay (e.g. the routed path latency between the devices the two
/// partitions simulate).
struct LookaheadEdge {
  PartitionId src = 0;
  PartitionId dst = 0;
  SimDuration lookahead = SimDuration::zero();
};

class ParallelEngine {
 public:
  struct Options {
    /// Execution width. <= 0 resolves to `exec::default_sim_thread_count()`
    /// (the RSD_SIM_THREADS env var, else 1). Output is identical at any
    /// value — threads are a throughput knob, never a semantic one.
    int threads = 0;
    /// Conservative lookahead: the guaranteed minimum delay of every
    /// cross-partition send. Natural values are the injected slack window
    /// or the cross-chassis link latency. Must be > 0.
    SimDuration lookahead = duration::microseconds(1.0);
    /// Non-zero seeds `exec::Team` claim jitter (determinism stress tests).
    std::uint64_t jitter_seed = 0;
  };

  explicit ParallelEngine(int partitions) : ParallelEngine(partitions, Options{}) {}

  ParallelEngine(int partitions, Options options)
      : lookahead_(options.lookahead),
        threads_(options.threads > 0 ? options.threads : exec::default_sim_thread_count()),
        team_(threads_) {
    RSD_ASSERT(partitions >= 1);
    RSD_ASSERT(lookahead_.ns() > 0);
    if (options.jitter_seed != 0) team_.set_claim_jitter(options.jitter_seed);
    parts_.reserve(static_cast<std::size_t>(partitions));
    for (int i = 0; i < partitions; ++i) {
      parts_.emplace_back(new Partition{*this, static_cast<PartitionId>(i)});
    }
    slots_.resize(parts_.size());
    scratch_.resize(parts_.size());
    timelines_.resize(parts_.size());
    inflight_.resize(parts_.size());
    avail_.resize(parts_.size());
  }

  /// Partition teardown frees coroutine frames into the owning arenas, so
  /// each destruction runs under that partition's ArenaScope.
  ~ParallelEngine() {
    for (auto& p : parts_) {
      ArenaScope scope{p->arena_};
      p.reset();
    }
  }

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(parts_.size()); }
  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }
  [[nodiscard]] Partition& partition(PartitionId id) {
    return *parts_.at(static_cast<std::size_t>(id));
  }

  /// Declare the lookahead-edge matrix and switch horizon computation to
  /// distance-aware mode. Every remote send must then travel a declared
  /// edge with at least that edge's lookahead of delay (asserted in
  /// send()); duplicate edges keep the smaller bound. Call before run().
  void set_lookahead_edges(const std::vector<LookaheadEdge>& edges) {
    RSD_ASSERT(!edges.empty());
    const std::size_t n = parts_.size();
    constexpr std::int64_t kNoEdge = std::numeric_limits<std::int64_t>::max();
    edge_min_ns_.assign(n * n, kNoEdge);
    std::int64_t min_edge = kNoEdge;
    for (const LookaheadEdge& e : edges) {
      RSD_ASSERT(static_cast<std::size_t>(e.src) < n);
      RSD_ASSERT(static_cast<std::size_t>(e.dst) < n);
      RSD_ASSERT(e.src != e.dst);
      RSD_ASSERT(e.lookahead.ns() > 0);
      std::int64_t& cell = edge_min_ns_[e.src * n + e.dst];
      cell = std::min(cell, e.lookahead.ns());
      min_edge = std::min(min_edge, e.lookahead.ns());
    }
    out_edges_.assign(n, {});
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        const std::int64_t ns = edge_min_ns_[src * n + dst];
        if (ns != kNoEdge) {
          out_edges_[src].push_back({static_cast<PartitionId>(dst), ns});
        }
      }
    }
    min_edge_ns_ = min_edge;
    matrix_mode_ = true;
  }

  /// True once set_lookahead_edges() switched horizons to matrix mode.
  [[nodiscard]] bool lookahead_matrix() const { return matrix_mode_; }

  /// The minimum legal delay of a send from `src` to `dst`: the global
  /// lookahead, or — in matrix mode — the declared edge bound (an
  /// undeclared pair is unbounded, i.e. the send is rejected).
  [[nodiscard]] SimDuration min_send_delay(PartitionId src, PartitionId dst) const {
    if (!matrix_mode_) return lookahead_;
    return duration::nanoseconds(
        edge_min_ns_[static_cast<std::size_t>(src) * parts_.size() + dst]);
  }

  /// Run epochs until no partition holds events and no message is in
  /// flight, then drain root-task completions (rethrowing the first
  /// failure by partition index — a deterministic choice). After run(),
  /// `unfinished_count() > 0` indicates a simulated deadlock.
  void run() {
    obs::Span span{"pardes", "run",
                   {obs::Arg::n("partitions", static_cast<double>(parts_.size())),
                    obs::Arg::n("threads", static_cast<double>(threads_))}};
    const std::uint64_t epochs_before = epochs_;
    const std::uint64_t gain_before = horizon_gain_ns_;
    refresh();
    for (;;) {
      // Serial routing pass: move every message sent last epoch into its
      // destination's inbox — O(messages), where each partition scanning
      // every outbox would be O(partitions^2) per epoch. The refs point
      // into drain-side buffers, which stay untouched until this buffer
      // parity fills again next epoch.
      const int drain = fill_parity_;
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        scratch_[i].clear();
        inflight_[i] = SimTime::max();
      }
      for (const auto& sp : parts_) {
        for (const RemoteMsg& m : sp->outbox_[drain]) {
          scratch_[m.dst].push_back(InRef{m.at, sp->id_, m.seq, &m.call});
          inflight_[m.dst] = std::min(inflight_[m.dst], m.at);
        }
      }
      SimTime t_min = SimTime::max();
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        avail_[i] = std::min(slots_[i].next_time, inflight_[i]);
        t_min = std::min(t_min, avail_[i]);
      }
      if (t_min == SimTime::max()) break;
      compute_horizons(t_min);
      ++epochs_;
      fill_parity_ ^= 1;
      team_.run(parts_.size(), [this](std::size_t i) { process(i); });
    }
    for (auto& p : parts_) {
      ArenaScope scope{p->arena_};
      p->sched_.run();  // queue is empty: completion checks + rethrow only
    }
    flush_metrics(epochs_ - epochs_before, horizon_gain_ns_ - gain_before);
  }

  /// Prime the per-partition next-event slots from the schedulers. run()
  /// calls this on entry (work spawned between runs is picked up); also
  /// useful to tests that inspect scheduling state before running.
  void refresh() {
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      slots_[i].next_time = parts_[i]->sched_.next_event_time();
    }
  }

  // -- Aggregate statistics (all deterministic) ---------------------------
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t executed_events() const {
    std::uint64_t n = 0;
    for (const auto& p : parts_) n += p->sched_.executed_events();
    return n;
  }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s.delivered;
    return n;
  }
  /// Partition-epochs that retired zero events while holding pending work
  /// beyond the horizon — the lookahead-stall tally. The stall *fraction*
  /// is this over (epochs * partitions).
  [[nodiscard]] std::uint64_t stalled_partition_epochs() const {
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s.stalls;
    return n;
  }
  /// Cumulative extra horizon (ns, summed over partition-epochs) the
  /// lookahead matrix won over the global-lookahead bound `min a_i +
  /// min-edge`. Zero in global mode; non-negative by construction.
  [[nodiscard]] std::uint64_t horizon_gain_ns() const { return horizon_gain_ns_; }
  [[nodiscard]] std::size_t unfinished_count() const {
    std::size_t n = 0;
    for (const auto& p : parts_) n += p->sched_.unfinished_count();
    return n;
  }

 private:
  friend class Partition;

  /// Per-partition engine-side state, cache-line padded: every worker
  /// writes only its claimed partitions' slots within an epoch (the
  /// horizon is written serially between epochs, read by the worker).
  struct alignas(64) Slot {
    SimTime next_time = SimTime::max();
    SimTime horizon = SimTime::max();
    std::uint64_t delivered = 0;
    std::uint64_t stalls = 0;
  };

  /// Reference into a source outbox, collected per destination and sorted
  /// by the deterministic merge key.
  struct InRef {
    SimTime at;
    PartitionId src;
    std::uint64_t seq;
    const CrossCall* call;

    [[nodiscard]] bool operator<(const InRef& o) const {
      if (at != o.at) return at < o.at;
      if (src != o.src) return src < o.src;
      return seq < o.seq;
    }
  };

  /// Multi-source Dijkstra frontier entry for compute_horizons, ordered
  /// deterministically by (time, partition id).
  struct HeapNode {
    SimTime at;
    PartitionId part;

    struct Later {  // make_heap comparator: min-heap on (at, part)
      [[nodiscard]] bool operator()(const HeapNode& a, const HeapNode& b) const {
        if (a.at != b.at) return a.at > b.at;
        return a.part > b.part;
      }
    };
  };

  /// Distance-aware per-partition horizons. Global mode: everyone gets
  /// t_min + lookahead. Matrix mode: one multi-source Dijkstra over the
  /// lookahead-edge graph, seeded with a_i — the earliest activity e_i of
  /// each partition — so h_j = min over in-edges (i, j) of e_i + L_ij is
  /// the earliest instant any message chain could still reach j. Ties
  /// break on (time, partition id): pure simulation state, thread-safe by
  /// running serially between epochs.
  void compute_horizons(SimTime t_min) {
    if (!matrix_mode_) {
      const SimTime h = t_min + lookahead_;
      for (auto& s : slots_) s.horizon = h;
      return;
    }
    const std::size_t n = parts_.size();
    dist_.assign(n, SimTime::max());
    arrive_.assign(n, SimTime::max());
    heap_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (avail_[i] != SimTime::max()) {
        dist_[i] = avail_[i];
        heap_.push_back(HeapNode{avail_[i], static_cast<PartitionId>(i)});
      }
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapNode::Later{});
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapNode::Later{});
      const HeapNode top = heap_.back();
      heap_.pop_back();
      if (top.at > dist_[top.part]) continue;
      for (const auto& [dst, lookahead_ns] : out_edges_[top.part]) {
        const SimTime cand = top.at + duration::nanoseconds(lookahead_ns);
        arrive_[dst] = std::min(arrive_[dst], cand);
        if (cand < dist_[dst]) {
          dist_[dst] = cand;
          heap_.push_back(HeapNode{cand, dst});
          std::push_heap(heap_.begin(), heap_.end(), HeapNode::Later{});
        }
      }
    }
    const SimTime base = t_min + duration::nanoseconds(min_edge_ns_);
    for (std::size_t j = 0; j < n; ++j) {
      slots_[j].horizon = arrive_[j];
      if (arrive_[j] != SimTime::max()) {
        horizon_gain_ns_ += static_cast<std::uint64_t>((arrive_[j] - base).ns());
      }
    }
  }

  void process(std::size_t i) {
    Partition& p = *parts_[i];
    ArenaScope scope{p.arena_};

    // The buffer this partition fills now was routed from two epochs ago
    // (the flip + barrier in between make the clear safe).
    auto& out = p.outbox_[fill_parity_];
    out.clear();
    p.out_cur_ = &out;

    // The engine's routing pass already moved this partition's inbound
    // messages into scratch_[i]; merge-sort by (at, src, seq), deliver.
    const SimTime horizon = slots_[i].horizon;
    auto& in = scratch_[i];
    std::sort(in.begin(), in.end());
    for (const InRef& r : in) {
      p.sched_.spawn_at(Partition::deliver(*r.call), r.at);
    }
    slots_[i].delivered += in.size();

    const std::uint64_t executed = p.sched_.run_before(horizon);
    const SimTime next = p.sched_.next_event_time();
    const bool stalled = executed == 0 && next != SimTime::max();
    if (stalled) ++slots_[i].stalls;
    slots_[i].next_time = next;

    // Epoch timeline sample. Each partition's ring is touched only by the
    // worker that claimed it this epoch, and epochs are barrier-separated,
    // so the ring needs no lock; which OS thread wrote a sample is
    // invisible in the data, keeping the flushed timeline byte-identical
    // at any thread count.
    if (obs::Tracer::enabled()) {
      EpochRing& ring = timelines_[i];
      if (ring.buf.size() < kEpochRingCapacity) ring.buf.resize(kEpochRingCapacity);
      if (ring.count == ring.buf.size()) {
        ++ring.dropped;
      } else {
        ++ring.count;
      }
      ring.buf[ring.next] =
          EpochSample{horizon.ns(), executed, static_cast<std::uint64_t>(in.size()), stalled};
      ring.next = (ring.next + 1) % ring.buf.size();
    }
  }

  /// Quiesce-point flush into the global registry (obs design: no per-event
  /// atomics on the hot path) plus the per-partition epoch timelines.
  void flush_metrics(std::uint64_t run_epochs, std::uint64_t run_gain_ns) {
    auto& reg = obs::Registry::global();
    reg.counter("pardes.runs").add(1);
    reg.counter("pardes.epochs").add(static_cast<std::int64_t>(run_epochs));
    reg.counter("pardes.horizon_gain").add(static_cast<std::int64_t>(run_gain_ns));
    reg.counter("pardes.messages").add(static_cast<std::int64_t>(messages_delivered()));
    reg.counter("pardes.lookahead_stalls")
        .add(static_cast<std::int64_t>(stalled_partition_epochs()));
    reg.gauge("pardes.threads").set(static_cast<double>(threads_));
    auto& events_hist = reg.histogram("pardes.partition_events");
    obs::HistogramData local;
    for (const auto& p : parts_) {
      local.observe(static_cast<std::int64_t>(p->sched_.executed_events()));
    }
    events_hist.merge(local);

    // Drain the epoch rings into the engine's simulated timeline: one
    // counter track per partition (kTrackPardesBase + i), samples stamped
    // with the epoch horizon. The drain runs on the single flushing thread
    // in partition order, and horizons strictly increase across epochs, so
    // the emitted sequence is a pure function of the simulation — the
    // byte-identity anchor for trace.json under any --sim-threads.
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      if (sim_id_ < 0) sim_id_ = tracer.acquire_sim_id();
      for (std::size_t i = 0; i < parts_.size(); ++i) {
        EpochRing& ring = timelines_[i];
        const std::int32_t track =
            obs::kTrackPardesBase + static_cast<std::int32_t>(i);
        const std::size_t cap = ring.buf.size();
        for (std::size_t k = 0; k < ring.count; ++k) {
          const EpochSample& s = ring.buf[(ring.next + cap - ring.count + k) % cap];
          tracer.counter_sim(sim_id_, track, s.horizon_ns, "pardes", "epoch.executed",
                             static_cast<double>(s.executed));
          tracer.counter_sim(sim_id_, track, s.horizon_ns, "pardes", "epoch.delivered",
                             static_cast<double>(s.delivered));
          tracer.counter_sim(sim_id_, track, s.horizon_ns, "pardes", "epoch.stall",
                             s.stalled ? 1.0 : 0.0);
        }
        if (ring.dropped > 0) {
          tracer.instant("pardes", "epoch_ring_dropped",
                         {obs::Arg::n("partition", static_cast<double>(i)),
                          obs::Arg::n("dropped", static_cast<double>(ring.dropped))});
        }
        ring.next = 0;
        ring.count = 0;
        ring.dropped = 0;
      }
    }
  }

  /// One epoch of one partition, as recorded for the tracer timeline.
  struct EpochSample {
    std::int64_t horizon_ns = 0;
    std::uint64_t executed = 0;
    std::uint64_t delivered = 0;
    bool stalled = false;
  };

  /// Fixed-capacity per-partition ring (oldest samples overwritten): a
  /// long fleet can never exhaust memory through its epoch timeline.
  struct EpochRing {
    std::vector<EpochSample> buf;  ///< Allocated on first traced epoch.
    std::size_t next = 0;
    std::size_t count = 0;
    std::uint64_t dropped = 0;
  };

  static constexpr std::size_t kEpochRingCapacity = 1u << 12;

  SimDuration lookahead_;
  int threads_;
  exec::Team team_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<Slot> slots_;
  std::vector<std::vector<InRef>> scratch_;
  std::vector<EpochRing> timelines_;
  std::vector<SimTime> inflight_;  ///< Per-dest min undelivered message time.
  std::vector<SimTime> avail_;     ///< a_i: earliest instant i can still act.
  int fill_parity_ = 0;
  std::uint64_t epochs_ = 0;
  std::int32_t sim_id_ = -1;  ///< Tracer timeline id, acquired at first flush.

  // Lookahead matrix (matrix_mode_): dense per-pair minimum send delays
  // (kNoEdge-filled; send() asserts against it), adjacency lists for the
  // per-epoch horizon Dijkstra, and reusable scratch for that search.
  bool matrix_mode_ = false;
  std::int64_t min_edge_ns_ = 0;
  std::vector<std::int64_t> edge_min_ns_;
  std::vector<std::vector<std::pair<PartitionId, std::int64_t>>> out_edges_;
  std::vector<SimTime> dist_;
  std::vector<SimTime> arrive_;
  std::vector<HeapNode> heap_;
  std::uint64_t horizon_gain_ns_ = 0;
};

inline void Partition::send(PartitionId dst, SimDuration delay, CrossCall call) {
  RSD_ASSERT(static_cast<std::size_t>(dst) < static_cast<std::size_t>(engine_.size()));
  const SimTime at = sched_.now() + delay;
  if (dst == id_) {
    // Local fast path: an ordinary event, no lookahead constraint.
    sched_.spawn_at(deliver(std::move(call)), at);
    return;
  }
  // Global mode: every remote send obeys the one lookahead. Matrix mode:
  // it obeys the declared (src, dst) edge bound — and an undeclared pair
  // is unbounded, so the assert also rejects sends the matrix never
  // promised the horizon computation.
  RSD_ASSERT(delay >= engine_.min_send_delay(id_, dst));
  RSD_ASSERT(out_cur_ != nullptr);  // only legal inside an epoch slice
  out_cur_->push_back(RemoteMsg{at, dst, send_seq_++, std::move(call)});
}

}  // namespace rsd::sim
