// One shard of a partitioned simulation (`sim::Partition`) and the
// cross-partition message it exchanges (`sim::CrossCall` / `RemoteMsg`).
//
// A Partition is a complete single-threaded simulation — its own
// Scheduler (event queue, clock, sequence counter) plus its own
// FrameArena — that owns one slice of the simulated machine (one device
// or chassis; host lanes are pinned to their context's partition).
// Partitions never share mutable state: the ONLY way simulated code in
// partition A affects partition B is `send()`, which enqueues a
// timestamped message the engine (conservative.hpp) delivers into B's
// event queue under the conservative-lookahead protocol.
//
// Determinism contract: a message is keyed `(at, src, seq)` where `seq`
// is the source partition's send counter. Source-side processing is
// sequential, so the key is a pure function of the simulation — never of
// thread interleaving — and the engine's sorted merge gives every
// destination queue one total, thread-count-independent order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "sim/arena.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace rsd::sim {

using PartitionId = std::uint32_t;

/// Type-erased callable carried by a cross-partition message and invoked
/// inside the destination partition at the message timestamp (the
/// destination's scheduler clock reads exactly `at` during the call).
/// Storage is inline and the payload must be trivially copyable, so
/// posting a message never touches the heap.
class CrossCall {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  CrossCall() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, CrossCall> &&
             std::is_trivially_copyable_v<std::decay_t<F>> &&
             sizeof(std::decay_t<F>) <= kInlineBytes)
  CrossCall(F&& fn) {  // NOLINT(google-explicit-constructor) — message literal
    using Fn = std::decay_t<F>;
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
  }

  void operator()() {
    RSD_ASSERT(invoke_ != nullptr);
    invoke_(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

 private:
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes]{};
  void (*invoke_)(void*) = nullptr;
};

/// A message in flight between partitions. `seq` restarts per source;
/// the engine merges inbound messages by `(at, src, seq)`.
struct RemoteMsg {
  SimTime at;
  PartitionId dst = 0;
  std::uint64_t seq = 0;
  CrossCall call;
};

class ParallelEngine;

class Partition {
 public:
  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  [[nodiscard]] PartitionId id() const { return id_; }
  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const Scheduler& scheduler() const { return sched_; }
  [[nodiscard]] FrameArena& arena() { return arena_; }
  [[nodiscard]] ParallelEngine& engine() { return engine_; }

  /// Post `call` to run inside partition `dst` after `delay` of simulated
  /// time. `delay` must be at least the engine's lookahead — the slack
  /// window / link latency that makes conservative parallel execution
  /// sound. Same-partition sends are allowed with any delay (they are
  /// ordinary local events). Must be called from code executing inside
  /// this partition (its own epoch slice).
  void send(PartitionId dst, SimDuration delay, CrossCall call);

  /// Messages posted by this partition so far (diagnostics).
  [[nodiscard]] std::uint64_t sent_messages() const { return send_seq_; }

  /// Setup entry point: create and launch a root task inside this
  /// partition. `factory()` is invoked — and the coroutine frame therefore
  /// allocated — under this partition's ArenaScope, which the arena's
  /// same-partition free rule requires when spawning from outside an epoch
  /// slice (tests, topology builders). Inside a slice the scope is already
  /// bound and `scheduler().spawn()` may be used directly.
  template <typename Factory>
  void spawn(Factory&& factory) {
    ArenaScope scope{arena_};
    sched_.spawn(std::forward<Factory>(factory)());
  }

  /// Setup entry point for plain callables: run `call` inside this
  /// partition after `delay`. Same arena discipline as `spawn`.
  void post(SimDuration delay, CrossCall call) {
    ArenaScope scope{arena_};
    sched_.spawn_at(deliver(std::move(call)), sched_.now() + delay);
  }

 private:
  friend class ParallelEngine;

  Partition(ParallelEngine& engine, PartitionId id) : engine_(engine), id_(id) {}

  static Task<> deliver(CrossCall call) {
    call();
    co_return;
  }

  ParallelEngine& engine_;
  PartitionId id_;
  // arena_ precedes sched_: scheduler teardown releases coroutine frames
  // into the arena, so the arena must outlive it (reverse destruction).
  FrameArena arena_;
  Scheduler sched_;
  /// Double-buffered outboxes: the engine fills one per epoch and routes
  /// the other to destination inboxes between epochs, then flips parity.
  std::vector<RemoteMsg> outbox_[2];
  std::vector<RemoteMsg>* out_cur_ = nullptr;  ///< Set by the engine per epoch.
  std::uint64_t send_seq_ = 0;
};

}  // namespace rsd::sim
