// Coroutine task type for simulated processes.
//
// A `Task<T>` is a lazily-started coroutine that runs on a `sim::Scheduler`.
// Simulated processes are ordinary C++ functions returning Task<> that
// `co_await` awaitables (delays, events, resources) to advance simulated
// time. Tasks compose: `co_await child_task()` runs the child to completion
// (in simulated time) and resumes the parent, propagating exceptions.
#pragma once

#include <coroutine>
#include <exception>
#include <type_traits>
#include <utility>

#include "core/error.hpp"
#include "sim/arena.hpp"

namespace rsd::sim {

class Scheduler;

namespace detail {

/// State shared by all task promises: which scheduler the coroutine runs on,
/// who to resume when it finishes, and any escaped exception.
///
/// Frames are recycled through the thread-local FrameArena (inherited
/// operator new/delete below), so steady-state task churn — one task per
/// simulated op — performs no general heap allocation. See arena.hpp for
/// the lifetime rules this relies on.
struct PromiseBase {
  Scheduler* sched = nullptr;
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  static void* operator new(std::size_t size) { return FrameArena::local().allocate(size); }
  static void operator delete(void* p) noexcept { FrameArena::local().deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FrameArena::local().deallocate(p);
  }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto& p = h.promise();
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

/// Awaiter used by `co_await some_task()`: starts the child on the parent's
/// scheduler via symmetric transfer and resumes the parent on completion.
/// (Namespace-scope because local classes cannot have member templates.)
template <typename ChildPromise, typename Result>
struct TaskAwaiter {
  std::coroutine_handle<ChildPromise> child;

  [[nodiscard]] bool await_ready() const noexcept { return !child || child.done(); }
  template <typename P>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<P> parent) noexcept {
    child.promise().sched = parent.promise().sched;
    child.promise().continuation = parent;
    return child;  // symmetric transfer: start the child now
  }
  Result await_resume() {
    auto& p = child.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    if constexpr (!std::is_void_v<Result>) {
      return std::move(p.value);
    }
  }
};

}  // namespace detail

/// A coroutine computing a value of type T in simulated time.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value = std::forward<U>(v);
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it on the awaiting coroutine's scheduler and
  /// resumes the parent (with the result) when the child completes.
  auto operator co_await() && noexcept {
    return detail::TaskAwaiter<promise_type, T>{handle_};
  }

  /// Result access after completion (used by the scheduler for root tasks).
  T& result() {
    RSD_ASSERT(done());
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
    return handle_.promise().value;
  }

 private:
  friend class Scheduler;

  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Void specialisation.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    return detail::TaskAwaiter<promise_type, void>{handle_};
  }

  void rethrow_if_failed() {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  friend class Scheduler;

  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace rsd::sim
