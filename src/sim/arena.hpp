// Per-thread size-bucketed free-list arena for the simulator hot path.
//
// Every simulated op used to pay several general-purpose heap allocations:
// the coroutine frames of the `gpu::Context` API calls and the per-op
// `run_op` task, plus the op's completion `sim::Event`. The arena recycles
// those blocks: the first time a size class is seen a block is carved from
// a bump-allocated chunk, and every later alloc/free of that class is a
// two-instruction free-list pop/push. In steady state (a proxy loop past
// its first few iterations) the simulator performs ZERO general heap
// allocations per op — asserted by the `perf_sim_core` experiment.
//
// Lifetime rules (see DESIGN.md "Simulator core performance"):
//
//  * `local()` resolves through a rebindable thread-local pointer. By
//    default it names the calling thread's own arena, and a block MUST be
//    deallocated on the thread that allocated it. This holds by
//    construction in rsd: a simulation (Scheduler + Device + coroutine
//    frames + events) is created, run, and destroyed inside one
//    `exec::Pool` job on one thread; Tasks and Events never migrate
//    between OS threads.
//  * The partitioned engine (sim/conservative.hpp) relaxes "one thread"
//    to "one partition": each `sim::Partition` owns a FrameArena, and an
//    `ArenaScope` rebinds `local()` to it while that partition's events
//    are processed (or its objects destroyed). A partition is touched by
//    exactly one worker at a time — the epoch barrier orders handoffs —
//    so every alloc/free of a partition's frames still goes through one
//    arena with no concurrent access, whichever OS thread runs it.
//  * Chunks are only returned to the OS at thread exit, so per-thread
//    memory is bounded by that thread's peak of live frames, not by the
//    total number of ops simulated.
//  * Oversize blocks (> kMaxBucketed after rounding) fall through to
//    ::operator new/delete; they occur only for giant coroutine frames,
//    never in the per-op path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>

namespace rsd::sim {

class FrameArena {
 public:
  /// Free-list granularity; every block size is rounded up to this.
  static constexpr std::size_t kGranularity = 64;
  /// Largest bucketed block (bytes, including the header).
  static constexpr std::size_t kMaxBucketed = 4096;
  /// Bump-chunk size carved from the general heap.
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  struct Stats {
    std::uint64_t reused = 0;    ///< Served from a free list.
    std::uint64_t carved = 0;    ///< Bump-allocated (first use of the slot).
    std::uint64_t oversize = 0;  ///< Fell through to ::operator new.
    std::uint64_t chunks = 0;    ///< 256 KiB chunks requested from the heap.
  };

  /// The arena `operator new`/`delete` on task frames resolve to: the
  /// calling thread's own arena unless an ArenaScope has rebound it.
  [[nodiscard]] static FrameArena& local() { return *current(); }

  /// A standalone arena (one per `sim::Partition`). Blocks allocated from
  /// it must be freed while it is bound (same-partition rule above).
  FrameArena() { free_.fill(nullptr); }

  ~FrameArena() {
    // Frees whole chunks only: any block still live here would belong to a
    // coroutine outliving its arena, which the lifetime rules forbid.
    for (Chunk* c = chunks_; c != nullptr;) {
      Chunk* next = c->next;
      ::operator delete(c);
      c = next;
    }
  }

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes) {
    const std::size_t total = round_up(bytes + sizeof(Header));
    if (total > kMaxBucketed) {
      ++stats_.oversize;
      auto* h = static_cast<Header*>(::operator new(total));
      h->bucket_size = 0;  // 0 marks a pass-through block
      return h + 1;
    }
    const std::size_t bucket = total / kGranularity - 1;
    if (FreeNode* node = free_[bucket]; node != nullptr) {
      ++stats_.reused;
      free_[bucket] = node->next;
      auto* h = reinterpret_cast<Header*>(node);
      h->bucket_size = total;
      return h + 1;
    }
    ++stats_.carved;
    if (chunk_left_ < total) refill();
    auto* h = reinterpret_cast<Header*>(cursor_);
    cursor_ += total;
    chunk_left_ -= total;
    h->bucket_size = total;
    return h + 1;
  }

  void deallocate(void* p) noexcept {
    if (p == nullptr) return;
    Header* h = static_cast<Header*>(p) - 1;
    if (h->bucket_size == 0) {
      ::operator delete(h);
      return;
    }
    const std::size_t bucket = h->bucket_size / kGranularity - 1;
    auto* node = reinterpret_cast<FreeNode*>(h);
    node->next = free_[bucket];
    free_[bucket] = node;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// 16 bytes so payloads keep the default-new 16-byte alignment.
  struct alignas(16) Header {
    std::size_t bucket_size;  ///< Rounded block size; 0 = pass-through.
    std::size_t reserved;
  };
  struct FreeNode {
    FreeNode* next;
  };
  struct Chunk {
    Chunk* next;
  };
  static_assert(sizeof(Header) == 16);

  friend class ArenaScope;

  /// The thread's binding slot: the thread's own arena until a scope
  /// rebinds it. The owned arena is lazily constructed on first use so
  /// threads that only ever run scoped (partition) work pay nothing.
  [[nodiscard]] static FrameArena*& current() {
    thread_local FrameArena own;
    thread_local FrameArena* bound = &own;
    return bound;
  }

  [[nodiscard]] static constexpr std::size_t round_up(std::size_t n) {
    return (n + kGranularity - 1) / kGranularity * kGranularity;
  }

  void refill() {
    ++stats_.chunks;
    auto* raw = static_cast<std::byte*>(::operator new(kChunkBytes));
    auto* chunk = reinterpret_cast<Chunk*>(raw);
    chunk->next = chunks_;
    chunks_ = chunk;
    // The chunk header occupies one granule; the rest is bump space.
    cursor_ = raw + kGranularity;
    chunk_left_ = kChunkBytes - kGranularity;
  }

  std::array<FreeNode*, kMaxBucketed / kGranularity> free_{};
  std::byte* cursor_ = nullptr;
  std::size_t chunk_left_ = 0;
  Chunk* chunks_ = nullptr;
  Stats stats_;
};

/// Rebinds `FrameArena::local()` on the calling thread for the scope's
/// lifetime. The partitioned engine wraps every touch of a partition
/// (event processing, message delivery, teardown) in a scope over that
/// partition's arena, making frame recycling partition-affine instead of
/// thread-affine. Scopes nest; each restores the previous binding.
class [[nodiscard]] ArenaScope {
 public:
  explicit ArenaScope(FrameArena& arena) : prev_(FrameArena::current()) {
    FrameArena::current() = &arena;
  }
  ~ArenaScope() { FrameArena::current() = prev_; }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  FrameArena* prev_;
};

/// Minimal allocator adapter over the thread-local FrameArena, for
/// `std::allocate_shared` of per-op simulation objects (completion
/// events). Same lifetime rules as the arena itself.
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() noexcept = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}  // NOLINT(google-explicit-*)

  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(alignof(T) <= 16, "FrameArena guarantees 16-byte alignment");
    return static_cast<T*>(FrameArena::local().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { FrameArena::local().deallocate(p); }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) noexcept { return true; }
};

}  // namespace rsd::sim
