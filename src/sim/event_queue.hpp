// The scheduler's pending-event queue: an indexed d-ary (4-ary) min-heap
// over `(time, seq)` keys.
//
// Replaces the previous `std::priority_queue` (binary heap). The proxy
// generates near-monotonic timestamps — most pushes land near the bottom
// of the heap — and a 4-ary layout halves the tree depth while keeping
// sift-down's four child keys in at most two cache lines, which is worth
// ~15-25% of pop cost on this workload. The comparison key is exactly the
// old `(at, seq)` pair: `seq` is unique per push, the order is total, and
// therefore the pop sequence is bit-identical to the binary heap's — the
// property the determinism tests pin down.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/units.hpp"

namespace rsd::sim {

template <typename Payload, unsigned Arity = 4>
class TimedQueue {
  static_assert(Arity >= 2);

 public:
  struct Item {
    SimTime at;
    std::uint64_t seq = 0;
    Payload payload{};

    /// Strict-weak order; total because `seq` never repeats.
    [[nodiscard]] bool before(const Item& other) const {
      if (at != other.at) return at < other.at;
      return seq < other.seq;
    }
  };

  void push(SimTime at, std::uint64_t seq, Payload payload) {
    heap_.push_back(Item{at, seq, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] const Item& top() const { return heap_.front(); }

  void pop() {
    Item last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(std::move(last));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const { return heap_.capacity(); }
  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  void sift_up(std::size_t i) {
    Item item = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!item.before(heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(item);
  }

  /// Place `item` (the displaced last element) into the hole at the root.
  void sift_down(Item item) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = i * Arity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + Arity, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(item)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(item);
  }

  std::vector<Item> heap_;
};

}  // namespace rsd::sim
