// The discrete-event scheduler: a time-ordered run queue of suspended
// coroutines. Single-threaded and fully deterministic — ties in time are
// broken by insertion order, so a given seed always replays the same
// schedule.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"

namespace rsd::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Launch a root process at the current simulated time. The scheduler
  /// owns the task until `run()` finishes.
  void spawn(Task<> task) { spawn_at(std::move(task), now_); }

  /// Launch a root process at absolute time `t` (>= now). The partitioned
  /// engine delivers cross-partition messages this way: each message
  /// becomes a root task scheduled at its (future, lookahead-protected)
  /// timestamp.
  void spawn_at(Task<> task, SimTime t) {
    RSD_ASSERT(task.valid());
    task.handle_.promise().sched = this;
    schedule_at(task.handle_, t);
    roots_.push_back(std::move(task));
    if (roots_.size() >= sweep_threshold_) sweep_finished_roots();
  }

  /// Enqueue a coroutine to resume after `delay` of simulated time.
  void schedule(std::coroutine_handle<> h, SimDuration delay) {
    schedule_at(h, now_ + delay);
  }

  /// Enqueue a coroutine to resume at absolute time `t` (>= now).
  void schedule_at(std::coroutine_handle<> h, SimTime t) {
    RSD_ASSERT(t >= now_);
    queue_.push(t, seq_++, h);
  }

  /// Run one event: advance the clock and resume one coroutine.
  /// Returns false when the event queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    const auto& item = queue_.top();
    now_ = item.at;
    const std::coroutine_handle<> handle = item.payload;
    queue_.pop();
    ++executed_events_;
    handle.resume();
    return true;
  }

  /// Run until no events remain, then rethrow the first root-task failure.
  void run() {
    while (step()) {
    }
    finish_roots();
  }

  /// Run until the clock would pass `deadline`; events at exactly `deadline`
  /// are executed. Root failures are rethrown if all events drained.
  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.top().at <= deadline) {
      step();
    }
    if (queue_.empty()) {
      finish_roots();
    } else {
      now_ = deadline;
    }
  }

  /// Run every event with timestamp strictly below `horizon` (the
  /// conservative-lookahead window of the partitioned engine). Unlike
  /// run_until, the clock is left at the last executed event — events at
  /// exactly `horizon` stay pending, and no completion check runs (the
  /// engine drains with run() after the last epoch). Returns the number
  /// of events executed.
  std::uint64_t run_before(SimTime horizon) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().at < horizon) {
      step();
      ++n;
    }
    return n;
  }

  /// Timestamp of the earliest pending event, or SimTime::max() when the
  /// queue is empty (the engine's "no work" sentinel).
  [[nodiscard]] SimTime next_event_time() const {
    return queue_.empty() ? SimTime::max() : queue_.top().at;
  }

  /// Number of spawned root processes that have not yet completed.
  /// Non-zero after run() indicates a deadlock in the simulated program.
  [[nodiscard]] std::size_t unfinished_count() const {
    std::size_t n = 0;
    for (const auto& t : roots_) {
      if (t.valid() && !t.done()) ++n;
    }
    return n;
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Events resumed by this scheduler so far (perf_sim_core's numerator).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_events_; }

  /// Sweep diagnostics for the root-compaction regression tests: number of
  /// sweeps run, total root slots scanned across them, and the current
  /// backing capacity of the root list.
  [[nodiscard]] std::uint64_t sweep_count() const { return sweep_count_; }
  [[nodiscard]] std::uint64_t sweep_scanned() const { return sweep_scanned_; }
  [[nodiscard]] std::size_t root_capacity() const { return roots_.capacity(); }

 private:
  void finish_roots() {
    if (!pending_exceptions_.empty()) {
      std::rethrow_exception(pending_exceptions_.front());
    }
    for (auto& t : roots_) t.rethrow_if_failed();
    // Keep finished frames until destruction is safe: all are done here
    // (or deadlocked, in which case the caller inspects unfinished_count()).
  }

  /// Reclaim completed root frames so long simulations (hundreds of
  /// thousands of spawned ops) stay bounded in memory. Compacts in place —
  /// no fresh vector — preserving the relative order of live tasks; each
  /// finished frame is destroyed by the move-assignment that overwrites
  /// its slot or by the final erase. Stored exceptions are preserved for
  /// finish_roots(). The threshold doubles with the live population so a
  /// long-lived fleet of N tasks costs O(total spawns) sweep work overall,
  /// not O(spawns * N).
  void sweep_finished_roots() {
    ++sweep_count_;
    sweep_scanned_ += roots_.size();
    auto out = roots_.begin();
    for (auto& t : roots_) {
      if (!t.done()) {
        if (&t != &*out) *out = std::move(t);
        ++out;
        continue;
      }
      try {
        t.rethrow_if_failed();
      } catch (...) {
        pending_exceptions_.push_back(std::current_exception());
      }
    }
    roots_.erase(out, roots_.end());
    sweep_threshold_ = std::max(kRootSweepThreshold, roots_.size() * 2);
  }

  static constexpr std::size_t kRootSweepThreshold = 4096;

  TimedQueue<std::coroutine_handle<>> queue_;
  std::vector<Task<>> roots_;
  std::vector<std::exception_ptr> pending_exceptions_;
  SimTime now_ = SimTime::zero();
  std::uint64_t seq_ = 0;
  std::uint64_t executed_events_ = 0;
  std::size_t sweep_threshold_ = kRootSweepThreshold;
  std::uint64_t sweep_count_ = 0;
  std::uint64_t sweep_scanned_ = 0;
};

/// Awaitable that suspends the current process for `d` of simulated time.
/// `co_await delay(10_us);`
struct Delay {
  SimDuration d;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  template <typename P>
  void await_suspend(std::coroutine_handle<P> h) const {
    h.promise().sched->schedule(h, d.ns() > 0 ? d : SimDuration::zero());
  }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline Delay delay(SimDuration d) { return Delay{d}; }

/// Awaitable that yields the scheduler without advancing time (runs after
/// other events already queued for the current instant).
[[nodiscard]] inline Delay yield() { return Delay{SimDuration::zero()}; }

/// Awaitable that produces the current scheduler pointer, letting library
/// code reach the clock without threading a Scheduler& everywhere.
struct CurrentScheduler {
  Scheduler* sched = nullptr;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  template <typename P>
  bool await_suspend(std::coroutine_handle<P> h) noexcept {
    sched = h.promise().sched;
    return false;  // resume immediately, no reschedule
  }
  [[nodiscard]] Scheduler* await_resume() const noexcept { return sched; }
};

[[nodiscard]] inline CurrentScheduler current_scheduler() { return {}; }

}  // namespace rsd::sim
