// Synchronisation primitives for simulated processes: one-shot events,
// FIFO counting semaphores, wait groups, and unbounded channels.
//
// All primitives resume waiters *through the scheduler* (at the current
// simulated instant) rather than inline, which keeps resumption order
// deterministic and prevents unbounded recursion through chains of wakeups.
//
// Permits and items are handed to waiters directly (transfer semantics):
// a release() or put() that finds a waiter assigns the permit/item to that
// waiter before scheduling it, so a process that arrives in between cannot
// steal it. This guarantees strict FIFO service order — the property that
// makes the simulated GPU's FIFO engine queues exact.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "sim/task.hpp"

#include "core/error.hpp"
#include "sim/arena.hpp"
#include "sim/scheduler.hpp"

namespace rsd::sim {

/// One-shot broadcast event. After trigger(), all current and future waiters
/// proceed immediately.
///
/// Waiters are kept on an intrusive FIFO list whose nodes live inside the
/// awaiting coroutines' (arena-recycled) frames, so an Event — constructed
/// per simulated op for completion signalling — performs no heap
/// allocation of its own.
class Event {
 public:
  explicit Event(Scheduler& sched) : sched_(sched) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    // Wake in arrival (FIFO) order. Nodes stay valid while we walk: the
    // scheduler only enqueues the handles; resumption happens later.
    for (WaitNode* n = head_; n != nullptr;) {
      WaitNode* next = n->next;
      sched_.schedule(n->handle, SimDuration::zero());
      n = next;
    }
    head_ = tail_ = nullptr;
  }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event& ev;
      WaitNode node;
      [[nodiscard]] bool await_ready() const noexcept { return ev.triggered_; }
      void await_suspend(std::coroutine_handle<> h) {
        node.handle = h;
        node.next = nullptr;
        if (ev.tail_ != nullptr) {
          ev.tail_->next = &node;
        } else {
          ev.head_ = &node;
        }
        ev.tail_ = &node;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, {}};
  }

 private:
  struct WaitNode {
    std::coroutine_handle<> handle;
    WaitNode* next = nullptr;
  };

  Scheduler& sched_;
  bool triggered_ = false;
  WaitNode* head_ = nullptr;
  WaitNode* tail_ = nullptr;
};

/// Allocate a shared completion event from the thread-local frame arena
/// (zero general-heap cost per op in steady state). Use wherever a fresh
/// `std::shared_ptr<Event>` per op/generation is needed.
[[nodiscard]] inline std::shared_ptr<Event> make_event(Scheduler& sched) {
  return std::allocate_shared<Event>(ArenaAllocator<Event>{}, sched);
}

/// FIFO counting semaphore with permit-transfer wakeups. Like Event, the
/// waiter queue is intrusive: each AcquireAwaiter already lives in its
/// coroutine's frame, so waiting allocates nothing.
class Semaphore {
 public:
  Semaphore(Scheduler& sched, std::int64_t initial)
      : sched_(sched), count_(initial) {
    RSD_ASSERT(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::int64_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiting_; }

  struct [[nodiscard]] AcquireAwaiter {
    Semaphore& sem;
    std::coroutine_handle<> handle;
    AcquireAwaiter* next = nullptr;

    [[nodiscard]] bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (sem.head_ == nullptr && sem.count_ > 0) {
        --sem.count_;
        return false;  // permit taken, continue without suspending
      }
      handle = h;
      next = nullptr;
      if (sem.tail_ != nullptr) {
        sem.tail_->next = this;
      } else {
        sem.head_ = this;
      }
      sem.tail_ = this;
      ++sem.waiting_;
      return true;
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] AcquireAwaiter acquire() { return AcquireAwaiter{*this, {}}; }

  void release() {
    if (head_ != nullptr) {
      AcquireAwaiter* w = head_;
      head_ = w->next;
      if (head_ == nullptr) tail_ = nullptr;
      --waiting_;
      sched_.schedule(w->handle, SimDuration::zero());  // permit transferred
    } else {
      ++count_;
    }
  }

 private:
  Scheduler& sched_;
  std::int64_t count_;
  AcquireAwaiter* head_ = nullptr;
  AcquireAwaiter* tail_ = nullptr;
  std::size_t waiting_ = 0;
};

/// RAII permit for Semaphore; released on destruction.
class [[nodiscard]] SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(&sem) {}
  SemaphoreGuard(SemaphoreGuard&& other) noexcept : sem_(std::exchange(other.sem_, nullptr)) {}
  SemaphoreGuard& operator=(SemaphoreGuard&& other) noexcept {
    if (this != &other) {
      reset();
      sem_ = std::exchange(other.sem_, nullptr);
    }
    return *this;
  }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() { reset(); }

  void reset() {
    if (sem_ != nullptr) {
      sem_->release();
      sem_ = nullptr;
    }
  }

 private:
  Semaphore* sem_;
};

/// Counts outstanding work items; `wait()` resumes when the count reaches 0.
/// One-shot: once the count has dropped to zero the group is finished.
class WaitGroup {
 public:
  explicit WaitGroup(Scheduler& sched) : done_event_(sched) {}

  void add(std::int64_t n = 1) {
    RSD_ASSERT(!done_event_.triggered());
    count_ += n;
  }

  void done() {
    RSD_ASSERT(count_ > 0);
    if (--count_ == 0) done_event_.trigger();
  }

  [[nodiscard]] auto wait() { return done_event_.wait(); }
  [[nodiscard]] std::int64_t count() const { return count_; }

 private:
  std::int64_t count_ = 0;
  Event done_event_;
};

/// Reusable MPI-style barrier: all `parties` must arrive before any leaves;
/// immediately reusable for the next generation (bulk-synchronous loops).
class Barrier {
 public:
  Barrier(Scheduler& sched, int parties) : sched_(sched), parties_(parties) {
    RSD_ASSERT(parties >= 1);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  Task<> arrive_and_wait() {
    const std::int64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      gate_->trigger();
      auto fresh = make_event(sched_);
      gate_.swap(fresh);
      co_return;
    }
    // Hold a reference to this generation's gate; the last arriver swaps
    // in a fresh one before triggering ours.
    auto gate = gate_;
    while (generation_ == my_generation) {
      co_await gate->wait();
    }
  }

  [[nodiscard]] int parties() const { return parties_; }
  [[nodiscard]] std::int64_t generation() const { return generation_; }

 private:
  Scheduler& sched_;
  int parties_;
  int arrived_ = 0;
  std::int64_t generation_ = 0;
  std::shared_ptr<Event> gate_ = make_event(sched_);
};

/// Unbounded FIFO channel. put() never blocks; get() suspends while empty.
/// Items are handed to waiting getters in FIFO order.
template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(sched) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  struct [[nodiscard]] GetAwaiter {
    Channel& ch;
    std::coroutine_handle<> handle;
    std::optional<T> slot;

    [[nodiscard]] bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (ch.waiters_.empty() && !ch.items_.empty()) {
        slot = std::move(ch.items_.front());
        ch.items_.pop_front();
        return false;
      }
      handle = h;
      ch.waiters_.push_back(this);
      return true;
    }
    [[nodiscard]] T await_resume() {
      RSD_ASSERT(slot.has_value());
      return std::move(*slot);
    }
  };

  void put(T value) {
    if (!waiters_.empty()) {
      GetAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot = std::move(value);
      sched_.schedule(w->handle, SimDuration::zero());
    } else {
      items_.push_back(std::move(value));
    }
  }

  [[nodiscard]] GetAwaiter get() { return GetAwaiter{*this, {}, std::nullopt}; }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  Scheduler& sched_;
  std::deque<T> items_;
  std::deque<GetAwaiter*> waiters_;
};

}  // namespace rsd::sim
