// FIFO job-queue simulation over the composition model: the system-level
// consequences the paper's introduction claims for CDI — higher throughput,
// shorter waits, and power saved by powering down pooled GPUs instead of
// trapping them inside allocated nodes.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "cluster/composition.hpp"
#include "core/units.hpp"

namespace rsd::cluster {

/// A batch job: arrives, waits for resources, runs for a fixed duration.
struct SimJob {
  std::string name;
  SimDuration arrival = SimDuration::zero();
  SimDuration duration = SimDuration::zero();
  int cpu_cores = 0;
  int gpus = 0;
};

struct JobOutcome {
  std::string name;
  SimTime submitted;
  SimTime started;
  SimTime finished;

  [[nodiscard]] SimDuration wait() const { return started - submitted; }
  [[nodiscard]] SimDuration turnaround() const { return finished - submitted; }
};

struct ScheduleMetrics {
  std::vector<JobOutcome> outcomes;
  SimTime makespan;                 ///< Completion of the last job.
  double mean_wait_seconds = 0.0;
  double mean_turnaround_seconds = 0.0;
  /// Time-averaged GPU accounting over [0, makespan].
  double avg_busy_gpus = 0.0;
  double avg_trapped_gpus = 0.0;    ///< Idle but held (traditional only).
  /// Total GPU energy over the schedule: busy GPUs at busy_watts, trapped
  /// GPUs at idle_watts, free pool GPUs at powered_down_watts.
  double gpu_energy_joules = 0.0;
};

/// GPU power-draw constants used in the energy accounting (A100-class,
/// matching gpu::DeviceParams defaults).
struct GpuPowerModel {
  double busy_watts = 400.0;
  double idle_watts = 55.0;          ///< Trapped: powered but unusable.
  double powered_down_watts = 8.0;   ///< In the pool, powered down.
};

/// Run the job list FIFO (no backfill) on a traditional cluster of
/// `nodes` x `shape`.
[[nodiscard]] ScheduleMetrics schedule_traditional(std::vector<SimJob> jobs, int nodes,
                                                   NodeShape shape,
                                                   const GpuPowerModel& power = {});

/// Run the same jobs on a CDI cluster with identical total hardware.
[[nodiscard]] ScheduleMetrics schedule_cdi(std::vector<SimJob> jobs, int nodes,
                                           NodeShape shape, const GpuPowerModel& power = {});

}  // namespace rsd::cluster
