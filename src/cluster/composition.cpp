#include "cluster/composition.hpp"

#include <algorithm>

namespace rsd::cluster {

namespace {

[[nodiscard]] int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

Allocation TraditionalCluster::allocate(const JobRequest& request) {
  RSD_ASSERT(request.cpu_cores >= 0 && request.gpus >= 0);
  if (request.gpus > 0 && shape_.gpus == 0) {
    throw Error{ErrorCode::kInvalidArgument, "cluster nodes have no GPUs"};
  }

  const int nodes_for_cores = ceil_div(request.cpu_cores, shape_.cpu_cores);
  const int nodes_for_gpus = shape_.gpus > 0 ? ceil_div(request.gpus, shape_.gpus) : 0;
  const int nodes = std::max({nodes_for_cores, nodes_for_gpus, 1});
  if (nodes > free_nodes()) {
    throw Error{ErrorCode::kInvalidState,
                "traditional cluster out of nodes for job " + request.name};
  }

  Allocation a;
  a.job = request.name;
  a.nodes = nodes;
  a.cpu_cores = nodes * shape_.cpu_cores;
  a.gpus = nodes * shape_.gpus;
  a.trapped_cores = a.cpu_cores - request.cpu_cores;
  a.trapped_gpus = a.gpus - request.gpus;

  used_nodes_ += nodes;
  used_cores_ += request.cpu_cores;
  used_gpus_ += request.gpus;
  trapped_cores_ += a.trapped_cores;
  trapped_gpus_ += a.trapped_gpus;
  return a;
}

bool TraditionalCluster::fits(const JobRequest& request) const {
  if (request.gpus > 0 && shape_.gpus == 0) return false;
  const int nodes_for_cores = ceil_div(request.cpu_cores, shape_.cpu_cores);
  const int nodes_for_gpus = shape_.gpus > 0 ? ceil_div(request.gpus, shape_.gpus) : 0;
  return std::max({nodes_for_cores, nodes_for_gpus, 1}) <= free_nodes();
}

void TraditionalCluster::release(const Allocation& allocation) {
  RSD_ASSERT(allocation.nodes <= used_nodes_);
  used_nodes_ -= allocation.nodes;
  used_cores_ -= allocation.cpu_cores - allocation.trapped_cores;
  used_gpus_ -= allocation.gpus - allocation.trapped_gpus;
  trapped_cores_ -= allocation.trapped_cores;
  trapped_gpus_ -= allocation.trapped_gpus;
}

double TraditionalCluster::core_utilization() const {
  const int allocated = used_nodes_ * shape_.cpu_cores;
  return allocated > 0 ? static_cast<double>(used_cores_) / allocated : 0.0;
}

double TraditionalCluster::gpu_utilization() const {
  const int allocated = used_nodes_ * shape_.gpus;
  return allocated > 0 ? static_cast<double>(used_gpus_) / allocated : 0.0;
}

Allocation CdiCluster::allocate(const JobRequest& request) {
  RSD_ASSERT(request.cpu_cores >= 0 && request.gpus >= 0);
  if (request.cpu_cores > free_cores_ || request.gpus > free_gpus_) {
    throw Error{ErrorCode::kInvalidState, "CDI pools exhausted for job " + request.name};
  }
  free_cores_ -= request.cpu_cores;
  free_gpus_ -= request.gpus;

  Allocation a;
  a.job = request.name;
  a.nodes = 0;
  a.cpu_cores = request.cpu_cores;
  a.gpus = request.gpus;
  return a;
}

ComparisonResult compare_architectures(const std::vector<JobRequest>& jobs, int nodes,
                                       NodeShape shape) {
  ComparisonResult result;
  TraditionalCluster traditional{nodes, shape};
  CdiCluster cdi{nodes, shape.cpu_cores, nodes * shape.gpus};

  for (const auto& job : jobs) {
    result.traditional.push_back(traditional.allocate(job));
    result.cdi.push_back(cdi.allocate(job));
  }
  result.traditional_trapped_cores = traditional.total_trapped_cores();
  result.traditional_trapped_gpus = traditional.total_trapped_gpus();
  result.cdi_idle_gpus = cdi.powered_down_gpus();
  return result;
}

}  // namespace rsd::cluster
