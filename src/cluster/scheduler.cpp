#include "cluster/scheduler.hpp"

#include <algorithm>
#include <map>
#include <optional>

namespace rsd::cluster {

namespace {

/// Generic FIFO scheduling loop over any allocator with
/// fits/allocate/release and a GPU-state probe.
template <typename Cluster, typename GpuStateFn>
ScheduleMetrics run_fifo(std::vector<SimJob> jobs, Cluster& cluster, int total_gpus,
                         const GpuPowerModel& power, GpuStateFn gpu_state) {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const SimJob& a, const SimJob& b) { return a.arrival < b.arrival; });

  struct Running {
    SimTime finish;
    Allocation allocation;
    std::size_t outcome_index;
  };

  ScheduleMetrics metrics;
  metrics.outcomes.reserve(jobs.size());

  std::deque<std::size_t> pending;           // indices into jobs, FIFO
  std::vector<Running> running;
  std::size_t next_arrival = 0;
  SimTime now = SimTime::zero();
  SimTime prev_event = SimTime::zero();
  double busy_gpu_time = 0.0;     // gpu-seconds
  double trapped_gpu_time = 0.0;
  double energy = 0.0;

  for (const auto& j : jobs) {
    metrics.outcomes.push_back(
        JobOutcome{j.name, SimTime::zero() + j.arrival, SimTime::zero(), SimTime::zero()});
  }

  auto integrate = [&](SimTime to) {
    const double dt = (to - prev_event).seconds();
    if (dt <= 0.0) return;
    const auto [busy, trapped] = gpu_state();
    const int free = total_gpus - busy - trapped;
    busy_gpu_time += busy * dt;
    trapped_gpu_time += trapped * dt;
    energy += dt * (busy * power.busy_watts + trapped * power.idle_watts +
                    free * power.powered_down_watts);
    prev_event = to;
  };

  auto start_eligible = [&] {
    while (!pending.empty()) {
      const std::size_t idx = pending.front();
      const JobRequest request{jobs[idx].name, jobs[idx].cpu_cores, jobs[idx].gpus};
      if (!cluster.fits(request)) break;  // strict FIFO: head blocks the queue
      pending.pop_front();
      Running r;
      r.allocation = cluster.allocate(request);
      r.finish = now + jobs[idx].duration;
      r.outcome_index = idx;
      metrics.outcomes[idx].started = now;
      running.push_back(std::move(r));
    }
  };

  while (next_arrival < jobs.size() || !running.empty()) {
    // Next event: earliest of next arrival / earliest completion.
    SimTime next = SimTime::max();
    if (next_arrival < jobs.size()) {
      next = SimTime::zero() + jobs[next_arrival].arrival;
    }
    for (const auto& r : running) next = std::min(next, r.finish);

    integrate(next);
    now = next;

    // Completions first (frees resources for same-instant arrivals).
    for (auto it = running.begin(); it != running.end();) {
      if (it->finish == now) {
        metrics.outcomes[it->outcome_index].finished = now;
        cluster.release(it->allocation);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
    while (next_arrival < jobs.size() &&
           SimTime::zero() + jobs[next_arrival].arrival == now) {
      pending.push_back(next_arrival++);
    }
    start_eligible();
  }

  metrics.makespan = now;
  const double span = now.seconds();
  double wait_sum = 0.0;
  double turnaround_sum = 0.0;
  for (const auto& o : metrics.outcomes) {
    wait_sum += o.wait().seconds();
    turnaround_sum += o.turnaround().seconds();
  }
  const auto n = static_cast<double>(jobs.size());
  metrics.mean_wait_seconds = n > 0 ? wait_sum / n : 0.0;
  metrics.mean_turnaround_seconds = n > 0 ? turnaround_sum / n : 0.0;
  metrics.avg_busy_gpus = span > 0 ? busy_gpu_time / span : 0.0;
  metrics.avg_trapped_gpus = span > 0 ? trapped_gpu_time / span : 0.0;
  metrics.gpu_energy_joules = energy;
  return metrics;
}

}  // namespace

ScheduleMetrics schedule_traditional(std::vector<SimJob> jobs, int nodes, NodeShape shape,
                                     const GpuPowerModel& power) {
  TraditionalCluster cluster{nodes, shape};
  const int total_gpus = nodes * shape.gpus;
  return run_fifo(std::move(jobs), cluster, total_gpus, power, [&cluster] {
    return std::pair<int, int>{cluster.used_gpus(), cluster.total_trapped_gpus()};
  });
}

ScheduleMetrics schedule_cdi(std::vector<SimJob> jobs, int nodes, NodeShape shape,
                             const GpuPowerModel& power) {
  CdiCluster cluster{nodes, shape.cpu_cores, nodes * shape.gpus};
  const int total_gpus = nodes * shape.gpus;
  return run_fifo(std::move(jobs), cluster, total_gpus, power, [&cluster, total_gpus] {
    return std::pair<int, int>{total_gpus - cluster.free_gpus(), 0};
  });
}

}  // namespace rsd::cluster
