// Cluster composition model (Sections I, IV-A and the Discussion).
//
// Compares how a traditional node architecture and a composable (CDI)
// architecture serve jobs that each want their own CPU-to-GPU ratio:
//
//   * Traditional: resources come in fixed nodes (e.g. Narval's 48 cores +
//     4 GPUs). A job takes whole nodes; whatever it cannot use is trapped —
//     idle devices that can be neither powered down nor scheduled.
//   * CDI: CPU nodes and a GPU chassis are separate pools composed to the
//     job's exact request; idle GPUs stay in the pool (and can be powered
//     down).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace rsd::cluster {

struct NodeShape {
  int cpu_cores = 48;
  int gpus = 4;
};

struct JobRequest {
  std::string name;
  int cpu_cores = 0;
  int gpus = 0;
};

struct Allocation {
  std::string job;
  int nodes = 0;          ///< Whole nodes consumed (traditional only).
  int cpu_cores = 0;      ///< Cores handed to the job.
  int gpus = 0;           ///< GPUs handed to the job.
  int trapped_cores = 0;  ///< Allocated but unused by the job.
  int trapped_gpus = 0;

  /// Cores available to the job per GPU it got.
  [[nodiscard]] double cores_per_gpu() const {
    return gpus > 0 ? static_cast<double>(cpu_cores - trapped_cores) / gpus
                    : static_cast<double>(cpu_cores - trapped_cores);
  }
};

/// Fixed-shape nodes; jobs consume whole nodes.
class TraditionalCluster {
 public:
  TraditionalCluster(int nodes, NodeShape shape) : total_nodes_(nodes), shape_(shape) {
    RSD_ASSERT(nodes >= 0);
    RSD_ASSERT(shape.cpu_cores > 0 && shape.gpus >= 0);
  }

  /// Allocate enough whole nodes to cover both the core and GPU request.
  /// Throws rsd::Error{kInvalidState} when nodes run out.
  Allocation allocate(const JobRequest& request);

  /// Whether `request` would currently fit (without allocating).
  [[nodiscard]] bool fits(const JobRequest& request) const;

  /// Return a previous allocation's resources to the cluster.
  void release(const Allocation& allocation);

  [[nodiscard]] int free_nodes() const { return total_nodes_ - used_nodes_; }
  [[nodiscard]] int used_gpus() const { return used_gpus_; }
  [[nodiscard]] const NodeShape& shape() const { return shape_; }
  [[nodiscard]] int total_nodes() const { return total_nodes_; }
  [[nodiscard]] int total_trapped_cores() const { return trapped_cores_; }
  [[nodiscard]] int total_trapped_gpus() const { return trapped_gpus_; }

  /// Fraction of allocated resources actually used by jobs.
  [[nodiscard]] double core_utilization() const;
  [[nodiscard]] double gpu_utilization() const;

 private:
  int total_nodes_;
  NodeShape shape_;
  int used_nodes_ = 0;
  int used_cores_ = 0;
  int used_gpus_ = 0;
  int trapped_cores_ = 0;
  int trapped_gpus_ = 0;
};

/// Separate CPU-node and GPU-chassis pools composed to exact requests.
class CdiCluster {
 public:
  CdiCluster(int cpu_nodes, int cores_per_node, int pooled_gpus)
      : free_cores_(cpu_nodes * cores_per_node),
        cores_per_node_(cores_per_node),
        free_gpus_(pooled_gpus) {
    RSD_ASSERT(cpu_nodes >= 0 && cores_per_node > 0 && pooled_gpus >= 0);
  }

  /// Compose exactly the requested resources. Throws when the pools are
  /// exhausted. Nothing is ever trapped.
  Allocation allocate(const JobRequest& request);

  [[nodiscard]] bool fits(const JobRequest& request) const {
    return request.cpu_cores <= free_cores_ && request.gpus <= free_gpus_;
  }

  void release(const Allocation& allocation) {
    free_cores_ += allocation.cpu_cores;
    free_gpus_ += allocation.gpus;
  }

  [[nodiscard]] int free_cores() const { return free_cores_; }
  [[nodiscard]] int free_gpus() const { return free_gpus_; }

  /// GPUs that no job holds — candidates for power-down (one of CDI's
  /// headline efficiency wins).
  [[nodiscard]] int powered_down_gpus() const { return free_gpus_; }

 private:
  int free_cores_;
  int cores_per_node_;
  int free_gpus_;
};

/// Outcome of scheduling the same job set both ways (Discussion example).
struct ComparisonResult {
  std::vector<Allocation> traditional;
  std::vector<Allocation> cdi;
  int traditional_trapped_cores = 0;
  int traditional_trapped_gpus = 0;
  int cdi_idle_gpus = 0;  ///< Pool GPUs left over (power-down candidates).
};

/// Schedule `jobs` on a traditional cluster (`nodes` x `shape`) and on a
/// CDI cluster with the same total hardware, and report both outcomes.
[[nodiscard]] ComparisonResult compare_architectures(const std::vector<JobRequest>& jobs,
                                                     int nodes, NodeShape shape);

}  // namespace rsd::cluster
