#include "nn/network.hpp"

#include "core/error.hpp"

namespace rsd::nn {

Scalar MseLoss::value(const Tensor& pred, const Tensor& target) {
  RSD_ASSERT(pred.size() == target.size());
  Scalar sum = 0;
  const auto p = pred.data();
  const auto t = target.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Scalar d = p[i] - t[i];
    sum += d * d;
  }
  return sum / static_cast<Scalar>(pred.size());
}

Tensor MseLoss::gradient(const Tensor& pred, const Tensor& target) {
  RSD_ASSERT(pred.size() == target.size());
  Tensor grad = pred;
  const auto t = target.data();
  auto g = grad.data();
  const Scalar scale = Scalar{2} / static_cast<Scalar>(pred.size());
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = scale * (g[i] - t[i]);
  return grad;
}

Tensor Network::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

void Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

void Network::zero_grads() {
  for (auto& layer : layers_) {
    for (auto view : layer->params()) {
      std::fill(view.grads.begin(), view.grads.end(), Scalar{0});
    }
  }
}

void Network::sgd_step(double lr) {
  for (auto& layer : layers_) {
    for (auto view : layer->params()) {
      for (std::size_t i = 0; i < view.values.size(); ++i) {
        view.values[i] -= lr * view.grads[i];
      }
    }
  }
}

Scalar Network::train_step(const Tensor& input, const Tensor& target, double lr) {
  zero_grads();
  const Tensor pred = forward(input);
  const Scalar loss = MseLoss::value(pred, target);
  backward(MseLoss::gradient(pred, target));
  sgd_step(lr);
  return loss;
}

std::int64_t Network::parameter_count() {
  std::int64_t n = 0;
  for (auto& layer : layers_) {
    for (auto view : layer->params()) n += static_cast<std::int64_t>(view.values.size());
  }
  return n;
}

std::vector<std::pair<std::string, std::int64_t>> Network::forward_flops_by_layer() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(layers_.size());
  for (const auto& layer : layers_) out.emplace_back(layer->name(), layer->forward_flops());
  return out;
}

std::int64_t Network::total_forward_flops() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer->forward_flops();
  return total;
}

Network make_cosmoflow_net(std::int64_t in_channels, std::int64_t volume, int conv_stages,
                           std::int64_t base_filters, std::int64_t outputs, Rng& rng) {
  RSD_ASSERT(conv_stages >= 1);
  RSD_ASSERT(volume % (std::int64_t{1} << conv_stages) == 0);

  Network net;
  std::int64_t channels = in_channels;
  std::int64_t filters = base_filters;
  std::int64_t spatial = volume;
  for (int s = 0; s < conv_stages; ++s) {
    net.add(std::make_unique<Conv3d>(channels, filters, 3, 1, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<MaxPool3d>());
    channels = filters;
    filters *= 2;
    spatial /= 2;
  }
  net.add(std::make_unique<Flatten>());
  const std::int64_t flat = channels * spatial * spatial * spatial;
  net.add(std::make_unique<Dense>(flat, 16, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Dense>(16, outputs, rng));
  return net;
}

}  // namespace rsd::nn
