#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

namespace rsd::nn {

namespace {

/// He-style initialisation for stable ReLU networks.
void init_weights(std::vector<Scalar>& w, std::int64_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : w) v = rng.normal(0.0, stddev);
}

}  // namespace

// ---------------------------------------------------------------- Conv3d

Conv3d::Conv3d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t padding, Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      pad_(padding),
      name_("conv3d_" + std::to_string(in_channels) + "x" + std::to_string(out_channels)) {
  RSD_ASSERT(in_c_ > 0 && out_c_ > 0 && k_ > 0 && pad_ >= 0);
  weight_.assign(static_cast<std::size_t>(out_c_ * in_c_ * k_ * k_ * k_), 0.0);
  bias_.assign(static_cast<std::size_t>(out_c_), 0.0);
  grad_weight_.assign(weight_.size(), 0.0);
  grad_bias_.assign(bias_.size(), 0.0);
  init_weights(weight_, in_c_ * k_ * k_ * k_, rng);
}

Tensor Conv3d::forward(const Tensor& input) {
  RSD_ASSERT(input.rank() == 5);
  RSD_ASSERT(input.dim(1) == in_c_);
  cached_input_ = input;

  const std::int64_t n = input.dim(0);
  const std::int64_t od = input.dim(2) + 2 * pad_ - k_ + 1;
  const std::int64_t oh = input.dim(3) + 2 * pad_ - k_ + 1;
  const std::int64_t ow = input.dim(4) + 2 * pad_ - k_ + 1;
  RSD_ASSERT(od > 0 && oh > 0 && ow > 0);

  Tensor out{{n, out_c_, od, oh, ow}};
  const std::int64_t id = input.dim(2);
  const std::int64_t ih = input.dim(3);
  const std::int64_t iw = input.dim(4);

  auto widx = [this](std::int64_t oc, std::int64_t ic, std::int64_t a, std::int64_t b,
                     std::int64_t c) {
    return static_cast<std::size_t>((((oc * in_c_ + ic) * k_ + a) * k_ + b) * k_ + c);
  };

#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t bi = 0; bi < n; ++bi) {
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      for (std::int64_t z = 0; z < od; ++z) {
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t x = 0; x < ow; ++x) {
            Scalar acc = bias_[static_cast<std::size_t>(oc)];
            for (std::int64_t ic = 0; ic < in_c_; ++ic) {
              for (std::int64_t a = 0; a < k_; ++a) {
                const std::int64_t zi = z + a - pad_;
                if (zi < 0 || zi >= id) continue;
                for (std::int64_t b = 0; b < k_; ++b) {
                  const std::int64_t yi = y + b - pad_;
                  if (yi < 0 || yi >= ih) continue;
                  for (std::int64_t c = 0; c < k_; ++c) {
                    const std::int64_t xi = x + c - pad_;
                    if (xi < 0 || xi >= iw) continue;
                    acc += weight_[widx(oc, ic, a, b, c)] * input.at5(bi, ic, zi, yi, xi);
                  }
                }
              }
            }
            out.at5(bi, oc, z, y, x) = acc;
          }
        }
      }
    }
  }

  flops_ = 2 * n * out_c_ * od * oh * ow * in_c_ * k_ * k_ * k_;
  return out;
}

Tensor Conv3d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::int64_t n = input.dim(0);
  const std::int64_t id = input.dim(2);
  const std::int64_t ih = input.dim(3);
  const std::int64_t iw = input.dim(4);
  const std::int64_t od = grad_output.dim(2);
  const std::int64_t oh = grad_output.dim(3);
  const std::int64_t ow = grad_output.dim(4);

  auto widx = [this](std::int64_t oc, std::int64_t ic, std::int64_t a, std::int64_t b,
                     std::int64_t c) {
    return static_cast<std::size_t>((((oc * in_c_ + ic) * k_ + a) * k_ + b) * k_ + c);
  };

  Tensor grad_input{{n, in_c_, id, ih, iw}};
  // Serial accumulation: gradient buffers are shared across the batch and
  // test-scale workloads keep this loop small.
  for (std::int64_t bi = 0; bi < n; ++bi) {
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      for (std::int64_t z = 0; z < od; ++z) {
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t x = 0; x < ow; ++x) {
            const Scalar g = grad_output.at5(bi, oc, z, y, x);
            grad_bias_[static_cast<std::size_t>(oc)] += g;
            for (std::int64_t ic = 0; ic < in_c_; ++ic) {
              for (std::int64_t a = 0; a < k_; ++a) {
                const std::int64_t zi = z + a - pad_;
                if (zi < 0 || zi >= id) continue;
                for (std::int64_t b = 0; b < k_; ++b) {
                  const std::int64_t yi = y + b - pad_;
                  if (yi < 0 || yi >= ih) continue;
                  for (std::int64_t c = 0; c < k_; ++c) {
                    const std::int64_t xi = x + c - pad_;
                    if (xi < 0 || xi >= iw) continue;
                    grad_weight_[widx(oc, ic, a, b, c)] += g * input.at5(bi, ic, zi, yi, xi);
                    grad_input.at5(bi, ic, zi, yi, xi) += g * weight_[widx(oc, ic, a, b, c)];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

// ------------------------------------------------------------------ Relu

Tensor Relu::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.data()) v = std::max(v, Scalar{0});
  flops_ = input.size();
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const auto in = cached_input_.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (in[i] <= 0) g[i] = 0;
  }
  return grad;
}

// ------------------------------------------------------------- MaxPool3d

Tensor MaxPool3d::forward(const Tensor& input) {
  RSD_ASSERT(input.rank() == 5);
  RSD_ASSERT(input.dim(2) % 2 == 0 && input.dim(3) % 2 == 0 && input.dim(4) % 2 == 0);
  in_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t od = input.dim(2) / 2;
  const std::int64_t oh = input.dim(3) / 2;
  const std::int64_t ow = input.dim(4) / 2;

  Tensor out{{n, c, od, oh, ow}};
  argmax_.assign(static_cast<std::size_t>(out.size()), 0);

  std::size_t oi = 0;
  for (std::int64_t bi = 0; bi < n; ++bi) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t z = 0; z < od; ++z) {
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t x = 0; x < ow; ++x, ++oi) {
            Scalar best = -std::numeric_limits<Scalar>::infinity();
            std::size_t best_idx = 0;
            for (std::int64_t a = 0; a < 2; ++a) {
              for (std::int64_t b = 0; b < 2; ++b) {
                for (std::int64_t d = 0; d < 2; ++d) {
                  const Scalar v = input.at5(bi, ch, 2 * z + a, 2 * y + b, 2 * x + d);
                  if (v > best) {
                    best = v;
                    best_idx = static_cast<std::size_t>(
                        (((bi * c + ch) * input.dim(2) + 2 * z + a) * input.dim(3) + 2 * y + b) *
                            input.dim(4) +
                        2 * x + d);
                  }
                }
              }
            }
            out[oi] = best;
            argmax_[oi] = best_idx;
          }
        }
      }
    }
  }
  flops_ = input.size();
  return out;
}

Tensor MaxPool3d::backward(const Tensor& grad_output) {
  Tensor grad{in_shape_};
  const auto g = grad_output.data();
  for (std::size_t i = 0; i < g.size(); ++i) grad[argmax_[i]] += g[i];
  return grad;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input) {
  in_shape_ = input.shape();
  Tensor out = input;
  out.reshape({input.dim(0), input.size() / input.dim(0)});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  grad.reshape(in_shape_);
  return grad;
}

// ----------------------------------------------------------------- Dense

Dense::Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_f_(in_features),
      out_f_(out_features),
      name_("dense_" + std::to_string(in_features) + "x" + std::to_string(out_features)) {
  RSD_ASSERT(in_f_ > 0 && out_f_ > 0);
  weight_.assign(static_cast<std::size_t>(in_f_ * out_f_), 0.0);
  bias_.assign(static_cast<std::size_t>(out_f_), 0.0);
  grad_weight_.assign(weight_.size(), 0.0);
  grad_bias_.assign(bias_.size(), 0.0);
  init_weights(weight_, in_f_, rng);
}

Tensor Dense::forward(const Tensor& input) {
  RSD_ASSERT(input.rank() == 2);
  RSD_ASSERT(input.dim(1) == in_f_);
  cached_input_ = input;
  const std::int64_t n = input.dim(0);
  Tensor out{{n, out_f_}};
  for (std::int64_t bi = 0; bi < n; ++bi) {
    for (std::int64_t o = 0; o < out_f_; ++o) {
      Scalar acc = bias_[static_cast<std::size_t>(o)];
      for (std::int64_t i = 0; i < in_f_; ++i) {
        acc += weight_[static_cast<std::size_t>(o * in_f_ + i)] * input.at2(bi, i);
      }
      out.at2(bi, o) = acc;
    }
  }
  flops_ = 2 * n * in_f_ * out_f_;
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::int64_t n = cached_input_.dim(0);
  Tensor grad_input{{n, in_f_}};
  for (std::int64_t bi = 0; bi < n; ++bi) {
    for (std::int64_t o = 0; o < out_f_; ++o) {
      const Scalar g = grad_output.at2(bi, o);
      grad_bias_[static_cast<std::size_t>(o)] += g;
      for (std::int64_t i = 0; i < in_f_; ++i) {
        grad_weight_[static_cast<std::size_t>(o * in_f_ + i)] += g * cached_input_.at2(bi, i);
        grad_input.at2(bi, i) += g * weight_[static_cast<std::size_t>(o * in_f_ + i)];
      }
    }
  }
  return grad_input;
}

}  // namespace rsd::nn
