// Sequential network, MSE loss, SGD — enough to really train the
// CosmoFlow-style regression CNN (the application predicts cosmological
// parameters from 3-D density volumes).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace rsd::nn {

/// Mean-squared-error loss over all elements; also produces dLoss/dPred.
struct MseLoss {
  [[nodiscard]] static Scalar value(const Tensor& pred, const Tensor& target);
  [[nodiscard]] static Tensor gradient(const Tensor& pred, const Tensor& target);
};

class Network {
 public:
  Network() = default;

  Network& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

  [[nodiscard]] Tensor forward(const Tensor& input);

  /// Backward from dLoss/dOutput through every layer.
  void backward(const Tensor& grad_output);

  void zero_grads();

  /// SGD step: p -= lr * g for every parameter block.
  void sgd_step(double lr);

  /// One full training step; returns the loss before the update.
  Scalar train_step(const Tensor& input, const Tensor& target, double lr);

  [[nodiscard]] std::int64_t parameter_count();

  /// FLOPs of the most recent forward pass, per layer and total.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> forward_flops_by_layer() const;
  [[nodiscard]] std::int64_t total_forward_flops() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// A scaled-down CosmoFlow: conv3d/pool stages over a cubic volume followed
/// by dense regression heads (Mathuriya et al. 2018's architecture shape).
/// `volume` must be divisible by 2^stages.
[[nodiscard]] Network make_cosmoflow_net(std::int64_t in_channels, std::int64_t volume,
                                         int conv_stages, std::int64_t base_filters,
                                         std::int64_t outputs, Rng& rng);

}  // namespace rsd::nn
