// Dense N-dimensional tensor for the CosmoFlow-style CNN.
//
// Double precision is used so the test suite can verify layer gradients
// against central finite differences to tight tolerances; the workload
// generator separately accounts transfer sizes in float32, as the real
// application ships.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace rsd::nn {

using Scalar = double;

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
    std::int64_t n = 1;
    for (const auto d : shape_) {
      RSD_ASSERT(d > 0);
      n *= d;
    }
    data_.assign(static_cast<std::size_t>(n), Scalar{0});
  }

  [[nodiscard]] const std::vector<std::int64_t>& shape() const { return shape_; }
  [[nodiscard]] std::int64_t dim(std::size_t i) const { return shape_.at(i); }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  [[nodiscard]] std::span<Scalar> data() { return data_; }
  [[nodiscard]] std::span<const Scalar> data() const { return data_; }

  [[nodiscard]] Scalar& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] Scalar operator[](std::size_t i) const { return data_[i]; }

  /// 5-D accessor (N, C, D, H, W) — the CNN's canonical layout.
  [[nodiscard]] Scalar& at5(std::int64_t n, std::int64_t c, std::int64_t d, std::int64_t h,
                            std::int64_t w) {
    return data_[index5(n, c, d, h, w)];
  }
  [[nodiscard]] Scalar at5(std::int64_t n, std::int64_t c, std::int64_t d, std::int64_t h,
                           std::int64_t w) const {
    return data_[index5(n, c, d, h, w)];
  }

  /// 2-D accessor (N, F) for dense layers.
  [[nodiscard]] Scalar& at2(std::int64_t n, std::int64_t f) {
    RSD_ASSERT(rank() == 2);
    return data_[static_cast<std::size_t>(n * shape_[1] + f)];
  }
  [[nodiscard]] Scalar at2(std::int64_t n, std::int64_t f) const {
    RSD_ASSERT(rank() == 2);
    return data_[static_cast<std::size_t>(n * shape_[1] + f)];
  }

  void fill(Scalar v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape without copying; total size must match.
  void reshape(std::vector<std::int64_t> shape) {
    std::int64_t n = 1;
    for (const auto d : shape) n *= d;
    RSD_ASSERT(n == size());
    shape_ = std::move(shape);
  }

 private:
  [[nodiscard]] std::size_t index5(std::int64_t n, std::int64_t c, std::int64_t d,
                                   std::int64_t h, std::int64_t w) const {
    RSD_ASSERT(rank() == 5);
    return static_cast<std::size_t>(
        (((n * shape_[1] + c) * shape_[2] + d) * shape_[3] + h) * shape_[4] + w);
  }

  std::vector<std::int64_t> shape_;
  std::vector<Scalar> data_;
};

}  // namespace rsd::nn
