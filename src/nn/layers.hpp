// CNN layers (forward + backward) for the CosmoFlow-style network:
// Conv3D, ReLU, MaxPool3D, Flatten, Dense. Each layer also reports its
// forward FLOP count, which parameterises the CosmoFlow workload
// generator's kernel-duration model.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "nn/tensor.hpp"

namespace rsd::nn {

/// A trainable parameter block and its gradient accumulator.
struct ParamView {
  std::span<Scalar> values;
  std::span<Scalar> grads;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; must cache whatever backward needs.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Backward pass: given dLoss/dOutput, accumulate parameter gradients and
  /// return dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Trainable parameter blocks (empty for parameterless layers).
  virtual std::vector<ParamView> params() { return {}; }

  /// FLOPs of the most recent forward pass (0 before any forward).
  [[nodiscard]] virtual std::int64_t forward_flops() const { return 0; }
};

/// 3-D convolution, stride 1, symmetric zero padding. Input and output are
/// (N, C, D, H, W).
class Conv3d final : public Layer {
 public:
  Conv3d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t padding, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return name_; }
  std::vector<ParamView> params() override { return {{weight_, grad_weight_}, {bias_, grad_bias_}}; }
  [[nodiscard]] std::int64_t forward_flops() const override { return flops_; }

  [[nodiscard]] std::int64_t out_channels() const { return out_c_; }

 private:
  std::int64_t in_c_;
  std::int64_t out_c_;
  std::int64_t k_;
  std::int64_t pad_;
  std::string name_;
  std::vector<Scalar> weight_;  ///< (outC, inC, k, k, k)
  std::vector<Scalar> bias_;    ///< (outC)
  std::vector<Scalar> grad_weight_;
  std::vector<Scalar> grad_bias_;
  Tensor cached_input_;
  std::int64_t flops_ = 0;
};

class Relu final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "relu"; }
  [[nodiscard]] std::int64_t forward_flops() const override { return flops_; }

 private:
  Tensor cached_input_;
  std::int64_t flops_ = 0;
};

/// 2x2x2 max pooling, stride 2; spatial dims must be even.
class MaxPool3d final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "maxpool3d"; }
  [[nodiscard]] std::int64_t forward_flops() const override { return flops_; }

 private:
  std::vector<std::int64_t> in_shape_;
  std::vector<std::size_t> argmax_;  ///< Input flat index per output element.
  std::int64_t flops_ = 0;
};

/// (N, C, D, H, W) -> (N, C*D*H*W).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  std::vector<std::int64_t> in_shape_;
};

class Dense final : public Layer {
 public:
  Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return name_; }
  std::vector<ParamView> params() override { return {{weight_, grad_weight_}, {bias_, grad_bias_}}; }
  [[nodiscard]] std::int64_t forward_flops() const override { return flops_; }

 private:
  std::int64_t in_f_;
  std::int64_t out_f_;
  std::string name_;
  std::vector<Scalar> weight_;  ///< (out, in)
  std::vector<Scalar> bias_;
  std::vector<Scalar> grad_weight_;
  std::vector<Scalar> grad_bias_;
  Tensor cached_input_;
  std::int64_t flops_ = 0;
};

}  // namespace rsd::nn
