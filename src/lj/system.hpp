// A real Lennard-Jones molecular dynamics engine — the computational core
// of the LAMMPS LJ benchmark the paper profiles (Section III-D.1).
//
// Standard reduced-unit melt setup, matching LAMMPS's `in.lj`:
//   * fcc lattice at reduced density rho* = 0.8442 (4 atoms per unit cell,
//     so a "box size" of b lattice cells holds 4*b^3 atoms; the paper's
//     box 20 = 32,000 atoms),
//   * Maxwell velocities at T* = 1.44, zeroed net momentum,
//   * LJ 12-6 potential, cutoff r_c = 2.5 sigma, NVE velocity Verlet,
//     dt* = 0.005,
//   * linked-cell neighbor search, O(N) per step, OpenMP-parallel forces.
//
// The engine is both a runnable example application and the source of the
// per-step work counts (pair interactions, atoms moved) that parameterise
// the LAMMPS workload generator in rsd::apps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "lj/vec3.hpp"

namespace rsd::lj {

struct LjParams {
  double density = 0.8442;     ///< Reduced density rho*.
  double temperature = 1.44;   ///< Initial reduced temperature T*.
  double cutoff = 2.5;         ///< Potential cutoff r_c (sigma units).
  double dt = 0.005;           ///< Verlet timestep (tau units).
  std::uint64_t seed = 87287;  ///< Velocity seed (LAMMPS in.lj default).
};

/// Work performed in one step — consumed by the CDI workload generator.
struct StepWork {
  std::int64_t pair_interactions = 0;  ///< Pairs within cutoff (counted once).
  std::int64_t atoms = 0;
};

class System {
 public:
  /// Build an fcc lattice of `cells`^3 unit cells (4*cells^3 atoms).
  System(int cells, const LjParams& params = {});

  [[nodiscard]] std::int64_t atom_count() const { return static_cast<std::int64_t>(pos_.size()); }
  [[nodiscard]] double box_length() const { return box_; }
  [[nodiscard]] const LjParams& params() const { return params_; }

  [[nodiscard]] std::span<const Vec3> positions() const { return pos_; }
  [[nodiscard]] std::span<const Vec3> velocities() const { return vel_; }
  [[nodiscard]] std::span<const Vec3> forces() const { return force_; }

  /// One velocity-Verlet step; returns the work performed.
  StepWork step();

  /// Run n steps; returns accumulated work.
  StepWork run(int n);

  /// Recompute forces for the current positions (also done by step()).
  void compute_forces();

  // --- Observables -------------------------------------------------------
  [[nodiscard]] double potential_energy() const { return potential_; }
  [[nodiscard]] double kinetic_energy() const;
  [[nodiscard]] double total_energy() const { return potential_energy() + kinetic_energy(); }
  /// Instantaneous reduced temperature: 2*KE / (3*(N-1)) (COM-free DOF).
  [[nodiscard]] double temperature() const;
  [[nodiscard]] Vec3 net_momentum() const;

  /// Pair count of the most recent force evaluation.
  [[nodiscard]] std::int64_t last_pair_count() const { return last_pairs_; }

  /// Brute-force O(N^2) force/energy reference (for validation tests).
  void compute_forces_reference();

 private:
  void init_lattice(int cells);
  void init_velocities();
  void build_cells();
  [[nodiscard]] Vec3 minimum_image(Vec3 d) const;

  LjParams params_;
  double box_ = 0.0;        ///< Cubic box edge length.
  double cut2_ = 0.0;       ///< cutoff^2.
  double e_shift_ = 0.0;    ///< Potential shift at the cutoff.
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;
  std::vector<Vec3> force_;
  double potential_ = 0.0;
  std::int64_t last_pairs_ = 0;

  // Linked-cell grid.
  int grid_ = 0;            ///< Cells per dimension.
  double cell_len_ = 0.0;
  std::vector<std::vector<std::int32_t>> cell_atoms_;
};

}  // namespace rsd::lj
