#include "lj/system.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsd::lj {

System::System(int cells, const LjParams& params) : params_(params) {
  RSD_ASSERT(cells >= 1);
  RSD_ASSERT(params_.density > 0.0);
  RSD_ASSERT(params_.cutoff > 0.0);
  init_lattice(cells);
  init_velocities();
  cut2_ = params_.cutoff * params_.cutoff;
  // Shift so the potential is zero at the cutoff (energy conservation).
  const double inv_rc6 = 1.0 / std::pow(params_.cutoff, 6);
  e_shift_ = 4.0 * (inv_rc6 * inv_rc6 - inv_rc6);
  compute_forces();
}

void System::init_lattice(int cells) {
  const auto n = static_cast<std::int64_t>(4) * cells * cells * cells;
  const double volume = static_cast<double>(n) / params_.density;
  box_ = std::cbrt(volume);
  const double a = box_ / static_cast<double>(cells);

  static constexpr double kBasis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};

  pos_.reserve(static_cast<std::size_t>(n));
  for (int ix = 0; ix < cells; ++ix) {
    for (int iy = 0; iy < cells; ++iy) {
      for (int iz = 0; iz < cells; ++iz) {
        for (const auto& b : kBasis) {
          pos_.push_back(Vec3{(static_cast<double>(ix) + b[0]) * a,
                              (static_cast<double>(iy) + b[1]) * a,
                              (static_cast<double>(iz) + b[2]) * a});
        }
      }
    }
  }
  vel_.assign(pos_.size(), Vec3{});
  force_.assign(pos_.size(), Vec3{});
}

void System::init_velocities() {
  Rng rng{params_.seed};
  const double sigma = std::sqrt(params_.temperature);
  for (auto& v : vel_) {
    v = Vec3{rng.normal(0.0, sigma), rng.normal(0.0, sigma), rng.normal(0.0, sigma)};
  }
  // Zero the centre-of-mass momentum.
  Vec3 p = net_momentum();
  const double inv_n = 1.0 / static_cast<double>(vel_.size());
  for (auto& v : vel_) v -= p * inv_n;
  // Rescale to the exact target temperature.
  const double t_now = temperature();
  if (t_now > 0.0) {
    const double scale = std::sqrt(params_.temperature / t_now);
    for (auto& v : vel_) v *= scale;
  }
}

Vec3 System::minimum_image(Vec3 d) const {
  d.x -= box_ * std::round(d.x / box_);
  d.y -= box_ * std::round(d.y / box_);
  d.z -= box_ * std::round(d.z / box_);
  return d;
}

void System::build_cells() {
  grid_ = static_cast<int>(box_ / params_.cutoff);
  if (grid_ < 3) return;  // linked cells need >=3 cells/dim under PBC
  cell_len_ = box_ / static_cast<double>(grid_);
  const auto ncells = static_cast<std::size_t>(grid_) * grid_ * grid_;
  cell_atoms_.assign(ncells, {});
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    auto idx = [&](double c) {
      int k = static_cast<int>(c / cell_len_);
      if (k < 0) k = 0;
      if (k >= grid_) k = grid_ - 1;
      return k;
    };
    const int cx = idx(pos_[i].x);
    const int cy = idx(pos_[i].y);
    const int cz = idx(pos_[i].z);
    cell_atoms_[(static_cast<std::size_t>(cx) * grid_ + cy) * grid_ + cz].push_back(
        static_cast<std::int32_t>(i));
  }
}

void System::compute_forces() {
  build_cells();
  if (grid_ < 3) {
    compute_forces_reference();
    return;
  }

  const auto n = static_cast<std::int64_t>(pos_.size());
  double potential = 0.0;
  std::int64_t pairs = 0;

#pragma omp parallel for schedule(static) reduction(+ : potential, pairs)
  for (std::int64_t i = 0; i < n; ++i) {
    const Vec3 pi = pos_[static_cast<std::size_t>(i)];
    auto wrap = [this](int k) { return (k + grid_) % grid_; };
    const int cx = std::min(static_cast<int>(pi.x / cell_len_), grid_ - 1);
    const int cy = std::min(static_cast<int>(pi.y / cell_len_), grid_ - 1);
    const int cz = std::min(static_cast<int>(pi.z / cell_len_), grid_ - 1);

    Vec3 f{};
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const auto cell =
              (static_cast<std::size_t>(wrap(cx + dx)) * grid_ + wrap(cy + dy)) * grid_ +
              wrap(cz + dz);
          for (const std::int32_t j : cell_atoms_[cell]) {
            if (j == i) continue;
            const Vec3 d = minimum_image(pi - pos_[static_cast<std::size_t>(j)]);
            const double r2 = d.norm2();
            if (r2 >= cut2_) continue;
            const double inv_r2 = 1.0 / r2;
            const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
            const double inv_r12 = inv_r6 * inv_r6;
            f += d * (24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2);
            // Each unordered pair is visited twice; halve the shares.
            potential += 0.5 * (4.0 * (inv_r12 - inv_r6) - e_shift_);
            ++pairs;
          }
        }
      }
    }
    force_[static_cast<std::size_t>(i)] = f;
  }

  potential_ = potential;
  last_pairs_ = pairs / 2;
}

void System::compute_forces_reference() {
  const std::size_t n = pos_.size();
  std::fill(force_.begin(), force_.end(), Vec3{});
  potential_ = 0.0;
  last_pairs_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 d = minimum_image(pos_[i] - pos_[j]);
      const double r2 = d.norm2();
      if (r2 >= cut2_) continue;
      const double inv_r2 = 1.0 / r2;
      const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
      const double inv_r12 = inv_r6 * inv_r6;
      const Vec3 f = d * (24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2);
      force_[i] += f;
      force_[j] -= f;
      potential_ += 4.0 * (inv_r12 - inv_r6) - e_shift_;
      ++last_pairs_;
    }
  }
}

StepWork System::step() {
  const double half_dt = 0.5 * params_.dt;
  const std::size_t n = pos_.size();

#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const auto k = static_cast<std::size_t>(i);
    vel_[k] += force_[k] * half_dt;
    pos_[k] += vel_[k] * params_.dt;
    // Wrap into the primary box.
    pos_[k].x -= box_ * std::floor(pos_[k].x / box_);
    pos_[k].y -= box_ * std::floor(pos_[k].y / box_);
    pos_[k].z -= box_ * std::floor(pos_[k].z / box_);
  }

  compute_forces();

#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const auto k = static_cast<std::size_t>(i);
    vel_[k] += force_[k] * half_dt;
  }

  return StepWork{last_pairs_, atom_count()};
}

StepWork System::run(int n) {
  StepWork total;
  for (int i = 0; i < n; ++i) {
    const StepWork w = step();
    total.pair_interactions += w.pair_interactions;
    total.atoms += w.atoms;
  }
  return total;
}

double System::kinetic_energy() const {
  double ke = 0.0;
  for (const auto& v : vel_) ke += 0.5 * v.norm2();
  return ke;
}

double System::temperature() const {
  const auto n = static_cast<double>(vel_.size());
  if (n < 2) return 0.0;
  return 2.0 * kinetic_energy() / (3.0 * (n - 1.0));
}

Vec3 System::net_momentum() const {
  Vec3 p{};
  for (const auto& v : vel_) p += v;
  return p;
}

}  // namespace rsd::lj
