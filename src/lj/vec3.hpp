// Minimal 3-vector for the molecular dynamics engine.
#pragma once

#include <cmath>

namespace rsd::lj {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }

  [[nodiscard]] constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] constexpr double norm2() const { return dot(*this); }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

}  // namespace rsd::lj
