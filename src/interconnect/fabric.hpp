// Pluggable row fabrics: factory functions that stamp out the four
// row-scale interconnect shapes the paper's Discussion asks about, as
// `net::Topology` link graphs.
//
//   * ring              — each GPU port wired to its two neighbours; the
//                         cheapest row, bandwidth-optimal for ring
//                         collectives, diameter n/2;
//   * fullmesh          — a dedicated duplex link per GPU pair; an upper
//                         bound no real row would build past a chassis;
//   * eswitch           — one non-blocking electrical packet switch, every
//                         GPU one port; per-hop forwarding latency;
//   * ocs               — an optical circuit switch: passive (no per-hop
//                         forwarding cost, fibre-class ports) but each
//                         ingress port drives one circuit at a time and
//                         retargeting it pays `ocs_reconfigure` — the
//                         trade the fabric_compare experiment quantifies.
//
// A fabric name parses from the CLI/env (`--fabric` / RSD_FABRIC, see
// harness::ExperimentContext): "ring", "fullmesh", "eswitch", "ocs".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/units.hpp"
#include "interconnect/link.hpp"
#include "interconnect/topology.hpp"

namespace rsd::net {

enum class FabricKind : std::uint8_t {
  kRing,
  kFullMesh,
  kElectricalSwitch,
  kOpticalCircuit,
};

[[nodiscard]] const char* to_string(FabricKind kind);
/// Accepts the canonical names plus common aliases ("full-mesh",
/// "electrical-switch", "optical", ...). Throws rsd::Error{kInvalidArgument}
/// on anything else.
[[nodiscard]] FabricKind parse_fabric_kind(std::string_view name);
[[nodiscard]] const std::vector<FabricKind>& all_fabric_kinds();

struct FabricParams {
  FabricKind kind = FabricKind::kRing;
  int gpus = 8;
  /// Chassis grouping: device i belongs to chassis i / gpus_per_chassis
  /// (hierarchical collectives reduce inside a chassis first).
  int gpus_per_chassis = 8;
  /// Per-port link characteristics (NVLink-class defaults).
  double link_bandwidth_gib_s = 200.0;
  SimDuration link_latency = duration::microseconds(2.0);
  /// Electrical switch forwarding cost per traversal (matches
  /// interconnect::CdiNetworkParams::per_hop_latency's scale).
  SimDuration switch_hop_latency = duration::microseconds(0.12);
  /// Optical circuit retarget delay (fast MEMS/AWGR-class OCS).
  SimDuration ocs_reconfigure = duration::microseconds(100.0);

  /// True multi-chassis graph emission: each chassis gains a kNic node
  /// wired to its member GPUs, and the fabric shape recurs at row scale
  /// over fibre links between the NICs (ring of NICs, NIC full mesh, or a
  /// row-level switch). Off by default: flat fabrics keep chassis as a
  /// pure grouping tag and build byte-identical graphs to before.
  bool chassis_nics = false;
  /// Upper bound on chassis count (0 = unlimited). With a bound set,
  /// build_fabric rejects shapes needing more chassis than the row has.
  int max_chassis = 0;
  /// Also emit a kHost endpoint behind a PCIe stub into nic0 — the CDI
  /// host-side attach point replay's transport binding routes through.
  bool host_endpoint = false;
  /// NIC/fibre/host-stub link characteristics. Defaults mirror
  /// interconnect::CdiNetworkParams: 24 GiB/s fabric payload bandwidth,
  /// 0.35 us per NIC traversal, 50 m of fibre, 8 us PCIe stub.
  double nic_bandwidth_gib_s = 24.0;
  SimDuration nic_latency = duration::microseconds(0.35);
  double fibre_bandwidth_gib_s = 24.0;
  SimDuration fibre_latency = interconnect::fibre_delay(0.05);
  double host_bandwidth_gib_s = 24.0;
  SimDuration host_latency = duration::microseconds(8.0);
};

/// Build the fabric's link graph. Throws rsd::Error{kInvalidArgument} on
/// gpus < 1 or gpus_per_chassis < 1.
[[nodiscard]] Topology build_fabric(const FabricParams& params);

/// The event-driven collective algorithms layered over a fabric
/// (collective.hpp); parsed alongside the fabric name where experiments
/// take an algorithm column.
enum class Algorithm : std::uint8_t {
  kRing,          ///< 2(n-1) neighbour phases of bytes/n (bandwidth-optimal).
  kTree,          ///< Binomial reduce + broadcast of the full payload.
  kHierarchical,  ///< Ring inside each chassis, ring across leaders, fan-out.
};

[[nodiscard]] const char* to_string(Algorithm algorithm);

}  // namespace rsd::net
