#include "interconnect/link.hpp"

namespace rsd::interconnect {

Link make_pcie_gen4_x16() {
  return Link{LinkParams{
      .name = "pcie-gen4-x16",
      .latency = duration::microseconds(8.0),
      .bandwidth_gib_s = 24.0,
  }};
}

Link make_cdi_link(const CdiNetworkParams& params) {
  return Link{LinkParams{
      .name = "cdi-network",
      .latency = params.pcie_stub_latency + params.slack(),
      .bandwidth_gib_s = params.bandwidth_gib_s,
  }};
}

}  // namespace rsd::interconnect
