#include "interconnect/collective.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"

namespace rsd::net {

namespace {

sim::Task<> counted_transfer(Network& network, int src, int dst, Bytes bytes,
                             sim::WaitGroup& wg) {
  co_await network.transfer_between_devices(src, dst, bytes);
  wg.done();
}

}  // namespace

sim::Task<> ring_allreduce(Network& network, std::vector<int> ranks, Bytes bytes_per_rank) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) co_return;
  sim::Scheduler& sched = network.scheduler();
  const Bytes chunk = bytes_per_rank / static_cast<Bytes>(n);
  // Reduce-scatter then allgather: 2(n-1) bulk-synchronous phases, every
  // rank shipping one chunk to its ring successor per phase.
  const int phases = 2 * (n - 1);
  for (int phase = 0; phase < phases; ++phase) {
    sim::WaitGroup wg{sched};
    wg.add(n);
    for (int i = 0; i < n; ++i) {
      sched.spawn(counted_transfer(network, ranks[static_cast<std::size_t>(i)],
                                   ranks[static_cast<std::size_t>((i + 1) % n)], chunk, wg));
    }
    co_await wg.wait();
  }
}

sim::Task<> tree_allreduce(Network& network, std::vector<int> ranks, Bytes bytes_per_rank) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) co_return;
  sim::Scheduler& sched = network.scheduler();
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;

  // Binomial reduce towards ranks[0]: in round r, every surviving rank at
  // an odd multiple of 2^r ships the full payload to its partner 2^r
  // below. Rounds are bulk-synchronous (reduction needs both operands).
  for (int r = 0; r < rounds; ++r) {
    const int stride = 1 << r;
    sim::WaitGroup wg{sched};
    int sends = 0;
    for (int i = stride; i < n; i += 2 * stride) {
      ++sends;
      wg.add(1);
      sched.spawn(counted_transfer(network, ranks[static_cast<std::size_t>(i)],
                                   ranks[static_cast<std::size_t>(i - stride)],
                                   bytes_per_rank, wg));
    }
    if (sends > 0) co_await wg.wait();
  }

  // Binomial broadcast back down: mirror rounds in reverse order.
  for (int r = rounds - 1; r >= 0; --r) {
    const int stride = 1 << r;
    sim::WaitGroup wg{sched};
    int sends = 0;
    for (int i = stride; i < n; i += 2 * stride) {
      ++sends;
      wg.add(1);
      sched.spawn(counted_transfer(network, ranks[static_cast<std::size_t>(i - stride)],
                                   ranks[static_cast<std::size_t>(i)], bytes_per_rank, wg));
    }
    if (sends > 0) co_await wg.wait();
  }
}

sim::Task<> hierarchical_allreduce(Network& network, std::vector<int> ranks,
                                   Bytes bytes_per_rank) {
  const int n = static_cast<int>(ranks.size());
  if (n <= 1) co_return;
  sim::Scheduler& sched = network.scheduler();

  // Group by chassis tag (std::map: deterministic ascending-tag order).
  std::map<int, std::vector<int>> groups;
  for (const int rank : ranks) {
    groups[network.topology().node(network.topology().device(rank)).chassis].push_back(rank);
  }

  // Stage 1: ring allreduce inside every chassis, all chassis concurrent.
  {
    sim::WaitGroup wg{sched};
    for (const auto& [tag, members] : groups) {
      if (members.size() < 2) continue;
      wg.add(1);
      sched.spawn([](Network& net, std::vector<int> group, Bytes bytes,
                     sim::WaitGroup& group_wg) -> sim::Task<> {
        co_await ring_allreduce(net, std::move(group), bytes);
        group_wg.done();
      }(network, members, bytes_per_rank, wg));
    }
    if (wg.count() > 0) co_await wg.wait();
  }

  // Stage 2: ring allreduce across the chassis leaders.
  std::vector<int> leaders;
  leaders.reserve(groups.size());
  for (const auto& [tag, members] : groups) leaders.push_back(members.front());
  co_await ring_allreduce(network, leaders, bytes_per_rank);

  // Stage 3: leaders fan the reduced payload back out to their chassis;
  // the shared leader uplink serialises the copies via link contention.
  {
    sim::WaitGroup wg{sched};
    for (const auto& [tag, members] : groups) {
      for (std::size_t m = 1; m < members.size(); ++m) {
        wg.add(1);
        sched.spawn(
            counted_transfer(network, members.front(), members[m], bytes_per_rank, wg));
      }
    }
    if (wg.count() > 0) co_await wg.wait();
  }
}

sim::Task<> run_allreduce(Network& network, Algorithm algorithm, Bytes bytes_per_rank,
                          int participants) {
  if (participants < 1) {
    throw Error{ErrorCode::kInvalidArgument, "net::run_allreduce: participants must be >= 1"};
  }
  if (participants > network.topology().device_count()) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::run_allreduce: " + std::to_string(participants) +
                    " participants exceed the topology's " +
                    std::to_string(network.topology().device_count()) + " devices"};
  }
  std::vector<int> ranks(static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) ranks[static_cast<std::size_t>(i)] = i;
  switch (algorithm) {
    case Algorithm::kRing:
      return ring_allreduce(network, std::move(ranks), bytes_per_rank);
    case Algorithm::kTree:
      return tree_allreduce(network, std::move(ranks), bytes_per_rank);
    case Algorithm::kHierarchical:
      return hierarchical_allreduce(network, std::move(ranks), bytes_per_rank);
  }
  throw Error{ErrorCode::kInvalidArgument, "net::run_allreduce: unknown algorithm"};
}

AllreduceReport measure_allreduce(const Topology& topology, Algorithm algorithm,
                                  Bytes bytes_per_rank, int participants,
                                  std::vector<LinkUsageSample>* usage) {
  sim::Scheduler sched;
  AllreduceReport report;
  const std::uint64_t hits_before = topology.route_table_hits();
  {
    Network network{sched, topology};
    sched.spawn(run_allreduce(network, algorithm, bytes_per_rank, participants));
    sched.run();
    RSD_ASSERT(sched.unfinished_count() == 0);
    report.transfers = network.transfers();
    report.contended_transfers = network.contended_transfers();
    report.reconfigurations = network.reconfigurations();
    report.link_busy_total = network.link_busy_total();
    report.express_transfers = network.express_transfers();
    report.route_hits = topology.route_table_hits() - hits_before;
    if (usage != nullptr) *usage = network.link_usage();
  }
  report.duration = sched.now() - SimTime::zero();
  return report;
}

}  // namespace rsd::net
