// The one seam every byte crosses (`net::Transport`).
//
// Historically each subsystem priced its own data movement: chassis
// collectives asked the Topology for an analytic transfer time, wl replay
// priced inter-lane copies with the same closed form, and the CDI
// host-side hop was a flat PCIe-stub constant. None of them saw FIFO link
// contention, OCS circuit state, or the express fast path — so fabric
// congestion never fed the paper's Eq 2-3 penalty bounds.
//
// `Transport` is the abstract seam those paths now share. A transport
// owns a routed view of the machine (its `Topology`), executes transfers
// as simulated occupations (`transfer`), and exposes the uncontended
// closed-form cost (`price`) for callers that need a duration without
// running the event machinery (engine service times, lookahead bounds).
// `net::Network` is the production implementation; tests can substitute
// a stub to pin protocol behaviour without a link graph.
#pragma once

#include "core/units.hpp"
#include "interconnect/topology.hpp"
#include "sim/task.hpp"

namespace rsd::net {

/// Per-transfer observability, filled in by `transfer` when the caller
/// passes a sink: how much circuit-reconfiguration delay the transfer
/// paid before its first byte moved, and whether it found any link busy
/// and had to queue. Callers that don't care pass nullptr.
struct TransferStats {
  SimDuration reconfig = SimDuration::zero();
  bool queued = false;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// The machine graph this transport routes over.
  [[nodiscard]] virtual const Topology& topology() const = 0;

  /// Move `bytes` from node `src` to node `dst` over the routed path;
  /// resumes when the last byte arrives. `stats`, when non-null, receives
  /// the contention/reconfiguration the transfer observed.
  virtual sim::Task<> transfer(NodeId src, NodeId dst, Bytes bytes,
                               TransferStats* stats) = 0;

  /// Stats-free convenience; the overload every pre-seam call site uses.
  sim::Task<> transfer(NodeId src, NodeId dst, Bytes bytes) {
    return transfer(src, dst, bytes, nullptr);
  }

  /// Uncontended closed-form cost of the same movement: path latency plus
  /// serialisation at the bottleneck link. What engines charge as service
  /// time and what an uncontended `transfer` takes exactly.
  [[nodiscard]] virtual SimDuration price(NodeId src, NodeId dst, Bytes bytes) const = 0;

  /// Device-index convenience (device i = topology().device(i)).
  sim::Task<> transfer_between_devices(int src_device, int dst_device, Bytes bytes);
};

}  // namespace rsd::net
