#include "interconnect/topology.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace rsd::net {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kGpu: return "gpu";
    case NodeKind::kHost: return "host";
    case NodeKind::kNic: return "nic";
    case NodeKind::kSwitch: return "switch";
  }
  return "?";
}

const char* to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kNvlink: return "nvlink";
    case LinkKind::kPcie: return "pcie";
    case LinkKind::kNic: return "nic";
    case LinkKind::kSwitch: return "switch";
    case LinkKind::kFibre: return "fibre";
  }
  return "?";
}

NodeId Topology::add_node(NodeDesc desc) {
  const auto id = static_cast<NodeId>(nodes_.size());
  if (desc.kind == NodeKind::kGpu) devices_.push_back(id);
  nodes_.push_back(std::move(desc));
  out_.emplace_back();
  return id;
}

LinkId Topology::add_link(LinkDesc desc) {
  const auto n = static_cast<NodeId>(nodes_.size());
  if (desc.src < 0 || desc.src >= n || desc.dst < 0 || desc.dst >= n) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: link endpoint out of range"};
  }
  if (desc.src == desc.dst) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: self-loop link"};
  }
  if (!(desc.bandwidth_gib_s > 0.0)) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: non-positive link bandwidth"};
  }
  if (desc.latency.ns() < 0) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: negative link latency"};
  }
  const auto id = static_cast<LinkId>(links_.size());
  out_[static_cast<std::size_t>(desc.src)].push_back(id);
  links_.push_back(desc);
  route_cache_.clear();
  return id;
}

void Topology::add_duplex(NodeId a, NodeId b, LinkKind kind, double bandwidth_gib_s,
                          SimDuration latency) {
  add_link(LinkDesc{a, b, kind, bandwidth_gib_s, latency});
  add_link(LinkDesc{b, a, kind, bandwidth_gib_s, latency});
}

std::vector<int> Topology::device_chassis_tags() const {
  std::vector<int> tags;
  for (const NodeId id : devices_) {
    const int tag = node(id).chassis;
    if (std::find(tags.begin(), tags.end(), tag) == tags.end()) tags.push_back(tag);
  }
  return tags;
}

namespace {

/// Dijkstra frontier entry ordered by (latency, hops, node id) — a total
/// order over simulation state only, so routes never depend on container
/// iteration quirks or thread timing.
struct Frontier {
  std::int64_t latency_ns;
  int hops;
  NodeId node;

  [[nodiscard]] bool operator>(const Frontier& o) const {
    return std::tie(latency_ns, hops, node) > std::tie(o.latency_ns, o.hops, o.node);
  }
};

}  // namespace

const Path& Topology::route(NodeId src, NodeId dst) const {
  const auto n = static_cast<NodeId>(nodes_.size());
  if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology::route: bad endpoints"};
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
                            static_cast<std::uint32_t>(dst);
  if (const auto it = route_cache_.find(key); it != route_cache_.end()) return it->second;

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(nodes_.size(), kInf);
  std::vector<int> hops(nodes_.size(), 0);
  std::vector<LinkId> via(nodes_.size(), kInvalidLink);
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
  dist[static_cast<std::size_t>(src)] = 0;
  frontier.push(Frontier{0, 0, src});

  while (!frontier.empty()) {
    const Frontier f = frontier.top();
    frontier.pop();
    if (f.latency_ns > dist[static_cast<std::size_t>(f.node)]) continue;
    if (f.node == dst) break;
    // Leaving an intermediate node pays its forwarding latency (the
    // source endpoint forwards nothing of its own).
    const std::int64_t forward =
        f.node == src ? 0 : node(f.node).forward_latency.ns();
    for (const LinkId lid : out_[static_cast<std::size_t>(f.node)]) {
      const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
      const std::int64_t cand = f.latency_ns + forward + l.latency.ns();
      auto& best = dist[static_cast<std::size_t>(l.dst)];
      auto& best_hops = hops[static_cast<std::size_t>(l.dst)];
      const int cand_hops = f.hops + 1;
      if (cand < best || (cand == best && cand_hops < best_hops)) {
        best = cand;
        best_hops = cand_hops;
        via[static_cast<std::size_t>(l.dst)] = lid;
        frontier.push(Frontier{cand, cand_hops, l.dst});
      }
    }
  }

  if (dist[static_cast<std::size_t>(dst)] == kInf) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::Topology::route: no path " + node(src).name + " -> " + node(dst).name};
  }

  Path path;
  path.latency = duration::nanoseconds(dist[static_cast<std::size_t>(dst)]);
  path.bottleneck_gib_s = std::numeric_limits<double>::infinity();
  for (NodeId at = dst; at != src;) {
    const LinkId lid = via[static_cast<std::size_t>(at)];
    const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
    path.links.push_back(lid);
    path.bottleneck_gib_s = std::min(path.bottleneck_gib_s, l.bandwidth_gib_s);
    if (l.dst != dst && node(l.dst).optical) ++path.optical_hops;
    at = l.src;
  }
  std::reverse(path.links.begin(), path.links.end());
  return route_cache_.emplace(key, std::move(path)).first->second;
}

SimDuration Topology::transfer_time(NodeId src, NodeId dst, Bytes bytes) const {
  const Path& p = route(src, dst);
  return p.latency + duration::seconds(static_cast<double>(bytes) /
                                       (p.bottleneck_gib_s * static_cast<double>(kGiB)));
}

SimDuration Topology::min_device_path_latency() const {
  if (devices_.size() < 2) {
    throw Error{ErrorCode::kInvalidState,
                "net::Topology::min_device_path_latency: fewer than two devices"};
  }
  // One Dijkstra per source device, stopped at the first *other* device
  // settled — Dijkstra settles nodes in latency order, so that device is
  // the source's nearest. All-pairs route() here would be quadratic in
  // devices times graph size (minutes on a 512-GPU full mesh).
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::int64_t best = kInf;
  std::vector<std::int64_t> dist(nodes_.size());
  for (const NodeId src : devices_) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
    dist[static_cast<std::size_t>(src)] = 0;
    frontier.push(Frontier{0, 0, src});
    while (!frontier.empty()) {
      const Frontier f = frontier.top();
      frontier.pop();
      if (f.latency_ns > dist[static_cast<std::size_t>(f.node)]) continue;
      if (f.node != src && node(f.node).kind == NodeKind::kGpu) {
        best = std::min(best, f.latency_ns);
        break;
      }
      if (f.latency_ns >= best) break;  // no nearer device via this source
      const std::int64_t forward = f.node == src ? 0 : node(f.node).forward_latency.ns();
      for (const LinkId lid : out_[static_cast<std::size_t>(f.node)]) {
        const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
        const std::int64_t cand = f.latency_ns + forward + l.latency.ns();
        if (cand < dist[static_cast<std::size_t>(l.dst)]) {
          dist[static_cast<std::size_t>(l.dst)] = cand;
          frontier.push(Frontier{cand, f.hops + 1, l.dst});
        }
      }
    }
  }
  if (best == kInf) {
    throw Error{ErrorCode::kInvalidState,
                "net::Topology::min_device_path_latency: devices are unreachable"};
  }
  return duration::nanoseconds(best);
}

}  // namespace rsd::net
