#include "interconnect/topology.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace rsd::net {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kGpu: return "gpu";
    case NodeKind::kHost: return "host";
    case NodeKind::kNic: return "nic";
    case NodeKind::kSwitch: return "switch";
  }
  return "?";
}

const char* to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kNvlink: return "nvlink";
    case LinkKind::kPcie: return "pcie";
    case LinkKind::kNic: return "nic";
    case LinkKind::kSwitch: return "switch";
    case LinkKind::kFibre: return "fibre";
  }
  return "?";
}

void Topology::invalidate_routes() {
  rows_.clear();
  source_slot_.assign(nodes_.size(), -1);
  min_device_latency_ns_ = -1;
}

NodeId Topology::add_node(NodeDesc desc) {
  const auto id = static_cast<NodeId>(nodes_.size());
  if (desc.kind == NodeKind::kGpu) devices_.push_back(id);
  if (desc.kind == NodeKind::kNic) nics_.push_back(id);
  if (desc.kind == NodeKind::kHost) hosts_.push_back(id);
  nodes_.push_back(std::move(desc));
  out_.emplace_back();
  invalidate_routes();
  return id;
}

LinkId Topology::add_link(LinkDesc desc) {
  const auto n = static_cast<NodeId>(nodes_.size());
  if (desc.src < 0 || desc.src >= n || desc.dst < 0 || desc.dst >= n) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: link endpoint out of range"};
  }
  if (desc.src == desc.dst) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: self-loop link"};
  }
  if (!(desc.bandwidth_gib_s > 0.0)) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: non-positive link bandwidth"};
  }
  if (desc.latency.ns() < 0) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology: negative link latency"};
  }
  const auto id = static_cast<LinkId>(links_.size());
  out_[static_cast<std::size_t>(desc.src)].push_back(id);
  links_.push_back(desc);
  invalidate_routes();
  return id;
}

void Topology::add_duplex(NodeId a, NodeId b, LinkKind kind, double bandwidth_gib_s,
                          SimDuration latency) {
  add_link(LinkDesc{a, b, kind, bandwidth_gib_s, latency});
  add_link(LinkDesc{b, a, kind, bandwidth_gib_s, latency});
}

NodeId Topology::chassis_nic(int tag) const {
  for (const NodeId id : nics_) {
    if (node(id).chassis == tag) return id;
  }
  throw Error{ErrorCode::kInvalidArgument,
              "net::Topology::chassis_nic: no NIC tagged with chassis " + std::to_string(tag)};
}

std::vector<int> Topology::device_chassis_tags() const {
  std::vector<int> tags;
  for (const NodeId id : devices_) {
    const int tag = node(id).chassis;
    if (std::find(tags.begin(), tags.end(), tag) == tags.end()) tags.push_back(tag);
  }
  return tags;
}

namespace {

/// Dijkstra frontier entry ordered by (latency, hops, node id) — a total
/// order over simulation state only, so routes never depend on container
/// iteration quirks or thread timing.
struct Frontier {
  std::int64_t latency_ns;
  int hops;
  NodeId node;

  [[nodiscard]] bool operator>(const Frontier& o) const {
    return std::tie(latency_ns, hops, node) > std::tie(o.latency_ns, o.hops, o.node);
  }
};

}  // namespace

Topology::SourceRow& Topology::source_row(NodeId src) const {
  if (source_slot_.size() != nodes_.size()) source_slot_.resize(nodes_.size(), -1);
  std::int32_t& slot = source_slot_[static_cast<std::size_t>(src)];
  if (slot >= 0) return rows_[static_cast<std::size_t>(slot)];

  // One full Dijkstra from `src` settles every reachable node, filling the
  // dense via/distance row in a single sweep. Identical frontier ordering
  // and relaxation rule as route_dijkstra(), minus the early exit — with
  // positive link latencies a settled node is never relabeled, so the two
  // agree on every destination (pinned by the randomized equivalence
  // test).
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  SourceRow row;
  row.via.assign(nodes_.size(), kInvalidLink);
  row.dist_ns.assign(nodes_.size(), kInf);
  row.paths.resize(nodes_.size());
  row.materialized.assign(nodes_.size(), 0);
  std::vector<int> hops(nodes_.size(), 0);
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
  row.dist_ns[static_cast<std::size_t>(src)] = 0;
  frontier.push(Frontier{0, 0, src});
  while (!frontier.empty()) {
    const Frontier f = frontier.top();
    frontier.pop();
    if (f.latency_ns > row.dist_ns[static_cast<std::size_t>(f.node)]) continue;
    const std::int64_t forward = f.node == src ? 0 : node(f.node).forward_latency.ns();
    for (const LinkId lid : out_[static_cast<std::size_t>(f.node)]) {
      const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
      const std::int64_t cand = f.latency_ns + forward + l.latency.ns();
      auto& best = row.dist_ns[static_cast<std::size_t>(l.dst)];
      auto& best_hops = hops[static_cast<std::size_t>(l.dst)];
      const int cand_hops = f.hops + 1;
      if (cand < best || (cand == best && cand_hops < best_hops)) {
        best = cand;
        best_hops = cand_hops;
        row.via[static_cast<std::size_t>(l.dst)] = lid;
        frontier.push(Frontier{cand, cand_hops, l.dst});
      }
    }
  }
  ++route_table_builds_;
  slot = static_cast<std::int32_t>(rows_.size());
  rows_.push_back(std::move(row));
  return rows_.back();
}

const Path& Topology::route(NodeId src, NodeId dst) const {
  const auto n = static_cast<NodeId>(nodes_.size());
  if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology::route: bad endpoints"};
  }
  SourceRow& row = source_row(src);
  const auto d = static_cast<std::size_t>(dst);
  if (row.materialized[d]) {
    ++route_table_hits_;
    return row.paths[d];
  }
  if (row.dist_ns[d] == std::numeric_limits<std::int64_t>::max()) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::Topology::route: no path " + node(src).name + " -> " + node(dst).name};
  }
  // First request of this (src, dst): materialise the Path by walking the
  // via row back from the destination. Rows are pre-sized, so the
  // reference stays valid for the topology's lifetime.
  Path path;
  path.latency = duration::nanoseconds(row.dist_ns[d]);
  path.bottleneck_gib_s = std::numeric_limits<double>::infinity();
  for (NodeId at = dst; at != src;) {
    const LinkId lid = row.via[static_cast<std::size_t>(at)];
    const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
    path.links.push_back(lid);
    path.bottleneck_gib_s = std::min(path.bottleneck_gib_s, l.bandwidth_gib_s);
    if (l.dst != dst && node(l.dst).optical) ++path.optical_hops;
    at = l.src;
  }
  std::reverse(path.links.begin(), path.links.end());
  row.paths[d] = std::move(path);
  row.materialized[d] = 1;
  return row.paths[d];
}

Path Topology::route_dijkstra(NodeId src, NodeId dst) const {
  const auto n = static_cast<NodeId>(nodes_.size());
  if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
    throw Error{ErrorCode::kInvalidArgument, "net::Topology::route: bad endpoints"};
  }
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(nodes_.size(), kInf);
  std::vector<int> hops(nodes_.size(), 0);
  std::vector<LinkId> via(nodes_.size(), kInvalidLink);
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
  dist[static_cast<std::size_t>(src)] = 0;
  frontier.push(Frontier{0, 0, src});

  while (!frontier.empty()) {
    const Frontier f = frontier.top();
    frontier.pop();
    if (f.latency_ns > dist[static_cast<std::size_t>(f.node)]) continue;
    if (f.node == dst) break;
    // Leaving an intermediate node pays its forwarding latency (the
    // source endpoint forwards nothing of its own).
    const std::int64_t forward =
        f.node == src ? 0 : node(f.node).forward_latency.ns();
    for (const LinkId lid : out_[static_cast<std::size_t>(f.node)]) {
      const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
      const std::int64_t cand = f.latency_ns + forward + l.latency.ns();
      auto& best = dist[static_cast<std::size_t>(l.dst)];
      auto& best_hops = hops[static_cast<std::size_t>(l.dst)];
      const int cand_hops = f.hops + 1;
      if (cand < best || (cand == best && cand_hops < best_hops)) {
        best = cand;
        best_hops = cand_hops;
        via[static_cast<std::size_t>(l.dst)] = lid;
        frontier.push(Frontier{cand, cand_hops, l.dst});
      }
    }
  }

  if (dist[static_cast<std::size_t>(dst)] == kInf) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::Topology::route: no path " + node(src).name + " -> " + node(dst).name};
  }

  Path path;
  path.latency = duration::nanoseconds(dist[static_cast<std::size_t>(dst)]);
  path.bottleneck_gib_s = std::numeric_limits<double>::infinity();
  for (NodeId at = dst; at != src;) {
    const LinkId lid = via[static_cast<std::size_t>(at)];
    const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
    path.links.push_back(lid);
    path.bottleneck_gib_s = std::min(path.bottleneck_gib_s, l.bandwidth_gib_s);
    if (l.dst != dst && node(l.dst).optical) ++path.optical_hops;
    at = l.src;
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

SimDuration Topology::transfer_time(NodeId src, NodeId dst, Bytes bytes) const {
  const Path& p = route(src, dst);
  return p.latency + duration::seconds(static_cast<double>(bytes) /
                                       (p.bottleneck_gib_s * static_cast<double>(kGiB)));
}

SimDuration Topology::min_device_path_latency() const {
  if (devices_.size() < 2) {
    throw Error{ErrorCode::kInvalidState,
                "net::Topology::min_device_path_latency: fewer than two devices"};
  }
  // Cached: PartitionedRow and the engine's lookahead matrix both ask, and
  // the answer only changes when the graph does (invalidate_routes).
  if (min_device_latency_ns_ >= 0) return duration::nanoseconds(min_device_latency_ns_);
  // One Dijkstra per source device, stopped at the first *other* device
  // settled — Dijkstra settles nodes in latency order, so that device is
  // the source's nearest. All-pairs route() here would be quadratic in
  // devices times graph size (minutes on a 512-GPU full mesh).
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::int64_t best = kInf;
  std::vector<std::int64_t> dist(nodes_.size());
  for (const NodeId src : devices_) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
    dist[static_cast<std::size_t>(src)] = 0;
    frontier.push(Frontier{0, 0, src});
    while (!frontier.empty()) {
      const Frontier f = frontier.top();
      frontier.pop();
      if (f.latency_ns > dist[static_cast<std::size_t>(f.node)]) continue;
      if (f.node != src && node(f.node).kind == NodeKind::kGpu) {
        best = std::min(best, f.latency_ns);
        break;
      }
      if (f.latency_ns >= best) break;  // no nearer device via this source
      const std::int64_t forward = f.node == src ? 0 : node(f.node).forward_latency.ns();
      for (const LinkId lid : out_[static_cast<std::size_t>(f.node)]) {
        const LinkDesc& l = links_[static_cast<std::size_t>(lid)];
        const std::int64_t cand = f.latency_ns + forward + l.latency.ns();
        if (cand < dist[static_cast<std::size_t>(l.dst)]) {
          dist[static_cast<std::size_t>(l.dst)] = cand;
          frontier.push(Frontier{cand, f.hops + 1, l.dst});
        }
      }
    }
  }
  if (best == kInf) {
    throw Error{ErrorCode::kInvalidState,
                "net::Topology::min_device_path_latency: devices are unreachable"};
  }
  min_device_latency_ns_ = best;
  return duration::nanoseconds(best);
}

}  // namespace rsd::net
