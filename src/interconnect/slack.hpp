// Slack injection (Section III-B of the paper).
//
// The paper emulates row-scale CDI on a traditional node by sleeping for a
// fixed "slack" after every CUDA API call. `SlackInjector` reproduces that:
// the GPU front-end (`gpu::Context`) consults it after each API call and
// delays the calling (simulated) host thread. The injector also counts the
// calls it delayed, which is exactly the `num_CUDA_calls` term of
// Equation 1.
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "obs/metrics.hpp"

namespace rsd::interconnect {

class SlackInjector {
 public:
  SlackInjector() = default;
  explicit SlackInjector(SimDuration per_call) : per_call_(per_call) {}

  /// With `noise_sigma` > 0, each injected sleep is per_call *
  /// exp(N(0, sigma)) — the right-skewed overshoot a real usleep() shows.
  /// Equation 1 still subtracts the *nominal* slack, as the paper's
  /// analysis does (it cannot know the overshoot).
  SlackInjector(SimDuration per_call, double noise_sigma, std::uint64_t seed)
      : per_call_(per_call), noise_sigma_(noise_sigma), rng_(seed) {}

  /// Non-copyable so the destructor's metrics flush counts each injector's
  /// activity exactly once.
  SlackInjector(const SlackInjector&) = delete;
  SlackInjector& operator=(const SlackInjector&) = delete;

  /// Flush this injector's lifetime tallies into the global metrics
  /// registry (the per-run quiesce point — no per-call atomics).
  ~SlackInjector() {
    if (calls_delayed_ == 0) return;
    auto& reg = obs::Registry::global();
    reg.counter("slack.calls_delayed").add(calls_delayed_);
    reg.counter("slack.injected_ns").add(total_injected_.ns());
  }

  void set_slack(SimDuration per_call) { per_call_ = per_call; }
  [[nodiscard]] SimDuration slack_per_call() const { return per_call_; }
  [[nodiscard]] double noise_sigma() const { return noise_sigma_; }

  /// Called by the GPU front-end after each API call completes. Returns the
  /// delay the host thread must sleep, and accounts for it.
  [[nodiscard]] SimDuration on_api_call() {
    ++calls_delayed_;
    SimDuration actual = per_call_;
    if (noise_sigma_ > 0.0 && per_call_ > SimDuration::zero()) {
      actual = per_call_ * rng_.lognormal(0.0, noise_sigma_);
    }
    total_injected_ += actual;
    return actual;
  }

  [[nodiscard]] std::int64_t calls_delayed() const { return calls_delayed_; }
  [[nodiscard]] SimDuration total_injected() const { return total_injected_; }

  void reset_counters() {
    calls_delayed_ = 0;
    total_injected_ = SimDuration::zero();
  }

 private:
  SimDuration per_call_ = SimDuration::zero();
  double noise_sigma_ = 0.0;
  Rng rng_{0x51ACCULL};
  std::int64_t calls_delayed_ = 0;
  SimDuration total_injected_ = SimDuration::zero();
};

/// Equation 1: remove the directly-injected delay from a measured runtime,
/// leaving only the secondary (GPU-starvation) effects.
///
///   Time_NoSlack = Time - num_CUDA_calls * Slack_per_call
[[nodiscard]] constexpr SimDuration equation1_no_slack_time(SimDuration measured,
                                                            std::int64_t num_cuda_calls,
                                                            SimDuration slack_per_call) {
  return measured - slack_per_call * num_cuda_calls;
}

/// Equation 1 for a run with several concurrent submitters (MPI ranks,
/// proxy threads): the injected delay lands on every submitter in
/// parallel, so only one submitter's share of the total call count sits on
/// the critical path. `submitters` = 1 reduces to equation1_no_slack_time.
/// (Integer division, matching the paper's whole-call accounting.)
[[nodiscard]] constexpr SimDuration equation1_per_submitter(SimDuration measured,
                                                            std::int64_t total_cuda_calls,
                                                            int submitters,
                                                            SimDuration slack_per_call) {
  return equation1_no_slack_time(measured, total_cuda_calls / submitters, slack_per_call);
}

}  // namespace rsd::interconnect
