// Event-driven collectives over a modeled link network.
//
// These are the scheduled counterparts of the closed-form alpha-beta
// formulas in gpusim/collective.hpp: each algorithm decomposes an
// allreduce into individual point-to-point transfers and schedules them
// over `net::Network` links with FIFO contention, so fabric shape,
// shared-link queueing, and OCS circuit reconfiguration all show up in
// the result. On an uncontended fabric the ring and tree algorithms
// reproduce `ring_allreduce_time` / `tree_allreduce_time` exactly — the
// analytic forms stay as the documented cross-check, asserted by
// tests/net_collective_test.cpp.
//
//   * ring:         2(n-1) bulk-synchronous neighbour phases moving
//                   bytes/n chunks (reduce-scatter + allgather);
//   * tree:         binomial reduce to rank 0 then binomial broadcast,
//                   full payload per transfer, 2*ceil(log2 n) rounds;
//   * hierarchical: ring allreduce inside each chassis, ring allreduce
//                   across chassis leaders, then leaders fan the result
//                   back out — the intra-chassis-then-inter-chassis
//                   pattern a row of CDI chassis wants.
#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "interconnect/fabric.hpp"
#include "interconnect/network.hpp"
#include "sim/task.hpp"

namespace rsd::net {

/// Allreduce `bytes_per_rank` across the devices listed in `ranks`
/// (device indices into the network's topology, all distinct). Resumes
/// when every rank holds the reduced result.
sim::Task<> ring_allreduce(Network& network, std::vector<int> ranks, Bytes bytes_per_rank);
sim::Task<> tree_allreduce(Network& network, std::vector<int> ranks, Bytes bytes_per_rank);
/// Groups `ranks` by their devices' chassis tags in the topology.
sim::Task<> hierarchical_allreduce(Network& network, std::vector<int> ranks,
                                   Bytes bytes_per_rank);

/// Dispatch on `algorithm` over the first `participants` devices.
/// Throws rsd::Error{kInvalidArgument} when participants < 1 or exceeds
/// the topology's device count.
sim::Task<> run_allreduce(Network& network, Algorithm algorithm, Bytes bytes_per_rank,
                          int participants);

/// One-shot measurement harness: build a private scheduler + network over
/// `topology`, run the collective to completion, report simulated
/// duration and the network's transfer statistics. Deterministic.
struct AllreduceReport {
  SimDuration duration;
  std::uint64_t transfers = 0;
  std::uint64_t contended_transfers = 0;
  std::uint64_t reconfigurations = 0;
  SimDuration link_busy_total;
  /// Transfers priced on the express path (uncontended single-hop,
  /// closed-form timing — see Network's header).
  std::uint64_t express_transfers = 0;
  /// Dense route-table hits during this measurement (topology-level
  /// counter, reported as a delta so shared topologies don't bleed
  /// across runs).
  std::uint64_t route_hits = 0;
};

/// When `usage` is non-null it receives the network's per-link usage
/// sampler buckets (see `Network::link_usage`) — the raw material for
/// contention heatmaps.
[[nodiscard]] AllreduceReport measure_allreduce(const Topology& topology,
                                                Algorithm algorithm, Bytes bytes_per_rank,
                                                int participants,
                                                std::vector<LinkUsageSample>* usage = nullptr);

}  // namespace rsd::net
