// Event-driven link network (`net::Network`): binds a Topology to a
// discrete-event scheduler and executes transfers as timestamped per-link
// occupations with FIFO contention.
//
// Model: store-and-forward pipelining. A transfer walks its routed path
// link by link; each link is a FIFO server (sim::Semaphore of one permit)
// occupied for the payload's serialisation time, after which propagation
// latency (plus the forwarding latency of the node being crossed) elapses
// off-link — so back-to-back transfers pipeline on a link, and two
// transfers crossing the same link genuinely queue. On an uncontended
// single-hop path the cost collapses to latency + bytes/bandwidth, which
// is exactly the closed-form alpha-beta transfer — the parity the
// analytic models in gpusim/collective.hpp are kept around to cross-check
// (tests/net_collective_test.cpp).
//
// Fast path: that single-hop uncontended case is priced in closed form —
// the *express path*. Instead of the acquire / serialize-event / release /
// propagate-event sequence, the transfer books the wire by stamping the
// link's `express_busy_until` timestamp and sleeps exactly once for
// serialisation + propagation. A scheduled transfer that meets an express
// reservation first takes the semaphore, then waits the timestamp out
// while *holding* the permit, so later arrivals queue FIFO behind it and
// the service order — and therefore every timestamp — is identical with
// the express path on or off (tests/net_fastpath_test.cpp pins this per
// fabric). The whole transfer path is allocation-free in steady state:
// arena-backed coroutine frames, intrusive semaphore waiters, and
// append-ordered usage buckets (asserted via rsd_alloc_counter).
//
// Optical circuit switches add circuit state: each ingress port drives
// one egress at a time, and a transfer that needs the port pointed
// elsewhere first pays the topology's reconfiguration delay. The circuit
// map lives in the Network (per simulation), so replays are
// deterministic.
//
// Counters (transfers, queued acquisitions, circuit reconfigurations,
// per-link busy time) accumulate locally and flush into the global
// obs::Registry at quiesce points: the network registers itself with
// obs::QuiesceRegistry so the harness can force a flush at experiment
// boundaries, and the destructor flushes whatever remains — `flush()` is
// idempotent via watermarks, so the two compose.
//
// Telemetry: every link additionally keeps a time-bucketed usage sampler
// (busy nanoseconds, transfer count, and peak queue depth per fixed-width
// simulated-time bucket). The samples surface two ways: `link_usage()`
// returns them for contention-heatmap CSVs, and — when the obs tracer is
// enabled — `flush()` emits them as per-link Perfetto counter tracks
// ("link.util", "link.queue" on kTrackNetBase + link) in the network's
// own simulated timeline.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/units.hpp"
#include "interconnect/topology.hpp"
#include "interconnect/transport.hpp"
#include "obs/quiesce.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::net {

/// One usage-sampler bucket of one link: activity inside
/// [bucket_start_ns, bucket_start_ns + bucket width).
struct LinkUsageSample {
  LinkId link = kInvalidLink;
  std::int64_t bucket_start_ns = 0;
  std::int64_t busy_ns = 0;          ///< Serialisation time begun in-bucket.
  std::uint64_t transfers = 0;       ///< Link occupations begun in-bucket.
  int max_queue_depth = 0;           ///< Peak arrivals in flight (incl. served).
};

class Network : public Transport {
 public:
  /// The topology must outlive the network.
  Network(sim::Scheduler& sched, const Topology& topology);
  ~Network() override;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const Topology& topology() const override { return topo_; }

  /// Move `bytes` from node `src` to node `dst` over the routed path.
  /// Resumes when the last byte arrives at `dst`. `stats`, when non-null,
  /// receives the reconfiguration delay paid and whether the transfer
  /// queued (the Transport observability contract).
  sim::Task<> transfer(NodeId src, NodeId dst, Bytes bytes, TransferStats* stats) override;
  using Transport::transfer;

  /// Uncontended closed-form cost (Topology::transfer_time).
  [[nodiscard]] SimDuration price(NodeId src, NodeId dst, Bytes bytes) const override {
    return topo_.transfer_time(src, dst, bytes);
  }

  // -- Deterministic statistics ------------------------------------------
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  /// Transfers that found at least one link busy and had to queue.
  [[nodiscard]] std::uint64_t contended_transfers() const { return contended_; }
  /// Transfers priced in closed form on the express path.
  [[nodiscard]] std::uint64_t express_transfers() const { return express_; }
  /// Test hook: disable the express path so every transfer runs the
  /// scheduled acquire/serialize/release protocol. Timing is identical
  /// either way (asserted by tests/net_fastpath_test.cpp); the knob only
  /// exists so that equivalence is checkable.
  void set_express_enabled(bool enabled) { express_enabled_ = enabled; }
  [[nodiscard]] bool express_enabled() const { return express_enabled_; }
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }
  /// Transfers whose routed path crossed a NIC or fibre hop (i.e. left a
  /// chassis or touched its NIC) — zero on flat single-chassis fabrics.
  [[nodiscard]] std::uint64_t nic_transfers() const { return nic_transfers_; }
  /// Serialisation time spent on kFibre links specifically.
  [[nodiscard]] SimDuration fibre_busy_total() const { return fibre_busy_; }
  [[nodiscard]] SimDuration link_busy_total() const { return busy_total_; }
  [[nodiscard]] SimDuration link_busy(LinkId link) const {
    return links_.at(static_cast<std::size_t>(link))->busy;
  }

  // -- Telemetry ----------------------------------------------------------
  /// Usage-sampler bucket width; applies to buckets opened from now on.
  void set_usage_bucket(SimDuration width);
  [[nodiscard]] SimDuration usage_bucket() const {
    return duration::nanoseconds(bucket_width_ns_);
  }

  /// All sampler buckets so far, sorted by (link, bucket start).
  [[nodiscard]] std::vector<LinkUsageSample> link_usage() const;

  /// Quiesce-point flush: push counter deltas since the previous flush
  /// into the global obs::Registry and, when tracing is enabled, emit any
  /// not-yet-exported sampler buckets as per-link counter tracks.
  /// Idempotent; also runs via obs::QuiesceRegistry and at destruction.
  void flush();

 private:
  struct LinkState {
    explicit LinkState(sim::Scheduler& sched) : server(sched, 1) {}
    sim::Semaphore server;            ///< FIFO wire occupation.
    /// Wire time reserved by an express transfer (which books the wire by
    /// timestamp, never by the semaphore). A scheduled transfer that finds
    /// this in the future acquires the permit first, then waits it out.
    SimTime express_busy_until = SimTime::zero();
    SimDuration busy = SimDuration::zero();
    /// Optical ingress ports: the egress link the circuit currently
    /// drives; kInvalidLink until first configured.
    LinkId circuit = kInvalidLink;

    // Usage sampler. `pending` counts scheduled transfers that arrived at
    // this link and have not finished serialising (the one in service plus
    // the queue); an active express reservation contributes one more.
    struct Bucket {
      std::int64_t busy_ns = 0;
      std::uint64_t transfers = 0;
      int max_queue_depth = 0;
    };
    int pending = 0;
    /// Buckets in bucket-start order: simulated time never runs backwards,
    /// so appending keeps them sorted and allocation amortised (a std::map
    /// here would allocate a node per bucket on the hot path).
    std::vector<std::pair<std::int64_t, Bucket>> buckets;
    std::int64_t exported_hwm = -1;  ///< Last bucket start already emitted.
  };

  [[nodiscard]] LinkState::Bucket& bucket_at(LinkState& state, SimTime at);

  sim::Scheduler& sched_;
  const Topology& topo_;
  std::vector<std::unique_ptr<LinkState>> links_;
  std::uint64_t transfers_ = 0;
  std::uint64_t contended_ = 0;
  std::uint64_t express_ = 0;
  bool express_enabled_ = true;
  std::uint64_t reconfigs_ = 0;
  std::uint64_t nic_transfers_ = 0;
  SimDuration fibre_busy_ = SimDuration::zero();
  SimDuration busy_total_ = SimDuration::zero();

  // Quiesce-flush watermarks: the cumulative value already pushed into the
  // registry, so flush() only ever adds the delta. Route-table hits live
  // on the (possibly shared) topology; this network reports the hits that
  // occur during its own lifetime, so the watermark starts at the
  // topology's count at construction.
  std::uint64_t flushed_transfers_ = 0;
  std::uint64_t flushed_contended_ = 0;
  std::uint64_t flushed_express_ = 0;
  std::uint64_t flushed_reconfigs_ = 0;
  std::uint64_t flushed_nic_transfers_ = 0;
  std::uint64_t flushed_route_hits_ = 0;
  std::int64_t flushed_busy_ns_ = 0;
  std::int64_t flushed_fibre_busy_ns_ = 0;

  std::int64_t bucket_width_ns_ = 100'000;  ///< 100 us default.
  std::int32_t sim_id_ = -1;  ///< Tracer timeline id, acquired lazily.
  obs::QuiesceRegistry::Handle quiesce_handle_ = 0;
};

}  // namespace rsd::net
