// Event-driven link network (`net::Network`): binds a Topology to a
// discrete-event scheduler and executes transfers as timestamped per-link
// occupations with FIFO contention.
//
// Model: store-and-forward pipelining. A transfer walks its routed path
// link by link; each link is a FIFO server (sim::Semaphore of one permit)
// occupied for the payload's serialisation time, after which propagation
// latency (plus the forwarding latency of the node being crossed) elapses
// off-link — so back-to-back transfers pipeline on a link, and two
// transfers crossing the same link genuinely queue. On an uncontended
// single-hop path the cost collapses to latency + bytes/bandwidth, which
// is exactly the closed-form alpha-beta transfer — the parity the
// analytic models in gpusim/collective.hpp are kept around to cross-check
// (tests/net_collective_test.cpp).
//
// Optical circuit switches add circuit state: each ingress port drives
// one egress at a time, and a transfer that needs the port pointed
// elsewhere first pays the topology's reconfiguration delay. The circuit
// map lives in the Network (per simulation), so replays are
// deterministic.
//
// Counters (transfers, queued acquisitions, circuit reconfigurations,
// per-link busy time) accumulate locally and flush into the global
// obs::Registry at destruction — the same quiesce-point discipline as
// gpu::Device.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/units.hpp"
#include "interconnect/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::net {

class Network {
 public:
  /// The topology must outlive the network.
  Network(sim::Scheduler& sched, const Topology& topology);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Move `bytes` from node `src` to node `dst` over the routed path.
  /// Resumes when the last byte arrives at `dst`.
  sim::Task<> transfer(NodeId src, NodeId dst, Bytes bytes);

  /// Device-index convenience (device i = topology().device(i)).
  sim::Task<> transfer_between_devices(int src_device, int dst_device, Bytes bytes);

  // -- Deterministic statistics ------------------------------------------
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  /// Transfers that found at least one link busy and had to queue.
  [[nodiscard]] std::uint64_t contended_transfers() const { return contended_; }
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }
  [[nodiscard]] SimDuration link_busy_total() const { return busy_total_; }
  [[nodiscard]] SimDuration link_busy(LinkId link) const {
    return links_.at(static_cast<std::size_t>(link))->busy;
  }

 private:
  struct LinkState {
    explicit LinkState(sim::Scheduler& sched) : server(sched, 1) {}
    sim::Semaphore server;            ///< FIFO wire occupation.
    SimDuration busy = SimDuration::zero();
    /// Optical ingress ports: the egress link the circuit currently
    /// drives; kInvalidLink until first configured.
    LinkId circuit = kInvalidLink;
  };

  sim::Scheduler& sched_;
  const Topology& topo_;
  std::vector<std::unique_ptr<LinkState>> links_;
  std::uint64_t transfers_ = 0;
  std::uint64_t contended_ = 0;
  std::uint64_t reconfigs_ = 0;
  SimDuration busy_total_ = SimDuration::zero();
};

}  // namespace rsd::net
