// Host-to-device interconnect models.
//
// A `Link` turns a transfer size into a simulated duration
// (fixed per-transfer latency + size / bandwidth). Factory functions build
// the two configurations the paper contrasts (Figure 1):
//
//   * traditional: the GPU sits in the host's PCIe domain
//     (PCIe gen4 x16-class link),
//   * row-scale CDI: every CPU<->GPU command additionally crosses two NICs,
//     a number of switch hops, and a length of fibre — the added one-way
//     latency is the paper's "slack".
#pragma once

#include <string>

#include "core/error.hpp"
#include "core/units.hpp"

namespace rsd::interconnect {

/// Speed-of-light propagation delay in fibre, per km (refractive index ~1.5).
inline constexpr double kFibreUsPerKm = 5.0;

/// One-way latency contributed by `km` of fibre.
[[nodiscard]] constexpr SimDuration fibre_delay(double km) {
  return duration::microseconds(kFibreUsPerKm * km);
}

/// The distance (km) whose fibre propagation delay equals `slack`.
/// The paper's headline: 100 us of slack <-> 20 km of fibre.
[[nodiscard]] constexpr double reach_km_for_slack(SimDuration slack) {
  return slack.us() / kFibreUsPerKm;
}

struct LinkParams {
  std::string name = "link";
  SimDuration latency = SimDuration::zero();  ///< Fixed per-transfer latency.
  double bandwidth_gib_s = 1.0;               ///< Payload bandwidth, GiB/s.
};

/// A point-to-point data link with fixed latency and finite bandwidth.
class Link {
 public:
  explicit Link(LinkParams params) : params_(std::move(params)) {
    RSD_ASSERT(params_.bandwidth_gib_s > 0.0);
  }

  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] SimDuration latency() const { return params_.latency; }
  [[nodiscard]] double bandwidth_gib_s() const { return params_.bandwidth_gib_s; }

  /// Wall time for one transfer of `bytes` (latency + serialisation).
  [[nodiscard]] SimDuration transfer_time(Bytes bytes) const {
    const double seconds =
        static_cast<double>(bytes) / (params_.bandwidth_gib_s * static_cast<double>(kGiB));
    return params_.latency + duration::seconds(seconds);
  }

  /// Pure command latency (no payload), e.g. a kernel-launch command or a
  /// completion notification crossing this link.
  [[nodiscard]] SimDuration command_latency() const { return params_.latency; }

 private:
  LinkParams params_;
};

/// PCIe gen4 x16-class host link: ~24 GiB/s effective, ~8 us per-transfer
/// software + DMA setup latency. Matches the traditional node in Figure 1.
[[nodiscard]] Link make_pcie_gen4_x16();

/// Parameters of a row-scale CDI network path (Figure 1's NIC-network-NIC
/// insert between host and GPU chassis).
struct CdiNetworkParams {
  SimDuration nic_latency = duration::microseconds(0.35);  ///< Per NIC traversal.
  int switch_hops = 2;
  SimDuration per_hop_latency = duration::microseconds(0.12);
  double fibre_km = 0.05;            ///< Row scale: tens of metres.
  double bandwidth_gib_s = 24.0;     ///< Fabric payload bandwidth.
  SimDuration pcie_stub_latency = duration::microseconds(8.0);  ///< Chassis-side PCIe.

  /// Total one-way added latency relative to a direct PCIe link — the
  /// paper's "slack" for this network.
  [[nodiscard]] SimDuration slack() const {
    return nic_latency * std::int64_t{2} + per_hop_latency * std::int64_t{switch_hops} +
           fibre_delay(fibre_km);
  }
};

/// Build the host<->chassis link for a CDI composition: PCIe semantics with
/// the network's slack folded into the per-transfer latency.
[[nodiscard]] Link make_cdi_link(const CdiNetworkParams& params);

}  // namespace rsd::interconnect
