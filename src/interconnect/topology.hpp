// Link-graph machine model (`rsd::net`).
//
// The paper's subject is a *row*: hundreds of GPUs whose traffic crosses
// NVLink ports, PCIe stubs, NICs, electrical or optical switches, and
// runs of fibre. A `Topology` models that machine explicitly as a graph —
// devices and switches as vertices, individual links as directed edges,
// each edge carrying its own bandwidth and latency — so collective
// algorithms can be scheduled as timestamped transfers over real paths
// instead of priced by a single closed-form alpha-beta scalar
// (`gpu::ring_allreduce_time` remains as the documented analytic
// cross-check; tests/net_collective_test.cpp pins the two against each
// other on uncontended fabrics).
//
// Routing is deterministic: min-latency paths (ties broken by hop count,
// then node id) computed by Dijkstra and cached per (src, dst) pair. Path
// latency sums link latencies plus the forwarding latency of intermediate
// nodes (an electrical switch's per-hop cost); path bandwidth is the
// bottleneck link. `min_device_path_latency()` — the smallest latency any
// device-to-device message can possibly have — is what `gpu::
// PartitionedRow` hands the conservative parallel engine as lookahead.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace rsd::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t {
  kGpu,     ///< A simulated accelerator (maps to one gpu::Device / rank).
  kHost,    ///< A CPU host endpoint.
  kNic,     ///< Network interface between a chassis and the row fabric.
  kSwitch,  ///< Packet (electrical) or circuit (optical) switch.
};

enum class LinkKind : std::uint8_t {
  kNvlink,  ///< Chassis-internal GPU fabric port.
  kPcie,    ///< Host/stub PCIe hop.
  kNic,     ///< NIC traversal.
  kSwitch,  ///< Switch port (electrical).
  kFibre,   ///< Optical fibre run (OCS port or long-haul).
};

[[nodiscard]] const char* to_string(NodeKind kind);
[[nodiscard]] const char* to_string(LinkKind kind);

struct NodeDesc {
  std::string name;
  NodeKind kind = NodeKind::kGpu;
  /// Chassis grouping (hierarchical collectives); -1 = ungrouped.
  int chassis = -1;
  /// Forwarding latency charged when a path crosses this node as an
  /// intermediate hop (an electrical switch's per-hop cost; zero for a
  /// passive optical circuit).
  SimDuration forward_latency = SimDuration::zero();
  /// True for an optical circuit switch: traffic entering on a port must
  /// match that port's configured circuit, and retargeting the circuit
  /// costs the topology's `ocs_reconfigure` delay.
  bool optical = false;
};

struct LinkDesc {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  LinkKind kind = LinkKind::kNvlink;
  double bandwidth_gib_s = 1.0;
  SimDuration latency = SimDuration::zero();
};

/// A routed path: the directed links crossed in order, the total fixed
/// latency (links + intermediate forwarding), and the bottleneck
/// bandwidth. `optical_hops` counts traversed optical-switch circuits —
/// non-zero means the transfer is subject to circuit reconfiguration.
struct Path {
  std::vector<LinkId> links;
  SimDuration latency = SimDuration::zero();
  double bottleneck_gib_s = 0.0;
  int optical_hops = 0;

  [[nodiscard]] bool valid() const { return !links.empty(); }
};

class Topology {
 public:
  Topology() = default;

  NodeId add_node(NodeDesc desc);
  /// One directed link. Throws rsd::Error{kInvalidArgument} on a self
  /// loop, an unknown endpoint, or non-positive bandwidth.
  LinkId add_link(LinkDesc desc);
  /// Two directed links, one per direction (the common case).
  void add_duplex(NodeId a, NodeId b, LinkKind kind, double bandwidth_gib_s,
                  SimDuration latency);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const NodeDesc& node(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const LinkDesc& link(LinkId id) const {
    return links_.at(static_cast<std::size_t>(id));
  }

  /// Devices (kGpu nodes) in insertion order: device index -> node id.
  [[nodiscard]] int device_count() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] NodeId device(int index) const {
    return devices_.at(static_cast<std::size_t>(index));
  }

  /// Distinct chassis tags across devices (>= 1 when any device is tagged).
  [[nodiscard]] std::vector<int> device_chassis_tags() const;

  /// Min-latency route from src to dst. Throws rsd::Error{kInvalidArgument}
  /// when no route exists. Cached; the cache is invalidated by add_link.
  [[nodiscard]] const Path& route(NodeId src, NodeId dst) const;

  /// Analytic single-transfer cost over the routed path: fixed path
  /// latency plus serialisation at the bottleneck link (cut-through; the
  /// event-driven Network charges per-link store-and-forward and queueing
  /// on top of contention).
  [[nodiscard]] SimDuration transfer_time(NodeId src, NodeId dst, Bytes bytes) const;

  /// The smallest path latency between any two distinct devices — the
  /// tightest bound on how soon a device-to-device message can arrive,
  /// i.e. the conservative lookahead of a partitioned row simulation.
  /// Throws rsd::Error{kInvalidState} with fewer than two devices or when
  /// some device pair is unreachable.
  [[nodiscard]] SimDuration min_device_path_latency() const;

  /// Circuit reconfiguration delay of every optical switch in this
  /// topology (zero when there is none).
  [[nodiscard]] SimDuration ocs_reconfigure() const { return ocs_reconfigure_; }
  void set_ocs_reconfigure(SimDuration d) { ocs_reconfigure_ = d; }

  /// Outbound links of `id` in insertion order.
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const {
    return out_.at(static_cast<std::size_t>(id));
  }

 private:
  std::vector<NodeDesc> nodes_;
  std::vector<LinkDesc> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<NodeId> devices_;
  SimDuration ocs_reconfigure_ = SimDuration::zero();
  mutable std::unordered_map<std::uint64_t, Path> route_cache_;
};

}  // namespace rsd::net
