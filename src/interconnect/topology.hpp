// Link-graph machine model (`rsd::net`).
//
// The paper's subject is a *row*: hundreds of GPUs whose traffic crosses
// NVLink ports, PCIe stubs, NICs, electrical or optical switches, and
// runs of fibre. A `Topology` models that machine explicitly as a graph —
// devices and switches as vertices, individual links as directed edges,
// each edge carrying its own bandwidth and latency — so collective
// algorithms can be scheduled as timestamped transfers over real paths
// instead of priced by a single closed-form alpha-beta scalar
// (`gpu::ring_allreduce_time` remains as the documented analytic
// cross-check; tests/net_collective_test.cpp pins the two against each
// other on uncontended fabrics).
//
// Routing is deterministic: min-latency paths (ties broken by hop count,
// then node id). Dijkstra is only the *table builder*: the first route out
// of a source runs one full Dijkstra and fills that source's dense
// next-hop/distance row covering every destination; every later lookup is
// an O(1) flat-array read (`route_table_hits()` counts them), with the
// `Path` object materialised from the row on first use. `route_dijkstra()`
// keeps the original per-pair search as the reference implementation the
// randomized equivalence test (tests/net_fastpath_test.cpp) cross-checks
// the tables against. Path latency sums link latencies plus the forwarding
// latency of intermediate nodes (an electrical switch's per-hop cost);
// path bandwidth is the bottleneck link. `min_device_path_latency()` — the
// smallest latency any device-to-device message can possibly have — is
// what `gpu::PartitionedRow` hands the conservative parallel engine as
// lookahead; it is computed once and cached until the graph changes.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace rsd::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t {
  kGpu,     ///< A simulated accelerator (maps to one gpu::Device / rank).
  kHost,    ///< A CPU host endpoint.
  kNic,     ///< Network interface between a chassis and the row fabric.
  kSwitch,  ///< Packet (electrical) or circuit (optical) switch.
};

enum class LinkKind : std::uint8_t {
  kNvlink,  ///< Chassis-internal GPU fabric port.
  kPcie,    ///< Host/stub PCIe hop.
  kNic,     ///< NIC traversal.
  kSwitch,  ///< Switch port (electrical).
  kFibre,   ///< Optical fibre run (OCS port or long-haul).
};

[[nodiscard]] const char* to_string(NodeKind kind);
[[nodiscard]] const char* to_string(LinkKind kind);

struct NodeDesc {
  std::string name;
  NodeKind kind = NodeKind::kGpu;
  /// Chassis grouping (hierarchical collectives); -1 = ungrouped.
  int chassis = -1;
  /// Forwarding latency charged when a path crosses this node as an
  /// intermediate hop (an electrical switch's per-hop cost; zero for a
  /// passive optical circuit).
  SimDuration forward_latency = SimDuration::zero();
  /// True for an optical circuit switch: traffic entering on a port must
  /// match that port's configured circuit, and retargeting the circuit
  /// costs the topology's `ocs_reconfigure` delay.
  bool optical = false;
};

struct LinkDesc {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  LinkKind kind = LinkKind::kNvlink;
  double bandwidth_gib_s = 1.0;
  SimDuration latency = SimDuration::zero();
};

/// A routed path: the directed links crossed in order, the total fixed
/// latency (links + intermediate forwarding), and the bottleneck
/// bandwidth. `optical_hops` counts traversed optical-switch circuits —
/// non-zero means the transfer is subject to circuit reconfiguration.
struct Path {
  std::vector<LinkId> links;
  SimDuration latency = SimDuration::zero();
  double bottleneck_gib_s = 0.0;
  int optical_hops = 0;

  [[nodiscard]] bool valid() const { return !links.empty(); }
};

class Topology {
 public:
  Topology() = default;

  NodeId add_node(NodeDesc desc);
  /// One directed link. Throws rsd::Error{kInvalidArgument} on a self
  /// loop, an unknown endpoint, or non-positive bandwidth.
  LinkId add_link(LinkDesc desc);
  /// Two directed links, one per direction (the common case).
  void add_duplex(NodeId a, NodeId b, LinkKind kind, double bandwidth_gib_s,
                  SimDuration latency);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const NodeDesc& node(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const LinkDesc& link(LinkId id) const {
    return links_.at(static_cast<std::size_t>(id));
  }

  /// Devices (kGpu nodes) in insertion order: device index -> node id.
  [[nodiscard]] int device_count() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] NodeId device(int index) const {
    return devices_.at(static_cast<std::size_t>(index));
  }

  /// Distinct chassis tags across devices (>= 1 when any device is tagged).
  [[nodiscard]] std::vector<int> device_chassis_tags() const;

  /// NICs (kNic nodes) in insertion order: NIC index -> node id. A flat
  /// single-chassis fabric has none; multi-chassis builders emit one per
  /// chassis so cross-chassis routes pay the NIC + fibre hops explicitly.
  [[nodiscard]] int nic_count() const { return static_cast<int>(nics_.size()); }
  [[nodiscard]] NodeId nic(int index) const {
    return nics_.at(static_cast<std::size_t>(index));
  }
  /// The NIC tagged with chassis `tag`. Throws rsd::Error{kInvalidArgument}
  /// when no NIC carries that tag.
  [[nodiscard]] NodeId chassis_nic(int tag) const;

  /// Hosts (kHost nodes) in insertion order: host index -> node id.
  [[nodiscard]] int host_count() const { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] NodeId host(int index) const {
    return hosts_.at(static_cast<std::size_t>(index));
  }

  /// Min-latency route from src to dst, served from the dense per-source
  /// route table (built by one full Dijkstra on the source's first route;
  /// O(1) thereafter). Throws rsd::Error{kInvalidArgument} when no route
  /// exists. Tables are invalidated by add_node/add_link.
  [[nodiscard]] const Path& route(NodeId src, NodeId dst) const;

  /// Reference implementation: a fresh per-pair Dijkstra, no tables, no
  /// caching — byte-for-byte the pre-table algorithm. Exists so tests can
  /// cross-check `route()` against an independent search on randomized
  /// topologies; production code wants `route()`.
  [[nodiscard]] Path route_dijkstra(NodeId src, NodeId dst) const;

  /// Route lookups served from an already-materialised table entry.
  [[nodiscard]] std::uint64_t route_table_hits() const { return route_table_hits_; }
  /// Per-source table builds (full Dijkstra runs) so far.
  [[nodiscard]] std::uint64_t route_table_builds() const { return route_table_builds_; }

  /// Analytic single-transfer cost over the routed path: fixed path
  /// latency plus serialisation at the bottleneck link (cut-through; the
  /// event-driven Network charges per-link store-and-forward and queueing
  /// on top of contention).
  [[nodiscard]] SimDuration transfer_time(NodeId src, NodeId dst, Bytes bytes) const;

  /// The smallest path latency between any two distinct devices — the
  /// tightest bound on how soon a device-to-device message can arrive,
  /// i.e. the conservative lookahead of a partitioned row simulation.
  /// Computed once and cached until add_node/add_link changes the graph.
  /// Throws rsd::Error{kInvalidState} with fewer than two devices or when
  /// some device pair is unreachable.
  [[nodiscard]] SimDuration min_device_path_latency() const;

  /// Circuit reconfiguration delay of every optical switch in this
  /// topology (zero when there is none).
  [[nodiscard]] SimDuration ocs_reconfigure() const { return ocs_reconfigure_; }
  void set_ocs_reconfigure(SimDuration d) { ocs_reconfigure_ = d; }

  /// Outbound links of `id` in insertion order.
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const {
    return out_.at(static_cast<std::size_t>(id));
  }

 private:
  /// Dense routing row of one source: for every node, the last link on the
  /// min-latency path from the source (kInvalidLink = unreached) plus the
  /// path latency; `paths` materialises the user-facing Path per
  /// destination on first request. Rows are built lazily — memory scales
  /// with *touched* sources, not all-pairs.
  struct SourceRow {
    std::vector<LinkId> via;
    std::vector<std::int64_t> dist_ns;
    std::vector<Path> paths;
    std::vector<unsigned char> materialized;
  };

  [[nodiscard]] SourceRow& source_row(NodeId src) const;
  void invalidate_routes();

  std::vector<NodeDesc> nodes_;
  std::vector<LinkDesc> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<NodeId> devices_;
  std::vector<NodeId> nics_;
  std::vector<NodeId> hosts_;
  SimDuration ocs_reconfigure_ = SimDuration::zero();

  mutable std::vector<std::int32_t> source_slot_;  ///< Node -> rows_ index, -1 unbuilt.
  mutable std::vector<SourceRow> rows_;
  mutable std::uint64_t route_table_hits_ = 0;
  mutable std::uint64_t route_table_builds_ = 0;
  mutable std::int64_t min_device_latency_ns_ = -1;  ///< Cached; -1 = not computed.
};

}  // namespace rsd::net
