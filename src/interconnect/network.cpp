#include "interconnect/network.hpp"

#include "obs/metrics.hpp"

namespace rsd::net {

Network::Network(sim::Scheduler& sched, const Topology& topology)
    : sched_(sched), topo_(topology) {
  links_.reserve(topo_.link_count());
  for (std::size_t i = 0; i < topo_.link_count(); ++i) {
    links_.push_back(std::make_unique<LinkState>(sched_));
  }
}

Network::~Network() {
  auto& reg = obs::Registry::global();
  reg.counter("net.transfers").add(static_cast<std::int64_t>(transfers_));
  reg.counter("net.contended_transfers").add(static_cast<std::int64_t>(contended_));
  reg.counter("net.reconfigs").add(static_cast<std::int64_t>(reconfigs_));
  reg.counter("net.link_busy_ns").add(busy_total_.ns());
}

sim::Task<> Network::transfer(NodeId src, NodeId dst, Bytes bytes) {
  const Path& path = topo_.route(src, dst);
  ++transfers_;
  bool queued = false;
  for (std::size_t hop = 0; hop < path.links.size(); ++hop) {
    const LinkId lid = path.links[hop];
    const LinkDesc& desc = topo_.link(lid);
    LinkState& state = *links_[static_cast<std::size_t>(lid)];

    // Entering an optical circuit: the ingress port must point at the
    // egress this path takes next; retargeting pays the reconfiguration
    // delay before any byte moves.
    if (topo_.node(desc.dst).optical && hop + 1 < path.links.size()) {
      const LinkId egress = path.links[hop + 1];
      if (state.circuit != egress) {
        if (state.circuit != kInvalidLink || topo_.ocs_reconfigure().ns() > 0) {
          // The very first configuration of an untouched port still pays:
          // the circuit has to be set up either way.
          ++reconfigs_;
          co_await sim::delay(topo_.ocs_reconfigure());
        }
        state.circuit = egress;
      }
    }

    if (state.server.available() == 0) queued = true;
    co_await state.server.acquire();
    const SimDuration serialize = duration::seconds(
        static_cast<double>(bytes) / (desc.bandwidth_gib_s * static_cast<double>(kGiB)));
    co_await sim::delay(serialize);
    state.busy = state.busy + serialize;
    busy_total_ = busy_total_ + serialize;
    state.server.release();

    // Propagation (plus the crossed node's forwarding cost) overlaps with
    // the next payload on this link — the wire is already free.
    SimDuration off_link = desc.latency;
    if (hop + 1 < path.links.size()) {
      off_link = off_link + topo_.node(desc.dst).forward_latency;
    }
    co_await sim::delay(off_link);
  }
  if (queued) ++contended_;
}

sim::Task<> Network::transfer_between_devices(int src_device, int dst_device, Bytes bytes) {
  return transfer(topo_.device(src_device), topo_.device(dst_device), bytes);
}

}  // namespace rsd::net
