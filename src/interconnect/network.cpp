#include "interconnect/network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace rsd::net {

Network::Network(sim::Scheduler& sched, const Topology& topology)
    : sched_(sched), topo_(topology) {
  links_.reserve(topo_.link_count());
  for (std::size_t i = 0; i < topo_.link_count(); ++i) {
    links_.push_back(std::make_unique<LinkState>(sched_));
  }
  quiesce_handle_ = obs::QuiesceRegistry::global().add([this] { flush(); });
}

Network::~Network() {
  obs::QuiesceRegistry::global().remove(quiesce_handle_);
  flush();
}

void Network::set_usage_bucket(SimDuration width) {
  if (width.ns() > 0) bucket_width_ns_ = width.ns();
}

Network::LinkState::Bucket& Network::bucket_at(LinkState& state, SimTime at) {
  const std::int64_t start = (at.ns() / bucket_width_ns_) * bucket_width_ns_;
  return state.buckets[start];
}

std::vector<LinkUsageSample> Network::link_usage() const {
  std::vector<LinkUsageSample> out;
  for (std::size_t lid = 0; lid < links_.size(); ++lid) {
    for (const auto& [start, bucket] : links_[lid]->buckets) {
      LinkUsageSample sample;
      sample.link = static_cast<LinkId>(lid);
      sample.bucket_start_ns = start;
      sample.busy_ns = bucket.busy_ns;
      sample.transfers = bucket.transfers;
      sample.max_queue_depth = bucket.max_queue_depth;
      out.push_back(sample);
    }
  }
  return out;  // map iteration is ordered, links ascend: already sorted.
}

void Network::flush() {
  auto& reg = obs::Registry::global();
  const auto delta = [](std::uint64_t now, std::uint64_t& flushed) {
    const std::uint64_t d = now - flushed;
    flushed = now;
    return static_cast<std::int64_t>(d);
  };
  reg.counter("net.transfers").add(delta(transfers_, flushed_transfers_));
  reg.counter("net.contended_transfers").add(delta(contended_, flushed_contended_));
  reg.counter("net.reconfigs").add(delta(reconfigs_, flushed_reconfigs_));
  reg.counter("net.link_busy_ns").add(busy_total_.ns() - flushed_busy_ns_);
  flushed_busy_ns_ = busy_total_.ns();

  if (!obs::Tracer::enabled()) return;
  auto& tracer = obs::Tracer::instance();
  if (sim_id_ < 0) sim_id_ = tracer.acquire_sim_id();
  for (std::size_t lid = 0; lid < links_.size(); ++lid) {
    LinkState& state = *links_[lid];
    const std::int32_t track =
        obs::kTrackNetBase + static_cast<std::int32_t>(lid);
    for (const auto& [start, bucket] : state.buckets) {
      if (start <= state.exported_hwm) continue;
      const double util = static_cast<double>(bucket.busy_ns) /
                          static_cast<double>(bucket_width_ns_);
      tracer.counter_sim(sim_id_, track, start, "net", "link.util", util);
      tracer.counter_sim(sim_id_, track, start, "net", "link.queue",
                         static_cast<double>(bucket.max_queue_depth));
      state.exported_hwm = start;
    }
  }
}

sim::Task<> Network::transfer(NodeId src, NodeId dst, Bytes bytes) {
  const Path& path = topo_.route(src, dst);
  ++transfers_;
  bool queued = false;
  for (std::size_t hop = 0; hop < path.links.size(); ++hop) {
    const LinkId lid = path.links[hop];
    const LinkDesc& desc = topo_.link(lid);
    LinkState& state = *links_[static_cast<std::size_t>(lid)];

    // Entering an optical circuit: the ingress port must point at the
    // egress this path takes next; retargeting pays the reconfiguration
    // delay before any byte moves.
    if (topo_.node(desc.dst).optical && hop + 1 < path.links.size()) {
      const LinkId egress = path.links[hop + 1];
      if (state.circuit != egress) {
        if (state.circuit != kInvalidLink || topo_.ocs_reconfigure().ns() > 0) {
          // The very first configuration of an untouched port still pays:
          // the circuit has to be set up either way.
          ++reconfigs_;
          co_await sim::delay(topo_.ocs_reconfigure());
        }
        state.circuit = egress;
      }
    }

    if (state.server.available() == 0) queued = true;
    ++state.pending;
    {
      LinkState::Bucket& bucket = bucket_at(state, sched_.now());
      bucket.max_queue_depth = std::max(bucket.max_queue_depth, state.pending);
    }
    co_await state.server.acquire();
    const SimDuration serialize = duration::seconds(
        static_cast<double>(bytes) / (desc.bandwidth_gib_s * static_cast<double>(kGiB)));
    {
      // Busy time books to the bucket where serialisation began; a payload
      // longer than the bucket width shows up as utilisation > 1 there
      // rather than being smeared forward.
      LinkState::Bucket& bucket = bucket_at(state, sched_.now());
      bucket.busy_ns += serialize.ns();
      ++bucket.transfers;
    }
    co_await sim::delay(serialize);
    state.busy = state.busy + serialize;
    busy_total_ = busy_total_ + serialize;
    --state.pending;
    state.server.release();

    // Propagation (plus the crossed node's forwarding cost) overlaps with
    // the next payload on this link — the wire is already free.
    SimDuration off_link = desc.latency;
    if (hop + 1 < path.links.size()) {
      off_link = off_link + topo_.node(desc.dst).forward_latency;
    }
    co_await sim::delay(off_link);
  }
  if (queued) ++contended_;
}

sim::Task<> Network::transfer_between_devices(int src_device, int dst_device, Bytes bytes) {
  return transfer(topo_.device(src_device), topo_.device(dst_device), bytes);
}

}  // namespace rsd::net
