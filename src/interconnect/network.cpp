#include "interconnect/network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace rsd::net {

Network::Network(sim::Scheduler& sched, const Topology& topology)
    : sched_(sched), topo_(topology) {
  links_.reserve(topo_.link_count());
  for (std::size_t i = 0; i < topo_.link_count(); ++i) {
    links_.push_back(std::make_unique<LinkState>(sched_));
  }
  flushed_route_hits_ = topo_.route_table_hits();
  quiesce_handle_ = obs::QuiesceRegistry::global().add([this] { flush(); });
}

Network::~Network() {
  obs::QuiesceRegistry::global().remove(quiesce_handle_);
  flush();
}

void Network::set_usage_bucket(SimDuration width) {
  if (width.ns() > 0) bucket_width_ns_ = width.ns();
}

Network::LinkState::Bucket& Network::bucket_at(LinkState& state, SimTime at) {
  const std::int64_t start = (at.ns() / bucket_width_ns_) * bucket_width_ns_;
  // Simulated time is non-decreasing, so the bucket is either the last one
  // or a fresh append — no ordered-map node allocation on the hot path.
  // (A mid-run bucket-width change can map to an older start; book into
  // the newest bucket rather than break the ordering.)
  if (!state.buckets.empty() && state.buckets.back().first >= start) {
    return state.buckets.back().second;
  }
  state.buckets.emplace_back(start, LinkState::Bucket{});
  return state.buckets.back().second;
}

std::vector<LinkUsageSample> Network::link_usage() const {
  std::vector<LinkUsageSample> out;
  for (std::size_t lid = 0; lid < links_.size(); ++lid) {
    for (const auto& [start, bucket] : links_[lid]->buckets) {
      LinkUsageSample sample;
      sample.link = static_cast<LinkId>(lid);
      sample.bucket_start_ns = start;
      sample.busy_ns = bucket.busy_ns;
      sample.transfers = bucket.transfers;
      sample.max_queue_depth = bucket.max_queue_depth;
      out.push_back(sample);
    }
  }
  return out;  // buckets append in time order, links ascend: already sorted.
}

void Network::flush() {
  auto& reg = obs::Registry::global();
  const auto delta = [](std::uint64_t now, std::uint64_t& flushed) {
    const std::uint64_t d = now - flushed;
    flushed = now;
    return static_cast<std::int64_t>(d);
  };
  reg.counter("net.transfers").add(delta(transfers_, flushed_transfers_));
  reg.counter("net.contended_transfers").add(delta(contended_, flushed_contended_));
  reg.counter("net.express").add(delta(express_, flushed_express_));
  reg.counter("net.route_hits").add(delta(topo_.route_table_hits(), flushed_route_hits_));
  reg.counter("net.reconfigs").add(delta(reconfigs_, flushed_reconfigs_));
  reg.counter("net.nic_transfers").add(delta(nic_transfers_, flushed_nic_transfers_));
  reg.counter("net.link_busy_ns").add(busy_total_.ns() - flushed_busy_ns_);
  flushed_busy_ns_ = busy_total_.ns();
  reg.counter("net.fibre_busy_ns").add(fibre_busy_.ns() - flushed_fibre_busy_ns_);
  flushed_fibre_busy_ns_ = fibre_busy_.ns();

  if (!obs::Tracer::enabled()) return;
  auto& tracer = obs::Tracer::instance();
  if (sim_id_ < 0) sim_id_ = tracer.acquire_sim_id();
  for (std::size_t lid = 0; lid < links_.size(); ++lid) {
    LinkState& state = *links_[lid];
    const std::int32_t track =
        obs::kTrackNetBase + static_cast<std::int32_t>(lid);
    for (const auto& [start, bucket] : state.buckets) {
      if (start <= state.exported_hwm) continue;
      const double util = static_cast<double>(bucket.busy_ns) /
                          static_cast<double>(bucket_width_ns_);
      tracer.counter_sim(sim_id_, track, start, "net", "link.util", util);
      tracer.counter_sim(sim_id_, track, start, "net", "link.queue",
                         static_cast<double>(bucket.max_queue_depth));
      state.exported_hwm = start;
    }
  }
}

sim::Task<> Network::transfer(NodeId src, NodeId dst, Bytes bytes, TransferStats* stats) {
  const Path& path = topo_.route(src, dst);
  ++transfers_;
  // A transfer that crosses a NIC port or a fibre run left its chassis (or
  // touched the chassis edge): count it so experiments can split row-scale
  // traffic from chassis-local traffic. Flat fabrics have neither kind.
  for (const LinkId lid : path.links) {
    const LinkKind kind = topo_.link(lid).kind;
    if (kind == LinkKind::kNic || kind == LinkKind::kFibre) {
      ++nic_transfers_;
      break;
    }
  }

  // Express path: single hop onto a free wire — no circuit to retarget, no
  // queue to join. Book the wire by timestamp and sleep exactly once for
  // serialisation + propagation: one resumption instead of the
  // acquire/serialize/release/propagate sequence, identical timing
  // (tests/net_fastpath_test.cpp pins express-on against express-off).
  if (express_enabled_ && path.links.size() == 1) {
    LinkState& state = *links_[static_cast<std::size_t>(path.links[0])];
    const SimTime now = sched_.now();
    if (state.server.available() > 0 && state.express_busy_until <= now) {
      const LinkDesc& desc = topo_.link(path.links[0]);
      const SimDuration serialize = duration::seconds(
          static_cast<double>(bytes) / (desc.bandwidth_gib_s * static_cast<double>(kGiB)));
      {
        LinkState::Bucket& bucket = bucket_at(state, now);
        bucket.max_queue_depth = std::max(bucket.max_queue_depth, state.pending + 1);
        bucket.busy_ns += serialize.ns();
        ++bucket.transfers;
      }
      state.express_busy_until = now + serialize;
      state.busy = state.busy + serialize;
      busy_total_ = busy_total_ + serialize;
      if (desc.kind == LinkKind::kFibre) fibre_busy_ = fibre_busy_ + serialize;
      ++express_;
      co_await sim::delay(serialize + desc.latency);
      co_return;
    }
  }

  bool queued = false;
  for (std::size_t hop = 0; hop < path.links.size(); ++hop) {
    const LinkId lid = path.links[hop];
    const LinkDesc& desc = topo_.link(lid);
    LinkState& state = *links_[static_cast<std::size_t>(lid)];

    // Entering an optical circuit: the ingress port must point at the
    // egress this path takes next; retargeting pays the reconfiguration
    // delay before any byte moves.
    if (topo_.node(desc.dst).optical && hop + 1 < path.links.size()) {
      const LinkId egress = path.links[hop + 1];
      if (state.circuit != egress) {
        if (state.circuit != kInvalidLink || topo_.ocs_reconfigure().ns() > 0) {
          // The very first configuration of an untouched port still pays:
          // the circuit has to be set up either way.
          ++reconfigs_;
          if (stats != nullptr) stats->reconfig = stats->reconfig + topo_.ocs_reconfigure();
          co_await sim::delay(topo_.ocs_reconfigure());
        }
        state.circuit = egress;
      }
    }

    if (state.server.available() == 0 || state.express_busy_until > sched_.now()) {
      queued = true;
    }
    ++state.pending;
    {
      LinkState::Bucket& bucket = bucket_at(state, sched_.now());
      bucket.max_queue_depth = std::max(
          bucket.max_queue_depth,
          state.pending + (state.express_busy_until > sched_.now() ? 1 : 0));
    }
    co_await state.server.acquire();
    // An express reservation books the wire by timestamp, not the
    // semaphore: wait it out while *holding* the permit, so later arrivals
    // queue FIFO behind this transfer exactly as they would behind a
    // scheduled holder.
    if (state.express_busy_until > sched_.now()) {
      co_await sim::delay(state.express_busy_until - sched_.now());
    }
    const SimDuration serialize = duration::seconds(
        static_cast<double>(bytes) / (desc.bandwidth_gib_s * static_cast<double>(kGiB)));
    {
      // Busy time books to the bucket where serialisation began; a payload
      // longer than the bucket width shows up as utilisation > 1 there
      // rather than being smeared forward.
      LinkState::Bucket& bucket = bucket_at(state, sched_.now());
      bucket.busy_ns += serialize.ns();
      ++bucket.transfers;
    }
    co_await sim::delay(serialize);
    state.busy = state.busy + serialize;
    busy_total_ = busy_total_ + serialize;
    if (desc.kind == LinkKind::kFibre) fibre_busy_ = fibre_busy_ + serialize;
    --state.pending;
    state.server.release();

    // Propagation (plus the crossed node's forwarding cost) overlaps with
    // the next payload on this link — the wire is already free.
    SimDuration off_link = desc.latency;
    if (hop + 1 < path.links.size()) {
      off_link = off_link + topo_.node(desc.dst).forward_latency;
    }
    co_await sim::delay(off_link);
  }
  if (queued) {
    ++contended_;
    if (stats != nullptr) stats->queued = true;
  }
}

}  // namespace rsd::net
