#include "interconnect/fabric.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"

namespace rsd::net {

const char* to_string(FabricKind kind) {
  switch (kind) {
    case FabricKind::kRing: return "ring";
    case FabricKind::kFullMesh: return "fullmesh";
    case FabricKind::kElectricalSwitch: return "eswitch";
    case FabricKind::kOpticalCircuit: return "ocs";
  }
  return "?";
}

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRing: return "ring";
    case Algorithm::kTree: return "tree";
    case Algorithm::kHierarchical: return "hierarchical";
  }
  return "?";
}

FabricKind parse_fabric_kind(std::string_view name) {
  if (name == "ring") return FabricKind::kRing;
  if (name == "fullmesh" || name == "full-mesh" || name == "mesh") {
    return FabricKind::kFullMesh;
  }
  if (name == "eswitch" || name == "electrical-switch" || name == "electrical") {
    return FabricKind::kElectricalSwitch;
  }
  if (name == "ocs" || name == "optical" || name == "optical-circuit-switch") {
    return FabricKind::kOpticalCircuit;
  }
  throw Error{ErrorCode::kInvalidArgument,
              "unknown fabric '" + std::string{name} +
                  "' (expected ring, fullmesh, eswitch, or ocs)"};
}

const std::vector<FabricKind>& all_fabric_kinds() {
  static const std::vector<FabricKind> kinds{
      FabricKind::kRing, FabricKind::kFullMesh, FabricKind::kElectricalSwitch,
      FabricKind::kOpticalCircuit};
  return kinds;
}

namespace {

void add_gpus(Topology& topo, const FabricParams& params) {
  for (int i = 0; i < params.gpus; ++i) {
    topo.add_node(NodeDesc{.name = "gpu" + std::to_string(i),
                           .kind = NodeKind::kGpu,
                           .chassis = i / params.gpus_per_chassis});
  }
}

/// Wire one fabric shape among a chassis' member GPUs using the same link
/// rules as the flat builders, and return the node the chassis NIC hangs
/// off: the switch where the shape has one, the first member otherwise.
/// Attaching the NIC to a single node keeps it off every intra-chassis
/// route — a 0.35 us NIC port must not shortcut a 2 us NVLink ring.
NodeId wire_chassis(Topology& topo, const FabricParams& params,
                    const std::vector<NodeId>& members, int chassis) {
  const int n = static_cast<int>(members.size());
  switch (params.kind) {
    case FabricKind::kRing:
      for (int i = 0; i < n; ++i) {
        const int next = (i + 1) % n;
        if (next == i) break;                 // single GPU: no links
        if (n == 2 && i == 1) break;          // avoid doubling 0 <-> 1
        topo.add_duplex(members[static_cast<std::size_t>(i)],
                        members[static_cast<std::size_t>(next)], LinkKind::kNvlink,
                        params.link_bandwidth_gib_s, params.link_latency);
      }
      return members.front();

    case FabricKind::kFullMesh:
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          topo.add_duplex(members[static_cast<std::size_t>(i)],
                          members[static_cast<std::size_t>(j)], LinkKind::kNvlink,
                          params.link_bandwidth_gib_s, params.link_latency);
        }
      }
      return members.front();

    case FabricKind::kElectricalSwitch: {
      const NodeId sw = topo.add_node(NodeDesc{.name = "eswitch" + std::to_string(chassis),
                                               .kind = NodeKind::kSwitch,
                                               .chassis = chassis,
                                               .forward_latency = params.switch_hop_latency});
      for (const NodeId gpu : members) {
        topo.add_duplex(gpu, sw, LinkKind::kSwitch, params.link_bandwidth_gib_s,
                        params.link_latency);
      }
      return sw;
    }

    case FabricKind::kOpticalCircuit: {
      const NodeId sw = topo.add_node(NodeDesc{.name = "ocs" + std::to_string(chassis),
                                               .kind = NodeKind::kSwitch,
                                               .chassis = chassis,
                                               .optical = true});
      for (const NodeId gpu : members) {
        topo.add_duplex(gpu, sw, LinkKind::kFibre, params.link_bandwidth_gib_s,
                        params.link_latency);
      }
      return sw;
    }
  }
  return members.front();
}

/// The multi-chassis graph: the fabric shape recurs at two levels — once
/// over NVLink-class links inside each chassis, once over fibre between
/// the per-chassis NICs (a ring of NICs, a NIC full mesh, or a row-level
/// switch). Optionally a kHost endpoint attaches behind a PCIe stub into
/// nic0 — the CDI host-side entry the transport binding routes through.
void build_multi_chassis(Topology& topo, const FabricParams& params, int chassis_count) {
  std::vector<NodeId> nics;
  nics.reserve(static_cast<std::size_t>(chassis_count));
  for (int c = 0; c < chassis_count; ++c) {
    std::vector<NodeId> members;
    const int lo = c * params.gpus_per_chassis;
    const int hi = std::min(params.gpus, (c + 1) * params.gpus_per_chassis);
    members.reserve(static_cast<std::size_t>(hi - lo));
    for (int i = lo; i < hi; ++i) members.push_back(topo.device(i));
    const NodeId attach = wire_chassis(topo, params, members, c);
    const NodeId nic = topo.add_node(
        NodeDesc{.name = "nic" + std::to_string(c), .kind = NodeKind::kNic, .chassis = c});
    topo.add_duplex(attach, nic, LinkKind::kNic, params.nic_bandwidth_gib_s,
                    params.nic_latency);
    nics.push_back(nic);
  }

  if (chassis_count > 1) {
    switch (params.kind) {
      case FabricKind::kRing:
        for (int c = 0; c < chassis_count; ++c) {
          const int next = (c + 1) % chassis_count;
          if (chassis_count == 2 && c == 1) break;  // avoid doubling 0 <-> 1
          topo.add_duplex(nics[static_cast<std::size_t>(c)],
                          nics[static_cast<std::size_t>(next)], LinkKind::kFibre,
                          params.fibre_bandwidth_gib_s, params.fibre_latency);
        }
        break;

      case FabricKind::kFullMesh:
        for (int c = 0; c < chassis_count; ++c) {
          for (int d = c + 1; d < chassis_count; ++d) {
            topo.add_duplex(nics[static_cast<std::size_t>(c)],
                            nics[static_cast<std::size_t>(d)], LinkKind::kFibre,
                            params.fibre_bandwidth_gib_s, params.fibre_latency);
          }
        }
        break;

      case FabricKind::kElectricalSwitch: {
        const NodeId row = topo.add_node(NodeDesc{.name = "row_eswitch",
                                                  .kind = NodeKind::kSwitch,
                                                  .forward_latency = params.switch_hop_latency});
        for (const NodeId nic : nics) {
          topo.add_duplex(nic, row, LinkKind::kFibre, params.fibre_bandwidth_gib_s,
                          params.fibre_latency);
        }
        break;
      }

      case FabricKind::kOpticalCircuit: {
        const NodeId row = topo.add_node(
            NodeDesc{.name = "row_ocs", .kind = NodeKind::kSwitch, .optical = true});
        for (const NodeId nic : nics) {
          topo.add_duplex(nic, row, LinkKind::kFibre, params.fibre_bandwidth_gib_s,
                          params.fibre_latency);
        }
        break;
      }
    }
  }

  if (params.host_endpoint) {
    const NodeId host =
        topo.add_node(NodeDesc{.name = "host0", .kind = NodeKind::kHost});
    topo.add_duplex(host, nics.front(), LinkKind::kPcie, params.host_bandwidth_gib_s,
                    params.host_latency);
  }
}

}  // namespace

Topology build_fabric(const FabricParams& params) {
  if (params.gpus < 1) {
    throw Error{ErrorCode::kInvalidArgument, "net::build_fabric: gpus must be >= 1"};
  }
  if (params.gpus_per_chassis < 1) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::build_fabric: gpus_per_chassis must be >= 1"};
  }
  if (params.max_chassis < 0) {
    throw Error{ErrorCode::kInvalidArgument, "net::build_fabric: max_chassis must be >= 0"};
  }
  const int chassis_count =
      (params.gpus + params.gpus_per_chassis - 1) / params.gpus_per_chassis;
  if (params.max_chassis > 0 && chassis_count > params.max_chassis) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::build_fabric: " + std::to_string(params.gpus) + " gpus at " +
                    std::to_string(params.gpus_per_chassis) +
                    " per chassis needs " + std::to_string(chassis_count) +
                    " chassis, more than max_chassis = " +
                    std::to_string(params.max_chassis) +
                    " (raise max_chassis or gpus_per_chassis)"};
  }
  if (params.host_endpoint && !params.chassis_nics) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::build_fabric: host_endpoint requires chassis_nics (the host "
                "attaches behind nic0)"};
  }

  Topology topo;
  add_gpus(topo, params);

  if (params.chassis_nics) {
    build_multi_chassis(topo, params, chassis_count);
    if (params.kind == FabricKind::kOpticalCircuit) {
      topo.set_ocs_reconfigure(params.ocs_reconfigure);
    }
    return topo;
  }

  switch (params.kind) {
    case FabricKind::kRing:
      // i <-> i+1 mod n; a ring of two collapses to one duplex pair.
      for (int i = 0; i < params.gpus; ++i) {
        const int next = (i + 1) % params.gpus;
        if (next == i) break;                 // single GPU: no links
        if (params.gpus == 2 && i == 1) break;  // avoid doubling 0 <-> 1
        topo.add_duplex(topo.device(i), topo.device(next), LinkKind::kNvlink,
                        params.link_bandwidth_gib_s, params.link_latency);
      }
      break;

    case FabricKind::kFullMesh:
      for (int i = 0; i < params.gpus; ++i) {
        for (int j = i + 1; j < params.gpus; ++j) {
          topo.add_duplex(topo.device(i), topo.device(j), LinkKind::kNvlink,
                          params.link_bandwidth_gib_s, params.link_latency);
        }
      }
      break;

    case FabricKind::kElectricalSwitch: {
      const NodeId sw = topo.add_node(NodeDesc{.name = "eswitch",
                                               .kind = NodeKind::kSwitch,
                                               .forward_latency = params.switch_hop_latency});
      for (int i = 0; i < params.gpus; ++i) {
        topo.add_duplex(topo.device(i), sw, LinkKind::kSwitch,
                        params.link_bandwidth_gib_s, params.link_latency);
      }
      break;
    }

    case FabricKind::kOpticalCircuit: {
      const NodeId sw = topo.add_node(
          NodeDesc{.name = "ocs", .kind = NodeKind::kSwitch, .optical = true});
      for (int i = 0; i < params.gpus; ++i) {
        topo.add_duplex(topo.device(i), sw, LinkKind::kFibre,
                        params.link_bandwidth_gib_s, params.link_latency);
      }
      topo.set_ocs_reconfigure(params.ocs_reconfigure);
      break;
    }
  }

  return topo;
}

}  // namespace rsd::net
