#include "interconnect/fabric.hpp"

#include <string>

#include "core/error.hpp"

namespace rsd::net {

const char* to_string(FabricKind kind) {
  switch (kind) {
    case FabricKind::kRing: return "ring";
    case FabricKind::kFullMesh: return "fullmesh";
    case FabricKind::kElectricalSwitch: return "eswitch";
    case FabricKind::kOpticalCircuit: return "ocs";
  }
  return "?";
}

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRing: return "ring";
    case Algorithm::kTree: return "tree";
    case Algorithm::kHierarchical: return "hierarchical";
  }
  return "?";
}

FabricKind parse_fabric_kind(std::string_view name) {
  if (name == "ring") return FabricKind::kRing;
  if (name == "fullmesh" || name == "full-mesh" || name == "mesh") {
    return FabricKind::kFullMesh;
  }
  if (name == "eswitch" || name == "electrical-switch" || name == "electrical") {
    return FabricKind::kElectricalSwitch;
  }
  if (name == "ocs" || name == "optical" || name == "optical-circuit-switch") {
    return FabricKind::kOpticalCircuit;
  }
  throw Error{ErrorCode::kInvalidArgument,
              "unknown fabric '" + std::string{name} +
                  "' (expected ring, fullmesh, eswitch, or ocs)"};
}

const std::vector<FabricKind>& all_fabric_kinds() {
  static const std::vector<FabricKind> kinds{
      FabricKind::kRing, FabricKind::kFullMesh, FabricKind::kElectricalSwitch,
      FabricKind::kOpticalCircuit};
  return kinds;
}

namespace {

void add_gpus(Topology& topo, const FabricParams& params) {
  for (int i = 0; i < params.gpus; ++i) {
    topo.add_node(NodeDesc{.name = "gpu" + std::to_string(i),
                           .kind = NodeKind::kGpu,
                           .chassis = i / params.gpus_per_chassis});
  }
}

}  // namespace

Topology build_fabric(const FabricParams& params) {
  if (params.gpus < 1) {
    throw Error{ErrorCode::kInvalidArgument, "net::build_fabric: gpus must be >= 1"};
  }
  if (params.gpus_per_chassis < 1) {
    throw Error{ErrorCode::kInvalidArgument,
                "net::build_fabric: gpus_per_chassis must be >= 1"};
  }

  Topology topo;
  add_gpus(topo, params);

  switch (params.kind) {
    case FabricKind::kRing:
      // i <-> i+1 mod n; a ring of two collapses to one duplex pair.
      for (int i = 0; i < params.gpus; ++i) {
        const int next = (i + 1) % params.gpus;
        if (next == i) break;                 // single GPU: no links
        if (params.gpus == 2 && i == 1) break;  // avoid doubling 0 <-> 1
        topo.add_duplex(topo.device(i), topo.device(next), LinkKind::kNvlink,
                        params.link_bandwidth_gib_s, params.link_latency);
      }
      break;

    case FabricKind::kFullMesh:
      for (int i = 0; i < params.gpus; ++i) {
        for (int j = i + 1; j < params.gpus; ++j) {
          topo.add_duplex(topo.device(i), topo.device(j), LinkKind::kNvlink,
                          params.link_bandwidth_gib_s, params.link_latency);
        }
      }
      break;

    case FabricKind::kElectricalSwitch: {
      const NodeId sw = topo.add_node(NodeDesc{.name = "eswitch",
                                               .kind = NodeKind::kSwitch,
                                               .forward_latency = params.switch_hop_latency});
      for (int i = 0; i < params.gpus; ++i) {
        topo.add_duplex(topo.device(i), sw, LinkKind::kSwitch,
                        params.link_bandwidth_gib_s, params.link_latency);
      }
      break;
    }

    case FabricKind::kOpticalCircuit: {
      const NodeId sw = topo.add_node(
          NodeDesc{.name = "ocs", .kind = NodeKind::kSwitch, .optical = true});
      for (int i = 0; i < params.gpus; ++i) {
        topo.add_duplex(topo.device(i), sw, LinkKind::kFibre,
                        params.link_bandwidth_gib_s, params.link_latency);
      }
      topo.set_ocs_reconfigure(params.ocs_reconfigure);
      break;
    }
  }

  return topo;
}

}  // namespace rsd::net
