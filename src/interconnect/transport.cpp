#include "interconnect/transport.hpp"

namespace rsd::net {

sim::Task<> Transport::transfer_between_devices(int src_device, int dst_device,
                                                Bytes bytes) {
  return transfer(topology().device(src_device), topology().device(dst_device), bytes,
                  nullptr);
}

}  // namespace rsd::net
