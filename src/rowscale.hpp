// Umbrella header: the full public API of the rowscale-cdi library.
//
//   #include "rowscale.hpp"
//
// Everything lives under namespace rsd:: (sub-namespaces sim, gpu,
// interconnect, trace, proxy, model, lj, nn, apps, cluster).
#pragma once

#include "core/ascii_plot.hpp"
#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/experiment.hpp"
#include "core/histogram.hpp"
#include "core/log.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

#include "interconnect/link.hpp"
#include "interconnect/slack.hpp"

#include "gpusim/chassis.hpp"
#include "gpusim/collective.hpp"
#include "gpusim/context.hpp"
#include "gpusim/device.hpp"
#include "gpusim/records.hpp"

#include "trace/analysis.hpp"
#include "trace/import.hpp"
#include "trace/trace.hpp"

#include "proxy/proxy.hpp"

#include "model/response_surface.hpp"
#include "model/slack_model.hpp"

#include "lj/system.hpp"
#include "nn/network.hpp"

#include "apps/calibration.hpp"
#include "apps/cosmoflow.hpp"
#include "apps/lammps.hpp"
#include "apps/scaling.hpp"

#include "cluster/composition.hpp"
#include "cluster/scheduler.hpp"
