#include "harness/manifest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace rsd::harness {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool RunSummary::all_ok() const {
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const ExperimentOutcome& o) { return o.ok; });
}

namespace {

void append_string_array(std::ostringstream& out, const std::vector<std::string>& items) {
  out << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << json_escape(items[i]) << '"';
  }
  out << ']';
}

}  // namespace

std::string manifest_json(const RunSummary& summary) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"rsd-bench-manifest-v4\",\n";
  out << "  \"threads\": " << summary.threads << ",\n";
  out << "  \"runs\": " << summary.runs << ",\n";
  out << "  \"seed\": " << summary.seed << ",\n";
  out << "  \"results_dir\": \"" << json_escape(summary.results_dir) << "\",\n";
  if (!summary.trace_dir.empty()) {
    out << "  \"trace_dir\": \"" << json_escape(summary.trace_dir) << "\",\n";
  }
  out << "  \"experiments\": [";
  for (std::size_t i = 0; i < summary.outcomes.size(); ++i) {
    const ExperimentOutcome& o = summary.outcomes[i];
    out << (i > 0 ? "," : "") << "\n    {";
    out << "\"name\": \"" << json_escape(o.name) << "\", ";
    out << "\"tags\": ";
    append_string_array(out, o.tags);
    out << ", \"status\": \"" << (o.ok ? "ok" : "failed") << "\"";
    if (!o.ok) out << ", \"error\": \"" << json_escape(o.error) << "\"";
    if (std::isfinite(o.wall_s)) out << ", \"wall_s\": " << o.wall_s;
    out << ", \"csv\": ";
    append_string_array(out, o.csv_paths);
    out << ", \"metrics\": " << obs::metrics_json(o.metrics);
    if (!o.attribution.empty()) {
      out << ", \"attribution\": [";
      for (std::size_t a = 0; a < o.attribution.size(); ++a) {
        const AttributionEntry& e = o.attribution[a];
        out << (a > 0 ? ", " : "") << "{\"label\": \"" << json_escape(e.label)
            << "\", \"makespan_ns\": " << e.makespan_ns << ", \"components\": {"
            << "\"compute_ns\": " << e.compute_ns
            << ", \"reconfig_ns\": " << e.reconfig_ns << ", \"nic_ns\": " << e.nic_ns
            << ", \"fabric_ns\": " << e.fabric_ns << ", \"queue_ns\": " << e.queue_ns
            << ", \"wake_ns\": " << e.wake_ns << ", \"idle_ns\": " << e.idle_ns << '}';
        if (e.has_band && std::isfinite(e.slack_share) && std::isfinite(e.band_lower) &&
            std::isfinite(e.band_upper)) {
          out << ", \"slack_share\": " << e.slack_share
              << ", \"band\": [" << e.band_lower << ", " << e.band_upper << ']';
        }
        out << '}';
      }
      out << ']';
    }
    out << '}';
  }
  if (!summary.outcomes.empty()) out << "\n  ";
  out << "]\n";
  out << "}\n";
  return out.str();
}

void write_manifest(const std::filesystem::path& path, const RunSummary& summary) {
  std::error_code ec;
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path(), ec);
  std::ofstream out{path, std::ios::trunc};
  if (!out) throw std::runtime_error{"manifest: cannot open " + path.string()};
  out << manifest_json(summary);
  if (!out) throw std::runtime_error{"manifest: write failed for " + path.string()};
}

}  // namespace rsd::harness
