// The structured run manifest. Replaces the old per-process
// `bench_meta.json` atexit hook: one `rsd_bench` invocation writes one
// JSON document recording, per experiment, the wall clock, the CSV files
// produced, and the exit status — machine-readable ground truth for
// tracking the fleet's perf trajectory across PRs.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace rsd::harness {

/// JSON string-literal escaping. Quotes and backslashes are
/// backslash-escaped; control characters (newlines, tabs, ...) become
/// their short escapes or \u00XX — a description or path containing a
/// newline can no longer corrupt the manifest.
[[nodiscard]] std::string json_escape(std::string_view s);

/// One critical-path attribution (obs::critpath) recorded by an
/// experiment: a labelled makespan decomposition whose components sum to
/// the makespan, optionally annotated with the slack-wake share and the
/// Eq 2–3 prediction band it was checked against.
struct AttributionEntry {
  std::string label;
  std::int64_t makespan_ns = 0;
  std::int64_t compute_ns = 0;
  std::int64_t reconfig_ns = 0;
  std::int64_t nic_ns = 0;
  std::int64_t fabric_ns = 0;
  std::int64_t queue_ns = 0;
  std::int64_t wake_ns = 0;
  std::int64_t idle_ns = 0;
  bool has_band = false;
  double slack_share = 0.0;  ///< Observed slack-wake share (has_band only).
  double band_lower = 0.0;   ///< Eq 2–3 predicted lower bound.
  double band_upper = 0.0;   ///< Eq 2–3 predicted upper bound.
};

struct ExperimentOutcome {
  std::string name;
  std::vector<std::string> tags;
  bool ok = false;
  std::string error;  ///< Non-empty iff !ok.
  double wall_s = 0.0;
  std::vector<std::string> csv_paths;
  /// Global-registry activity attributed to this experiment (the delta of
  /// snapshots taken around its run). Serialized under "metrics".
  obs::MetricsSnapshot metrics;
  /// Critical-path attributions recorded via ctx.record_attribution.
  /// Serialized under "attribution" (omitted when empty).
  std::vector<AttributionEntry> attribution;
};

struct RunSummary {
  int threads = 1;
  int runs = 5;
  std::uint64_t seed = 1;
  std::string results_dir;
  std::string trace_dir;  ///< Empty when the obs tracer was off.
  std::vector<ExperimentOutcome> outcomes;

  [[nodiscard]] bool all_ok() const;
};

/// The manifest document. Non-finite wall clocks are omitted rather than
/// serialized (inf/nan are not valid JSON).
[[nodiscard]] std::string manifest_json(const RunSummary& summary);

/// Write `manifest_json` to `path` (parent directories created).
void write_manifest(const std::filesystem::path& path, const RunSummary& summary);

}  // namespace rsd::harness
