// Global experiment registry: name-sorted, duplicate-rejecting, with
// glob/tag selection for the `rsd_bench` CLI. `Registry` is an ordinary
// class (tests build private instances); the fleet lives in `global()`.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.hpp"

namespace rsd::harness {

/// Shell-style glob match: `*` = any (possibly empty) run of characters,
/// `?` = any single character. Everything else matches literally.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

class Registry {
 public:
  Registry() = default;

  /// The fleet `rsd_bench` runs: every statically-registered experiment.
  [[nodiscard]] static Registry& global();

  /// Insert, keeping `experiments()` sorted by name. A duplicate name is
  /// rejected: the experiment is dropped, the conflict is recorded in
  /// `errors()`, and false is returned.
  bool add(std::unique_ptr<Experiment> experiment);

  /// All experiments, sorted by name (stable regardless of link order).
  [[nodiscard]] const std::vector<std::unique_ptr<Experiment>>& experiments() const {
    return experiments_;
  }

  [[nodiscard]] const Experiment* find(std::string_view name) const;

  /// Experiments matching the selection: a candidate is selected when it
  /// matches at least one name pattern (no patterns = all) AND carries at
  /// least one of `tags` (no tags = all). Name patterns are globs, and a
  /// leading "bench_" is ignored so pre-harness binary names keep working
  /// (`bench_fig3_slack_sweep` selects `fig3_slack_sweep`).
  [[nodiscard]] std::vector<const Experiment*> select(const std::vector<std::string>& patterns,
                                                      const std::vector<std::string>& tags) const;

  /// Registration conflicts (duplicate names). A healthy build has none;
  /// the CLI refuses to run if any are present.
  [[nodiscard]] const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::vector<std::unique_ptr<Experiment>> experiments_;
  std::vector<std::string> errors_;
};

}  // namespace rsd::harness
