#include "harness/runner.hpp"

#include <chrono>
#include <exception>
#include <ostream>

#include "harness/context.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/quiesce.hpp"
#include "obs/tracer.hpp"

namespace rsd::harness {

RunSummary run_experiments(const std::vector<const Experiment*>& selected,
                           ExperimentContext& ctx) {
  RunSummary summary;
  summary.threads = ctx.pool().size();
  summary.runs = ctx.runs();
  summary.seed = ctx.seed();
  summary.results_dir = ctx.results_dir().string();
  summary.trace_dir = ctx.trace_dir().string();

  for (const Experiment* e : selected) {
    ctx.out() << "\n=== " << e->name() << " ===\n" << e->description() << "\n\n";

    ExperimentOutcome outcome;
    outcome.name = e->name();
    outcome.tags = e->tags();
    const obs::MetricsSnapshot before = obs::Registry::global().snapshot();
    const auto start = std::chrono::steady_clock::now();
    try {
      obs::Span span{"harness", "experiment:" + e->name()};
      e->run(ctx);
      outcome.ok = true;
    } catch (const std::exception& ex) {
      outcome.error = ex.what();
    } catch (...) {
      outcome.error = "unknown exception";
    }
    outcome.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    // Force long-lived subsystems (networks held across experiments) to
    // flush their local tallies before the after-snapshot, so the delta
    // below sees this experiment's activity rather than whatever happens
    // to be unflushed at destruction time.
    obs::flush_quiesce();
    outcome.metrics = obs::metrics_delta(before, obs::Registry::global().snapshot());
    outcome.csv_paths = ctx.drain_csv_paths();
    outcome.attribution = ctx.drain_attributions();
    if (!outcome.ok) {
      ctx.out() << "[failed] " << e->name() << ": " << outcome.error << "\n";
    }
    summary.outcomes.push_back(std::move(outcome));
  }
  return summary;
}

}  // namespace rsd::harness
