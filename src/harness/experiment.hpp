// The registry-driven experiment harness (`rsd::harness`).
//
// Every paper table/figure/ablation/extension is one `Experiment`:
// a stable CLI name, selection tags, a description, and a `run` body.
// Experiments self-register into `Registry::global()` at static-init time
// (see RSD_EXPERIMENT below), and the single `rsd_bench` binary selects
// and runs any subset of the fleet in one process — so the shared
// `exec::Pool` and memoized response surfaces in `ExperimentContext`
// survive across experiments instead of dying at a process boundary.
#pragma once

#include <string>
#include <vector>

namespace rsd::harness {

class ExperimentContext;

class Experiment {
 public:
  virtual ~Experiment() = default;
  Experiment() = default;
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Stable CLI identifier, e.g. "fig3_slack_sweep".
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Selection labels: "figure", "table", "text", "ablation",
  /// "extension", "micro". An experiment may carry several.
  [[nodiscard]] virtual const std::vector<std::string>& tags() const = 0;

  /// First line: one-line summary (what `--list` shows). Remaining
  /// lines: detail printed above the experiment's output.
  [[nodiscard]] virtual const std::string& description() const = 0;

  virtual void run(ExperimentContext& ctx) const = 0;
};

/// An `Experiment` backed by a free function — what RSD_EXPERIMENT
/// produces. Tags are given as one comma-separated string ("figure" or
/// "figure,proxy") because commas inside braced-init-lists would split
/// macro arguments.
class FunctionExperiment final : public Experiment {
 public:
  using RunFn = void (*)(ExperimentContext&);

  FunctionExperiment(std::string name, const std::string& tags_csv, std::string description,
                     RunFn fn);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string>& tags() const override { return tags_; }
  [[nodiscard]] const std::string& description() const override { return description_; }
  void run(ExperimentContext& ctx) const override { fn_(ctx); }

 private:
  std::string name_;
  std::vector<std::string> tags_;
  std::string description_;
  RunFn fn_;
};

/// Register a FunctionExperiment into `Registry::global()`. Returns the
/// registry's verdict: false means the name was already taken (the
/// conflict is recorded in `Registry::global().errors()` and reported by
/// the CLI rather than silently shadowing an experiment).
bool register_experiment(std::string name, const std::string& tags_csv, std::string description,
                         FunctionExperiment::RunFn fn);

}  // namespace rsd::harness

/// Defines and registers an experiment:
///
///   RSD_EXPERIMENT(fig3_slack_sweep, "fig3_slack_sweep", "figure",
///                  "Figure 3 — proxy slack sweep ...") {
///     ... body using `ctx` (an ExperimentContext&) ...
///   }
#define RSD_EXPERIMENT(ident, name, tags_csv, description)                              \
  static void rsd_experiment_##ident(::rsd::harness::ExperimentContext& ctx);           \
  [[maybe_unused]] static const bool rsd_experiment_registered_##ident =                \
      ::rsd::harness::register_experiment(name, tags_csv, description,                  \
                                          &rsd_experiment_##ident);                     \
  static void rsd_experiment_##ident(                                                   \
      [[maybe_unused]] ::rsd::harness::ExperimentContext& ctx)
