#include "harness/context.hpp"

#include <cstdlib>
#include <string>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/paths.hpp"
#include "exec/team.hpp"
#include "obs/tracer.hpp"

namespace rsd::harness {

namespace {

std::filesystem::path resolve_results_dir(const ExperimentContext::Options& options) {
  return options.results_dir.empty() ? rsd::results_dir() : options.results_dir;
}

std::string resolve_fabric(const ExperimentContext::Options& options) {
  if (!options.fabric.empty()) return options.fabric;
  if (const char* env = std::getenv("RSD_FABRIC"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "all";
}

int resolve_gpus_per_chassis(const ExperimentContext::Options& options) {
  if (options.gpus_per_chassis > 0) return options.gpus_per_chassis;
  if (const char* env = std::getenv("RSD_GPUS_PER_CHASSIS");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || n < 1) {
      throw Error{ErrorCode::kInvalidArgument,
                  "RSD_GPUS_PER_CHASSIS expects an integer >= 1, got '" +
                      std::string{env} + "'"};
    }
    return static_cast<int>(n);
  }
  return 0;
}

}  // namespace

ExperimentContext::ExperimentContext(Options options)
    : results_dir_(resolve_results_dir(options)),
      trace_dir_(options.trace_dir),
      runs_(options.runs >= 1 ? options.runs : 1),
      sim_threads_(options.sim_threads >= 1 ? options.sim_threads
                                            : exec::default_sim_thread_count()),
      fabric_(resolve_fabric(options)),
      gpus_per_chassis_(resolve_gpus_per_chassis(options)),
      seed_(options.seed),
      out_(options.out != nullptr ? options.out : &std::cout),
      pool_(options.threads >= 1 ? options.threads : exec::default_thread_count()),
      sweep_cache_(results_dir_ / ".cache") {
  // Enabled before any experiment runs, so every gpu::Device constructed
  // under this invocation acquires a simulated-timeline id.
  if (!trace_dir_.empty()) obs::Tracer::instance().enable();
}

void ExperimentContext::save_csv(const std::string& name, const CsvWriter& csv) {
  std::filesystem::create_directories(results_dir_);
  const auto path = (results_dir_ / (name + ".csv")).string();
  csv.save(path);
  *out_ << "[csv] " << path << "\n";
  csv_paths_.push_back(path);
}

std::vector<std::string> ExperimentContext::drain_csv_paths() {
  std::vector<std::string> out;
  out.swap(csv_paths_);
  return out;
}

void ExperimentContext::record_attribution(AttributionEntry entry) {
  attributions_.push_back(std::move(entry));
}

std::vector<AttributionEntry> ExperimentContext::drain_attributions() {
  std::vector<AttributionEntry> out;
  out.swap(attributions_);
  return out;
}

}  // namespace rsd::harness
