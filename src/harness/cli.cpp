#include "harness/cli.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/paths.hpp"
#include "interconnect/fabric.hpp"
#include "harness/context.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "obs/tracer.hpp"
#include "trace/timeline.hpp"

namespace rsd::harness {

namespace {

constexpr const char* kUsage =
    "usage: rsd_bench [options] [name-globs...]\n"
    "\n"
    "Run paper experiments (tables, figures, ablations, extensions) in one\n"
    "process. With no selection, the whole fleet runs.\n"
    "\n"
    "  --list             enumerate the selection (default: all) and exit\n"
    "  --tags T1,T2       restrict to experiments carrying any of the tags\n"
    "  --threads N        fan-out width ACROSS independent runs: how many\n"
    "                     sequential simulations execute concurrently\n"
    "                     (default: RSD_THREADS or hardware)\n"
    "  --sim-threads N    worker threads INSIDE one partitioned simulation\n"
    "                     (sim::ParallelEngine width). Outputs are byte-\n"
    "                     identical at any value; this is purely a speed\n"
    "                     knob (default: RSD_SIM_THREADS or 1)\n"
    "  --fabric NAME      row fabric for fabric-aware experiments: ring,\n"
    "                     fullmesh, eswitch, ocs, or all to sweep every\n"
    "                     shape (default: RSD_FABRIC or all)\n"
    "  --gpus-per-chassis N\n"
    "                     chassis width for multi-chassis-aware experiments:\n"
    "                     build the machine graph with per-chassis NICs and\n"
    "                     inter-chassis fibre at N devices per chassis\n"
    "                     (default: RSD_GPUS_PER_CHASSIS, else each\n"
    "                     experiment's flat single-graph shape)\n"
    "  --runs N           repetitions for seeded protocols (default: 5)\n"
    "  --seed S           base seed for seeded protocols (default: 1)\n"
    "  --results-dir DIR  where CSVs/cache/manifest go (default: the\n"
    "                     canonical bench_results/; RSD_RESULTS_DIR works too)\n"
    "  --manifest FILE    manifest path (default: <results>/run_manifest.json)\n"
    "  --trace DIR        enable the obs timeline tracer and export trace.json\n"
    "                     (Chrome/Perfetto) + trace_ops.csv (NSys-style, re-\n"
    "                     importable via trace::import) into DIR; RSD_TRACE=DIR\n"
    "                     in the environment does the same\n"
    "  --report           after the run, print each experiment's critical-path\n"
    "                     attribution (where every simulated nanosecond of\n"
    "                     makespan went); tools/report.py renders the same\n"
    "                     breakdown from the manifest\n"
    "  --help             this text\n"
    "\n"
    "Name globs use * and ?; a leading 'bench_' is ignored, so old binary\n"
    "names like bench_fig3_slack_sweep still select fig3_slack_sweep.\n";

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in{csv};
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string first_line(const std::string& text) {
  const auto nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

std::string join(const std::vector<std::string>& items, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

void print_report(const RunSummary& summary, std::ostream& out) {
  bool any = false;
  for (const auto& o : summary.outcomes) {
    if (o.attribution.empty()) continue;
    if (!any) out << "\n[report] critical-path attribution\n";
    any = true;
    for (const AttributionEntry& e : o.attribution) {
      const double makespan = static_cast<double>(e.makespan_ns);
      const auto pct = [&](std::int64_t ns) {
        return makespan > 0 ? 100.0 * static_cast<double>(ns) / makespan : 0.0;
      };
      out << "  " << o.name << "/" << e.label << ": makespan " << std::fixed
          << std::setprecision(3) << makespan / 1e6 << " ms\n"
          << "    compute " << std::setprecision(1) << pct(e.compute_ns)
          << "%  reconfig " << pct(e.reconfig_ns) << "%  nic " << pct(e.nic_ns)
          << "%  fabric " << pct(e.fabric_ns)
          << "%  queue " << pct(e.queue_ns) << "%  wake " << pct(e.wake_ns)
          << "%  idle " << pct(e.idle_ns) << "%\n";
      if (e.has_band) {
        out << "    slack share " << std::setprecision(4) << e.slack_share
            << " vs Eq 2-3 band [" << e.band_lower << ", " << e.band_upper << "]"
            << (e.slack_share >= e.band_lower && e.slack_share <= e.band_upper
                    ? ""
                    : "  (OUTSIDE BAND)")
            << "\n";
      }
    }
  }
  if (!any) {
    out << "\n[report] no attribution recorded (select an experiment that "
           "records critical-path attributions, e.g. attribution_fabrics)\n";
  }
  out.unsetf(std::ios::fixed);
}

void print_list(const std::vector<const Experiment*>& selected, std::ostream& out) {
  std::size_t name_width = 0, tag_width = 0;
  for (const Experiment* e : selected) {
    name_width = std::max(name_width, e->name().size());
    tag_width = std::max(tag_width, join(e->tags(), ",").size());
  }
  for (const Experiment* e : selected) {
    out << std::left << std::setw(static_cast<int>(name_width) + 2) << e->name()
        << std::setw(static_cast<int>(tag_width) + 2) << join(e->tags(), ",")
        << first_line(e->description()) << "\n";
  }
  out << selected.size() << " experiment(s)\n";
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  Registry& registry = Registry::global();
  if (!registry.errors().empty()) {
    for (const auto& e : registry.errors()) err << "registry error: " << e << "\n";
    return 2;
  }

  ExperimentContext::Options options;
  std::vector<std::string> patterns;
  std::vector<std::string> tags;
  std::optional<std::string> manifest_path;
  bool list = false;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        err << "rsd_bench: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string{argv[++i]};
    };
    auto int_value = [&](const char* flag, int min) -> std::optional<int> {
      const auto v = value(flag);
      if (!v) return std::nullopt;
      char* end = nullptr;
      const long n = std::strtol(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0' || n < min) {
        err << "rsd_bench: " << flag << " expects an integer >= " << min << " (got '" << *v
            << "')\n";
        return std::nullopt;
      }
      return static_cast<int>(n);
    };

    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--tags") {
      const auto v = value("--tags");
      if (!v) return 2;
      for (auto& t : split_csv(*v)) tags.push_back(std::move(t));
    } else if (arg == "--threads") {
      const auto v = int_value("--threads", 1);
      if (!v) return 2;
      options.threads = *v;
    } else if (arg == "--sim-threads") {
      const auto v = int_value("--sim-threads", 1);
      if (!v) return 2;
      options.sim_threads = *v;
    } else if (arg == "--fabric") {
      const auto v = value("--fabric");
      if (!v) return 2;
      if (*v != "all") {
        try {
          (void)net::parse_fabric_kind(*v);
        } catch (const Error& e) {
          err << "rsd_bench: --fabric: " << e.what() << "\n";
          return 2;
        }
      }
      options.fabric = *v;
    } else if (arg == "--gpus-per-chassis") {
      const auto v = int_value("--gpus-per-chassis", 1);
      if (!v) return 2;
      options.gpus_per_chassis = *v;
    } else if (arg == "--runs") {
      const auto v = int_value("--runs", 1);
      if (!v) return 2;
      options.runs = *v;
    } else if (arg == "--seed") {
      const auto v = value("--seed");
      if (!v) return 2;
      char* end = nullptr;
      options.seed = std::strtoull(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0') {
        err << "rsd_bench: --seed expects an unsigned integer (got '" << *v << "')\n";
        return 2;
      }
    } else if (arg == "--results-dir") {
      const auto v = value("--results-dir");
      if (!v) return 2;
      options.results_dir = *v;
    } else if (arg == "--manifest") {
      const auto v = value("--manifest");
      if (!v) return 2;
      manifest_path = *v;
    } else if (arg == "--trace") {
      const auto v = value("--trace");
      if (!v) return 2;
      options.trace_dir = *v;
    } else if (arg == "--report") {
      report = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "rsd_bench: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      patterns.push_back(arg);
    }
  }

  // Every pattern must select something — a typo'd name is an error, not
  // a silently empty run.
  for (const auto& pattern : patterns) {
    if (registry.select({pattern}, {}).empty()) {
      err << "rsd_bench: unknown experiment or pattern '" << pattern
          << "' (run rsd_bench --list)\n";
      return 2;
    }
  }
  const std::vector<const Experiment*> selected = registry.select(patterns, tags);
  if (selected.empty()) {
    err << "rsd_bench: selection is empty";
    if (!tags.empty()) err << " (tags: " << join(tags, ",") << ")";
    err << " — run rsd_bench --list\n";
    return 2;
  }

  if (list) {
    print_list(selected, out);
    return 0;
  }

  // Route `results_dir()` too, so library-internal consumers (e.g. a
  // default-constructed SweepCache) agree with the context.
  if (!options.results_dir.empty()) rsd::set_results_dir(options.results_dir);
  if (options.trace_dir.empty()) {
    if (const char* env = std::getenv("RSD_TRACE"); env != nullptr && env[0] != '\0') {
      options.trace_dir = env;
    }
  }
  options.out = &out;
  // Context construction resolves env-var knobs (RSD_GPUS_PER_CHASSIS,
  // ...), which can reject malformed values — a usage error, not a crash.
  std::optional<ExperimentContext> ctx_storage;
  try {
    ctx_storage.emplace(options);
  } catch (const Error& e) {
    err << "rsd_bench: " << e.what() << "\n";
    return 2;
  }
  ExperimentContext& ctx = *ctx_storage;

  const RunSummary summary = run_experiments(selected, ctx);

  if (ctx.tracing()) {
    const auto snapshot = obs::Tracer::instance().snapshot();
    obs::Tracer::instance().disable();
    std::filesystem::create_directories(ctx.trace_dir());
    const auto json_path = ctx.trace_dir() / "trace.json";
    obs::write_chrome_trace(json_path.string(), snapshot);
    out << "[trace] " << json_path.string() << " (" << snapshot.events.size() << " events";
    if (snapshot.dropped > 0) out << ", " << snapshot.dropped << " dropped";
    out << ")\n";
    // NSys-style per-simulation ops CSVs, re-importable via trace::import.
    const auto sim_ids = trace::timeline_sim_ids(snapshot);
    if (!sim_ids.empty()) {
      const auto csv_path = ctx.trace_dir() / "trace_ops.csv";
      const trace::Trace first = trace::from_timeline(snapshot, sim_ids.front());
      std::ofstream ops{csv_path, std::ios::trunc};
      ops << first.ops_to_csv();
      out << "[trace] " << csv_path.string() << " (sim " << sim_ids.front() << " of "
          << sim_ids.size() << " traced simulations)\n";
    }
  }

  if (report) print_report(summary, out);

  const std::filesystem::path manifest =
      manifest_path ? std::filesystem::path{*manifest_path}
                    : ctx.results_dir() / "run_manifest.json";
  write_manifest(manifest, summary);

  double total_wall = 0.0;
  int failed = 0;
  for (const auto& o : summary.outcomes) {
    total_wall += o.wall_s;
    if (!o.ok) ++failed;
  }
  out << "\n[rsd_bench] " << summary.outcomes.size() << " experiment(s), "
      << std::fixed << std::setprecision(2) << total_wall << " s, threads=" << summary.threads
      << (failed > 0 ? ", FAILED: " + std::to_string(failed) : std::string{}) << "\n"
      << "[manifest] " << manifest.string() << "\n";
  return summary.all_ok() ? 0 : 1;
}

}  // namespace rsd::harness
