// The `rsd_bench` command line, as a library function so tests can drive
// it with captured streams.
//
//   rsd_bench --list [patterns...] [--tags t1,t2]   enumerate the fleet
//   rsd_bench [patterns...] [--tags t1,t2]          run a selection
//             [--threads N] [--runs N] [--seed S]
//             [--results-dir DIR] [--manifest FILE]
//
// Patterns are shell-style globs over experiment names (a leading
// "bench_" is ignored, so pre-harness binary names keep working). With no
// patterns and no tags, every registered experiment runs. Exit status:
// 0 = all selected experiments succeeded, 1 = at least one failed,
// 2 = usage/selection error (e.g. an unknown experiment name).
#pragma once

#include <iosfwd>

namespace rsd::harness {

[[nodiscard]] int run_cli(int argc, const char* const* argv, std::ostream& out,
                          std::ostream& err);

}  // namespace rsd::harness
