// In-process fleet execution: run selected experiments sequentially
// against one shared `ExperimentContext`, timing each and containing
// failures (one experiment throwing fails that experiment's manifest
// entry, not the invocation's remaining experiments).
#pragma once

#include <vector>

#include "harness/manifest.hpp"

namespace rsd::harness {

class Experiment;
class ExperimentContext;

[[nodiscard]] RunSummary run_experiments(const std::vector<const Experiment*>& selected,
                                         ExperimentContext& ctx);

}  // namespace rsd::harness
