// Shared per-invocation state. Before the harness, each bench binary
// built its own thread pool and re-loaded the response-surface cache from
// disk; one `ExperimentContext` now outlives every experiment in an
// `rsd_bench` invocation, so the Figure-3 surface is computed (or read)
// once and every later consumer hits warm memory.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "exec/pool.hpp"
#include "harness/manifest.hpp"
#include "proxy/sweep_cache.hpp"

namespace rsd {
class CsvWriter;
}  // namespace rsd

namespace rsd::harness {

class ExperimentContext {
 public:
  struct Options {
    std::filesystem::path results_dir;  ///< Empty = `rsd::results_dir()`.
    int threads = 0;                    ///< <= 0 = `exec::default_thread_count()`.
    /// Worker threads *inside* one partitioned simulation (the
    /// sim::ParallelEngine width), as opposed to `threads`, which fans out
    /// across independent runs. <= 0 = `exec::default_sim_thread_count()`
    /// (the RSD_SIM_THREADS env var, else 1). Tracked outputs are
    /// byte-identical at any value.
    int sim_threads = 0;
    /// Row fabric for fabric-aware experiments ("ring", "fullmesh",
    /// "eswitch", "ocs", or "all" to sweep). Empty resolves the RSD_FABRIC
    /// env var, else "all" — mirroring the `--sim-threads` precedence.
    std::string fabric;
    /// Chassis width for multi-chassis-aware experiments: devices per
    /// chassis in the machine graph (`--gpus-per-chassis` >
    /// RSD_GPUS_PER_CHASSIS > 0). 0 keeps each experiment's flat default;
    /// >= 1 asks fabric builders for per-chassis NICs + inter-chassis
    /// fibre at that grouping. Values < 1 from the env are rejected with
    /// rsd::Error{kInvalidArgument}.
    int gpus_per_chassis = 0;
    int runs = 5;                       ///< The paper's repetition protocol.
    std::uint64_t seed = 1;             ///< Base seed for seeded repetitions.
    std::ostream* out = &std::cout;
    /// Non-empty enables the obs timeline tracer for the invocation; the
    /// CLI exports trace.json / trace_ops.csv here afterwards.
    std::filesystem::path trace_dir;
  };

  ExperimentContext() : ExperimentContext(Options{}) {}
  explicit ExperimentContext(Options options);

  /// The invocation-wide fan-out pool (`--threads` / RSD_THREADS wide).
  [[nodiscard]] exec::Pool& pool() { return pool_; }

  /// Memoized Figure-3 response surfaces, rooted at
  /// `<results_dir>/.cache`. Shared across experiments, so the surface is
  /// simulated at most once per invocation.
  [[nodiscard]] proxy::SweepCache& sweep_cache() { return sweep_cache_; }

  [[nodiscard]] const std::filesystem::path& results_dir() const { return results_dir_; }
  [[nodiscard]] int runs() const { return runs_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Resolved intra-simulation width for partitioned engines
  /// (`--sim-threads` > RSD_SIM_THREADS > 1).
  [[nodiscard]] int sim_threads() const { return sim_threads_; }

  /// Resolved fabric selection for fabric-aware experiments
  /// (`--fabric` > RSD_FABRIC > "all"). Either a net::parse_fabric_kind
  /// name or "all".
  [[nodiscard]] const std::string& fabric() const { return fabric_; }

  /// Resolved chassis width (`--gpus-per-chassis` > RSD_GPUS_PER_CHASSIS
  /// > 0). 0 = experiments keep their flat single-graph defaults.
  [[nodiscard]] int gpus_per_chassis() const { return gpus_per_chassis_; }

  /// Where the timeline export goes; empty when tracing is off.
  [[nodiscard]] const std::filesystem::path& trace_dir() const { return trace_dir_; }
  [[nodiscard]] bool tracing() const { return !trace_dir_.empty(); }

  /// Where experiment tables/narration go (std::cout under the CLI, a
  /// capture buffer under tests).
  [[nodiscard]] std::ostream& out() { return *out_; }

  /// Write `<results_dir>/<name>.csv`, log the path, and record it for
  /// the run manifest.
  void save_csv(const std::string& name, const CsvWriter& csv);

  /// CSV paths recorded since the previous drain (the runner empties
  /// this after each experiment to attribute files in the manifest).
  [[nodiscard]] std::vector<std::string> drain_csv_paths();

  /// Record a critical-path attribution for the manifest's "attribution"
  /// block (and the `--report` breakdown). Mirrors save_csv: experiments
  /// record unconditionally so the manifest is deterministic, and the
  /// runner drains per experiment.
  void record_attribution(AttributionEntry entry);
  [[nodiscard]] std::vector<AttributionEntry> drain_attributions();

 private:
  std::filesystem::path results_dir_;
  std::filesystem::path trace_dir_;
  int runs_;
  int sim_threads_;
  std::string fabric_;
  int gpus_per_chassis_;
  std::uint64_t seed_;
  std::ostream* out_;
  exec::Pool pool_;
  proxy::SweepCache sweep_cache_;
  std::vector<std::string> csv_paths_;
  std::vector<AttributionEntry> attributions_;
};

}  // namespace rsd::harness
