#include "harness/registry.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace rsd::harness {

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in{csv};
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string_view strip_bench_prefix(std::string_view pattern) {
  constexpr std::string_view kPrefix = "bench_";
  if (pattern.substr(0, kPrefix.size()) == kPrefix) pattern.remove_prefix(kPrefix.size());
  return pattern;
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with single-star backtracking: on mismatch, retry from
  // the last `*` consuming one more character of `text`.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

FunctionExperiment::FunctionExperiment(std::string name, const std::string& tags_csv,
                                       std::string description, RunFn fn)
    : name_(std::move(name)),
      tags_(split_csv(tags_csv)),
      description_(std::move(description)),
      fn_(fn) {}

bool register_experiment(std::string name, const std::string& tags_csv, std::string description,
                         FunctionExperiment::RunFn fn) {
  return Registry::global().add(std::make_unique<FunctionExperiment>(
      std::move(name), tags_csv, std::move(description), fn));
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

bool Registry::add(std::unique_ptr<Experiment> experiment) {
  const std::string& name = experiment->name();
  const auto pos = std::lower_bound(
      experiments_.begin(), experiments_.end(), name,
      [](const std::unique_ptr<Experiment>& e, const std::string& n) { return e->name() < n; });
  if (pos != experiments_.end() && (*pos)->name() == name) {
    errors_.push_back("duplicate experiment name: " + name);
    return false;
  }
  experiments_.insert(pos, std::move(experiment));
  return true;
}

const Experiment* Registry::find(std::string_view name) const {
  for (const auto& e : experiments_) {
    if (e->name() == name) return e.get();
  }
  return nullptr;
}

std::vector<const Experiment*> Registry::select(const std::vector<std::string>& patterns,
                                                const std::vector<std::string>& tags) const {
  std::vector<const Experiment*> out;
  for (const auto& e : experiments_) {
    const bool name_ok =
        patterns.empty() ||
        std::any_of(patterns.begin(), patterns.end(), [&](const std::string& pattern) {
          return glob_match(strip_bench_prefix(pattern), e->name());
        });
    const bool tag_ok = tags.empty() ||
                        std::any_of(tags.begin(), tags.end(), [&](const std::string& tag) {
                          const auto& have = e->tags();
                          return std::find(have.begin(), have.end(), tag) != have.end();
                        });
    if (name_ok && tag_ok) out.push_back(e.get());
  }
  return out;
}

}  // namespace rsd::harness
