#include "apps/cosmoflow.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "gpusim/row.hpp"
#include "interconnect/slack.hpp"
#include "wl/replay.hpp"

namespace rsd::apps {

namespace {

/// CosmoFlow architecture at full scale (Mathuriya et al. 2018): 7 conv
/// stages over a 128^3 x 4-channel volume, filters doubling to a cap of
/// 256, each followed by 2x2x2 pooling, then small dense heads.
struct ConvStage {
  std::int64_t volume;  ///< Input spatial extent.
  std::int64_t in_ch;
  std::int64_t out_ch;
};

std::vector<ConvStage> cosmoflow_stages() {
  std::vector<ConvStage> stages;
  std::int64_t volume = 128;
  std::int64_t in_ch = 4;
  const std::int64_t filters[] = {32, 64, 128, 256, 256, 256, 256};
  for (const std::int64_t f : filters) {
    stages.push_back(ConvStage{volume, in_ch, f});
    in_ch = f;
    volume /= 2;
  }
  return stages;
}

SimDuration flops_to_duration(double flops, const CosmoflowCalibration& cal) {
  const double seconds = flops / (cal.effective_tflops * 1e12);
  return duration::microseconds(20.0) + duration::seconds(seconds);
}

}  // namespace

std::vector<CosmoflowKernel> cosmoflow_step_kernels(const CosmoflowCalibration& cal,
                                                    int batch) {
  std::vector<CosmoflowKernel> kernels;
  const auto add = [&kernels](std::string name, SimDuration d) {
    NameRef ref{name};
    kernels.push_back({std::move(name), d, ref});
  };
  const auto stages = cosmoflow_stages();
  int idx = 1;
  for (const auto& s : stages) {
    const double voxels = static_cast<double>(s.volume) * s.volume * s.volume;
    const double fwd_flops =
        2.0 * batch * voxels * static_cast<double>(s.out_ch) * s.in_ch * 27.0;
    const std::string tag = "conv" + std::to_string(idx);
    add(tag + "_fwd", flops_to_duration(fwd_flops, cal));
    add(tag + "_pool", flops_to_duration(batch * voxels * s.out_ch, cal));
    add(tag + "_bwd_data", flops_to_duration(fwd_flops, cal));
    add(tag + "_bwd_filter", flops_to_duration(fwd_flops, cal));
    ++idx;
  }
  // Dense heads (256 -> 128 -> 64 -> 4) + loss + optimizer + Horovod
  // gradient exchange staging.
  const double dense_flops = 2.0 * batch * (256.0 * 128 + 128.0 * 64 + 64.0 * 4);
  add("dense_fwd", flops_to_duration(dense_flops, cal));
  add("dense_bwd", flops_to_duration(2.0 * dense_flops, cal));
  add("mse_loss", flops_to_duration(batch * 64.0, cal));
  add("sgd_update", flops_to_duration(3.0e6, cal));
  for (int chunk = 0; chunk < 4; ++chunk) {
    add("allreduce_pack_" + std::to_string(chunk), flops_to_duration(1.5e6, cal));
  }
  return kernels;
}

wl::Program build_cosmoflow_program(const CosmoflowConfig& cfg,
                                    const CosmoflowCalibration& cal) {
  Rng rng{0xC05F10ULL};
  const auto train_kernels = cosmoflow_step_kernels(cal, cfg.batch);

  // An input pipeline starved of cores slows every kernel submission; two
  // cores keep it fed, more add nothing (Section IV-A).
  const double core_slowdown =
      cfg.cpu_cores >= cal.required_cores
          ? 1.0
          : static_cast<double>(cal.required_cores) / std::max(cfg.cpu_cores, 1);
  const SimDuration submit_cost = cal.submit_cost * core_slowdown;

  const int train_steps_per_epoch = cfg.train_items / cfg.batch;
  const int val_steps_per_epoch = cfg.validation_items / cfg.batch;
  const int steps_per_prefetch = std::max(1, cal.samples_per_prefetch / cfg.batch);

  // Transfer names, interned once for the whole program.
  const NameRef prefetch_name{"h2d_prefetch"};
  const NameRef control_name{"d2h_control"};
  const NameRef weight_sync_name{"h2d_weight_sync"};
  const NameRef checkpoint_name{"d2h_checkpoint"};

  wl::Program program;
  wl::Lane& lane = program.lanes.emplace_back();
  const Bytes prefetch_bytes =
      static_cast<Bytes>(cal.samples_per_prefetch) * cal.bytes_per_sample;
  const std::int32_t staging = lane.add_buffer(prefetch_bytes);
  const std::int32_t weights = lane.add_buffer(cal.weight_sync_bytes);
  const std::int32_t checkpoint = lane.add_buffer(cal.checkpoint_bytes);
  const std::int32_t control = lane.add_buffer(cal.small_transfer_bytes);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    int weight_syncs_done = 0;
    int checkpoints_done = 0;
    const int total_steps = train_steps_per_epoch + val_steps_per_epoch;

    for (int step = 0; step < total_steps; ++step) {
      const bool training = step < train_steps_per_epoch;

      // Prefetch a chunk of samples (large H2D, Table III's biggest bin).
      if (step % steps_per_prefetch == 0) lane.h2d(staging, prefetch_name);

      // A starved input pipeline (fewer cores than the pipeline needs)
      // serialises sample preparation with submission; with enough cores
      // it overlaps the previous step's GPU work and costs nothing here.
      if (cfg.cpu_cores < cal.required_cores) lane.cpu(cal.input_pipeline_work);

      // Submit the kernel sequence in quick succession; 10% lognormal
      // jitter reproduces the duration spread NSys sees per kernel.
      for (const auto& k : train_kernels) {
        if (!training && k.name.find("bwd") != std::string::npos) continue;
        if (!training &&
            (k.name.find("sgd") != std::string::npos ||
             k.name.find("allreduce") != std::string::npos)) {
          continue;
        }
        const double jitter = rng.lognormal(0.0, 0.1);
        lane.cpu(submit_cost);
        lane.kernel(k.ref, k.duration * jitter);
      }

      // Control-plane readbacks (loss, metrics).
      for (int i = 0; i < cal.small_transfers_per_step; ++i) {
        lane.d2h(control, control_name);
      }

      // Interleave periodic weight syncs / checkpoints through the epoch.
      if (training) {
        const int due_syncs =
            static_cast<int>(static_cast<std::int64_t>(cal.weight_syncs_per_epoch) *
                             (step + 1) / train_steps_per_epoch);
        while (weight_syncs_done < due_syncs) {
          lane.h2d(weights, weight_sync_name);
          ++weight_syncs_done;
        }
        const int due_ckpt =
            static_cast<int>(static_cast<std::int64_t>(cal.checkpoint_transfers_per_epoch) *
                             (step + 1) / train_steps_per_epoch);
        while (checkpoints_done < due_ckpt) {
          lane.d2h(checkpoint, checkpoint_name);
          ++checkpoints_done;
        }
      }

      lane.sync();
    }
  }
  return program;
}

wl::Program build_cosmoflow_multi_gpu_program(const MultiGpuCosmoflowConfig& config,
                                              const CosmoflowCalibration& cal) {
  const int global_steps = config.base.train_items / config.base.batch;
  const int steps = std::max(1, global_steps / config.gpus) * config.base.epochs;
  const auto kernels = cosmoflow_step_kernels(cal, config.base.batch);
  const NameRef shard_name{"h2d_shard"};
  const NameRef allreduce_name{"horovod_allreduce"};

  wl::Program program;
  program.lanes.reserve(static_cast<std::size_t>(config.gpus));
  for (int rank = 0; rank < config.gpus; ++rank) {
    wl::Lane& lane = program.lanes.emplace_back();
    lane.context_id = rank;
    lane.process_id = rank;
    lane.device = rank;
    const std::int32_t staging = lane.add_buffer(
        static_cast<Bytes>(cal.samples_per_prefetch) * cal.bytes_per_sample);

    // Every step is identical (no jitter), so the program stays compact as
    // a loop instead of unrolling: each worker runs its shard's kernel
    // sequence, joins the step barrier, and rank 0 drives the allreduce.
    lane.loop(steps);
    lane.h2d(staging, shard_name);
    for (const auto& k : kernels) {
      lane.cpu(cal.submit_cost);
      lane.kernel(k.ref, k.duration);
    }
    lane.sync();
    lane.barrier();
    if (rank == 0) {
      lane.allreduce(config.gradient_bytes, config.gpus, allreduce_name);
    }
    lane.barrier();  // all wait for the exchange
    lane.end_loop();
  }
  return program;
}

AppRunResult run_cosmoflow_multi_gpu(const MultiGpuCosmoflowConfig& config,
                                     const CosmoflowCalibration& cal) {
  RSD_ASSERT(config.gpus >= 1);
  const int global_steps = config.base.train_items / config.base.batch;
  const int steps = std::max(1, global_steps / config.gpus) * config.base.epochs;

  wl::NodeParams node;
  node.chassis_gpus = config.gpus;
  node.fabric = config.fabric;
  const wl::ReplayEngine engine{std::move(node)};
  wl::ReplayOptions options;
  options.inject_slack = false;  // the workers run with no injector attached
  options.capture_trace = config.base.capture_trace;
  wl::ReplayResult run =
      engine.run(build_cosmoflow_multi_gpu_program(config, cal), options);

  AppRunResult result;
  result.runtime = run.runtime;
  result.steps = steps;
  if (config.base.capture_trace) result.trace = std::move(run.trace);
  return result;
}

RowCosmoflowResult run_cosmoflow_row(const RowCosmoflowConfig& config,
                                     const CosmoflowCalibration& cal) {
  RSD_ASSERT(config.gpus >= 1 && config.steps >= 1);

  gpu::RowParams params;
  params.gpus = config.gpus;
  params.fabric = config.fabric;
  params.fabric_kind = config.fabric_kind;
  params.sim_threads = config.sim_threads;
  params.jitter_seed = config.jitter_seed;
  gpu::PartitionedRow row{params};

  gpu::RowTraining training;
  for (const CosmoflowKernel& k : cosmoflow_step_kernels(cal, config.batch)) {
    training.kernels.push_back(gpu::RowKernel{k.ref, k.duration});
  }
  training.submit_cost = cal.submit_cost;
  training.gradient_bytes = config.gradient_bytes;
  training.steps = config.steps;

  const SimTime finish = row.run_training(training);

  RowCosmoflowResult result;
  result.runtime = finish - SimTime::zero();
  result.digest = row.digest();
  result.events = row.engine().executed_events();
  result.messages = row.engine().messages_delivered();
  return result;
}

AppRunResult run_cosmoflow(const CosmoflowConfig& config, const CosmoflowCalibration& cal,
                           const gpu::DeviceParams& device_params) {
  RSD_ASSERT(config.epochs > 0 && config.batch > 0);
  RSD_ASSERT(config.train_items % config.batch == 0);

  const wl::ReplayEngine engine{wl::NodeParams{.device_params = device_params}};
  wl::ReplayOptions options;
  options.slack = config.slack;
  options.capture_trace = config.capture_trace;
  wl::ReplayResult run = engine.run(build_cosmoflow_program(config, cal), options);

  AppRunResult result;
  result.runtime = run.runtime;
  result.steps = static_cast<std::int64_t>(config.epochs) *
                 (config.train_items + config.validation_items) / config.batch;
  result.cuda_calls = run.calls_delayed;
  // One submitter: Equation 1 subtracts every injected call.
  result.no_slack_runtime = interconnect::equation1_per_submitter(
      result.runtime, run.calls_delayed, /*submitters=*/1, config.slack);
  if (config.capture_trace) result.trace = std::move(run.trace);
  return result;
}

}  // namespace rsd::apps
