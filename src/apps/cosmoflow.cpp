#include "apps/cosmoflow.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "gpusim/chassis.hpp"
#include "gpusim/context.hpp"
#include "interconnect/link.hpp"
#include "interconnect/slack.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::apps {

namespace {

/// CosmoFlow architecture at full scale (Mathuriya et al. 2018): 7 conv
/// stages over a 128^3 x 4-channel volume, filters doubling to a cap of
/// 256, each followed by 2x2x2 pooling, then small dense heads.
struct ConvStage {
  std::int64_t volume;  ///< Input spatial extent.
  std::int64_t in_ch;
  std::int64_t out_ch;
};

std::vector<ConvStage> cosmoflow_stages() {
  std::vector<ConvStage> stages;
  std::int64_t volume = 128;
  std::int64_t in_ch = 4;
  const std::int64_t filters[] = {32, 64, 128, 256, 256, 256, 256};
  for (const std::int64_t f : filters) {
    stages.push_back(ConvStage{volume, in_ch, f});
    in_ch = f;
    volume /= 2;
  }
  return stages;
}

SimDuration flops_to_duration(double flops, const CosmoflowCalibration& cal) {
  const double seconds = flops / (cal.effective_tflops * 1e12);
  return duration::microseconds(20.0) + duration::seconds(seconds);
}

}  // namespace

std::vector<CosmoflowKernel> cosmoflow_step_kernels(const CosmoflowCalibration& cal,
                                                    int batch) {
  std::vector<CosmoflowKernel> kernels;
  const auto add = [&kernels](std::string name, SimDuration d) {
    NameRef ref{name};
    kernels.push_back({std::move(name), d, ref});
  };
  const auto stages = cosmoflow_stages();
  int idx = 1;
  for (const auto& s : stages) {
    const double voxels = static_cast<double>(s.volume) * s.volume * s.volume;
    const double fwd_flops =
        2.0 * batch * voxels * static_cast<double>(s.out_ch) * s.in_ch * 27.0;
    const std::string tag = "conv" + std::to_string(idx);
    add(tag + "_fwd", flops_to_duration(fwd_flops, cal));
    add(tag + "_pool", flops_to_duration(batch * voxels * s.out_ch, cal));
    add(tag + "_bwd_data", flops_to_duration(fwd_flops, cal));
    add(tag + "_bwd_filter", flops_to_duration(fwd_flops, cal));
    ++idx;
  }
  // Dense heads (256 -> 128 -> 64 -> 4) + loss + optimizer + Horovod
  // gradient exchange staging.
  const double dense_flops = 2.0 * batch * (256.0 * 128 + 128.0 * 64 + 64.0 * 4);
  add("dense_fwd", flops_to_duration(dense_flops, cal));
  add("dense_bwd", flops_to_duration(2.0 * dense_flops, cal));
  add("mse_loss", flops_to_duration(batch * 64.0, cal));
  add("sgd_update", flops_to_duration(3.0e6, cal));
  for (int chunk = 0; chunk < 4; ++chunk) {
    add("allreduce_pack_" + std::to_string(chunk), flops_to_duration(1.5e6, cal));
  }
  return kernels;
}

namespace {

sim::Task<> cosmoflow_driver(gpu::Device& device, interconnect::SlackInjector& slack,
                             const CosmoflowConfig& cfg, const CosmoflowCalibration& cal,
                             sim::WaitGroup& wg) {
  gpu::Context ctx{device, 0, &slack, /*process_id=*/0};
  Rng rng{0xC05F10ULL};

  const auto train_kernels = cosmoflow_step_kernels(cal, cfg.batch);

  const Bytes prefetch_bytes =
      static_cast<Bytes>(cal.samples_per_prefetch) * cal.bytes_per_sample;
  gpu::DeviceBuffer staging = co_await ctx.dmalloc(prefetch_bytes);
  gpu::DeviceBuffer weights = co_await ctx.dmalloc(cal.weight_sync_bytes);
  gpu::DeviceBuffer checkpoint = co_await ctx.dmalloc(cal.checkpoint_bytes);
  gpu::DeviceBuffer control = co_await ctx.dmalloc(cal.small_transfer_bytes);

  // An input pipeline starved of cores slows every kernel submission; two
  // cores keep it fed, more add nothing (Section IV-A).
  const double core_slowdown =
      cfg.cpu_cores >= cal.required_cores
          ? 1.0
          : static_cast<double>(cal.required_cores) / std::max(cfg.cpu_cores, 1);
  const SimDuration submit_cost = cal.submit_cost * core_slowdown;

  const int train_steps_per_epoch = cfg.train_items / cfg.batch;
  const int val_steps_per_epoch = cfg.validation_items / cfg.batch;
  const int steps_per_prefetch = std::max(1, cal.samples_per_prefetch / cfg.batch);

  // Transfer names, interned once for the whole run.
  const NameRef prefetch_name{"h2d_prefetch"};
  const NameRef control_name{"d2h_control"};
  const NameRef weight_sync_name{"h2d_weight_sync"};
  const NameRef checkpoint_name{"d2h_checkpoint"};

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    int weight_syncs_done = 0;
    int checkpoints_done = 0;
    const int total_steps = train_steps_per_epoch + val_steps_per_epoch;

    for (int step = 0; step < total_steps; ++step) {
      const bool training = step < train_steps_per_epoch;

      // Prefetch a chunk of samples (large H2D, Table III's biggest bin).
      if (step % steps_per_prefetch == 0) {
        co_await ctx.memcpy_h2d(staging, prefetch_name);
      }

      // A starved input pipeline (fewer cores than the pipeline needs)
      // serialises sample preparation with submission; with enough cores
      // it overlaps the previous step's GPU work and costs nothing here.
      if (cfg.cpu_cores < cal.required_cores) {
        co_await sim::delay(cal.input_pipeline_work);
      }

      // Submit the kernel sequence in quick succession; 10% lognormal
      // jitter reproduces the duration spread NSys sees per kernel.
      for (const auto& k : train_kernels) {
        if (!training && k.name.find("bwd") != std::string::npos) continue;
        if (!training &&
            (k.name.find("sgd") != std::string::npos ||
             k.name.find("allreduce") != std::string::npos)) {
          continue;
        }
        const double jitter = rng.lognormal(0.0, 0.1);
        co_await sim::delay(submit_cost);
        co_await ctx.launch(k.ref, k.duration * jitter);
      }

      // Control-plane readbacks (loss, metrics).
      for (int i = 0; i < cal.small_transfers_per_step; ++i) {
        co_await ctx.memcpy_d2h(control, control_name);
      }

      // Interleave periodic weight syncs / checkpoints through the epoch.
      if (training) {
        const int due_syncs =
            static_cast<int>(static_cast<std::int64_t>(cal.weight_syncs_per_epoch) *
                             (step + 1) / train_steps_per_epoch);
        while (weight_syncs_done < due_syncs) {
          co_await ctx.memcpy_h2d(weights, weight_sync_name);
          ++weight_syncs_done;
        }
        const int due_ckpt =
            static_cast<int>(static_cast<std::int64_t>(cal.checkpoint_transfers_per_epoch) *
                             (step + 1) / train_steps_per_epoch);
        while (checkpoints_done < due_ckpt) {
          co_await ctx.memcpy_d2h(checkpoint, checkpoint_name);
          ++checkpoints_done;
        }
      }

      co_await ctx.synchronize();
    }
  }

  co_await ctx.dfree(staging);
  co_await ctx.dfree(weights);
  co_await ctx.dfree(checkpoint);
  co_await ctx.dfree(control);
  wg.done();
}

}  // namespace

namespace {

/// One data-parallel worker: runs its share of the kernel sequence each
/// step, then joins the step barrier; rank 0 triggers the allreduce.
sim::Task<> multi_gpu_worker(gpu::Chassis& chassis, int rank, int steps,
                             const std::vector<CosmoflowKernel>& kernels,
                             const CosmoflowCalibration& cal, Bytes gradient_bytes,
                             int participants, sim::Barrier& barrier, sim::WaitGroup& wg) {
  gpu::Context ctx{chassis.device(rank), rank, nullptr, /*process_id=*/rank};
  gpu::DeviceBuffer staging = co_await ctx.dmalloc(
      static_cast<Bytes>(cal.samples_per_prefetch) * cal.bytes_per_sample);

  const NameRef shard_name{"h2d_shard"};
  for (int step = 0; step < steps; ++step) {
    co_await ctx.memcpy_h2d(staging, shard_name);
    for (const auto& k : kernels) {
      co_await sim::delay(cal.submit_cost);
      co_await ctx.launch(k.ref, k.duration);
    }
    co_await ctx.synchronize();
    co_await barrier.arrive_and_wait();
    if (rank == 0) {
      co_await chassis.ring_allreduce(gradient_bytes, participants, "horovod_allreduce");
    }
    co_await barrier.arrive_and_wait();  // all wait for the exchange
  }
  co_await ctx.dfree(staging);
  wg.done();
}

}  // namespace

AppRunResult run_cosmoflow_multi_gpu(const MultiGpuCosmoflowConfig& config,
                                     const CosmoflowCalibration& cal) {
  RSD_ASSERT(config.gpus >= 1);
  const int global_steps = config.base.train_items / config.base.batch;
  const int steps = std::max(1, global_steps / config.gpus) * config.base.epochs;

  sim::Scheduler sched;
  gpu::ChassisParams chassis_params;
  chassis_params.gpus = config.gpus;
  chassis_params.fabric = config.fabric;
  gpu::Chassis chassis{sched, chassis_params};
  trace::TraceRecorder recorder;
  if (config.base.capture_trace) chassis.set_record_sink(&recorder);

  const auto kernels = cosmoflow_step_kernels(cal, config.base.batch);
  sim::Barrier barrier{sched, config.gpus};
  sim::WaitGroup wg{sched};
  wg.add(config.gpus);
  for (int rank = 0; rank < config.gpus; ++rank) {
    sched.spawn(multi_gpu_worker(chassis, rank, steps, kernels, cal, config.gradient_bytes,
                                 config.gpus, barrier, wg));
  }

  SimTime end{};
  sched.spawn([](sim::Scheduler& s, sim::WaitGroup& group, SimTime& t) -> sim::Task<> {
    co_await group.wait();
    t = s.now();
  }(sched, wg, end));
  sched.run();
  RSD_ASSERT(sched.unfinished_count() == 0);

  AppRunResult result;
  result.runtime = end - SimTime::zero();
  result.steps = steps;
  if (config.base.capture_trace) result.trace = std::move(recorder.trace());
  return result;
}

AppRunResult run_cosmoflow(const CosmoflowConfig& config, const CosmoflowCalibration& cal,
                           const gpu::DeviceParams& device_params) {
  RSD_ASSERT(config.epochs > 0 && config.batch > 0);
  RSD_ASSERT(config.train_items % config.batch == 0);

  sim::Scheduler sched;
  gpu::Device device{sched, device_params, interconnect::make_pcie_gen4_x16()};
  trace::TraceRecorder recorder;
  if (config.capture_trace) device.set_record_sink(&recorder);

  interconnect::SlackInjector slack{config.slack};
  sim::WaitGroup wg{sched};
  wg.add(1);
  sched.spawn(cosmoflow_driver(device, slack, config, cal, wg));

  SimTime end{};
  sched.spawn([](sim::Scheduler& s, sim::WaitGroup& group, SimTime& t) -> sim::Task<> {
    co_await group.wait();
    t = s.now();
  }(sched, wg, end));

  sched.run();
  RSD_ASSERT(sched.unfinished_count() == 0);

  AppRunResult result;
  result.runtime = end - SimTime::zero();
  result.steps = static_cast<std::int64_t>(config.epochs) *
                 (config.train_items + config.validation_items) / config.batch;
  result.cuda_calls = slack.calls_delayed();
  result.no_slack_runtime = interconnect::equation1_no_slack_time(
      result.runtime, slack.calls_delayed(), config.slack);
  if (config.capture_trace) result.trace = std::move(recorder.trace());
  return result;
}

}  // namespace rsd::apps
