#include "apps/scaling.hpp"

#include <cmath>

#include "core/error.hpp"
#include "exec/pool.hpp"

namespace rsd::apps {

std::vector<ScalingPoint> lammps_proc_scaling(int box, const std::vector<int>& proc_counts,
                                              int steps, const LammpsCalibration& cal) {
  return lammps_proc_scaling(box, proc_counts, steps, cal, exec::Pool::global());
}

std::vector<ScalingPoint> lammps_proc_scaling(int box, const std::vector<int>& proc_counts,
                                              int steps, const LammpsCalibration& cal,
                                              exec::Pool& pool) {
  RSD_ASSERT(!proc_counts.empty());
  std::vector<ScalingPoint> points = pool.parallel_map(proc_counts, [&](const int procs) {
    LammpsConfig cfg;
    cfg.box = box;
    cfg.procs = procs;
    cfg.threads = 1;
    cfg.steps = steps;
    const AppRunResult r = run_lammps(cfg, cal);
    ScalingPoint p;
    p.procs = procs;
    p.threads = 1;
    p.runtime = r.runtime;
    return p;
  });
  // Normalize against the first point (the sweep's baseline), exactly as
  // the serial loop did.
  const double baseline = points.front().runtime.seconds();
  for (auto& p : points) p.normalized = p.runtime.seconds() / baseline;
  return points;
}

std::vector<ScalingPoint> lammps_thread_scaling(int box, int procs,
                                                const std::vector<int>& thread_counts,
                                                int steps, const LammpsCalibration& cal) {
  return lammps_thread_scaling(box, procs, thread_counts, steps, cal, exec::Pool::global());
}

std::vector<ScalingPoint> lammps_thread_scaling(int box, int procs,
                                                const std::vector<int>& thread_counts,
                                                int steps, const LammpsCalibration& cal,
                                                exec::Pool& pool) {
  RSD_ASSERT(!thread_counts.empty());
  std::vector<ScalingPoint> points = pool.parallel_map(thread_counts, [&](const int threads) {
    LammpsConfig cfg;
    cfg.box = box;
    cfg.procs = procs;
    cfg.threads = threads;
    cfg.steps = steps;
    const AppRunResult r = run_lammps(cfg, cal);
    ScalingPoint p;
    p.procs = procs;
    p.threads = threads;
    p.runtime = r.runtime;
    return p;
  });
  const double baseline = points.front().runtime.seconds();
  for (auto& p : points) p.normalized = p.runtime.seconds() / baseline;
  return points;
}

std::vector<CoreScalingPoint> cosmoflow_core_scaling(const std::vector<int>& core_counts,
                                                     const CosmoflowConfig& base,
                                                     const CosmoflowCalibration& cal) {
  return cosmoflow_core_scaling(core_counts, base, cal, exec::Pool::global());
}

std::vector<CoreScalingPoint> cosmoflow_core_scaling(const std::vector<int>& core_counts,
                                                     const CosmoflowConfig& base,
                                                     const CosmoflowCalibration& cal,
                                                     exec::Pool& pool) {
  RSD_ASSERT(!core_counts.empty());
  std::vector<CoreScalingPoint> points = pool.parallel_map(core_counts, [&](const int cores) {
    CosmoflowConfig cfg = base;
    cfg.cpu_cores = cores;
    const AppRunResult r = run_cosmoflow(cfg, cal);
    CoreScalingPoint p;
    p.cores = cores;
    p.runtime = r.runtime;
    return p;
  });
  const double best = points.back().runtime.seconds();
  for (auto& p : points) p.normalized = p.runtime.seconds() / best;
  return points;
}

std::vector<WeakScalingPoint> lammps_weak_scaling(const LammpsConfig& per_unit,
                                                  const std::vector<int>& unit_counts,
                                                  const InternodeParams& net,
                                                  const LammpsCalibration& cal) {
  RSD_ASSERT(!unit_counts.empty());
  // One unit's runtime comes from the full simulation; replicas add only
  // the per-step inter-node exchange (units are independent devices).
  const AppRunResult unit = run_lammps(per_unit, cal);

  const SimDuration halo = duration::seconds(
      static_cast<double>(net.halo_bytes) / (net.network_gib_s * static_cast<double>(kGiB)));

  std::vector<WeakScalingPoint> points;
  double baseline = 0.0;
  for (const int units : unit_counts) {
    RSD_ASSERT(units >= 1);
    SimDuration per_step_exchange = SimDuration::zero();
    if (units > 1) {
      const auto stages = static_cast<std::int64_t>(
          std::ceil(std::log2(static_cast<double>(units))));
      per_step_exchange = net.collective_latency * stages + halo;
    }
    WeakScalingPoint p;
    p.units = units;
    p.runtime = unit.runtime + per_step_exchange * static_cast<std::int64_t>(per_unit.steps);
    if (baseline == 0.0) baseline = p.runtime.seconds();
    p.efficiency = baseline / p.runtime.seconds();
    points.push_back(p);
  }
  return points;
}

}  // namespace rsd::apps
