// LAMMPS LJ-benchmark workload generator (the paper's CPU-heavy
// heterogeneous application, Section III-D.1).
//
// Replays the GPU-package execution pattern through the simulator: P MPI
// ranks, each per timestep doing
//
//   CPU phase (neighbor maintenance, integration; OpenMP-threaded)
//   -> halo exchange with rank neighbors (MPI barrier semantics)
//   -> H2D positions -> force kernel -> D2H forces (+ per-step sync)
//
// with a neighbor rebuild every `reneighbor_every` steps that costs extra
// CPU time and ships list metadata to the device. Ranks are separate OS
// processes, so their kernels pay the device's process-switch cost — the
// mechanism behind Figure 2's small-box degradation.
//
// The physics itself lives in rsd::lj; this module reproduces the paper's
// *performance* study, so quantities of work (atoms, transfer bytes) are
// taken from the same box-size convention (4 * box^3 atoms).
#pragma once

#include <cstdint>

#include "apps/calibration.hpp"
#include "core/units.hpp"
#include "gpusim/device.hpp"
#include "trace/trace.hpp"
#include "wl/program.hpp"

namespace rsd::apps {

struct LammpsConfig {
  int box = 20;      ///< Lattice cells per dimension; atoms = 4 * box^3.
  int procs = 1;     ///< MPI ranks (sharing one GPU, as in the paper).
  int threads = 1;   ///< OpenMP threads per rank.
  int steps = 100;   ///< Timesteps (the paper runs 5000).
  SimDuration slack = SimDuration::zero();  ///< Injected per CUDA call.
  bool capture_trace = false;
};

struct AppRunResult {
  SimDuration runtime;
  std::int64_t steps = 0;
  trace::Trace trace;              ///< Populated when capture_trace was set.
  std::int64_t cuda_calls = 0;     ///< Slack-delayed API calls (all ranks).
  SimDuration no_slack_runtime;    ///< Equation 1 applied (per-rank calls).
};

[[nodiscard]] constexpr std::int64_t lammps_atoms(int box) {
  return std::int64_t{4} * box * box * box;
}

/// Emit the workload as an op-stream program: one lane per MPI rank, with
/// the per-step duration jitter drawn at build time (same per-rank RNG
/// sequence the submission loop used, so the program is deterministic).
[[nodiscard]] wl::Program build_lammps_program(const LammpsConfig& config,
                                               const LammpsCalibration& cal = {});

/// Run the workload on a fresh simulated node (one GPU, PCIe link):
/// build_lammps_program executed by the shared wl::ReplayEngine.
[[nodiscard]] AppRunResult run_lammps(const LammpsConfig& config,
                                      const LammpsCalibration& cal = {},
                                      const gpu::DeviceParams& device_params = {});

}  // namespace rsd::apps
