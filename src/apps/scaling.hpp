// CPU-to-GPU ratio scaling experiments (Section IV-A): strong scaling of
// LAMMPS over MPI ranks and OpenMP threads, and CosmoFlow's core needs.
// Each sweep point is an independent serial simulation, so the sweeps fan
// out across `exec::Pool`; the two-argument overloads use the global pool.
// Points are assembled in input order — output is identical for any pool
// size.
#pragma once

#include <vector>

#include "apps/cosmoflow.hpp"
#include "apps/lammps.hpp"

namespace rsd::exec {
class Pool;
}  // namespace rsd::exec

namespace rsd::apps {

struct ScalingPoint {
  int procs = 1;
  int threads = 1;
  SimDuration runtime;
  double normalized = 0.0;  ///< Runtime / the 1-proc-1-thread baseline.
};

/// Figure 2: fixed box size, varying MPI ranks (1 thread each).
[[nodiscard]] std::vector<ScalingPoint> lammps_proc_scaling(
    int box, const std::vector<int>& proc_counts, int steps,
    const LammpsCalibration& cal = {});
[[nodiscard]] std::vector<ScalingPoint> lammps_proc_scaling(
    int box, const std::vector<int>& proc_counts, int steps, const LammpsCalibration& cal,
    exec::Pool& pool);

/// Section IV-A thread sweep: fixed ranks, varying OpenMP threads; the
/// `normalized` field is relative to the 1-thread point of the same sweep.
[[nodiscard]] std::vector<ScalingPoint> lammps_thread_scaling(
    int box, int procs, const std::vector<int>& thread_counts, int steps,
    const LammpsCalibration& cal = {});
[[nodiscard]] std::vector<ScalingPoint> lammps_thread_scaling(
    int box, int procs, const std::vector<int>& thread_counts, int steps,
    const LammpsCalibration& cal, exec::Pool& pool);

/// CosmoFlow core sweep: runtime as a function of available CPU cores.
struct CoreScalingPoint {
  int cores = 1;
  SimDuration runtime;
  double normalized = 0.0;  ///< Relative to the largest core count.
};

[[nodiscard]] std::vector<CoreScalingPoint> cosmoflow_core_scaling(
    const std::vector<int>& core_counts, const CosmoflowConfig& base,
    const CosmoflowCalibration& cal = {});
[[nodiscard]] std::vector<CoreScalingPoint> cosmoflow_core_scaling(
    const std::vector<int>& core_counts, const CosmoflowConfig& base,
    const CosmoflowCalibration& cal, exec::Pool& pool);

/// Weak scaling (Section III-B's framing): replicate a fixed per-unit
/// problem (one GPU + its composed CPU share) across N units, with an
/// inter-node exchange per step whose cost grows logarithmically in N
/// (allreduce) plus a fixed halo term.
struct InternodeParams {
  SimDuration collective_latency = duration::microseconds(15.0);  ///< Per log2(N) stage.
  Bytes halo_bytes = 8 * kMiB;
  double network_gib_s = 24.0;
};

struct WeakScalingPoint {
  int units = 1;
  SimDuration runtime;
  /// runtime(1) / runtime(N): 1.0 = perfect weak scaling.
  double efficiency = 0.0;
};

[[nodiscard]] std::vector<WeakScalingPoint> lammps_weak_scaling(
    const LammpsConfig& per_unit, const std::vector<int>& unit_counts,
    const InternodeParams& net = {}, const LammpsCalibration& cal = {});

}  // namespace rsd::apps
