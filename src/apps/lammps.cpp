#include "apps/lammps.hpp"

#include <cmath>
#include <memory>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "gpusim/context.hpp"
#include "interconnect/link.hpp"
#include "interconnect/slack.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::apps {

namespace {

using sim::Barrier;

/// Effective parallel speedup of t OpenMP threads at efficiency e:
/// 1 + e + e^2 + ... (diminishing returns, matching the paper's thread
/// scaling flattening out).
double omp_speedup(int threads, double efficiency) {
  double s = 0.0;
  double w = 1.0;
  for (int t = 0; t < threads; ++t) {
    s += w;
    w *= efficiency;
  }
  return s;
}

struct StepCosts {
  SimDuration cpu;
  SimDuration cpu_reneighbor;
  SimDuration halo;
  Bytes h2d_bytes;
  Bytes d2h_bytes;
  SimDuration kernel;
};

StepCosts step_costs(const LammpsConfig& cfg, const LammpsCalibration& cal) {
  const auto atoms = lammps_atoms(cfg.box);
  const double owned = static_cast<double>(atoms) / cfg.procs;
  const double speedup = omp_speedup(cfg.threads, cal.omp_efficiency);

  StepCosts c;
  c.cpu = cal.fixed_per_step +
          duration::nanoseconds(
              static_cast<std::int64_t>(cal.cpu_ns_per_atom * owned / speedup));
  c.cpu_reneighbor = duration::nanoseconds(
      static_cast<std::int64_t>(cal.reneighbor_cpu_ns_per_atom * owned / speedup));
  // Halo: six neighbor faces; surface atoms ~ owned^(2/3).
  const double surface_atoms = std::cbrt(owned) * std::cbrt(owned);
  const double halo_bytes = 6.0 * surface_atoms * cal.halo_bytes_per_surface_atom;
  const double halo_seconds =
      halo_bytes / (cal.mpi_bandwidth_gib_s * static_cast<double>(kGiB));
  c.halo = cfg.procs > 1
               ? cal.halo_latency + duration::seconds(halo_seconds)
               : SimDuration::zero();
  c.h2d_bytes = static_cast<Bytes>(cal.h2d_bytes_per_atom * owned);
  c.d2h_bytes = static_cast<Bytes>(cal.d2h_bytes_per_atom * owned);
  c.kernel =
      duration::nanoseconds(static_cast<std::int64_t>(cal.kernel_ns_per_atom * owned));
  return c;
}

sim::Task<> lammps_rank(gpu::Device& device, interconnect::SlackInjector& slack, Barrier& barrier,
                        const LammpsConfig& cfg, const LammpsCalibration& cal, int rank,
                        sim::WaitGroup& wg) {
  gpu::Context ctx{device, rank, &slack, /*process_id=*/rank};
  const StepCosts costs = step_costs(cfg, cal);
  Rng rng = Rng{cal.seed}.split(static_cast<std::uint64_t>(rank));
  // Mean-preserving lognormal jitter: E[exp(N(-s^2/2, s))] = 1.
  const double sigma = cal.duration_jitter_sigma;
  auto jitter = [&rng, sigma] { return rng.lognormal(-0.5 * sigma * sigma, sigma); };

  gpu::DeviceBuffer positions = co_await ctx.dmalloc(std::max<Bytes>(costs.h2d_bytes, 1));
  gpu::DeviceBuffer forces = co_await ctx.dmalloc(std::max<Bytes>(costs.d2h_bytes, 1));
  gpu::DeviceBuffer neighbor_meta = co_await ctx.dmalloc(cal.reneighbor_bytes);

  const auto neighbor_kernel = duration::nanoseconds(static_cast<std::int64_t>(
      cal.neighbor_kernel_ns_per_atom * static_cast<double>(lammps_atoms(cfg.box)) /
      cfg.procs));

  // Op names interned once per rank, not once per step.
  const NameRef neighbor_meta_name{"h2d_neighbor_meta"};
  const NameRef neighbor_build_name{"neighbor_build"};
  const NameRef positions_name{"h2d_positions"};
  const NameRef pack_name{"pack_atoms"};
  const NameRef force_name{"lj_force"};
  const NameRef unpack_name{"unpack_forces"};
  const NameRef forces_name{"d2h_forces"};

  for (int step = 0; step < cfg.steps; ++step) {
    const bool reneighbor = (step % cal.reneighbor_every) == 0;

    // CPU phase: integration, neighbor maintenance (OpenMP-parallel).
    co_await sim::delay(
        (costs.cpu + (reneighbor ? costs.cpu_reneighbor : SimDuration::zero())) * jitter());

    // Halo exchange with rank neighbors, then the step barrier every rank
    // hits before touching the device (MPI collectives synchronise ranks).
    if (cfg.procs > 1) {
      co_await sim::delay(costs.halo);
      co_await barrier.arrive_and_wait();
    }

    if (reneighbor) {
      co_await ctx.memcpy_h2d(neighbor_meta, neighbor_meta_name);
      co_await ctx.launch(neighbor_build_name, neighbor_kernel * jitter());
    }
    co_await ctx.memcpy_h2d(positions, positions_name);
    co_await ctx.launch(pack_name, cal.pack_kernel * jitter());
    co_await ctx.launch_sync(force_name, costs.kernel * jitter());
    co_await ctx.launch(unpack_name, cal.unpack_kernel * jitter());
    co_await ctx.memcpy_d2h(forces, forces_name);
    co_await ctx.synchronize();
  }

  co_await ctx.dfree(positions);
  co_await ctx.dfree(forces);
  co_await ctx.dfree(neighbor_meta);
  wg.done();
}

}  // namespace

AppRunResult run_lammps(const LammpsConfig& config, const LammpsCalibration& cal,
                        const gpu::DeviceParams& device_params) {
  RSD_ASSERT(config.box > 0 && config.procs > 0 && config.threads > 0 && config.steps > 0);

  sim::Scheduler sched;
  gpu::Device device{sched, device_params, interconnect::make_pcie_gen4_x16()};
  trace::TraceRecorder recorder;
  if (config.capture_trace) device.set_record_sink(&recorder);

  interconnect::SlackInjector slack{config.slack};
  Barrier barrier{sched, config.procs};
  sim::WaitGroup wg{sched};
  wg.add(config.procs);

  for (int rank = 0; rank < config.procs; ++rank) {
    sched.spawn(lammps_rank(device, slack, barrier, config, cal, rank, wg));
  }

  SimTime end{};
  sched.spawn([](sim::Scheduler& s, sim::WaitGroup& group, SimTime& t) -> sim::Task<> {
    co_await group.wait();
    t = s.now();
  }(sched, wg, end));

  sched.run();
  RSD_ASSERT(sched.unfinished_count() == 0);

  AppRunResult result;
  result.runtime = end - SimTime::zero();
  result.steps = config.steps;
  result.cuda_calls = slack.calls_delayed();
  // Equation 1 removes the per-rank injected slack from the critical path.
  const std::int64_t calls_per_rank = slack.calls_delayed() / config.procs;
  result.no_slack_runtime =
      interconnect::equation1_no_slack_time(result.runtime, calls_per_rank, config.slack);
  if (config.capture_trace) result.trace = std::move(recorder.trace());
  return result;
}

}  // namespace rsd::apps
