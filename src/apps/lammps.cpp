#include "apps/lammps.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "interconnect/slack.hpp"
#include "wl/replay.hpp"

namespace rsd::apps {

namespace {

/// Effective parallel speedup of t OpenMP threads at efficiency e:
/// 1 + e + e^2 + ... (diminishing returns, matching the paper's thread
/// scaling flattening out).
double omp_speedup(int threads, double efficiency) {
  double s = 0.0;
  double w = 1.0;
  for (int t = 0; t < threads; ++t) {
    s += w;
    w *= efficiency;
  }
  return s;
}

struct StepCosts {
  SimDuration cpu;
  SimDuration cpu_reneighbor;
  SimDuration halo;
  Bytes h2d_bytes;
  Bytes d2h_bytes;
  SimDuration kernel;
};

StepCosts step_costs(const LammpsConfig& cfg, const LammpsCalibration& cal) {
  const auto atoms = lammps_atoms(cfg.box);
  const double owned = static_cast<double>(atoms) / cfg.procs;
  const double speedup = omp_speedup(cfg.threads, cal.omp_efficiency);

  StepCosts c;
  c.cpu = cal.fixed_per_step +
          duration::nanoseconds(
              static_cast<std::int64_t>(cal.cpu_ns_per_atom * owned / speedup));
  c.cpu_reneighbor = duration::nanoseconds(
      static_cast<std::int64_t>(cal.reneighbor_cpu_ns_per_atom * owned / speedup));
  // Halo: six neighbor faces; surface atoms ~ owned^(2/3).
  const double surface_atoms = std::cbrt(owned) * std::cbrt(owned);
  const double halo_bytes = 6.0 * surface_atoms * cal.halo_bytes_per_surface_atom;
  const double halo_seconds =
      halo_bytes / (cal.mpi_bandwidth_gib_s * static_cast<double>(kGiB));
  c.halo = cfg.procs > 1
               ? cal.halo_latency + duration::seconds(halo_seconds)
               : SimDuration::zero();
  c.h2d_bytes = static_cast<Bytes>(cal.h2d_bytes_per_atom * owned);
  c.d2h_bytes = static_cast<Bytes>(cal.d2h_bytes_per_atom * owned);
  c.kernel =
      duration::nanoseconds(static_cast<std::int64_t>(cal.kernel_ns_per_atom * owned));
  return c;
}

}  // namespace

wl::Program build_lammps_program(const LammpsConfig& cfg, const LammpsCalibration& cal) {
  const StepCosts costs = step_costs(cfg, cal);
  const auto neighbor_kernel = duration::nanoseconds(static_cast<std::int64_t>(
      cal.neighbor_kernel_ns_per_atom * static_cast<double>(lammps_atoms(cfg.box)) /
      cfg.procs));

  // Op names interned once per program, not once per step.
  const NameRef neighbor_meta_name{"h2d_neighbor_meta"};
  const NameRef neighbor_build_name{"neighbor_build"};
  const NameRef positions_name{"h2d_positions"};
  const NameRef pack_name{"pack_atoms"};
  const NameRef force_name{"lj_force"};
  const NameRef unpack_name{"unpack_forces"};
  const NameRef forces_name{"d2h_forces"};

  wl::Program program;
  program.lanes.reserve(static_cast<std::size_t>(cfg.procs));
  for (int rank = 0; rank < cfg.procs; ++rank) {
    // Ranks are separate OS processes: distinct process ids make their
    // kernels pay the device's context-switch cost (Figure 2's mechanism).
    wl::Lane& lane = program.lanes.emplace_back();
    lane.context_id = rank;
    lane.process_id = rank;
    const std::int32_t positions = lane.add_buffer(std::max<Bytes>(costs.h2d_bytes, 1));
    const std::int32_t forces = lane.add_buffer(std::max<Bytes>(costs.d2h_bytes, 1));
    const std::int32_t neighbor_meta = lane.add_buffer(cal.reneighbor_bytes);

    // Mean-preserving lognormal jitter: E[exp(N(-s^2/2, s))] = 1. Drawn at
    // build time in exactly the per-step order the submission loop used.
    Rng rng = Rng{cal.seed}.split(static_cast<std::uint64_t>(rank));
    const double sigma = cal.duration_jitter_sigma;
    auto jitter = [&rng, sigma] { return rng.lognormal(-0.5 * sigma * sigma, sigma); };

    for (int step = 0; step < cfg.steps; ++step) {
      const bool reneighbor = (step % cal.reneighbor_every) == 0;

      // CPU phase: integration, neighbor maintenance (OpenMP-parallel).
      lane.cpu((costs.cpu + (reneighbor ? costs.cpu_reneighbor : SimDuration::zero())) *
               jitter());

      // Halo exchange with rank neighbors, then the step barrier every rank
      // hits before touching the device (MPI collectives synchronise ranks).
      if (cfg.procs > 1) {
        lane.cpu(costs.halo);
        lane.barrier();
      }

      if (reneighbor) {
        lane.h2d(neighbor_meta, neighbor_meta_name);
        lane.kernel(neighbor_build_name, neighbor_kernel * jitter());
      }
      lane.h2d(positions, positions_name);
      lane.kernel(pack_name, cal.pack_kernel * jitter());
      lane.kernel_sync(force_name, costs.kernel * jitter());
      lane.kernel(unpack_name, cal.unpack_kernel * jitter());
      lane.d2h(forces, forces_name);
      lane.sync();
    }
  }
  return program;
}

AppRunResult run_lammps(const LammpsConfig& config, const LammpsCalibration& cal,
                        const gpu::DeviceParams& device_params) {
  RSD_ASSERT(config.box > 0 && config.procs > 0 && config.threads > 0 && config.steps > 0);

  const wl::ReplayEngine engine{wl::NodeParams{.device_params = device_params}};
  wl::ReplayOptions options;
  options.slack = config.slack;
  options.capture_trace = config.capture_trace;
  wl::ReplayResult run = engine.run(build_lammps_program(config, cal), options);

  AppRunResult result;
  result.runtime = run.runtime;
  result.steps = config.steps;
  result.cuda_calls = run.calls_delayed;
  // Equation 1 removes the per-rank injected slack from the critical path.
  result.no_slack_runtime = interconnect::equation1_per_submitter(
      result.runtime, run.calls_delayed, config.procs, config.slack);
  if (config.capture_trace) result.trace = std::move(run.trace);
  return result;
}

}  // namespace rsd::apps
