// CosmoFlow workload generator (the paper's GPU-dominant AI application,
// Section III-D.2).
//
// Replays the TensorFlow/Horovod execution pattern the paper observed in
// NSys traces: per training step the CPU submits a long *sequence* of
// varying-sized kernels in quick succession (forward convs, backward
// convs, dense heads, optimizer, gradient staging), then waits for the
// sequence while doing background work. Launching takes ~1/7 of the
// sequence's duration, which the paper treats as an effective kernel
// parallelism of 4. Data arrives in large prefetch chunks (the paper's
// "mini" dataset: 1024 train + 1024 validation items, batch 4, 5 epochs).
//
// The layer list and their FLOP ratios come from the real CNN in rsd::nn
// (make_cosmoflow_net) evaluated at CosmoFlow's full 128^3 input scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/calibration.hpp"
#include "apps/lammps.hpp"  // AppRunResult
#include "core/names.hpp"
#include "core/units.hpp"
#include "gpusim/collective.hpp"
#include "gpusim/device.hpp"
#include "interconnect/fabric.hpp"
#include "wl/program.hpp"

namespace rsd::apps {

struct CosmoflowConfig {
  int epochs = 5;
  int train_items = 1024;
  int validation_items = 1024;
  int batch = 4;
  int cpu_cores = 2;  ///< Input-pipeline cores; >2 shows no benefit (IV-A).
  SimDuration slack = SimDuration::zero();
  bool capture_trace = false;
};

/// One kernel of the per-step sequence, with its duration model. `ref` is
/// the interned form of `name`, built once so the per-step launch loop
/// pays no interning cost.
struct CosmoflowKernel {
  std::string name;
  SimDuration duration;
  NameRef ref;
};

/// The per-training-step kernel sequence (forward + backward + optimizer),
/// derived from the CNN's layer FLOPs at full CosmoFlow scale.
[[nodiscard]] std::vector<CosmoflowKernel> cosmoflow_step_kernels(
    const CosmoflowCalibration& cal, int batch);

/// Emit the training run as a single-lane op-stream program (the one
/// TensorFlow submission thread), per-kernel jitter drawn at build time.
[[nodiscard]] wl::Program build_cosmoflow_program(const CosmoflowConfig& config,
                                                  const CosmoflowCalibration& cal = {});

[[nodiscard]] AppRunResult run_cosmoflow(const CosmoflowConfig& config,
                                         const CosmoflowCalibration& cal = {},
                                         const gpu::DeviceParams& device_params = {});

/// Multi-GPU data-parallel training (Horovod-style synchronous SGD): each
/// GPU in a chassis runs the per-step kernel sequence on its own shard and
/// the group ring-allreduces the gradients every step over the chassis
/// fabric. The Discussion's argument for composing many closely-coupled
/// GPUs, made runnable.
struct MultiGpuCosmoflowConfig {
  CosmoflowConfig base;  ///< Global dataset; steps split across GPUs.
  int gpus = 4;
  gpu::GpuInterconnect fabric = gpu::make_nvlink();
  Bytes gradient_bytes = 32 * kMiB;  ///< Exchanged per step per GPU.
};

/// Emit the data-parallel run as one looped lane per GPU (identical steps,
/// so the program uses the IR's repeat structure instead of unrolling).
[[nodiscard]] wl::Program build_cosmoflow_multi_gpu_program(
    const MultiGpuCosmoflowConfig& config, const CosmoflowCalibration& cal = {});

[[nodiscard]] AppRunResult run_cosmoflow_multi_gpu(const MultiGpuCosmoflowConfig& config,
                                                   const CosmoflowCalibration& cal = {});

/// Row-scale data-parallel CosmoFlow on the partitioned engine
/// (gpu::PartitionedRow): one partition per GPU, the per-step kernel
/// sequence partition-local, gradients ring-allreduced as cross-partition
/// messages. This is the path that scales to hundreds of GPUs; the result
/// digest is byte-identical at any `sim_threads`.
struct RowCosmoflowConfig {
  int gpus = 8;
  int steps = 4;  ///< Training steps (full epochs are sweep material).
  gpu::GpuInterconnect fabric = gpu::make_nvlink();
  /// Row interconnect shape (net::build_fabric); the default ring keeps
  /// the historical row timing.
  net::FabricKind fabric_kind = net::FabricKind::kRing;
  Bytes gradient_bytes = 32 * kMiB;
  int batch = 4;
  int sim_threads = 0;          ///< <= 0: RSD_SIM_THREADS, else 1.
  std::uint64_t jitter_seed = 0;  ///< Worker-claim jitter (stress tests).
};

struct RowCosmoflowResult {
  SimDuration runtime;      ///< Row finish time (max over ranks).
  std::uint64_t digest;     ///< Per-rank step-completion fingerprint.
  std::uint64_t events;     ///< Aggregate engine events executed.
  std::uint64_t messages;   ///< Cross-partition chunks exchanged.
};

[[nodiscard]] RowCosmoflowResult run_cosmoflow_row(const RowCosmoflowConfig& config,
                                                   const CosmoflowCalibration& cal = {});

}  // namespace rsd::apps
