// Calibration constants for the production-application workload generators.
//
// These are fitted against the paper's published anchors (Table I baseline
// runtimes, Figure 2 scaling shape, Table III transfer-size bins,
// Section IV-C trace durations); EXPERIMENTS.md records the fit quality.
// They describe *one* A100-node software stack — users profiling their own
// applications replace them with NSys-measured values (that is the point
// of the paper's method).
#pragma once

#include <cstdint>

#include "core/units.hpp"

namespace rsd::apps {

/// LAMMPS LJ benchmark with the GPU package (Section III-D.1).
struct LammpsCalibration {
  /// Fixed host-side cost per timestep (integration bookkeeping, launches).
  SimDuration fixed_per_step = duration::microseconds(400.0);
  /// CPU-side per-atom cost per step (neighbor maintenance, packing),
  /// divided across ranks and OpenMP threads.
  double cpu_ns_per_atom = 11.1;
  /// OpenMP efficiency: thread t contributes `omp_efficiency^(t-1)`.
  double omp_efficiency = 0.85;
  /// GPU force-kernel cost per owned atom.
  double kernel_ns_per_atom = 1.8;
  /// Per-rank halo-exchange cost per step: latency + surface term.
  SimDuration halo_latency = duration::microseconds(12.0);
  double halo_bytes_per_surface_atom = 48.0;
  double mpi_bandwidth_gib_s = 12.0;
  /// H2D positions (float x/y/z) and D2H forces+energies (double x/y/z).
  double h2d_bytes_per_atom = 12.0;
  double d2h_bytes_per_atom = 24.0;
  /// Neighbor-list rebuild cadence; rebuild ships extra metadata to the GPU.
  int reneighbor_every = 18;
  Bytes reneighbor_bytes = 512 * kKiB;
  /// Extra CPU cost on a reneighbor step, per owned atom.
  double reneighbor_cpu_ns_per_atom = 18.0;
  /// GPU-side device kernels beyond the force kernel (the GPU package packs
  /// and unpacks its data on device): per-step pack/unpack and the
  /// reneighbor-step neighbor-build kernel.
  SimDuration pack_kernel = duration::microseconds(60.0);
  SimDuration unpack_kernel = duration::microseconds(45.0);
  double neighbor_kernel_ns_per_atom = 0.6;
  /// Mean-preserving lognormal jitter (sigma) applied to kernel and CPU
  /// durations — the spread NSys sees between timesteps.
  double duration_jitter_sigma = 0.05;
  std::uint64_t seed = 0x1a33;
};

/// CosmoFlow (TensorFlow + Horovod, "mini" dataset — Section III-D.2).
struct CosmoflowCalibration {
  /// Samples per prefetch chunk and bytes per sample
  /// (128^3 voxels x 4 channels x float32 = 32 MiB).
  int samples_per_prefetch = 16;
  Bytes bytes_per_sample = 32 * kMiB;
  /// Effective tensor throughput for the conv kernels (TensorFlow on A100
  /// sustains a small fraction of peak on these layer shapes; fitted to the
  /// paper's 705 s run).
  double effective_tflops = 2.2;
  /// Host-side cost to submit one kernel of the sequence (includes the
  /// framework's op-scheduling work; fitted to the paper's observation
  /// that launching takes ~1/7 of the sequence duration).
  SimDuration submit_cost = duration::milliseconds(1.0);
  /// The paper: launching the sequence takes ~1/7 of its duration and the
  /// queuing behaves like 4-way parallelism.
  int effective_parallelism = 4;
  /// Per-step small control transfers (loss readback, metric scalars).
  int small_transfers_per_step = 3;
  Bytes small_transfer_bytes = 64 * kKiB;
  /// Periodic weight-synchronisation (Horovod broadcast staging) and
  /// activation-checkpoint transfers.
  int weight_syncs_per_epoch = 134;
  Bytes weight_sync_bytes = 8 * kMiB;
  int checkpoint_transfers_per_epoch = 67;
  Bytes checkpoint_bytes = 64 * kMiB;
  /// Host CPU cores the input pipeline needs to keep the GPU fed
  /// (Section IV-A: CosmoFlow requires 2 cores; more show no benefit).
  int required_cores = 2;
  /// Per-step input-pipeline CPU work (decode, augment). With >= 2 cores it
  /// overlaps the previous step's GPU work; with 1 core it lands on the
  /// critical path.
  SimDuration input_pipeline_work = duration::milliseconds(150.0);
};

}  // namespace rsd::apps
