// Trace analysis: everything the paper extracts from NSys captures.
//
//  * Kernel-duration distributions per kernel name + "Total"   (Figure 4)
//  * Memcpy-size distributions per direction + "Total"         (Figure 5)
//  * Transfer-size binning at the proxy's matrix-size points   (Table III)
//  * Kernel-duration binning (the Eq. 3 kernel-side analogue)
//  * %Runtime_Kernel and %Runtime_Memory                       (Equation 2)
#pragma once

#include <string>
#include <vector>

#include "core/histogram.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "trace/trace.hpp"

namespace rsd::trace {

/// Violin summaries of kernel durations (in microseconds) for the `top_n`
/// kernels by total time, plus a "Total" row aggregating every kernel —
/// exactly Figure 4's layout (CosmoFlow shows its top five).
[[nodiscard]] std::vector<ViolinSummary> kernel_duration_violins(const Trace& trace,
                                                                 std::size_t top_n);

/// Fraction of total kernel time covered by the top_n kernels (the paper
/// reports CosmoFlow's top five cover 49.9%).
[[nodiscard]] double top_kernel_time_fraction(const Trace& trace, std::size_t top_n);

/// Violin summaries of memcpy sizes (in MiB): one per direction plus Total
/// — Figure 5's layout.
[[nodiscard]] std::vector<ViolinSummary> memcpy_size_violins(const Trace& trace);

/// Table III: bin every transfer's size (MiB) into <=edge bins.
[[nodiscard]] EdgeHistogram bin_transfer_sizes(const Trace& trace,
                                               const std::vector<double>& edges_mib);

/// Eq. 3 kernel-side analogue: bin kernel durations (us) into <=edge bins.
[[nodiscard]] EdgeHistogram bin_kernel_durations(const Trace& trace,
                                                 const std::vector<double>& edges_us);

struct RuntimeFractions {
  double kernel = 0.0;  ///< Fraction of the traced span with a kernel running.
  double memory = 0.0;  ///< Fraction with at least one DMA in flight.
};

/// %Runtime terms of Equation 2, computed as interval unions over the
/// traced span (overlapping H2D/D2H transfers are not double-counted).
[[nodiscard]] RuntimeFractions runtime_fractions(const Trace& trace);

/// Union length of a set of [start, end] intervals (exposed for testing).
[[nodiscard]] SimDuration interval_union(std::vector<std::pair<SimTime, SimTime>> intervals);

}  // namespace rsd::trace
