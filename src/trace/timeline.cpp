#include "trace/timeline.hpp"

#include <algorithm>
#include <cstring>
#include <map>

namespace rsd::trace {

namespace {

bool is_category(const obs::Event& e, const char* category) {
  return e.category != nullptr && std::strcmp(e.category, category) == 0;
}

double arg_or(const obs::Event& e, const char* key, double fallback) {
  for (const obs::Arg& a : e.args) {
    if (a.numeric && a.key == key) return a.num;
  }
  return fallback;
}

bool op_track(std::int32_t track, gpu::OpKind& kind) {
  switch (track) {
    case obs::kTrackCompute: kind = gpu::OpKind::kKernel; return true;
    case obs::kTrackCopyH2D: kind = gpu::OpKind::kMemcpyH2D; return true;
    case obs::kTrackCopyD2H: kind = gpu::OpKind::kMemcpyD2H; return true;
    default: return false;
  }
}

}  // namespace

std::vector<std::int32_t> timeline_sim_ids(const obs::Tracer::Snapshot& snapshot) {
  std::vector<std::int32_t> ids;
  for (const obs::Event& e : snapshot.events) {
    gpu::OpKind kind;
    if (e.phase != obs::Phase::kComplete || e.sim_id < 0) continue;
    if (!is_category(e, "gpu") || !op_track(e.track, kind)) continue;
    ids.push_back(e.sim_id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

Trace from_timeline(const obs::Tracer::Snapshot& snapshot, std::int32_t sim_id) {
  if (sim_id < 0) {
    const auto ids = timeline_sim_ids(snapshot);
    if (ids.empty()) return {};
    sim_id = ids.front();
  }

  Trace trace;
  // Injected slack re-attaches to the API call it followed: the slack
  // span's ts is exactly that call's end (see Context::finish_api).
  std::map<std::int64_t, SimDuration> slack_at;
  for (const obs::Event& e : snapshot.events) {
    if (e.sim_id != sim_id || e.phase != obs::Phase::kComplete) continue;
    if (e.track == obs::kTrackSlack && is_category(e, "slack")) {
      slack_at[e.ts_ns] += SimDuration{e.dur_ns};
    }
  }

  std::vector<gpu::OpRecord> ops;
  std::vector<gpu::ApiRecord> apis;
  for (const obs::Event& e : snapshot.events) {
    if (e.sim_id != sim_id || e.phase != obs::Phase::kComplete) continue;
    gpu::OpKind kind;
    if (is_category(e, "gpu") && op_track(e.track, kind)) {
      gpu::OpRecord op;
      op.kind = kind;
      op.name = e.name;
      op.context_id = static_cast<int>(arg_or(e, "context", 0));
      op.submit = SimTime{static_cast<std::int64_t>(arg_or(e, "submit_ns",
                                                           static_cast<double>(e.ts_ns)))};
      op.start = SimTime{e.ts_ns};
      op.end = SimTime{e.ts_ns + e.dur_ns};
      op.bytes = static_cast<Bytes>(arg_or(e, "bytes", 0));
      op.exposed_overhead = duration::microseconds(arg_or(e, "exposed_us", 0));
      op.wake_penalty = duration::microseconds(arg_or(e, "wake_us", 0));
      op.switch_penalty = duration::microseconds(arg_or(e, "switch_us", 0));
      ops.push_back(std::move(op));
    } else if (is_category(e, "gpu.api") && e.track >= obs::kTrackApiBase) {
      gpu::ApiRecord api;
      api.name = e.name;
      api.context_id = e.track - obs::kTrackApiBase;
      api.start = SimTime{e.ts_ns};
      api.end = SimTime{e.ts_ns + e.dur_ns};
      if (const auto it = slack_at.find(api.end.ns()); it != slack_at.end()) {
        api.slack_after = it->second;
      }
      apis.push_back(std::move(api));
    }
  }
  // The snapshot groups events by timeline track; a trace sink sees records
  // in completion order. Restore that order so the rebuilt trace matches a
  // directly captured one record for record.
  std::stable_sort(ops.begin(), ops.end(), [](const gpu::OpRecord& a, const gpu::OpRecord& b) {
    if (a.end.ns() != b.end.ns()) return a.end.ns() < b.end.ns();
    return a.submit.ns() < b.submit.ns();
  });
  std::stable_sort(apis.begin(), apis.end(),
                   [](const gpu::ApiRecord& a, const gpu::ApiRecord& b) {
                     if (a.end.ns() != b.end.ns()) return a.end.ns() < b.end.ns();
                     return a.start.ns() < b.start.ns();
                   });
  for (auto& op : ops) trace.add_op(std::move(op));
  for (auto& api : apis) trace.add_api(std::move(api));
  return trace;
}

}  // namespace rsd::trace
