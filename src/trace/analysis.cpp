#include "trace/analysis.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <utility>

namespace rsd::trace {

namespace {

/// Per-kernel-name duration samples plus total time, ordered by total time.
/// Grouping keys on the name *text* (interned views are stable for the
/// process lifetime), never the interned id — id order varies with thread
/// count, text order does not.
std::vector<std::pair<std::string, SampleSet>> kernel_groups_by_total_time(const Trace& trace) {
  std::map<std::string_view, SampleSet> groups;
  for (const auto& op : trace.ops()) {
    if (op.kind != gpu::OpKind::kKernel) continue;
    groups[op.name.view()].add(op.duration().us());
  }
  std::vector<std::pair<std::string, SampleSet>> ordered;
  ordered.reserve(groups.size());
  for (auto& [name, samples] : groups) {
    ordered.emplace_back(std::string{name}, std::move(samples));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second.sum() > b.second.sum(); });
  return ordered;
}

}  // namespace

std::vector<ViolinSummary> kernel_duration_violins(const Trace& trace, std::size_t top_n) {
  const auto ordered = kernel_groups_by_total_time(trace);

  std::vector<ViolinSummary> result;
  SampleSet all;
  for (const auto& [name, samples] : ordered) {
    for (const double v : samples.values()) all.add(v);
  }
  for (std::size_t i = 0; i < ordered.size() && i < top_n; ++i) {
    result.push_back(ordered[i].second.violin(ordered[i].first));
  }
  result.push_back(all.violin("Total"));
  return result;
}

double top_kernel_time_fraction(const Trace& trace, std::size_t top_n) {
  const auto ordered = kernel_groups_by_total_time(trace);
  double top = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    total += ordered[i].second.sum();
    if (i < top_n) top += ordered[i].second.sum();
  }
  return total > 0.0 ? top / total : 0.0;
}

std::vector<ViolinSummary> memcpy_size_violins(const Trace& trace) {
  SampleSet h2d;
  SampleSet d2h;
  SampleSet all;
  for (const auto& op : trace.ops()) {
    if (op.kind == gpu::OpKind::kKernel) continue;
    const double mib = to_mib(op.bytes);
    all.add(mib);
    (op.kind == gpu::OpKind::kMemcpyH2D ? h2d : d2h).add(mib);
  }
  return {h2d.violin("H2D"), d2h.violin("D2H"), all.violin("Total")};
}

EdgeHistogram bin_transfer_sizes(const Trace& trace, const std::vector<double>& edges_mib) {
  EdgeHistogram hist{edges_mib};
  for (const auto& op : trace.ops()) {
    if (op.kind == gpu::OpKind::kKernel) continue;
    hist.add(to_mib(op.bytes));
  }
  return hist;
}

EdgeHistogram bin_kernel_durations(const Trace& trace, const std::vector<double>& edges_us) {
  EdgeHistogram hist{edges_us};
  for (const auto& op : trace.ops()) {
    if (op.kind != gpu::OpKind::kKernel) continue;
    hist.add(op.duration().us());
  }
  return hist;
}

SimDuration interval_union(std::vector<std::pair<SimTime, SimTime>> intervals) {
  if (intervals.empty()) return SimDuration::zero();
  std::sort(intervals.begin(), intervals.end());
  SimDuration total = SimDuration::zero();
  SimTime cur_lo = intervals.front().first;
  SimTime cur_hi = intervals.front().second;
  for (const auto& [lo, hi] : intervals) {
    if (lo > cur_hi) {
      total += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
    } else {
      cur_hi = std::max(cur_hi, hi);
    }
  }
  total += cur_hi - cur_lo;
  return total;
}

RuntimeFractions runtime_fractions(const Trace& trace) {
  std::vector<std::pair<SimTime, SimTime>> kernel_iv;
  std::vector<std::pair<SimTime, SimTime>> memory_iv;
  for (const auto& op : trace.ops()) {
    auto& target = op.kind == gpu::OpKind::kKernel ? kernel_iv : memory_iv;
    target.emplace_back(op.start, op.end);
  }
  const SimDuration span = trace.span();
  RuntimeFractions f;
  if (span <= SimDuration::zero()) return f;
  f.kernel = interval_union(std::move(kernel_iv)) / span;
  f.memory = interval_union(std::move(memory_iv)) / span;
  return f;
}

}  // namespace rsd::trace
