// Trace container + recorder: the simulator's equivalent of an NSight
// Systems capture (Section III-B). A `TraceRecorder` is attached to a
// device as its record sink; the resulting `Trace` is what the paper's
// profiling method consumes — kernel durations, memcpy sizes, and the
// API-call timeline, with no access to application source.
#pragma once

#include <string>
#include <vector>

#include "core/units.hpp"
#include "gpusim/records.hpp"

namespace rsd::trace {

class Trace {
 public:
  void add_op(gpu::OpRecord op) { ops_.push_back(std::move(op)); }
  void add_api(gpu::ApiRecord api) { apis_.push_back(std::move(api)); }

  [[nodiscard]] const std::vector<gpu::OpRecord>& ops() const { return ops_; }
  [[nodiscard]] const std::vector<gpu::ApiRecord>& apis() const { return apis_; }

  [[nodiscard]] bool empty() const { return ops_.empty() && apis_.empty(); }
  [[nodiscard]] std::size_t kernel_count() const;
  [[nodiscard]] std::size_t memcpy_count() const;

  /// Earliest submit / latest end over all records (the traced span).
  [[nodiscard]] SimTime begin() const;
  [[nodiscard]] SimTime end() const;
  [[nodiscard]] SimDuration span() const { return end() - begin(); }

  /// Serialise device ops to CSV (one row per op).
  [[nodiscard]] std::string ops_to_csv() const;

  void clear() {
    ops_.clear();
    apis_.clear();
  }

 private:
  std::vector<gpu::OpRecord> ops_;
  std::vector<gpu::ApiRecord> apis_;
};

/// RecordSink implementation that accumulates a Trace.
class TraceRecorder final : public gpu::RecordSink {
 public:
  void on_op(const gpu::OpRecord& op) override { trace_.add_op(op); }
  void on_api(const gpu::ApiRecord& api) override { trace_.add_api(api); }

  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
};

}  // namespace rsd::trace
