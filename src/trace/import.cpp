#include "trace/import.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <vector>

#include "core/error.hpp"

namespace rsd::trace {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

/// Tools on Windows (and NSys exports moved through them) write CRLF line
/// endings; std::getline leaves the '\r' on the last cell.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw Error{ErrorCode::kInvalidArgument,
              "trace CSV line " + std::to_string(line_no) + ": " + message};
}

gpu::OpKind parse_kind(const std::string& s, std::size_t line_no) {
  if (s == "kernel") return gpu::OpKind::kKernel;
  if (s == "memcpy_h2d") return gpu::OpKind::kMemcpyH2D;
  if (s == "memcpy_d2h") return gpu::OpKind::kMemcpyD2H;
  fail(line_no, "unknown op kind '" + s + "'");
}

double parse_double(const std::string& s, std::size_t line_no, const char* field) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument{s};
    return v;
  } catch (const std::exception&) {
    fail(line_no, std::string{"bad numeric value '"} + s + "' for " + field);
  }
}

}  // namespace

Trace parse_ops_csv(std::istream& input) {
  std::string line;
  if (!std::getline(input, line)) {
    throw Error{ErrorCode::kInvalidArgument, "trace CSV: empty input"};
  }

  // Map required column names to indices (tolerating extra columns and any
  // column order).
  strip_cr(line);
  const auto header = split_csv_line(line);
  std::map<std::string, std::size_t> columns;
  for (std::size_t i = 0; i < header.size(); ++i) columns[header[i]] = i;
  for (const char* required :
       {"kind", "name", "context", "submit_us", "start_us", "end_us", "bytes"}) {
    if (columns.find(required) == columns.end()) {
      throw Error{ErrorCode::kInvalidArgument,
                  std::string{"trace CSV: missing column '"} + required + "'"};
    }
  }

  // "process" is optional (older exports predate submitter identity; NSys
  // traces of single-process applications may omit it).
  const auto process_column = columns.find("process");

  Trace trace;
  std::size_t line_no = 1;
  while (std::getline(input, line)) {
    ++line_no;
    strip_cr(line);
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() < header.size()) fail(line_no, "too few columns");

    gpu::OpRecord op;
    op.kind = parse_kind(cells[columns["kind"]], line_no);
    op.name = cells[columns["name"]];
    op.context_id =
        static_cast<int>(parse_double(cells[columns["context"]], line_no, "context"));
    if (process_column != columns.end()) {
      op.process_id =
          static_cast<int>(parse_double(cells[process_column->second], line_no, "process"));
    }
    op.submit = SimTime{static_cast<std::int64_t>(
        parse_double(cells[columns["submit_us"]], line_no, "submit_us") * 1e3)};
    op.start = SimTime{static_cast<std::int64_t>(
        parse_double(cells[columns["start_us"]], line_no, "start_us") * 1e3)};
    op.end = SimTime{static_cast<std::int64_t>(
        parse_double(cells[columns["end_us"]], line_no, "end_us") * 1e3)};
    op.bytes = static_cast<Bytes>(parse_double(cells[columns["bytes"]], line_no, "bytes"));
    if (op.end < op.start) fail(line_no, "end before start");
    trace.add_op(std::move(op));
  }
  return trace;
}

Trace load_ops_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw Error{ErrorCode::kNotFound, "cannot open trace CSV: " + path};
  return parse_ops_csv(in);
}

}  // namespace rsd::trace
