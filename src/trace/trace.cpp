#include "trace/trace.hpp"

#include <algorithm>

#include "core/csv.hpp"

namespace rsd::trace {

std::size_t Trace::kernel_count() const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const gpu::OpRecord& op) { return op.kind == gpu::OpKind::kKernel; }));
}

std::size_t Trace::memcpy_count() const {
  return ops_.size() - kernel_count();
}

SimTime Trace::begin() const {
  SimTime t = SimTime::max();
  for (const auto& op : ops_) t = std::min(t, op.submit);
  for (const auto& api : apis_) t = std::min(t, api.start);
  return t == SimTime::max() ? SimTime::zero() : t;
}

SimTime Trace::end() const {
  SimTime t = SimTime::zero();
  for (const auto& op : ops_) t = std::max(t, op.end);
  for (const auto& api : apis_) t = std::max(t, api.end + api.slack_after);
  return t;
}

std::string Trace::ops_to_csv() const {
  CsvWriter csv;
  csv.row("kind", "name", "context", "process", "submit_us", "start_us", "end_us",
          "duration_us", "bytes", "exposed_us", "wake_us");
  for (const auto& op : ops_) {
    csv.row(std::string{gpu::to_string(op.kind)}, op.name, op.context_id, op.process_id,
            op.submit.us(), op.start.us(), op.end.us(), op.duration().us(), op.bytes,
            op.exposed_overhead.us(), op.wake_penalty.us());
  }
  return csv.str();
}

}  // namespace rsd::trace
