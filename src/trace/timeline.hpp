// Bridge from the obs timeline back into a `trace::Trace` — the closed
// loop of the observability design. The simulator's own emitted timeline
// (obs ring buffers → NSys-style ops CSV) must, when re-imported through
// `trace::import` and pushed through the paper's Eq. 1–3 model, predict
// the slack penalty the simulator actually exhibits. The paper could not
// run this self-consistency check on real hardware; the simulator can.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/tracer.hpp"
#include "trace/trace.hpp"

namespace rsd::trace {

/// Simulated-timeline ids carrying at least one device op in the snapshot,
/// ascending.
[[nodiscard]] std::vector<std::int32_t> timeline_sim_ids(const obs::Tracer::Snapshot& snapshot);

/// Rebuild the device-op trace of one simulation from an obs snapshot.
/// `sim_id` < 0 selects the first simulation with ops. Ops are rebuilt from
/// the "gpu" complete events on the engine tracks (kind from the track,
/// submit/context/bytes/exposed/wake from args); API records from the
/// "gpu.api" track, with injected slack re-attached from the slack track.
/// The result round-trips through `Trace::ops_to_csv` / `parse_ops_csv`.
[[nodiscard]] Trace from_timeline(const obs::Tracer::Snapshot& snapshot,
                                  std::int32_t sim_id = -1);

}  // namespace rsd::trace
