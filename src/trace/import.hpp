// Trace import: load device-op traces from the CSV schema written by
// Trace::ops_to_csv(). This is the bridge for profiling *real*
// applications: export an NSight Systems capture to this schema (kind,
// name, context, timestamps, bytes) and feed it to the slack model.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace rsd::trace {

/// Parse a trace from CSV text. The first line must be the header produced
/// by Trace::ops_to_csv (extra columns are ignored; required columns are
/// kind, name, context, submit_us, start_us, end_us, bytes). Throws
/// rsd::Error{kInvalidArgument} with a line number on malformed input.
[[nodiscard]] Trace parse_ops_csv(std::istream& input);

/// Convenience: read from a file. Throws on I/O failure.
[[nodiscard]] Trace load_ops_csv(const std::string& path);

}  // namespace rsd::trace
