#include "exec/team.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace rsd::exec {

int default_sim_thread_count() {
  if (const char* env = std::getenv("RSD_SIM_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 1;
}

Team::Team(int threads) : size_(std::max(1, threads)) {
  obs::Registry::global().gauge("exec.team_size").set(static_cast<double>(size_));
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::uint32_t>(i) + 1); });
  }
}

Team::~Team() {
  if (!workers_.empty()) {
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

namespace {

/// splitmix64 step — cheap, stateless-per-call jitter stream.
[[nodiscard]] std::uint64_t mix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Team::claim(const std::function<void(std::size_t)>& fn, std::uint64_t jitter_stream) {
  for (;;) {
    if (jitter_stream != 0) {
      // Busy-wait a pseudo-random beat so which participant wins the next
      // fetch_add varies run to run — the determinism stress tests assert
      // simulation output is identical anyway.
      const std::uint64_t spins = mix64(jitter_stream) & 0x3ff;
      for (std::uint64_t k = 0; k < spins; ++k) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
      }
    }
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= items_) return;
    fn(i);
  }
}

void Team::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  job_ = &fn;
  items_ = n;
  next_.store(0, std::memory_order_relaxed);
  retired_.store(0, std::memory_order_relaxed);
  const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_release) + 1;
  epoch_.notify_all();

  const std::uint64_t seed = jitter_seed_.load(std::memory_order_relaxed);
  claim(fn, seed != 0 ? seed ^ (e * 0xd1b54a32d192ed03ULL) : 0);

  // Wait for every worker to retire: afterwards no thread can touch job_
  // or the caller's data until the next epoch is published.
  const int n_workers = static_cast<int>(workers_.size());
  int r = retired_.load(std::memory_order_acquire);
  while (r != n_workers) {
    retired_.wait(r, std::memory_order_acquire);
    r = retired_.load(std::memory_order_acquire);
  }
}

void Team::worker_loop(std::uint32_t worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    epoch_.wait(seen, std::memory_order_acquire);
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e == seen) continue;  // spurious wake
    seen = e;
    if (stop_.load(std::memory_order_acquire)) return;
    std::uint64_t seed = jitter_seed_.load(std::memory_order_relaxed);
    claim(*job_, seed != 0 ? mix64(seed) ^ (e * 0x9e6c63d0676a9a99ULL) ^ worker_index : 0);
    retired_.fetch_add(1, std::memory_order_release);
    retired_.notify_all();
  }
}

}  // namespace rsd::exec
