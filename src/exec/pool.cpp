#include "exec/pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace rsd::exec {

Pool::Pool(int threads) : size_(std::max(1, threads)) {
  obs::Registry::global().gauge("exec.pool_size").set(static_cast<double>(size_));
  // The caller participates in every batch it submits, so spawn size-1
  // workers; a pool of size 1 owns no threads at all.
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(queue_m_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

Pool& Pool::global() {
  static Pool pool;
  return pool;
}

void Pool::help(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const std::int64_t t0 = tracer.wall_now_ns();
      (*batch.run)(i);
      obs::Event e;
      e.phase = obs::Phase::kComplete;
      e.ts_ns = t0;
      e.dur_ns = tracer.wall_now_ns() - t0;
      e.category = "exec";
      e.name = "task";
      e.args.push_back(obs::Arg::n("index", static_cast<double>(i)));
      tracer.emit(std::move(e));
    } else {
      (*batch.run)(i);
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.count) {
      // Hold the mutex so the waiter cannot miss the notify between its
      // predicate check and its wait.
      std::lock_guard<std::mutex> lk(batch.m);
      batch.cv.notify_all();
    }
  }
}

void Pool::run_batch(std::size_t count, const std::function<void(std::size_t)>& run) {
  if (count == 0) return;
  {
    auto& reg = obs::Registry::global();
    reg.counter("exec.batches").add(1);
    reg.counter("exec.items").add(static_cast<std::int64_t>(count));
  }
  obs::Span span{"exec", "batch", {obs::Arg::n("items", static_cast<double>(count))}};
  auto batch = std::make_shared<Batch>();
  batch->run = &run;
  batch->count = count;
  {
    std::lock_guard<std::mutex> lk(queue_m_);
    queue_.push_back(batch);
  }
  queue_cv_.notify_all();

  // Work on our own batch: this is what makes nested fan-out deadlock-free
  // — the submitter finishes the batch alone if every worker is busy.
  help(*batch);

  {
    std::unique_lock<std::mutex> lk(batch->m);
    batch->cv.wait(lk, [&] { return batch->done.load(std::memory_order_acquire) == count; });
  }
  // Remove the drained batch if no worker got to it first.
  std::lock_guard<std::mutex> lk(queue_m_);
  std::erase(queue_, batch);
}

void Pool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lk(queue_m_);
      queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      batch = queue_.front();
      if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
        // Fully claimed; drop it and look for live work.
        queue_.pop_front();
        continue;
      }
    }
    help(*batch);
  }
}

}  // namespace rsd::exec
