// Persistent worker team for epoch-style fan-out (`rsd::exec::Team`).
//
// `Pool` is built for coarse batches: each `run_batch` allocates a batch
// object, takes a mutex, and wakes sleeping workers through a condition
// variable — microseconds of overhead that vanish across an experiment but
// dominate when the caller synchronizes thousands of times per second.
// The partitioned discrete-event engine (sim/conservative.hpp) does
// exactly that: one barrier per conservative epoch, often with only a few
// microseconds of simulated work between barriers.
//
// `Team` keeps a fixed set of worker threads parked on a C++20 atomic
// wait (a futex on Linux) and reuses them for every `run()` call:
//
//   * `run(n, fn)` publishes the job, bumps the epoch counter, and
//     participates in the claim loop itself (like Pool, the caller is a
//     full worker, so `Team{1}` owns no threads and degrades to a serial
//     loop);
//   * items are claimed with a single fetch_add — no per-epoch allocation,
//     no mutex, no condition variable;
//   * `run()` returns only after every worker has retired from the epoch,
//     so the job, and anything it wrote, is safely reusable the moment
//     `run()` returns (release/acquire through the retirement counter);
//   * the caller's writes before `run()` are visible to workers through
//     the epoch counter (release/acquire), making back-to-back epochs a
//     valid synchronization chain for data handed between partitions.
//
// `fn` must not throw: Team has no exception channel (the engine captures
// failures inside simulated tasks instead). Determinism note: Team decides
// only WHICH thread runs an item, never the item set or any ordering a
// caller could observe — callers must keep items independent within one
// epoch, which the conservative engine guarantees by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace rsd::exec {

/// Worker count for one partitioned simulation: the `RSD_SIM_THREADS`
/// environment variable when set to a positive integer, else 1 (a
/// sequential engine). Deliberately NOT hardware concurrency: parallel
/// intra-simulation execution is opt-in, while `RSD_THREADS` (cross-run
/// fan-out, see pool.hpp) defaults wide. An explicit `--sim-threads` /
/// `ParallelEngine::Options::threads` takes precedence over the env var.
[[nodiscard]] int default_sim_thread_count();

class Team {
 public:
  /// Total execution width including the calling thread; `threads - 1`
  /// workers are spawned and parked immediately.
  explicit Team(int threads = default_sim_thread_count());
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] int size() const { return size_; }

  /// Run `fn(i)` for i in [0, n) across the team; returns when every item
  /// has executed and every worker has retired from the epoch. `fn` must
  /// not throw and items must be mutually independent.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Seeded wakeup jitter for determinism stress tests: every participant
  /// inserts a small pseudo-random busy-wait before each claim, scrambling
  /// the item -> thread assignment between runs. 0 disables (default).
  void set_claim_jitter(std::uint64_t seed) {
    jitter_seed_.store(seed, std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::uint32_t worker_index);

  /// Claim-and-execute until the epoch's items are exhausted.
  void claim(const std::function<void(std::size_t)>& fn, std::uint64_t jitter_stream);

  int size_ = 1;
  std::vector<std::thread> workers_;

  // Epoch protocol. `epoch_` is the publish/subscribe point: the caller
  // writes job_/items_/next_ then release-increments it; workers acquire
  // it before touching anything else. `retired_` is the reverse edge.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t items_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<int> retired_{0};
  std::atomic<std::uint64_t> jitter_seed_{0};
};

}  // namespace rsd::exec
