// Parallel experiment execution (`rsd::exec`).
//
// Every experiment in this repo is an independent, single-threaded,
// bit-deterministic discrete-event simulation: a fresh `sim::Scheduler` and
// `gpu::Device` per run, no shared mutable state. That makes *cross-run*
// parallelism free of determinism hazards — the only requirement is that
// results are assembled in input order, never completion order.
//
// `Pool` is a shared-queue, caller-participating thread pool:
//
//   * `parallel_map(items, fn)` returns results indexed by input position,
//     so every downstream CSV byte is identical regardless of which worker
//     finished first;
//   * exceptions are captured per item and the one with the LOWEST input
//     index is rethrown after the batch drains (all items still run);
//   * a pool of size 1 degrades to a plain serial loop on the caller's
//     thread — no worker threads, no synchronization;
//   * the submitting thread always works on its own batch, so nested
//     `parallel_map` calls from inside a worker cannot deadlock even when
//     every worker is busy.
//
// Pool size defaults to `RSD_THREADS` (env) or hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace rsd::exec {

/// Worker count used by `Pool::global()`: the `RSD_THREADS` environment
/// variable when set to a positive integer, else hardware concurrency,
/// always at least 1.
[[nodiscard]] inline int default_thread_count() {
  if (const char* env = std::getenv("RSD_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

class Pool {
 public:
  explicit Pool(int threads = default_thread_count());
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Total execution width (worker threads + the submitting caller).
  [[nodiscard]] int size() const { return size_; }

  /// Process-wide pool, sized once from `RSD_THREADS` / hardware
  /// concurrency on first use.
  [[nodiscard]] static Pool& global();

  /// Apply `fn` to every item; the result vector is indexed by input
  /// position. With pool size 1 (or <= 1 item) this is a serial loop.
  template <typename T, typename Fn>
  auto parallel_map(const std::vector<T>& items, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, const T&>>;
    const std::size_t n = items.size();
    std::vector<std::optional<R>> slots(n);
    if (size_ == 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(items[i]));
    } else {
      std::vector<std::exception_ptr> errors(n);
      run_batch(n, [&](std::size_t i) {
        try {
          slots[i].emplace(fn(items[i]));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
      for (const auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Run `fn(i)` for i in [0, n). Same ordering/exception contract as
  /// `parallel_map`, without materializing results.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (size_ == 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::vector<std::exception_ptr> errors(n);
    run_batch(n, [&](std::size_t i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

 private:
  /// One fan-out: a claim counter over [0, count) shared by the caller and
  /// any workers that pick the batch up from the queue.
  struct Batch {
    const std::function<void(std::size_t)>* run = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex m;
    std::condition_variable cv;
  };

  /// Publish a batch, help execute it, and block until every claimed item
  /// has finished. `run` must stay valid for the duration of the call
  /// (guaranteed: we return only after done == count).
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& run);

  /// Claim and execute items until the batch's counter is exhausted.
  static void help(Batch& batch);

  void worker_loop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex queue_m_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
};

}  // namespace rsd::exec
