#include "proxy/proxy.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/error.hpp"
#include "exec/pool.hpp"
#include "gpusim/context.hpp"
#include "interconnect/slack.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "wl/replay.hpp"

namespace rsd::proxy {

namespace {

using gpu::Context;
using gpu::DeviceBuffer;

/// The paper's synchronous main compute loop as an op-stream program: one
/// gated lane per host thread, each allocating its A/B/C matrices up front
/// and looping {H2D A, H2D B, sync kernel, D2H C, synchronize}. All lanes
/// share process 0 (OpenMP threads of one application, one CUDA context).
wl::Program build_proxy_program(std::int64_t n, int threads, std::int64_t iterations,
                                SimDuration kernel_time) {
  const Bytes matrix_bytes = static_cast<Bytes>(n) * static_cast<Bytes>(n) * sizeof(float);
  const NameRef name_a{"memcpy_A"};
  const NameRef name_b{"memcpy_B"};
  const NameRef name_c{"memcpy_C"};
  const NameRef kernel_name{"sgemm_" + std::to_string(n)};

  wl::Program program;
  // All threads begin the timed loop together (the paper found launch
  // offsets between threads showed no correlation with the penalty).
  program.gate = true;
  program.lanes.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    wl::Lane& lane = program.lanes.emplace_back();
    lane.context_id = t;
    const std::int32_t a = lane.add_buffer(matrix_bytes);
    const std::int32_t b = lane.add_buffer(matrix_bytes);
    const std::int32_t c = lane.add_buffer(matrix_bytes);
    lane.loop(iterations);
    lane.h2d(a, name_a);
    lane.h2d(b, name_b);
    lane.kernel_sync(kernel_name, kernel_time);
    lane.d2h(c, name_c);
    lane.sync();
    lane.end_loop();
  }
  return program;
}

/// Allocation gate: checks up-front whether T threads' matrices fit, so a
/// non-fitting configuration is reported rather than half-simulated.
/// The async pipeline double-buffers, doubling the footprint.
bool config_fits(const gpu::DeviceParams& params, std::int64_t n, int threads,
                 bool async_pipeline) {
  const Bytes matrix_bytes = static_cast<Bytes>(n) * static_cast<Bytes>(n) * sizeof(float);
  const Bytes per_thread = 3 * matrix_bytes * (async_pipeline ? 2 : 1);
  return per_thread * static_cast<Bytes>(threads) <= params.memory_capacity;
}

/// The optimistic variant: a copy stream and a compute stream per thread,
/// double-buffered, synchronised with events — the GPU is kept fed while
/// the host sleeps its injected slack. Event-carrying cross-stream
/// dependencies are beyond the lane-ordered IR, so this stays a bespoke
/// coroutine.
sim::Task<> async_proxy_thread(gpu::Device& device, interconnect::SlackInjector& slack, int id,
                               std::int64_t n, std::int64_t iterations, SimDuration kernel_time,
                               gpu::CommandPath path, gpu::SlackPosition slack_position,
                               sim::WaitGroup& wg, sim::WaitGroup& ready,
                               sim::Event& start_gate) {
  Context copy_ctx{device, 2 * id, &slack, /*process_id=*/0, path, slack_position};
  Context compute_ctx{device, 2 * id + 1, &slack, /*process_id=*/0, path, slack_position};
  const Bytes matrix_bytes = static_cast<Bytes>(n) * static_cast<Bytes>(n) * sizeof(float);

  DeviceBuffer a[2];
  DeviceBuffer b[2];
  DeviceBuffer c[2];
  for (int s = 0; s < 2; ++s) {
    a[s] = co_await copy_ctx.dmalloc(matrix_bytes);
    b[s] = co_await copy_ctx.dmalloc(matrix_bytes);
    c[s] = co_await copy_ctx.dmalloc(matrix_bytes);
  }

  ready.done();
  co_await start_gate.wait();

  const NameRef name_a{"memcpy_A"};
  const NameRef name_b{"memcpy_B"};
  const NameRef name_c{"memcpy_C"};
  const NameRef kernel_name{"sgemm_" + std::to_string(n)};
  std::shared_ptr<sim::Event> prev_result;
  for (std::int64_t i = 0; i < iterations; ++i) {
    const int s = static_cast<int>(i % 2);
    co_await copy_ctx.memcpy_h2d_async(a[s], name_a);
    const auto inputs_ready = co_await copy_ctx.memcpy_h2d_async(b[s], name_b);
    co_await compute_ctx.stream_wait(inputs_ready);
    co_await compute_ctx.launch(kernel_name, kernel_time);
    co_await copy_ctx.stream_wait(compute_ctx.record_event());
    const auto result_ready = co_await copy_ctx.memcpy_d2h_async(c[s], name_c);
    // Flow control: before reusing a buffer pair, the iteration that last
    // used it must have drained (pipeline depth 2).
    if (prev_result) co_await prev_result->wait();
    prev_result = result_ready;
  }
  if (prev_result) co_await prev_result->wait();

  for (int s = 0; s < 2; ++s) {
    co_await copy_ctx.dfree(a[s]);
    co_await copy_ctx.dfree(b[s]);
    co_await copy_ctx.dfree(c[s]);
  }
  wg.done();
}

/// The async pipeline simulated directly (the IR path handles the
/// synchronous loop).
void run_async_pipeline(const ProxyConfig& config, const gpu::DeviceParams& device_params,
                        const interconnect::LinkParams& link_params, ProxyResult& result) {
  sim::Scheduler sched;
  gpu::Device device{sched, device_params, interconnect::Link{link_params}};
  trace::TraceRecorder recorder;
  if (config.capture_trace) device.set_record_sink(&recorder);

  interconnect::SlackInjector slack{config.slack, config.host_noise_sigma, config.seed};
  sim::WaitGroup wg{sched};
  sim::WaitGroup ready{sched};
  sim::Event start_gate{sched};
  wg.add(config.threads);
  ready.add(config.threads);

  for (int t = 0; t < config.threads; ++t) {
    sched.spawn(async_proxy_thread(device, slack, t, config.matrix_n, result.iterations,
                                   result.kernel_duration, config.command_path,
                                   config.slack_position, wg, ready, start_gate));
  }

  SimTime loop_start{};
  SimTime loop_end{};
  sched.spawn([](sim::Scheduler& s, sim::WaitGroup& group, sim::WaitGroup& rdy,
                 sim::Event& gate, SimTime& t0, SimTime& t1) -> sim::Task<> {
    co_await rdy.wait();  // all threads allocated
    t0 = s.now();
    gate.trigger();
    co_await group.wait();
    t1 = s.now();
  }(sched, wg, ready, start_gate, loop_start, loop_end));

  sched.run();
  RSD_ASSERT(sched.unfinished_count() == 0);

  result.cuda_calls_per_thread = slack.calls_delayed() / config.threads;
  result.loop_runtime = loop_end - loop_start;
  result.no_slack_time = interconnect::equation1_per_submitter(
      result.loop_runtime, slack.calls_delayed(), config.threads, config.slack);
  if (config.capture_trace) result.trace = std::move(recorder.trace());
}

}  // namespace

std::int64_t calibrate_iterations(SimDuration kernel_time, SimDuration target,
                                  std::int64_t min_iters, std::int64_t max_iters) {
  RSD_ASSERT(kernel_time > SimDuration::zero());
  const auto raw = static_cast<std::int64_t>(target / kernel_time);
  return std::clamp(raw, min_iters, max_iters);
}

ProxyRunner::ProxyRunner(gpu::DeviceParams device_params, interconnect::LinkParams link_params)
    : device_params_(std::move(device_params)), link_params_(std::move(link_params)) {}

ProxyRunner::ProxyRunner() : ProxyRunner(gpu::DeviceParams{}, interconnect::LinkParams{}) {
  const interconnect::Link pcie = interconnect::make_pcie_gen4_x16();
  link_params_ = interconnect::LinkParams{.name = pcie.name(),
                                          .latency = pcie.latency(),
                                          .bandwidth_gib_s = pcie.bandwidth_gib_s()};
}

ProxyResult ProxyRunner::run(const ProxyConfig& config) const {
  RSD_ASSERT(config.matrix_n > 0);
  RSD_ASSERT(config.threads > 0);

  ProxyResult result;
  result.matrix_n = config.matrix_n;
  result.threads = config.threads;
  result.slack = config.slack;
  result.matrix_bytes =
      static_cast<Bytes>(config.matrix_n) * static_cast<Bytes>(config.matrix_n) * sizeof(float);

  if (!config_fits(device_params_, config.matrix_n, config.threads, config.async_pipeline)) {
    result.fits_memory = false;
    return result;
  }

  // Preliminary kernel timing (the proxy's calibration step) — a pure
  // function of the device params, no simulation needed.
  result.kernel_duration = gpu::matmul_kernel_duration(device_params_, config.matrix_n);
  result.iterations = calibrate_iterations(result.kernel_duration, config.target_compute,
                                           config.min_iterations, config.max_iterations);
  result.cuda_calls_per_thread = kCudaCallsPerIteration * result.iterations;

  if (config.async_pipeline) {
    run_async_pipeline(config, device_params_, link_params_, result);
    return result;
  }

  const wl::ReplayEngine engine{
      wl::NodeParams{.device_params = device_params_, .link = link_params_}};
  wl::ReplayOptions options;
  options.slack = config.slack;
  options.host_noise_sigma = config.host_noise_sigma;
  options.seed = config.seed;
  options.command_path = config.command_path;
  options.slack_position = config.slack_position;
  options.capture_trace = config.capture_trace;
  wl::ReplayResult run = engine.run(
      build_proxy_program(config.matrix_n, config.threads, result.iterations,
                          result.kernel_duration),
      options);

  // Measured per-thread call count (kept measured rather than derived so
  // any future program shape change keeps Equation 1 honest).
  result.cuda_calls_per_thread = run.calls_delayed / config.threads;
  result.loop_runtime = run.timed_runtime;
  result.no_slack_time = interconnect::equation1_per_submitter(
      run.timed_runtime, run.calls_delayed, config.threads, config.slack);
  if (config.capture_trace) result.trace = std::move(run.trace);
  return result;
}

std::vector<SweepPoint> run_slack_sweep(const ProxyRunner& runner, const SweepConfig& config) {
  return run_slack_sweep(runner, config, exec::Pool::global());
}

std::vector<SweepPoint> run_slack_sweep(const ProxyRunner& runner, const SweepConfig& config,
                                        exec::Pool& pool) {
  struct Cell {
    std::int64_t matrix_n = 0;
    int threads = 1;
  };
  std::vector<Cell> cells;
  cells.reserve(config.matrix_sizes.size() * config.thread_counts.size());
  for (const std::int64_t n : config.matrix_sizes) {
    for (const int threads : config.thread_counts) cells.push_back({n, threads});
  }

  const auto cell_config = [&](const Cell& c, SimDuration slack) {
    ProxyConfig cfg;
    cfg.matrix_n = c.matrix_n;
    cfg.threads = c.threads;
    cfg.slack = slack;
    cfg.target_compute = config.target_compute;
    return cfg;
  };

  // Level 1: zero-slack baselines for every (size, threads) cell. These
  // decide which cells fit device memory (e.g. 2^15 at >=4 threads is
  // excluded, as in the paper).
  const std::vector<ProxyResult> baselines = pool.parallel_map(cells, [&](const Cell& c) {
    return runner.run(cell_config(c, SimDuration::zero()));
  });

  // Level 2: every non-zero slack point of the surviving cells.
  struct SlackJob {
    std::size_t cell = 0;
    SimDuration slack;
  };
  std::vector<SlackJob> jobs;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!baselines[i].fits_memory) continue;
    for (const SimDuration slack : config.slacks) {
      if (slack != SimDuration::zero()) jobs.push_back({i, slack});
    }
  }
  const std::vector<ProxyResult> slacked = pool.parallel_map(jobs, [&](const SlackJob& j) {
    return runner.run(cell_config(cells[j.cell], j.slack));
  });

  // Assemble in the serial loop's order; `jobs` was generated in the same
  // nested order, so a single cursor pairs each point with its result.
  std::vector<SweepPoint> points;
  std::size_t job = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ProxyResult& baseline = baselines[i];
    if (!baseline.fits_memory) continue;
    for (const SimDuration slack : config.slacks) {
      SweepPoint point;
      point.matrix_n = cells[i].matrix_n;
      point.threads = cells[i].threads;
      point.slack = slack;
      point.result = slack == SimDuration::zero() ? baseline : slacked[job++];
      point.normalized_runtime = point.result.no_slack_time / baseline.no_slack_time;
      points.push_back(std::move(point));
    }
  }
  return points;
}

}  // namespace rsd::proxy
