// The slack proxy application (Section III-C).
//
// Reproduces the paper's proxy exactly, on the simulated device:
//
//   * workload: square float matmul A x B = C; the matrix size controls
//     both kernel runtime and transfer size;
//   * calibration: a preliminary kernel timing sizes the iteration count N
//     to ~30 s of raw GPU compute, clamped to [5, 1000];
//   * main compute loop (N times): copy A and B to the device, run the
//     kernel, copy C back, synchronize — 5 CUDA calls per iteration, each
//     followed by the injected slack;
//   * parallelism: T simulated host threads, each with its own Context and
//     its own copies of the matrices (which is why 2^15 with >=4 threads
//     exceeds the 40 GiB device and is excluded, as in the paper);
//   * analysis: Equation 1 strips the injected delay so only the secondary
//     GPU-starvation penalty remains.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/units.hpp"
#include "gpusim/context.hpp"
#include "gpusim/device.hpp"
#include "interconnect/link.hpp"
#include "trace/trace.hpp"

namespace rsd::exec {
class Pool;
}  // namespace rsd::exec

namespace rsd::proxy {

struct ProxyConfig {
  std::int64_t matrix_n = 1 << 9;  ///< Square matrix dimension.
  int threads = 1;                 ///< Parallel host threads (OpenMP in the paper).
  SimDuration slack = SimDuration::zero();  ///< Injected per CUDA call.
  /// Calibration targets (Section III-C).
  SimDuration target_compute = duration::seconds(30.0);
  std::int64_t min_iterations = 5;
  std::int64_t max_iterations = 1000;
  bool capture_trace = false;  ///< Record an NSys-style trace of the run.
  /// Native disaggregated command path (instead of / in addition to the
  /// sleep-emulated `slack`). Defaults to a local device.
  gpu::CommandPath command_path = gpu::CommandPath::local();
  /// Sleep after each call (the proxy's method) or before it (the paper's
  /// LD_PRELOAD alternative).
  gpu::SlackPosition slack_position = gpu::SlackPosition::kAfterCall;
  /// Run the asynchronous double-buffered pipeline instead of the paper's
  /// synchronous loop: copies on one stream, kernels on another, event
  /// dependencies between them. This is the optimistic counterpart the
  /// paper deliberately sets aside (Section III-B) — it shows how much
  /// slack tolerance pipelining buys. Needs 2x the device memory.
  bool async_pipeline = false;
  /// Sleep-overshoot noise: each injected slack sleeps per_call *
  /// exp(N(0, sigma)). 0 = the deterministic model. Repeat runs over
  /// different seeds to reproduce the paper's 5-run averaging protocol.
  double host_noise_sigma = 0.0;
  std::uint64_t seed = 0x5eed;
};

/// CUDA calls per main-loop iteration: 3 matrix memcpys + 1 kernel launch +
/// 1 synchronize (Section III-C).
inline constexpr std::int64_t kCudaCallsPerIteration = 5;

struct ProxyResult {
  std::int64_t matrix_n = 0;
  int threads = 1;
  SimDuration slack;
  Bytes matrix_bytes = 0;          ///< One matrix (n^2 floats).
  SimDuration kernel_duration;     ///< Single-kernel baseline timing.
  std::int64_t iterations = 0;     ///< N, per thread.
  SimDuration loop_runtime;        ///< Wall time of the main compute loop.
  SimDuration no_slack_time;       ///< Equation 1 applied to loop_runtime.
  std::int64_t cuda_calls_per_thread = 0;
  bool fits_memory = true;         ///< False when the config OOMs (excluded).
  std::optional<trace::Trace> trace;  ///< Present when capture_trace was set.
};

/// Iteration-count calibration: floor(target / kernel_time) clamped to
/// [min, max] (Section III-C).
[[nodiscard]] std::int64_t calibrate_iterations(SimDuration kernel_time, SimDuration target,
                                                std::int64_t min_iters, std::int64_t max_iters);

/// Runs proxy configurations, each on a fresh simulated device.
class ProxyRunner {
 public:
  ProxyRunner(gpu::DeviceParams device_params, interconnect::LinkParams link_params);

  /// Defaults: A100-class device behind PCIe gen4 x16.
  ProxyRunner();

  [[nodiscard]] const gpu::DeviceParams& device_params() const { return device_params_; }
  [[nodiscard]] const interconnect::LinkParams& link_params() const { return link_params_; }

  /// Execute one proxy run. Returns fits_memory=false (and no timing) when
  /// the matrices do not fit on the device.
  [[nodiscard]] ProxyResult run(const ProxyConfig& config) const;

 private:
  gpu::DeviceParams device_params_;
  interconnect::LinkParams link_params_;
};

/// One point of the Figure 3 sweep.
struct SweepPoint {
  std::int64_t matrix_n = 0;
  int threads = 1;
  SimDuration slack;
  /// no_slack_time / baseline no_slack_time; 1.0 = unaffected. The quantity
  /// plotted on Figure 3's y axis.
  double normalized_runtime = 0.0;
  ProxyResult result;
};

struct SweepConfig {
  std::vector<std::int64_t> matrix_sizes{1 << 9, 1 << 11, 1 << 13, 1 << 15};
  std::vector<int> thread_counts{1, 2, 4, 8};
  std::vector<SimDuration> slacks{
      SimDuration::zero(),          duration::microseconds(1.0),
      duration::microseconds(10.0), duration::microseconds(100.0),
      duration::milliseconds(1.0),  duration::milliseconds(10.0)};
  SimDuration target_compute = duration::seconds(30.0);
};

/// The full Figure 3 sweep: every (size, threads, slack) combination that
/// fits in device memory, normalized per (size, threads) against the
/// zero-slack baseline. Runs on `exec::Pool::global()`.
[[nodiscard]] std::vector<SweepPoint> run_slack_sweep(const ProxyRunner& runner,
                                                      const SweepConfig& config);

/// Same sweep fanned out on an explicit pool. Each cell's simulation stays
/// single-threaded; results are assembled in the serial loop's order, so
/// the output is bit-identical for any pool size. Two levels of fan-out:
/// the zero-slack baselines first (they decide which cells fit memory),
/// then every non-zero slack point of the surviving cells.
[[nodiscard]] std::vector<SweepPoint> run_slack_sweep(const ProxyRunner& runner,
                                                      const SweepConfig& config,
                                                      exec::Pool& pool);

}  // namespace rsd::proxy
