// Memoized Figure-3 response surfaces.
//
// Four harnesses (fig3, table4, model_validation, ablation_binning) need
// the same proxy slack sweep; before this cache each rebuilt the full
// surface from scratch (~hundreds of DES runs). `SweepCache` keys a sweep
// by a fingerprint of everything that determines its output — device
// calibration, link parameters, and the `SweepConfig` grid — memoizes it
// in-process, and persists it as CSV under `<results>/.cache/` so later
// *processes* load it in milliseconds too.
//
// The simulations are bit-deterministic, so a cache hit is exact: loaded
// points reproduce the original sweep byte-for-byte (doubles round-trip
// via hexfloat).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "proxy/proxy.hpp"

namespace rsd::proxy {

class SweepCache {
 public:
  /// Cache files live in `dir` (created on first store).
  explicit SweepCache(std::filesystem::path dir);

  /// Process-wide cache rooted at `<results_dir()>/.cache`.
  [[nodiscard]] static SweepCache& global();

  /// Everything that determines a sweep's output: device calibration,
  /// link parameters, and the sweep grid.
  [[nodiscard]] static std::uint64_t fingerprint(const ProxyRunner& runner,
                                                 const SweepConfig& config);

  /// Return the memoized sweep, loading from disk or running it (fanned
  /// out on `exec::Pool::global()`) on a miss.
  [[nodiscard]] std::vector<SweepPoint> get_or_run(const ProxyRunner& runner,
                                                   const SweepConfig& config);

  /// Same, on an explicit pool.
  [[nodiscard]] std::vector<SweepPoint> get_or_run(const ProxyRunner& runner,
                                                   const SweepConfig& config, exec::Pool& pool);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// Drop in-process memoization (disk entries stay). Mostly for tests.
  void clear_memory();

  /// Observability for the harness: how the `get_or_run` calls so far
  /// were served. `sweeps_computed()` staying at 1 across a whole
  /// rsd_bench invocation is the "surface built once" guarantee. These are
  /// thin wrappers over per-instance `obs::Counter`s; every increment is
  /// also mirrored into the global metrics registry (`sweep_cache.*`).
  [[nodiscard]] std::size_t memory_hits() const {
    return static_cast<std::size_t>(memory_hits_.value());
  }
  [[nodiscard]] std::size_t disk_loads() const {
    return static_cast<std::size_t>(disk_loads_.value());
  }
  [[nodiscard]] std::size_t sweeps_computed() const {
    return static_cast<std::size_t>(sweeps_computed_.value());
  }

 private:
  std::filesystem::path dir_;
  mutable std::mutex m_;
  std::map<std::uint64_t, std::vector<SweepPoint>> memory_;
  obs::Counter memory_hits_;
  obs::Counter disk_loads_;
  obs::Counter sweeps_computed_;
};

}  // namespace rsd::proxy
