#include "proxy/sweep_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>

#include "core/paths.hpp"
#include "exec/pool.hpp"
#include "obs/tracer.hpp"

namespace rsd::proxy {

namespace {

/// Count a cache outcome: per-instance counter, global registry mirror, and
/// a timeline instant when tracing is on.
void record_outcome(obs::Counter& local, const char* metric, const char* event) {
  local.add(1);
  obs::Registry::global().counter(metric).add(1);
  if (obs::Tracer::enabled()) obs::Tracer::instance().instant("proxy", event);
}

namespace fs = std::filesystem;

/// FNV-1a, folded over a canonical text serialization. Stable across
/// platforms (everything hashed is integers or shortest-round-trip text).
class Fingerprint {
 public:
  void add(const std::string& s) {
    for (const unsigned char c : s) {
      h_ ^= c;
      h_ *= 0x100000001b3ULL;
    }
    add_byte(0x1f);  // field separator
  }
  void add(std::int64_t v) { add(std::to_string(v)); }
  void add(std::uint64_t v) { add(std::to_string(v)); }
  void add(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%a", v);
    add(std::string{buf});
  }
  void add(SimDuration d) { add(d.ns()); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  void add_byte(unsigned char c) {
    h_ ^= c;
    h_ *= 0x100000001b3ULL;
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Exact double round-trip: hexfloat out, strtod back in.
std::string hex_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  return std::string{buf};
}

constexpr const char* kHeader =
    "matrix_n,threads,slack_ns,normalized_hex,matrix_bytes,kernel_ns,iterations,loop_ns,"
    "no_slack_ns,calls_per_thread";

}  // namespace

SweepCache::SweepCache(fs::path dir) : dir_(std::move(dir)) {}

SweepCache& SweepCache::global() {
  static SweepCache cache{results_dir() / ".cache"};
  return cache;
}

std::uint64_t SweepCache::fingerprint(const ProxyRunner& runner, const SweepConfig& config) {
  Fingerprint fp;
  fp.add(std::string{"sweep-v1"});

  const gpu::DeviceParams& dev = runner.device_params();
  fp.add(dev.name);
  fp.add(dev.matmul_tflops);
  fp.add(dev.kernel_base);
  fp.add(dev.kernel_setup);
  fp.add(dev.copy_setup);
  fp.add(dev.wake_t0);
  fp.add(dev.wake_alpha);
  fp.add(dev.wake_max);
  fp.add(dev.process_switch);
  fp.add(dev.memory_capacity);

  const interconnect::LinkParams& link = runner.link_params();
  fp.add(link.name);
  fp.add(link.latency);
  fp.add(link.bandwidth_gib_s);

  fp.add(static_cast<std::int64_t>(config.matrix_sizes.size()));
  for (const std::int64_t n : config.matrix_sizes) fp.add(n);
  fp.add(static_cast<std::int64_t>(config.thread_counts.size()));
  for (const int t : config.thread_counts) fp.add(static_cast<std::int64_t>(t));
  fp.add(static_cast<std::int64_t>(config.slacks.size()));
  for (const SimDuration s : config.slacks) fp.add(s);
  fp.add(config.target_compute);
  return fp.value();
}

std::vector<SweepPoint> SweepCache::get_or_run(const ProxyRunner& runner,
                                               const SweepConfig& config) {
  return get_or_run(runner, config, exec::Pool::global());
}

std::vector<SweepPoint> SweepCache::get_or_run(const ProxyRunner& runner,
                                               const SweepConfig& config, exec::Pool& pool) {
  const std::uint64_t fp = fingerprint(runner, config);
  char name[32];
  std::snprintf(name, sizeof name, "%016" PRIx64 ".csv", fp);
  const fs::path file = dir_ / name;

  {
    std::lock_guard<std::mutex> lk(m_);
    if (const auto it = memory_.find(fp); it != memory_.end()) {
      record_outcome(memory_hits_, "sweep_cache.memory_hits", "sweep_cache.memory_hit");
      return it->second;
    }
  }

  // Disk hit: rebuild the points. The sweep only ever stores points whose
  // configuration fits memory and never carries a trace, so the scalar
  // fields below are the complete state.
  if (std::ifstream in{file}; in) {
    std::vector<SweepPoint> points;
    std::string line;
    bool ok = std::getline(in, line) && line == kHeader;
    while (ok && std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream cells{line};
      std::string cell;
      std::vector<std::string> row;
      while (std::getline(cells, cell, ',')) row.push_back(cell);
      if (row.size() != 10) {
        ok = false;
        break;
      }
      SweepPoint p;
      p.matrix_n = std::stoll(row[0]);
      p.threads = std::stoi(row[1]);
      p.slack = SimDuration{std::stoll(row[2])};
      p.normalized_runtime = std::strtod(row[3].c_str(), nullptr);
      p.result.matrix_n = p.matrix_n;
      p.result.threads = p.threads;
      p.result.slack = p.slack;
      p.result.matrix_bytes = std::stoull(row[4]);
      p.result.kernel_duration = SimDuration{std::stoll(row[5])};
      p.result.iterations = std::stoll(row[6]);
      p.result.loop_runtime = SimDuration{std::stoll(row[7])};
      p.result.no_slack_time = SimDuration{std::stoll(row[8])};
      p.result.cuda_calls_per_thread = std::stoll(row[9]);
      p.result.fits_memory = true;
      points.push_back(std::move(p));
    }
    if (ok) {
      std::lock_guard<std::mutex> lk(m_);
      record_outcome(disk_loads_, "sweep_cache.disk_loads", "sweep_cache.disk_load");
      return memory_.try_emplace(fp, std::move(points)).first->second;
    }
    // Unreadable/stale entry: fall through and rebuild it.
  }

  std::vector<SweepPoint> points = run_slack_sweep(runner, config, pool);

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!ec) {
    // Write-then-rename so a crashed bench never leaves a torn cache file.
    const fs::path tmp = file.string() + ".tmp";
    std::ofstream out{tmp, std::ios::trunc};
    if (out) {
      out << kHeader << '\n';
      for (const auto& p : points) {
        out << p.matrix_n << ',' << p.threads << ',' << p.slack.ns() << ','
            << hex_double(p.normalized_runtime) << ',' << p.result.matrix_bytes << ','
            << p.result.kernel_duration.ns() << ',' << p.result.iterations << ','
            << p.result.loop_runtime.ns() << ',' << p.result.no_slack_time.ns() << ','
            << p.result.cuda_calls_per_thread << '\n';
      }
      out.close();
      if (out) fs::rename(tmp, file, ec);
      if (ec) fs::remove(tmp, ec);
    }
  }

  std::lock_guard<std::mutex> lk(m_);
  record_outcome(sweeps_computed_, "sweep_cache.sweeps_computed", "sweep_cache.sweep_computed");
  return memory_.try_emplace(fp, std::move(points)).first->second;
}

void SweepCache::clear_memory() {
  std::lock_guard<std::mutex> lk(m_);
  memory_.clear();
}

}  // namespace rsd::proxy
