#include "obs/quiesce.hpp"

namespace rsd::obs {

QuiesceRegistry& QuiesceRegistry::global() {
  static QuiesceRegistry registry;
  return registry;
}

QuiesceRegistry::Handle QuiesceRegistry::add(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(m_);
  const Handle handle = next_++;
  hooks_.emplace(handle, std::move(hook));
  return handle;
}

void QuiesceRegistry::remove(Handle handle) {
  std::lock_guard<std::mutex> lk(m_);
  hooks_.erase(handle);
}

void QuiesceRegistry::flush_all() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& [handle, hook] : hooks_) hook();
}

std::size_t QuiesceRegistry::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return hooks_.size();
}

void flush_quiesce() { QuiesceRegistry::global().flush_all(); }

}  // namespace rsd::obs
