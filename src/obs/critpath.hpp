// Critical-path penalty attribution (`obs::critpath`): decompose a
// replayed program's makespan into the paper's Eq 1–3 vocabulary, but
// *observed* rather than predicted.
//
// Input is the causal record the simulator already emits — OpRecords with
// submit/start/end plus the explicit penalty edges (exposed launch, power
// wake, process switch, OCS reconfiguration) and the chassis fabric
// transfer log. Every op contributes up to four timestamped intervals:
//
//   kernel   [start, end)                      -> compute
//   memcpy   [start, end)                      -> fabric serialisation
//            [start, start + reconfig)         -> OCS reconfiguration
//   any op   [start - pre, start)              -> slack wake penalty,
//            where pre = exposed + wake + switch is the starvation
//            overhead the op paid before its service began
//   any op   [submit, start - pre)             -> engine-queue wait
//
// Cross-chassis transfers contribute a fifth interval: the chassis
// transfer log records the NIC->NIC row-fabric leg each one executed over
// the event-driven network — serialisation on NIC/fibre links plus
// queueing there — which no engine occupation covers. That window books to
// the NIC/fibre component (any OCS retarget inside it to reconfiguration).
//
// A priority-ordered interval sweep (compute > reconfig > nic > fabric >
// queue > wake > idle) then assigns every simulated nanosecond of
// [0, makespan) to exactly one component: time where a kernel was running
// is compute no matter what else overlapped (an overlapped penalty costs
// nothing — the critical-path reading), a fabric occupation whose first
// stretch was a circuit retarget books that stretch as reconfiguration,
// queueing and wake are charged only where they were actually exposed, and
// whatever remains is engine idle. By construction the seven components
// sum *exactly* to the makespan — the invariant `obs_attribution_test`
// asserts, together with the slack-wake share landing inside the Eq 2–3
// PenaltyBounds.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/units.hpp"
#include "gpusim/chassis.hpp"
#include "trace/trace.hpp"

namespace rsd::obs {

/// Where a simulated nanosecond of makespan went. Declaration order is
/// sweep priority, highest first.
enum class PathComponent : std::uint8_t {
  kCompute = 0,   ///< A kernel was executing.
  kReconfig = 1,  ///< An OCS circuit retarget gated a fabric transfer.
  kNic = 2,       ///< NIC/fibre serialisation: the row-network leg of a
                  ///< cross-chassis transfer (no engine occupation).
  kFabric = 3,    ///< Fabric/link serialisation (memcpy occupation).
  kQueue = 4,     ///< Ops waited for a busy engine (FIFO queue delay).
  kWake = 5,      ///< Exposed starvation overhead: launch setup + power
                  ///< wake + process switch paid before service.
  kIdle = 6,      ///< Nothing in flight anywhere.
};

inline constexpr int kPathComponents = 7;

[[nodiscard]] const char* to_string(PathComponent c);

/// The attributed makespan decomposition. Components are disjoint interval
/// cover sums over [0, makespan), so `total_ns() == makespan_ns` always —
/// checked by an assertion in `attribute_trace` and by the tests.
struct Attribution {
  std::int64_t makespan_ns = 0;
  std::int64_t compute_ns = 0;
  std::int64_t reconfig_ns = 0;
  std::int64_t nic_ns = 0;
  std::int64_t fabric_ns = 0;
  std::int64_t queue_ns = 0;
  std::int64_t wake_ns = 0;
  std::int64_t idle_ns = 0;

  [[nodiscard]] std::int64_t total_ns() const {
    return compute_ns + reconfig_ns + nic_ns + fabric_ns + queue_ns + wake_ns + idle_ns;
  }
  [[nodiscard]] std::int64_t component_ns(PathComponent c) const;
  /// Component share of the makespan in [0, 1]; 0 on an empty makespan.
  [[nodiscard]] double share(PathComponent c) const;
};

/// Attribute every nanosecond of `makespan` for a replayed trace.
/// `transfers` is the chassis fabric-transfer log (may be empty for
/// single-device replays). Chassis-local transfers in it carry no
/// intervals of their own — their reconfiguration edge rides on
/// OpRecord::reconfig_penalty — but cross-chassis records contribute
/// their NIC->NIC row-network window to the NIC/fibre component.
/// Intervals outside [0, makespan) are clipped.
[[nodiscard]] Attribution attribute_trace(const trace::Trace& trace,
                                          std::span<const gpu::FabricTransferRecord> transfers,
                                          SimDuration makespan);

/// Observed slack-penalty share: the growth of the exposed wake component
/// between a slacked replay and its zero-slack baseline, normalised by the
/// baseline makespan — the observable counterpart of the Eq 1 measured
/// penalty, clamped at 0 (a starvation penalty cannot be negative).
[[nodiscard]] double slack_wake_share(const Attribution& baseline,
                                      const Attribution& slacked);

/// One-line human-readable breakdown ("compute 61.2% | fabric 20.4% | ...").
[[nodiscard]] std::string describe(const Attribution& a);

}  // namespace rsd::obs
