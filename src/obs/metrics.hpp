// rsd::obs metrics — a typed metrics registry (counters, gauges,
// histograms) snapshotted per experiment into the run manifest.
//
// Hot paths avoid per-event atomics: subsystems accumulate plain local
// tallies (`HistogramData`, engine counters) and flush them into the
// global registry at natural quiesce points (device destruction, batch
// completion, run end). The registry itself is lock-free on the metric
// objects (atomics) and mutex-protected only for name lookup, so flushes
// from pool workers are TSan-clean.
//
// Snapshots are value types; `metrics_delta(before, after)` attributes an
// interval's activity to one experiment (counters and histogram
// count/sum subtract; gauges report their latest value).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rsd::obs {

inline constexpr int kHistogramBuckets = 32;

/// Monotonic event/total counter.
class Counter {
 public:
  void add(std::int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Plain (non-atomic) histogram tally: the accumulate-locally,
/// merge-at-quiesce half of the design. Bucket i holds values whose
/// bit-width is i (i.e. [2^(i-1), 2^i)); bucket 0 holds v <= 0.
struct HistogramData {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::array<std::int64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] static int bucket_index(std::int64_t v);
  void observe(std::int64_t v);
  [[nodiscard]] double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

/// Shared histogram: atomic observation plus bulk merge of a local tally.
class Histogram {
 public:
  void observe(std::int64_t v);
  void merge(const HistogramData& d);
  [[nodiscard]] HistogramData data() const;

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
  std::array<std::atomic<std::int64_t>, kHistogramBuckets> buckets_{};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t count = 0;  ///< Counter value / histogram count.
  double value = 0.0;      ///< Gauge value / histogram mean.
  std::int64_t sum = 0;    ///< Histogram only.
  std::int64_t min = 0;    ///< Histogram only (0 when empty).
  std::int64_t max = 0;    ///< Histogram only (0 when empty).
  /// Histogram only: the power-of-two bucket counts (same layout as
  /// HistogramData::buckets), carried so quantiles survive the snapshot.
  std::array<std::int64_t, kHistogramBuckets> buckets{};
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< Sorted by name.

  [[nodiscard]] const MetricSample* find(std::string_view name) const;
};

/// Activity between two snapshots of the same registry. Counters and
/// histogram count/sum subtract; gauges and histogram min/max report the
/// `after` side. Metrics born between the snapshots keep their full value.
[[nodiscard]] MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                                            const MetricsSnapshot& after);

/// Interpolated quantile (q in [0, 1]) of a histogram sample, estimated
/// from its power-of-two buckets. Uses the same (n-1)*q rank convention
/// as `stats::quantile_sorted`, locating the rank's bucket by cumulative
/// walk and interpolating linearly inside it; the result is clamped to
/// the sample's observed [min, max], so quantile estimates are monotone
/// in q and never leave the data's range. Returns 0 for empty or
/// non-histogram samples.
[[nodiscard]] double histogram_quantile(const MetricSample& sample, double q);

/// One-line JSON object: counters/gauges as numbers, histograms as
/// {"count","sum","mean","min","max","p50","p90","p99"}. Zero-count
/// samples are skipped so an experiment's manifest entry only names
/// subsystems it exercised.
[[nodiscard]] std::string metrics_json(const MetricsSnapshot& snapshot);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry (what the manifest snapshots).
  [[nodiscard]] static Registry& global();

  /// Find-or-create by name. Returned references live as long as the
  /// registry; hot callers may cache them.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rsd::obs
