#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/tracer.hpp"  // json_escape

namespace rsd::obs {

namespace {

void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return std::string{buf};
}

}  // namespace

int HistogramData::bucket_index(std::int64_t v) {
  if (v <= 0) return 0;
  const int width = std::bit_width(static_cast<std::uint64_t>(v));
  return std::min(width, kHistogramBuckets - 1);
}

void HistogramData::observe(std::int64_t v) {
  ++count;
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++buckets[static_cast<std::size_t>(bucket_index(v))];
}

void Histogram::observe(std::int64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[static_cast<std::size_t>(HistogramData::bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
}

void Histogram::merge(const HistogramData& d) {
  if (d.count == 0) return;
  count_.fetch_add(d.count, std::memory_order_relaxed);
  sum_.fetch_add(d.sum, std::memory_order_relaxed);
  atomic_min(min_, d.min);
  atomic_max(max_, d.max);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (d.buckets[static_cast<std::size_t>(i)] != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(d.buckets[static_cast<std::size_t>(i)],
                                                      std::memory_order_relaxed);
    }
  }
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = min_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return d;
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const MetricSample& s, std::string_view n) { return s.name < n; });
  return (it != samples.end() && it->name == name) ? &*it : nullptr;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.samples.reserve(after.samples.size());
  for (const MetricSample& a : after.samples) {
    MetricSample d = a;
    if (const MetricSample* b = before.find(a.name); b != nullptr && b->kind == a.kind) {
      switch (a.kind) {
        case MetricKind::kCounter:
          d.count = a.count - b->count;
          break;
        case MetricKind::kGauge:
          break;  // latest value stands
        case MetricKind::kHistogram:
          d.count = a.count - b->count;
          d.sum = a.sum - b->sum;
          d.value = d.count > 0 ? static_cast<double>(d.sum) / static_cast<double>(d.count)
                                : 0.0;
          // Buckets subtract like count/sum: the before-side tally is a
          // prefix of the after side, so every delta is non-negative and
          // quantiles of the delta describe just this interval.
          for (int i = 0; i < kHistogramBuckets; ++i) {
            d.buckets[static_cast<std::size_t>(i)] =
                a.buckets[static_cast<std::size_t>(i)] -
                b->buckets[static_cast<std::size_t>(i)];
          }
          break;
      }
    }
    out.samples.push_back(std::move(d));
  }
  return out;
}

double histogram_quantile(const MetricSample& sample, double q) {
  if (sample.kind != MetricKind::kHistogram || sample.count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The (n-1)*q rank convention of stats::quantile_sorted, applied to the
  // bucketed tally: find the bucket holding the (possibly fractional)
  // rank, then interpolate linearly across the bucket's value range.
  const double rank = static_cast<double>(sample.count - 1) * q;
  std::int64_t cum_before = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const std::int64_t n = sample.buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (rank < static_cast<double>(cum_before + n) ||
        cum_before + n == sample.count) {
      // Bucket i spans [2^(i-1), 2^i); bucket 0 holds v <= 0 and the top
      // bucket is open-ended — both get pinned to the observed extremes,
      // as do the partially-covered edge buckets.
      double lo = i == 0 ? static_cast<double>(std::min<std::int64_t>(sample.min, 0))
                         : static_cast<double>(std::int64_t{1} << (i - 1));
      double hi = i == 0 ? 0.0
                 : i == kHistogramBuckets - 1
                     ? static_cast<double>(sample.max)
                     : static_cast<double>(std::int64_t{1} << i);
      lo = std::max(lo, static_cast<double>(sample.min));
      hi = std::min(hi, static_cast<double>(sample.max) + 1.0);
      hi = std::max(hi, lo);
      const double within =
          (rank - static_cast<double>(cum_before) + 0.5) / static_cast<double>(n);
      const double v = lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
      return std::clamp(v, static_cast<double>(sample.min),
                        static_cast<double>(sample.max));
    }
    cum_before += n;
  }
  return static_cast<double>(sample.max);
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const MetricSample& s : snapshot.samples) {
    if (s.kind != MetricKind::kGauge && s.count == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(s.name) << "\": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        out << s.count;
        break;
      case MetricKind::kGauge:
        out << json_number(s.value);
        break;
      case MetricKind::kHistogram:
        out << "{\"count\": " << s.count << ", \"sum\": " << s.sum
            << ", \"mean\": " << json_number(s.value) << ", \"min\": " << s.min
            << ", \"max\": " << s.max
            << ", \"p50\": " << json_number(histogram_quantile(s, 0.50))
            << ", \"p90\": " << json_number(histogram_quantile(s, 0.90))
            << ", \"p99\": " << json_number(histogram_quantile(s, 0.99)) << '}';
        break;
    }
  }
  out << '}';
  return out.str();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.count = c->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramData d = h->data();
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = d.count;
    s.sum = d.sum;
    s.value = d.mean();
    s.min = d.count > 0 ? d.min : 0;
    s.max = d.count > 0 ? d.max : 0;
    s.buckets = d.buckets;
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return snap;
}

}  // namespace rsd::obs
