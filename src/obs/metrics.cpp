#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/tracer.hpp"  // json_escape

namespace rsd::obs {

namespace {

void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return std::string{buf};
}

}  // namespace

int HistogramData::bucket_index(std::int64_t v) {
  if (v <= 0) return 0;
  const int width = std::bit_width(static_cast<std::uint64_t>(v));
  return std::min(width, kHistogramBuckets - 1);
}

void HistogramData::observe(std::int64_t v) {
  ++count;
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++buckets[static_cast<std::size_t>(bucket_index(v))];
}

void Histogram::observe(std::int64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[static_cast<std::size_t>(HistogramData::bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
}

void Histogram::merge(const HistogramData& d) {
  if (d.count == 0) return;
  count_.fetch_add(d.count, std::memory_order_relaxed);
  sum_.fetch_add(d.sum, std::memory_order_relaxed);
  atomic_min(min_, d.min);
  atomic_max(max_, d.max);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (d.buckets[static_cast<std::size_t>(i)] != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(d.buckets[static_cast<std::size_t>(i)],
                                                      std::memory_order_relaxed);
    }
  }
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = min_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return d;
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const MetricSample& s, std::string_view n) { return s.name < n; });
  return (it != samples.end() && it->name == name) ? &*it : nullptr;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.samples.reserve(after.samples.size());
  for (const MetricSample& a : after.samples) {
    MetricSample d = a;
    if (const MetricSample* b = before.find(a.name); b != nullptr && b->kind == a.kind) {
      switch (a.kind) {
        case MetricKind::kCounter:
          d.count = a.count - b->count;
          break;
        case MetricKind::kGauge:
          break;  // latest value stands
        case MetricKind::kHistogram:
          d.count = a.count - b->count;
          d.sum = a.sum - b->sum;
          d.value = d.count > 0 ? static_cast<double>(d.sum) / static_cast<double>(d.count)
                                : 0.0;
          break;
      }
    }
    out.samples.push_back(std::move(d));
  }
  return out;
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const MetricSample& s : snapshot.samples) {
    if (s.kind != MetricKind::kGauge && s.count == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(s.name) << "\": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        out << s.count;
        break;
      case MetricKind::kGauge:
        out << json_number(s.value);
        break;
      case MetricKind::kHistogram:
        out << "{\"count\": " << s.count << ", \"sum\": " << s.sum
            << ", \"mean\": " << json_number(s.value) << ", \"min\": " << s.min
            << ", \"max\": " << s.max << '}';
        break;
    }
  }
  out << '}';
  return out.str();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.count = c->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramData d = h->data();
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = d.count;
    s.sum = d.sum;
    s.value = d.mean();
    s.min = d.count > 0 ? d.min : 0;
    s.max = d.count > 0 ? d.max : 0;
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return snap;
}

}  // namespace rsd::obs
