#include "obs/critpath.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "core/error.hpp"

namespace rsd::obs {

const char* to_string(PathComponent c) {
  switch (c) {
    case PathComponent::kCompute: return "compute";
    case PathComponent::kReconfig: return "reconfig";
    case PathComponent::kNic: return "nic";
    case PathComponent::kFabric: return "fabric";
    case PathComponent::kQueue: return "queue";
    case PathComponent::kWake: return "wake";
    case PathComponent::kIdle: return "idle";
  }
  return "?";
}

std::int64_t Attribution::component_ns(PathComponent c) const {
  switch (c) {
    case PathComponent::kCompute: return compute_ns;
    case PathComponent::kReconfig: return reconfig_ns;
    case PathComponent::kNic: return nic_ns;
    case PathComponent::kFabric: return fabric_ns;
    case PathComponent::kQueue: return queue_ns;
    case PathComponent::kWake: return wake_ns;
    case PathComponent::kIdle: return idle_ns;
  }
  return 0;
}

double Attribution::share(PathComponent c) const {
  return makespan_ns > 0
             ? static_cast<double>(component_ns(c)) / static_cast<double>(makespan_ns)
             : 0.0;
}

namespace {

/// +1 at an interval open, -1 at its close, tagged with the component.
struct Boundary {
  std::int64_t ts;
  std::int8_t delta;
  std::uint8_t component;

  [[nodiscard]] bool operator<(const Boundary& o) const { return ts < o.ts; }
};

void push_interval(std::vector<Boundary>& boundaries, std::int64_t begin, std::int64_t end,
                   PathComponent component, std::int64_t makespan_ns) {
  begin = std::max<std::int64_t>(begin, 0);
  end = std::min(end, makespan_ns);
  if (begin >= end) return;
  boundaries.push_back(Boundary{begin, +1, static_cast<std::uint8_t>(component)});
  boundaries.push_back(Boundary{end, -1, static_cast<std::uint8_t>(component)});
}

}  // namespace

Attribution attribute_trace(const trace::Trace& trace,
                            std::span<const gpu::FabricTransferRecord> transfers,
                            SimDuration makespan) {
  Attribution out;
  out.makespan_ns = makespan.ns();
  if (out.makespan_ns <= 0) return out;

  std::vector<Boundary> boundaries;
  boundaries.reserve(trace.ops().size() * 6 + 2);
  for (const gpu::OpRecord& op : trace.ops()) {
    const std::int64_t start = op.start.ns();
    const std::int64_t end = op.end.ns();
    if (op.kind == gpu::OpKind::kKernel) {
      push_interval(boundaries, start, end, PathComponent::kCompute, out.makespan_ns);
    } else {
      // A fabric occupation whose circuit had to retarget spends its first
      // stretch reconfiguring; reconfig outranks fabric in the sweep, so
      // that stretch books to reconfiguration even under overlap.
      const std::int64_t reconfig =
          std::min(op.reconfig_penalty.ns(), std::max<std::int64_t>(end - start, 0));
      push_interval(boundaries, start, start + reconfig, PathComponent::kReconfig,
                    out.makespan_ns);
      push_interval(boundaries, start, end, PathComponent::kFabric, out.makespan_ns);
    }
    // The starvation overhead the op paid before service: exposed launch
    // setup + power-state wake + process switch. The device model delays
    // [start - pre, start) after the engine freed, so the remaining
    // [submit, start - pre) is pure FIFO queue wait.
    const std::int64_t pre =
        op.exposed_overhead.ns() + op.wake_penalty.ns() + op.switch_penalty.ns();
    push_interval(boundaries, start - pre, start, PathComponent::kWake, out.makespan_ns);
    push_interval(boundaries, op.submit.ns(), start - pre, PathComponent::kQueue,
                  out.makespan_ns);
  }
  // Chassis-local transfers in the log carry no intervals of their own
  // (their reconfig edge rides on the memcpy OpRecords). Cross-chassis
  // transfers do: the NIC->NIC row-network leg is a path-level effect that
  // never becomes an engine occupation, so its window books to the
  // NIC/fibre component here — with any circuit retarget paid inside it
  // booked to reconfiguration, which outranks NIC in the sweep.
  for (const gpu::FabricTransferRecord& transfer : transfers) {
    const std::int64_t nic = transfer.nic.ns();
    if (nic <= 0) continue;
    const std::int64_t begin = transfer.nic_start.ns();
    push_interval(boundaries, begin, begin + nic, PathComponent::kNic, out.makespan_ns);
    const std::int64_t reconfig = std::min(transfer.reconfig.ns(), nic);
    push_interval(boundaries, begin, begin + reconfig, PathComponent::kReconfig,
                  out.makespan_ns);
  }

  std::stable_sort(boundaries.begin(), boundaries.end());

  std::array<std::int64_t, kPathComponents> totals{};
  std::array<std::int32_t, kPathComponents> active{};
  std::int64_t cursor = 0;
  std::size_t i = 0;
  while (i < boundaries.size()) {
    const std::int64_t ts = boundaries[i].ts;
    if (ts > cursor) {
      int winner = static_cast<int>(PathComponent::kIdle);
      for (int c = 0; c < kPathComponents - 1; ++c) {
        if (active[static_cast<std::size_t>(c)] > 0) {
          winner = c;
          break;
        }
      }
      totals[static_cast<std::size_t>(winner)] += ts - cursor;
      cursor = ts;
    }
    for (; i < boundaries.size() && boundaries[i].ts == ts; ++i) {
      active[boundaries[i].component] += boundaries[i].delta;
    }
  }
  if (cursor < out.makespan_ns) {
    totals[static_cast<std::size_t>(PathComponent::kIdle)] += out.makespan_ns - cursor;
  }

  out.compute_ns = totals[static_cast<std::size_t>(PathComponent::kCompute)];
  out.reconfig_ns = totals[static_cast<std::size_t>(PathComponent::kReconfig)];
  out.nic_ns = totals[static_cast<std::size_t>(PathComponent::kNic)];
  out.fabric_ns = totals[static_cast<std::size_t>(PathComponent::kFabric)];
  out.queue_ns = totals[static_cast<std::size_t>(PathComponent::kQueue)];
  out.wake_ns = totals[static_cast<std::size_t>(PathComponent::kWake)];
  out.idle_ns = totals[static_cast<std::size_t>(PathComponent::kIdle)];
  RSD_ASSERT(out.total_ns() == out.makespan_ns);
  return out;
}

double slack_wake_share(const Attribution& baseline, const Attribution& slacked) {
  if (baseline.makespan_ns <= 0) return 0.0;
  const double delta =
      static_cast<double>(slacked.wake_ns - baseline.wake_ns) /
      static_cast<double>(baseline.makespan_ns);
  return std::max(delta, 0.0);
}

std::string describe(const Attribution& a) {
  std::string out;
  char buf[64];
  for (int c = 0; c < kPathComponents; ++c) {
    const auto component = static_cast<PathComponent>(c);
    std::snprintf(buf, sizeof buf, "%s%s %.1f%%", c > 0 ? " | " : "", to_string(component),
                  100.0 * a.share(component));
    out += buf;
  }
  return out;
}

}  // namespace rsd::obs
