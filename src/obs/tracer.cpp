#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace rsd::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t capacity_from_env(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RSD_TRACE_BUFFER")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1u << 16;
}

}  // namespace

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lk(registry_m_);
  capacity_ = capacity_from_env(ring_capacity);
  rings_.clear();
  next_tid_.store(0, std::memory_order_relaxed);
  next_sim_id_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  enabled_flag().store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_flag().store(false, std::memory_order_release); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(registry_m_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rk(ring->m);
    ring->next = 0;
    ring->count = 0;
    ring->dropped = 0;
  }
}

std::int64_t Tracer::wall_now_ns() const {
  return steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

Tracer::Ring& Tracer::local_ring() {
  struct Cache {
    std::shared_ptr<Ring> ring;
    std::uint64_t generation = 0;
  };
  thread_local Cache cache;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (!cache.ring || cache.generation != gen) {
    auto ring = std::make_shared<Ring>();
    {
      std::lock_guard<std::mutex> lk(registry_m_);
      ring->buf.resize(capacity_);
      ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
      rings_.push_back(ring);
    }
    cache.ring = std::move(ring);
    cache.generation = gen;
  }
  return *cache.ring;
}

void Tracer::emit(Event e) {
  if (!enabled()) return;
  if (e.sim_id == kWallClock) {
    if (e.ts_ns == 0) e.ts_ns = wall_now_ns();
    // Wall events live on their emitting thread's row.
  }
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lk(ring.m);
  if (e.sim_id == kWallClock) e.track = ring.tid;
  if (ring.buf.empty()) return;  // capacity 0: count everything as dropped
  if (ring.count == ring.buf.size()) {
    ++ring.dropped;  // overwrite the oldest slot
  } else {
    ++ring.count;
  }
  ring.buf[ring.next] = std::move(e);
  ring.next = (ring.next + 1) % ring.buf.size();
}

void Tracer::instant(const char* category, std::string name, std::vector<Arg> args) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::kInstant;
  e.category = category;
  e.name = std::move(name);
  e.args = std::move(args);
  emit(std::move(e));
}

void Tracer::counter(const char* category, std::string name, double value) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::kCounter;
  e.category = category;
  e.name = std::move(name);
  e.value = value;
  emit(std::move(e));
}

void Tracer::complete_sim(std::int32_t sim_id, std::int32_t track, std::int64_t ts_ns,
                          std::int64_t dur_ns, const char* category, std::string name,
                          std::vector<Arg> args) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::kComplete;
  e.sim_id = sim_id;
  e.track = track;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.category = category;
  e.name = std::move(name);
  e.args = std::move(args);
  emit(std::move(e));
}

void Tracer::instant_sim(std::int32_t sim_id, std::int32_t track, std::int64_t ts_ns,
                         const char* category, std::string name, std::vector<Arg> args) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::kInstant;
  e.sim_id = sim_id;
  e.track = track;
  e.ts_ns = ts_ns;
  e.category = category;
  e.name = std::move(name);
  e.args = std::move(args);
  emit(std::move(e));
}

void Tracer::counter_sim(std::int32_t sim_id, std::int32_t track, std::int64_t ts_ns,
                         const char* category, std::string name, double value) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::kCounter;
  e.sim_id = sim_id;
  e.track = track;
  e.ts_ns = ts_ns;
  e.category = category;
  e.name = std::move(name);
  e.value = value;
  emit(std::move(e));
}

Tracer::Snapshot Tracer::snapshot() const {
  Snapshot snap;
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lk(registry_m_);
    rings = rings_;
    snap.ring_capacity = capacity_;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> rk(ring->m);
    snap.dropped += ring->dropped;
    // Oldest-first: the ring holds `count` events ending just before `next`.
    const std::size_t cap = ring->buf.size();
    for (std::size_t i = 0; i < ring->count; ++i) {
      const std::size_t idx = (ring->next + cap - ring->count + i) % cap;
      snap.events.push_back(ring->buf[idx]);
    }
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.sim_id != b.sim_id) return a.sim_id < b.sim_id;
                     if (a.track != b.track) return a.track < b.track;
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     // Simulated events from a partitioned engine land in
                     // different per-thread rings run to run; tie-break on
                     // content so their order depends only on the
                     // simulation itself. Wall events fall through to the
                     // stable per-ring order.
                     if (a.sim_id == kWallClock) return false;
                     if (a.phase != b.phase) {
                       return static_cast<char>(a.phase) < static_cast<char>(b.phase);
                     }
                     if (a.name != b.name) return a.name < b.name;
                     if (a.dur_ns != b.dur_ns) return a.dur_ns < b.dur_ns;
                     return a.value < b.value;
                   });
  return snap;
}

Span::Span(const char* category, std::string name, std::vector<Arg> args)
    : category_(category), name_(std::move(name)) {
  if (!Tracer::enabled()) return;
  active_ = true;
  Event e;
  e.phase = Phase::kBegin;
  e.category = category_;
  e.name = name_;
  e.args = std::move(args);
  Tracer::instance().emit(std::move(e));
}

Span::~Span() {
  if (!active_) return;
  Event e;
  e.phase = Phase::kEnd;
  e.category = category_;
  e.name = std::move(name_);
  Tracer::instance().emit(std::move(e));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Finite doubles only (inf/nan are not valid JSON); shortest-ish text.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return std::string{buf};
}

/// Chrome pids: one process for the wall clock, one per simulation, so the
/// independent clock domains never share a row.
int chrome_pid(const Event& e) { return e.sim_id == kWallClock ? 1 : 1000 + e.sim_id; }

const char* sim_track_name(std::int32_t track) {
  switch (track) {
    case kTrackCompute: return "compute";
    case kTrackCopyH2D: return "copy-h2d";
    case kTrackCopyD2H: return "copy-d2h";
    case kTrackPower: return "power";
    case kTrackSlack: return "slack";
    default: return nullptr;  // open-ended bases handled by the caller
  }
}

/// Open-ended track families (api-ctxN, link-N, partition-N); empty for
/// tracks with no derived name. Highest base wins since the bases nest.
std::string sim_track_family(std::int32_t track) {
  if (track >= kTrackPardesBase) {
    return "partition-" + std::to_string(track - kTrackPardesBase);
  }
  if (track >= kTrackNetBase) return "link-" + std::to_string(track - kTrackNetBase);
  if (track >= kTrackApiBase) return "api-ctx" + std::to_string(track - kTrackApiBase);
  return {};
}

void append_args(std::ostringstream& out, const std::vector<Arg>& args) {
  out << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << json_escape(args[i].key) << "\":";
    if (args[i].numeric) {
      out << json_number(args[i].num);
    } else {
      out << '"' << json_escape(args[i].str) << '"';
    }
  }
  out << '}';
}

}  // namespace

Tracer::Snapshot simulated_slice(const Tracer::Snapshot& snapshot) {
  Tracer::Snapshot out;
  out.dropped = snapshot.dropped;
  out.ring_capacity = snapshot.ring_capacity;
  for (const Event& e : snapshot.events) {
    if (e.sim_id != kWallClock) out.events.push_back(e);
  }
  return out;
}

std::string chrome_trace_json(const Tracer::Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit_prefix = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Metadata: name the processes and the fixed simulation tracks.
  std::map<int, std::string> pids;            // pid -> process name
  std::map<std::pair<int, int>, std::string> tids;  // (pid, tid) -> name
  for (const Event& e : snapshot.events) {
    const int pid = chrome_pid(e);
    if (e.sim_id == kWallClock) {
      pids.emplace(pid, "host");
    } else {
      pids.emplace(pid, "sim-" + std::to_string(e.sim_id));
      if (const char* fixed = sim_track_name(e.track)) {
        tids.emplace(std::make_pair(pid, e.track), fixed);
      } else if (std::string family = sim_track_family(e.track); !family.empty()) {
        tids.emplace(std::make_pair(pid, e.track), std::move(family));
      }
    }
  }
  for (const auto& [pid, name] : pids) {
    emit_prefix();
    out << R"({"ph":"M","name":"process_name","pid":)" << pid
        << R"(,"tid":0,"args":{"name":")" << json_escape(name) << "\"}}";
  }
  for (const auto& [key, name] : tids) {
    emit_prefix();
    out << R"({"ph":"M","name":"thread_name","pid":)" << key.first << ",\"tid\":" << key.second
        << R"(,"args":{"name":")" << json_escape(name) << "\"}}";
  }

  // B/E discipline: a ring overwrite can drop a kBegin whose kEnd survived;
  // skip such orphans so every emitted E closes an emitted B.
  std::map<std::pair<int, int>, std::int64_t> depth;
  for (const Event& e : snapshot.events) {
    const int pid = chrome_pid(e);
    const auto key = std::make_pair(pid, static_cast<int>(e.track));
    if (e.phase == Phase::kEnd) {
      if (depth[key] == 0) continue;  // orphan close
      --depth[key];
    } else if (e.phase == Phase::kBegin) {
      ++depth[key];
    }

    emit_prefix();
    out << "{\"ph\":\"" << static_cast<char>(e.phase) << "\",\"pid\":" << pid
        << ",\"tid\":" << e.track << ",\"ts\":" << json_number(static_cast<double>(e.ts_ns) / 1e3)
        << ",\"cat\":\"" << json_escape(e.category) << "\",\"name\":\"" << json_escape(e.name)
        << '"';
    if (e.phase == Phase::kComplete) {
      out << ",\"dur\":" << json_number(static_cast<double>(e.dur_ns) / 1e3);
    }
    out << ',';
    if (e.phase == Phase::kCounter) {
      out << "\"args\":{\"" << json_escape(e.name) << "\":" << json_number(e.value) << '}';
    } else {
      append_args(out, e.args);
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

void write_chrome_trace(const std::string& path, const Tracer::Snapshot& snapshot) {
  const std::filesystem::path p{path};
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream out{p, std::ios::trunc};
  if (!out) throw std::runtime_error{"chrome trace: cannot open " + path};
  out << chrome_trace_json(snapshot);
  if (!out) throw std::runtime_error{"chrome trace: write failed for " + path};
}

}  // namespace rsd::obs
