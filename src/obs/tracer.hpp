// rsd::obs timeline tracer — the simulator's own observability layer.
//
// The paper's whole method consumes an NSys-style timeline of *another*
// application; this module gives the simulator the same kind of timeline
// about itself. Instrumentation sites (gpusim engines, the slack injector
// path, the exec pool, the harness) emit spans, instants, and counters
// into per-thread ring buffers; a snapshot can be exported as Chrome
// `trace_event` JSON (loadable in Perfetto / chrome://tracing) or bridged
// back into `trace::Trace` (see trace/timeline.hpp) so the simulator's own
// emitted timeline can be pushed through the paper's Eq. 1–3 model.
//
// Two clock domains coexist:
//
//   * wall clock  — nanoseconds of real time since `enable()`; used by the
//     exec pool and harness phases (sim_id == kWallClock);
//   * simulated   — integer nanoseconds of `sim::Scheduler` time; each
//     simulation (one `gpu::Device`) acquires a `sim_id` and its events
//     carry explicit timestamps. In the Chrome export every simulation
//     becomes its own "process" so independent sim clocks never interleave.
//
// Cost model: when tracing is disabled (the default) every emission site
// reduces to one relaxed atomic load and a branch. When enabled, an
// emission takes one uncontended per-thread mutex and a slot write in a
// fixed-capacity ring (oldest events are overwritten and counted as
// dropped — tracing a long fleet can never exhaust memory).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rsd::obs {

/// Chrome trace_event phases (the subset this tracer emits).
enum class Phase : char {
  kBegin = 'B',     ///< Wall-clock span open (RAII `Span`).
  kEnd = 'E',       ///< Wall-clock span close.
  kComplete = 'X',  ///< Retrospective span with explicit ts + duration.
  kInstant = 'i',   ///< Point event.
  kCounter = 'C',   ///< Sampled numeric series.
};

/// Event argument: either numeric or string. Numeric covers every integer
/// the simulator produces (|v| < 2^53 holds for ns timestamps and bytes).
struct Arg {
  std::string key;
  bool numeric = true;
  double num = 0.0;
  std::string str;

  [[nodiscard]] static Arg n(std::string key, double value) {
    Arg a;
    a.key = std::move(key);
    a.num = value;
    return a;
  }
  [[nodiscard]] static Arg s(std::string key, std::string value) {
    Arg a;
    a.key = std::move(key);
    a.numeric = false;
    a.str = std::move(value);
    return a;
  }
};

/// `Event::sim_id` value for wall-clock events.
inline constexpr std::int32_t kWallClock = -1;

/// Track (thread-row) ids inside one simulation's timeline. API tracks are
/// open-ended: context N lands on kTrackApiBase + N.
enum SimTrack : std::int32_t {
  kTrackCompute = 0,
  kTrackCopyH2D = 1,
  kTrackCopyD2H = 2,
  kTrackPower = 3,
  kTrackSlack = 4,
  kTrackApiBase = 10,
  /// Per-link fabric telemetry: link N lands on kTrackNetBase + N.
  kTrackNetBase = 100,
  /// Per-partition engine timelines: partition N on kTrackPardesBase + N.
  kTrackPardesBase = 100000,
};

struct Event {
  Phase phase = Phase::kInstant;
  std::int32_t sim_id = kWallClock;  ///< kWallClock or an acquired sim id.
  std::int32_t track = 0;            ///< Wall: thread index; sim: SimTrack row.
  std::int64_t ts_ns = 0;            ///< Timestamp in the event's clock domain.
  std::int64_t dur_ns = 0;           ///< kComplete only.
  double value = 0.0;                ///< kCounter only.
  const char* category = "";         ///< Static-storage string (literal).
  std::string name;
  std::vector<Arg> args;
};

class Tracer {
 public:
  /// Process-wide tracer (disabled until `enable()`).
  [[nodiscard]] static Tracer& instance();

  /// The one check every instrumentation site makes first.
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Turn tracing on. `ring_capacity` is events per thread; 0 means the
  /// RSD_TRACE_BUFFER environment variable or the 64Ki default. Resets any
  /// previously captured events and restarts the wall-clock epoch.
  void enable(std::size_t ring_capacity = 0);
  void disable();

  /// Drop captured events (stays enabled; rings keep their capacity).
  void clear();

  /// Allocate a fresh simulated-timeline id (one per `gpu::Device`).
  [[nodiscard]] std::int32_t acquire_sim_id() {
    return next_sim_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wall-clock nanoseconds since `enable()`.
  [[nodiscard]] std::int64_t wall_now_ns() const;

  /// Append to the calling thread's ring. Wall-clock events with ts_ns == 0
  /// are stamped with `wall_now_ns()`. No-op when disabled.
  void emit(Event e);

  // -- Wall-clock helpers -------------------------------------------------
  void instant(const char* category, std::string name, std::vector<Arg> args = {});
  void counter(const char* category, std::string name, double value);

  // -- Simulated-timeline helpers (explicit timestamps) -------------------
  void complete_sim(std::int32_t sim_id, std::int32_t track, std::int64_t ts_ns,
                    std::int64_t dur_ns, const char* category, std::string name,
                    std::vector<Arg> args = {});
  void instant_sim(std::int32_t sim_id, std::int32_t track, std::int64_t ts_ns,
                   const char* category, std::string name, std::vector<Arg> args = {});
  void counter_sim(std::int32_t sim_id, std::int32_t track, std::int64_t ts_ns,
                   const char* category, std::string name, double value);

  struct Snapshot {
    /// Sorted by (sim_id, track, ts_ns); simulated-domain ties break
    /// further on (phase, name, dur_ns, value) so the order — and hence
    /// the Chrome export — is a pure function of the simulation, however
    /// many worker threads emitted the events. Wall-clock events keep
    /// their per-thread emission order (stable sort).
    std::vector<Event> events;
    std::uint64_t dropped = 0;  ///< Ring overwrites across all threads.
    std::size_t ring_capacity = 0;
  };

  /// Copy out everything captured so far. Safe to call while other threads
  /// are still emitting (each ring is locked briefly).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  Tracer() = default;

  struct Ring {
    std::mutex m;
    std::vector<Event> buf;  ///< Fixed capacity once created.
    std::size_t next = 0;    ///< Slot for the next event (wraps).
    std::size_t count = 0;   ///< Events currently held (<= capacity).
    std::uint64_t dropped = 0;
    std::int32_t tid = 0;    ///< Wall-domain thread index.
  };

  [[nodiscard]] static std::atomic<bool>& enabled_flag();
  [[nodiscard]] Ring& local_ring();

  mutable std::mutex registry_m_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::size_t capacity_ = 1u << 16;
  std::atomic<std::uint64_t> generation_{0};  ///< Bumped by enable(); stale
                                              ///< thread caches re-register.
  std::atomic<std::int32_t> next_sim_id_{0};
  std::atomic<std::int32_t> next_tid_{0};
  std::atomic<std::int64_t> epoch_ns_{0};  ///< steady_clock ns at enable().
};

/// RAII wall-clock span: emits kBegin at construction and kEnd at
/// destruction. Both no-ops when tracing was disabled at construction.
class Span {
 public:
  Span(const char* category, std::string name, std::vector<Arg> args = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  const char* category_;
  std::string name_;
};

/// JSON string-literal escaping (shared by the Chrome exporter and the
/// metrics serializer; kept here so rsd_obs stays dependency-free).
[[nodiscard]] std::string json_escape(std::string_view s);

/// The simulated-domain subset of a snapshot (sim_id >= 0). Simulated
/// events carry explicit `sim::Scheduler` timestamps, so this slice —
/// unlike the wall-clock rows — is reproducible across runs and across
/// `--sim-threads` values; exporting it yields byte-identical JSON.
[[nodiscard]] Tracer::Snapshot simulated_slice(const Tracer::Snapshot& snapshot);

/// Chrome trace_event JSON ({"traceEvents": [...]}) for a snapshot.
/// Orphan kEnd events (their kBegin fell out of the ring) are skipped so
/// the output always carries matched B/E pairs.
[[nodiscard]] std::string chrome_trace_json(const Tracer::Snapshot& snapshot);

/// Write `chrome_trace_json` to `path` (parent directories created).
void write_chrome_trace(const std::string& path, const Tracer::Snapshot& snapshot);

}  // namespace rsd::obs
