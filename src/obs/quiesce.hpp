// Quiesce-point flush registry. The obs metrics design accumulates plain
// local tallies and flushes them into the global Registry at natural
// quiesce points — historically only at subsystem destruction. A
// long-lived subsystem (a Network held across experiments, a daemon-mode
// engine) would attribute all of its counters to whichever experiment
// happened to destroy it; registering a flush hook here instead lets the
// harness runner force a flush at every experiment boundary, so the
// metrics delta taken around each experiment sees the activity that
// actually belongs to it.
//
// Contract: hooks must be idempotent (flush what accumulated since the
// previous flush, typically via a watermark) and must not touch the
// registry they are registered in (no registration/removal from inside a
// hook). Hooks run on the caller's thread under the registry mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

namespace rsd::obs {

class QuiesceRegistry {
 public:
  using Handle = std::uint64_t;

  [[nodiscard]] static QuiesceRegistry& global();

  /// Register a flush hook; keep the handle to remove it at teardown.
  [[nodiscard]] Handle add(std::function<void()> hook);
  void remove(Handle handle);

  /// Run every registered hook (deterministic registration order).
  void flush_all();

  [[nodiscard]] std::size_t size() const;

 private:
  QuiesceRegistry() = default;

  mutable std::mutex m_;
  std::map<Handle, std::function<void()>> hooks_;
  Handle next_ = 1;
};

/// Convenience: flush every registered quiesce hook into the metrics
/// registry. The harness runner calls this before taking each
/// experiment's `after` snapshot.
void flush_quiesce();

}  // namespace rsd::obs
