#include "wl/from_trace.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "gpusim/context.hpp"
#include "gpusim/records.hpp"

namespace rsd::wl {

Program from_trace(const trace::Trace& trace) {
  // Group ops by submitter identity. std::map keeps lane order
  // deterministic (ascending process, then context) — which matches the
  // spawn order of every workload this repo captures.
  std::map<std::pair<int, int>, std::vector<const gpu::OpRecord*>> by_lane;
  for (const gpu::OpRecord& op : trace.ops()) {
    by_lane[{op.process_id, op.context_id}].push_back(&op);
  }

  Program program;
  program.lanes.reserve(by_lane.size());
  for (auto& [identity, ops] : by_lane) {
    // Completion order in the trace is not submission order; each stream
    // submits strictly monotonically, so sorting by submit restores it.
    std::stable_sort(ops.begin(), ops.end(),
                     [](const gpu::OpRecord* a, const gpu::OpRecord* b) {
                       return a->submit < b->submit;
                     });

    Lane& lane = program.lanes.emplace_back();
    lane.process_id = identity.first;
    lane.context_id = identity.second;

    // The host cursor: where the submitting thread is "now" on the
    // simulated clock — right after the previous submit for async ops, at
    // the previous op's end for blocking ones.
    SimTime host = SimTime::zero();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const gpu::OpRecord& op = *ops[i];
      const bool blocking = i + 1 >= ops.size() || ops[i + 1]->submit >= op.end;

      const SimDuration think = op.submit - host - gpu::kApiSubmitCost;
      if (think > SimDuration::zero()) lane.cpu(think);

      switch (op.kind) {
        case gpu::OpKind::kKernel:
          if (blocking) {
            lane.kernel_sync(op.name, op.duration());
          } else {
            lane.kernel(op.name, op.duration());
          }
          break;
        case gpu::OpKind::kMemcpyH2D:
          lane.h2d_bytes(op.bytes, op.name, /*async=*/!blocking);
          break;
        case gpu::OpKind::kMemcpyD2H:
          lane.d2h_bytes(op.bytes, op.name, /*async=*/!blocking);
          break;
      }
      host = blocking ? op.end : op.submit;
    }
    // Every workload drains its stream before exiting; the trace records
    // no op for the final synchronize, so restore it explicitly.
    lane.sync();
  }
  return program;
}

}  // namespace rsd::wl
