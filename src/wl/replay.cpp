#include "wl/replay.hpp"

#include <utility>
#include <vector>

#include "core/error.hpp"
#include "interconnect/slack.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::wl {

namespace {

/// Shared per-run wiring handed to every lane coroutine.
struct RunWiring {
  gpu::Chassis* chassis = nullptr;  ///< Null on single-device nodes.
  interconnect::SlackInjector* slack = nullptr;
  gpu::CommandPath path;
  gpu::SlackPosition slack_position = gpu::SlackPosition::kAfterCall;
  net::Algorithm collective = net::Algorithm::kRing;
  bool gate = false;
  /// Multi-chassis nodes: bind each lane's Context onto the chassis' row
  /// network (host endpoint <-> lane device's chassis NIC <-> device).
  bool bind_transport = false;
};

/// One lane: allocate buffers, optionally rendezvous at the start gate,
/// interpret the op stream, free buffers, signal completion. The switch
/// dispatch adds no awaits of its own, so the schedule is identical to a
/// handwritten coroutine issuing the same calls.
sim::Task<> run_lane(const Lane& lane, gpu::Device& device, const RunWiring& wiring,
                     sim::Barrier& barrier, sim::WaitGroup& wg, sim::WaitGroup& ready,
                     sim::Event& start_gate) {
  gpu::Context ctx{device, lane.context_id, wiring.slack, lane.process_id, wiring.path,
                   wiring.slack_position};
  if (wiring.bind_transport) {
    gpu::Chassis& chassis = *wiring.chassis;
    ctx.bind_transport(gpu::TransportBinding{
        chassis.network(), chassis.host_node(), chassis.nic_of(lane.device),
        chassis.topology().device(lane.device)});
  }

  std::vector<gpu::DeviceBuffer> buffers;
  buffers.reserve(lane.buffers.size());
  for (const Bytes bytes : lane.buffers) buffers.push_back(co_await ctx.dmalloc(bytes));

  if (wiring.gate) {
    ready.done();
    co_await start_gate.wait();
  }

  const auto buffer_of = [&buffers](const Op& op) {
    return op.buffer >= 0 ? buffers[static_cast<std::size_t>(op.buffer)]
                          : gpu::DeviceBuffer{0, op.bytes};
  };

  std::vector<std::int64_t> trips;  ///< Remaining iterations per open loop.
  std::size_t pc = 0;
  while (pc < lane.ops.size()) {
    const Op& op = lane.ops[pc];
    switch (op.code) {
      case OpCode::kKernel:
        co_await ctx.launch(op.name, op.dur);
        break;
      case OpCode::kKernelSync:
        co_await ctx.launch_sync(op.name, op.dur);
        break;
      case OpCode::kH2D:
        co_await ctx.memcpy_h2d(buffer_of(op), op.name);
        break;
      case OpCode::kD2H:
        co_await ctx.memcpy_d2h(buffer_of(op), op.name);
        break;
      case OpCode::kH2DAsync:
        co_await ctx.memcpy_h2d_async(buffer_of(op), op.name);
        break;
      case OpCode::kD2HAsync:
        co_await ctx.memcpy_d2h_async(buffer_of(op), op.name);
        break;
      case OpCode::kSync:
        co_await ctx.synchronize();
        break;
      case OpCode::kBarrier:
        co_await barrier.arrive_and_wait();
        break;
      case OpCode::kCpu:
        co_await sim::delay(op.dur);
        break;
      case OpCode::kAllReduce:
        if (wiring.chassis == nullptr) {
          throw Error{ErrorCode::kInvalidState,
                      "wl::ReplayEngine: allreduce op on a single-device node "
                      "(set NodeParams::chassis_gpus)"};
        }
        co_await wiring.chassis->allreduce(wiring.collective, op.bytes,
                                           static_cast<int>(op.count), op.name);
        break;
      case OpCode::kLoopBegin:
        if (op.count > 0) {
          trips.push_back(op.count);
        } else {
          pc = static_cast<std::size_t>(op.match);  // skip empty loop body
        }
        break;
      case OpCode::kLoopEnd:
        if (--trips.back() > 0) {
          pc = static_cast<std::size_t>(op.match);  // back to first body op
        } else {
          trips.pop_back();
        }
        break;
    }
    ++pc;
  }

  for (gpu::DeviceBuffer& buffer : buffers) co_await ctx.dfree(buffer);
  wg.done();
}

/// Gated timing (the proxy's protocol): wait for every lane to finish its
/// allocations, open the gate, time until all lanes complete.
sim::Task<> gated_monitor(sim::Scheduler& sched, sim::WaitGroup& wg, sim::WaitGroup& ready,
                          sim::Event& start_gate, SimTime& t0, SimTime& t1) {
  co_await ready.wait();
  t0 = sched.now();
  start_gate.trigger();
  co_await wg.wait();
  t1 = sched.now();
}

sim::Task<> plain_monitor(sim::Scheduler& sched, sim::WaitGroup& wg, SimTime& t1) {
  co_await wg.wait();
  t1 = sched.now();
}

}  // namespace

ReplayResult ReplayEngine::run(const Program& program, const ReplayOptions& options) const {
  // An allreduce cannot span more devices than the node's machine model
  // has (a single-device node counts as one).
  program.validate(node_.chassis_gpus > 0 ? node_.chassis_gpus : 1);

  sim::Scheduler sched;
  std::optional<gpu::Device> device;
  std::optional<gpu::Chassis> chassis;
  if (node_.chassis_gpus > 0) {
    gpu::ChassisParams params;
    params.gpus = node_.chassis_gpus;
    params.fabric = node_.fabric;
    params.device_params = node_.device_params;
    params.fabric_kind = node_.fabric_kind;
    if (node_.gpus_per_chassis > 0) {
      params.gpus_per_chassis = node_.gpus_per_chassis;
      params.chassis_nics = true;
      params.host_endpoint = true;
    }
    chassis.emplace(sched, std::move(params));
  } else {
    device.emplace(sched, node_.device_params,
                   node_.link ? interconnect::Link{*node_.link}
                              : interconnect::make_pcie_gen4_x16());
  }

  trace::TraceRecorder recorder;
  std::vector<gpu::FabricTransferRecord> transfers;
  if (options.capture_trace) {
    if (chassis) {
      chassis->set_record_sink(&recorder);
      chassis->set_transfer_log(&transfers);
    } else {
      device->set_record_sink(&recorder);
    }
  }

  interconnect::SlackInjector slack{options.slack, options.host_noise_sigma, options.seed};
  RunWiring wiring;
  wiring.chassis = chassis ? &*chassis : nullptr;
  wiring.slack = options.inject_slack ? &slack : nullptr;
  wiring.path = options.command_path;
  wiring.slack_position = options.slack_position;
  wiring.collective = node_.collective;
  wiring.gate = program.gate;
  wiring.bind_transport = chassis && chassis->network() != nullptr &&
                          chassis->host_node() != net::kInvalidNode;

  const int lanes = static_cast<int>(program.lanes.size());
  sim::Barrier barrier{sched, lanes > 0 ? lanes : 1};
  sim::WaitGroup wg{sched};
  sim::WaitGroup ready{sched};
  sim::Event start_gate{sched};
  wg.add(lanes);
  ready.add(lanes);

  for (const Lane& lane : program.lanes) {
    if (chassis && (lane.device < 0 || lane.device >= chassis->size())) {
      throw Error{ErrorCode::kInvalidArgument,
                  "wl::ReplayEngine: lane device index out of range"};
    }
    gpu::Device& dev = chassis ? chassis->device(lane.device) : *device;
    sched.spawn(run_lane(lane, dev, wiring, barrier, wg, ready, start_gate));
  }

  SimTime t0{};
  SimTime t1{};
  if (lanes > 0) {
    if (program.gate) {
      sched.spawn(gated_monitor(sched, wg, ready, start_gate, t0, t1));
    } else {
      sched.spawn(plain_monitor(sched, wg, t1));
    }
  }

  sched.run();
  RSD_ASSERT(sched.unfinished_count() == 0);

  ReplayResult result;
  result.runtime = t1 - SimTime::zero();
  result.timed_runtime = t1 - t0;
  result.calls_delayed = slack.calls_delayed();
  result.total_injected = slack.total_injected();
  if (options.capture_trace) {
    result.trace = std::move(recorder.trace());
    result.transfers = std::move(transfers);
  }
  return result;
}

}  // namespace rsd::wl
