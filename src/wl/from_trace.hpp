// Trace -> program: make an imported NSys-schema trace *runnable*.
//
// The paper's method profiles arbitrary applications from their traces
// alone. `from_trace` closes the loop: the same trace the Eq 2-3 model
// consumes becomes a wl::Program the ReplayEngine can execute, so the
// model's predicted slack penalty can be checked against a direct
// simulation of the identical op stream (bench_extension_trace_replay).
//
// Reconstruction rules, per (process, context) lane, ops sorted by submit:
//
//   * an op is *blocking* when the next op's submit does not precede its
//     end (the host waited for it); the last op of a lane counts as
//     blocking, and the lane gains a trailing device synchronize;
//   * blocking kernels become kKernelSync, blocking copies kH2D/kD2H;
//     non-blocking ops become the async variants;
//   * host think time between API calls is whatever gap the submit
//     timestamps imply beyond the per-call submit cost, emitted as kCpu
//     phases — absolute times are preserved, so a trace whose first submit
//     is late replays with the same leading idle;
//   * kernel service times are the recorded durations (the simulator
//     records pure service; setup/wake overheads re-arise naturally on
//     replay); copy times are recomputed from the recorded byte counts and
//     the replay node's link.
#pragma once

#include "trace/trace.hpp"
#include "wl/program.hpp"

namespace rsd::wl {

[[nodiscard]] Program from_trace(const trace::Trace& trace);

}  // namespace rsd::wl
