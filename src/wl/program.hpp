// Workload intermediate representation: an op-stream program.
//
// Every workload in this repo — the slack proxy, LAMMPS, CosmoFlow, and
// any application imported from an NSys-schema trace — reduces to the same
// vocabulary the paper's profiling method observes: host threads that burn
// CPU time, push kernels and copies at a device, and occasionally
// synchronise with the device or with each other. `wl::Program` captures
// exactly that vocabulary as data, so one engine (`wl::ReplayEngine`) can
// execute all of them through `gpu::Context` instead of each workload
// hand-rolling its own coroutine submission loop.
//
// A program is a set of *lanes*, one per simulated host submitter. Each
// lane carries the submitter's identity (context id = CUDA stream/thread,
// process id = OS process / MPI rank — distinct processes pay the device's
// context-switch cost), the device buffers it allocates up front, and a
// flat op list. `kLoopBegin`/`kLoopEnd` pairs give programs with identical
// iterations (the proxy's compute loop, multi-GPU CosmoFlow's steps) a
// compact encoding; workloads with per-step jitter unroll instead, since
// every op carries its own concrete duration.
#pragma once

#include <cstdint>
#include <vector>

#include "core/names.hpp"
#include "core/units.hpp"
#include "gpusim/context.hpp"

namespace rsd::wl {

enum class OpCode : std::uint8_t {
  kKernel,      ///< Asynchronous launch (cudaLaunchKernel).
  kKernelSync,  ///< Launch + wait for completion (the paper's pessimistic mode).
  kH2D,         ///< Blocking host-to-device copy.
  kD2H,         ///< Blocking device-to-host copy.
  kH2DAsync,    ///< cudaMemcpyAsync H2D (resumes after submission).
  kD2HAsync,    ///< cudaMemcpyAsync D2H.
  kSync,        ///< cudaDeviceSynchronize scoped to the lane's stream.
  kBarrier,     ///< Arrive at the program-wide barrier (MPI_Barrier).
  kCpu,         ///< Host-side phase: no API call, just simulated time.
  kAllReduce,   ///< Chassis ring allreduce (bytes per GPU, `count` ranks).
  kLoopBegin,   ///< Repeat the ops up to the matching kLoopEnd `count` times.
  kLoopEnd,
};

[[nodiscard]] const char* to_string(OpCode code);

struct Op {
  OpCode code = OpCode::kCpu;
  NameRef name{};           ///< Kernel/copy/collective name (trace identity).
  SimDuration dur{};        ///< Kernel service time or CPU-phase length.
  std::int32_t buffer = -1; ///< Lane buffer index for copies; -1 = raw bytes.
  Bytes bytes = 0;          ///< Copy payload when buffer < 0; allreduce bytes.
  std::int64_t count = 0;   ///< Loop trip count / allreduce participants.
  std::int32_t match = -1;  ///< Index of the matching kLoopBegin/kLoopEnd.
};

/// One host submitter: a CUDA-stream-ordered op sequence plus identity.
/// The emit helpers (`kernel()`, `h2d()`, `loop()`, ...) append ops; they
/// exist so workload builders read like the submission loops they replace.
struct Lane {
  int context_id = 0;   ///< Stream/thread id (tags records, as gpu::Context).
  int process_id = 0;   ///< OS process (MPI rank); drives context switches.
  int device = 0;       ///< Chassis device index; 0 on single-device nodes.
  std::vector<Bytes> buffers;  ///< dmalloc'd in order at lane start, dfree'd at end.
  std::vector<Op> ops;

  /// Register an up-front device allocation; returns its buffer index.
  std::int32_t add_buffer(Bytes bytes);

  void kernel(NameRef name, SimDuration duration);
  void kernel_sync(NameRef name, SimDuration duration);
  void h2d(std::int32_t buffer, NameRef name = gpu::kMemcpyH2DName);
  void d2h(std::int32_t buffer, NameRef name = gpu::kMemcpyD2HName);
  /// Copies of a raw byte count, with no backing allocation — the form a
  /// trace-derived program uses (an NSys trace records sizes, not buffers).
  void h2d_bytes(Bytes bytes, NameRef name = gpu::kMemcpyH2DName, bool async = false);
  void d2h_bytes(Bytes bytes, NameRef name = gpu::kMemcpyD2HName, bool async = false);
  void sync();
  void barrier();
  void cpu(SimDuration duration);
  void allreduce(Bytes bytes_per_gpu, int participants, NameRef name);
  /// Open a repeat block executing `trips` times; close with end_loop().
  void loop(std::int64_t trips);
  void end_loop();

  [[nodiscard]] std::int64_t api_call_count() const;  ///< Calls slack lands on.

 private:
  std::vector<std::int32_t> open_loops_;  ///< Build-time kLoopBegin stack.
};

struct Program {
  std::vector<Lane> lanes;
  /// Proxy-style timing: lanes signal ready after allocation, wait for a
  /// common start gate, and the engine times gate-open -> all lanes done
  /// (the paper's "main compute loop" wall time, excluding setup).
  bool gate = false;

  [[nodiscard]] std::size_t total_ops() const;

  /// Structural checks: loops matched, buffer indices in range, allreduce
  /// participant counts sane. When `device_count` > 0, an allreduce whose
  /// participant count exceeds the machine's device count is rejected too
  /// (the replay wiring passes its topology's size). Throws
  /// rsd::Error{kInvalidArgument}.
  void validate(int device_count = 0) const;
};

}  // namespace rsd::wl
