// Replay engine: executes any wl::Program on a simulated node.
//
// This is the single submission loop behind the proxy, LAMMPS, CosmoFlow
// (single- and multi-GPU), and trace-derived programs. Each lane becomes
// one simulated host thread driving its own gpu::Context; the engine wires
// in the SlackInjector (the paper's sleep-after-every-CUDA-call emulation),
// the shared MPI-style barrier, optional trace capture, and the two timing
// disciplines the workloads use:
//
//   * plain: runtime = simulation start -> all lanes finished (apps);
//   * gated: lanes allocate, signal ready, and block on a common start
//     gate; the engine times gate-open -> all lanes finished (the proxy's
//     main-compute-loop wall time, excluding allocation).
//
// Determinism: the interpreter issues exactly the API-call/await sequence
// a handwritten workload coroutine would (interpreter control flow adds no
// scheduler events), so a program emitted from a refactored workload
// reproduces the original's schedule byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/units.hpp"
#include "gpusim/chassis.hpp"
#include "gpusim/collective.hpp"
#include "gpusim/context.hpp"
#include "gpusim/device.hpp"
#include "interconnect/fabric.hpp"
#include "interconnect/link.hpp"
#include "trace/trace.hpp"
#include "wl/program.hpp"

namespace rsd::wl {

/// The simulated node a program runs on. `chassis_gpus == 0` builds one
/// device behind `link` (PCIe gen4 x16 when unset); > 0 builds a CDI
/// chassis of that many devices on `fabric` (lanes pick devices by index).
/// The chassis' GPU<->GPU traffic is routed over a `net::Topology` of
/// shape `fabric_kind`; `kAllReduce` ops execute as the event-driven
/// `collective` algorithm scheduled over that machine model.
struct NodeParams {
  gpu::DeviceParams device_params{};
  std::optional<interconnect::LinkParams> link{};
  int chassis_gpus = 0;
  gpu::GpuInterconnect fabric = gpu::make_nvlink();
  net::FabricKind fabric_kind = net::FabricKind::kFullMesh;
  net::Algorithm collective = net::Algorithm::kRing;
  /// > 0 (with chassis_gpus set): build a true multi-chassis machine graph
  /// — per-chassis NICs, inter-chassis fibre, a CDI host endpoint — and
  /// bind every lane's Context onto it, so memcpy payloads, injected
  /// slack, and cross-chassis collective chunks all route through the
  /// event-driven `net::Network` (FIFO contention, OCS circuits, express
  /// path). 0 keeps the flat chassis: the tag groups devices for the
  /// hierarchical algorithm but emits no extra nodes, and replay timing is
  /// byte-identical to before the transport seam.
  int gpus_per_chassis = 0;
};

struct ReplayOptions {
  SimDuration slack = SimDuration::zero();  ///< Injected per API call.
  /// Sleep-overshoot noise: each injected slack sleeps per_call *
  /// exp(N(0, sigma)); 0 = deterministic.
  double host_noise_sigma = 0.0;
  std::uint64_t seed = 0x5eed;
  gpu::CommandPath command_path = gpu::CommandPath::local();
  gpu::SlackPosition slack_position = gpu::SlackPosition::kAfterCall;
  /// False detaches the injector entirely (contexts get nullptr), for
  /// workloads that never inject — multi-GPU CosmoFlow's workers.
  bool inject_slack = true;
  bool capture_trace = false;
};

struct ReplayResult {
  SimDuration runtime;        ///< Simulation start -> all lanes done.
  SimDuration timed_runtime;  ///< Gated programs: gate-open -> done; else == runtime.
  std::int64_t calls_delayed = 0;   ///< Injector's count (Equation 1's num_CUDA_calls).
  SimDuration total_injected;
  trace::Trace trace;         ///< Populated when capture_trace was set.
  /// Chassis fabric transfers in priced (program) order, with the OCS
  /// reconfiguration share split out — the causal feed of the critical-path
  /// attribution. Populated when capture_trace was set on a chassis node.
  std::vector<gpu::FabricTransferRecord> transfers;
};

class ReplayEngine {
 public:
  explicit ReplayEngine(NodeParams node = {}) : node_(std::move(node)) {}

  [[nodiscard]] const NodeParams& node() const { return node_; }

  /// Execute the program on a fresh simulated node. Throws
  /// rsd::Error{kInvalidArgument} on a malformed program and
  /// rsd::Error{kOutOfMemory} when lane buffers exceed device memory.
  [[nodiscard]] ReplayResult run(const Program& program,
                                 const ReplayOptions& options = {}) const;

 private:
  NodeParams node_;
};

}  // namespace rsd::wl
