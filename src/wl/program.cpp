#include "wl/program.hpp"

#include <string>

#include "core/error.hpp"

namespace rsd::wl {

const char* to_string(OpCode code) {
  switch (code) {
    case OpCode::kKernel: return "kernel";
    case OpCode::kKernelSync: return "kernel_sync";
    case OpCode::kH2D: return "h2d";
    case OpCode::kD2H: return "d2h";
    case OpCode::kH2DAsync: return "h2d_async";
    case OpCode::kD2HAsync: return "d2h_async";
    case OpCode::kSync: return "sync";
    case OpCode::kBarrier: return "barrier";
    case OpCode::kCpu: return "cpu";
    case OpCode::kAllReduce: return "allreduce";
    case OpCode::kLoopBegin: return "loop_begin";
    case OpCode::kLoopEnd: return "loop_end";
  }
  return "?";
}

std::int32_t Lane::add_buffer(Bytes bytes) {
  buffers.push_back(bytes);
  return static_cast<std::int32_t>(buffers.size() - 1);
}

void Lane::kernel(NameRef name, SimDuration duration) {
  ops.push_back(Op{.code = OpCode::kKernel, .name = name, .dur = duration});
}

void Lane::kernel_sync(NameRef name, SimDuration duration) {
  ops.push_back(Op{.code = OpCode::kKernelSync, .name = name, .dur = duration});
}

void Lane::h2d(std::int32_t buffer, NameRef name) {
  ops.push_back(Op{.code = OpCode::kH2D, .name = name, .buffer = buffer});
}

void Lane::d2h(std::int32_t buffer, NameRef name) {
  ops.push_back(Op{.code = OpCode::kD2H, .name = name, .buffer = buffer});
}

void Lane::h2d_bytes(Bytes bytes, NameRef name, bool async) {
  ops.push_back(Op{.code = async ? OpCode::kH2DAsync : OpCode::kH2D, .name = name,
                   .bytes = bytes});
}

void Lane::d2h_bytes(Bytes bytes, NameRef name, bool async) {
  ops.push_back(Op{.code = async ? OpCode::kD2HAsync : OpCode::kD2H, .name = name,
                   .bytes = bytes});
}

void Lane::sync() { ops.push_back(Op{.code = OpCode::kSync}); }

void Lane::barrier() { ops.push_back(Op{.code = OpCode::kBarrier}); }

void Lane::cpu(SimDuration duration) {
  ops.push_back(Op{.code = OpCode::kCpu, .dur = duration});
}

void Lane::allreduce(Bytes bytes_per_gpu, int participants, NameRef name) {
  ops.push_back(Op{.code = OpCode::kAllReduce, .name = name, .bytes = bytes_per_gpu,
                   .count = participants});
}

void Lane::loop(std::int64_t trips) {
  open_loops_.push_back(static_cast<std::int32_t>(ops.size()));
  ops.push_back(Op{.code = OpCode::kLoopBegin, .count = trips});
}

void Lane::end_loop() {
  if (open_loops_.empty()) {
    throw Error{ErrorCode::kInvalidArgument, "wl::Lane::end_loop without an open loop"};
  }
  const std::int32_t begin = open_loops_.back();
  open_loops_.pop_back();
  const auto end = static_cast<std::int32_t>(ops.size());
  ops.push_back(Op{.code = OpCode::kLoopEnd, .match = begin});
  ops[static_cast<std::size_t>(begin)].match = end;
}

std::int64_t Lane::api_call_count() const {
  std::int64_t calls = 0;
  std::vector<std::int64_t> multiplier{1};
  for (const Op& op : ops) {
    switch (op.code) {
      case OpCode::kLoopBegin:
        multiplier.push_back(multiplier.back() * op.count);
        break;
      case OpCode::kLoopEnd:
        multiplier.pop_back();
        break;
      case OpCode::kCpu:
      case OpCode::kBarrier:
      case OpCode::kAllReduce:
        break;  // not API calls through the lane's context
      default:
        calls += multiplier.back();
        break;
    }
  }
  return calls;
}

std::size_t Program::total_ops() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes) n += lane.ops.size();
  return n;
}

void Program::validate(int device_count) const {
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const Lane& lane = lanes[l];
    const auto fail = [l](const std::string& what) {
      throw Error{ErrorCode::kInvalidArgument,
                  "wl::Program lane " + std::to_string(l) + ": " + what};
    };
    std::int64_t depth = 0;
    for (std::size_t i = 0; i < lane.ops.size(); ++i) {
      const Op& op = lane.ops[i];
      switch (op.code) {
        case OpCode::kLoopBegin:
          if (op.count < 0) fail("negative loop trip count");
          if (op.match <= static_cast<std::int32_t>(i)) fail("unmatched loop begin");
          ++depth;
          break;
        case OpCode::kLoopEnd:
          if (op.match < 0 || op.match >= static_cast<std::int32_t>(i)) {
            fail("unmatched loop end");
          }
          --depth;
          if (depth < 0) fail("loop end without begin");
          break;
        case OpCode::kH2D:
        case OpCode::kD2H:
        case OpCode::kH2DAsync:
        case OpCode::kD2HAsync:
          if (op.buffer >= static_cast<std::int32_t>(lane.buffers.size())) {
            fail("copy references buffer " + std::to_string(op.buffer) + " of " +
                 std::to_string(lane.buffers.size()));
          }
          break;
        case OpCode::kAllReduce:
          if (op.count < 1) fail("allreduce with no participants");
          if (device_count > 0 && op.count > device_count) {
            fail("allreduce with " + std::to_string(op.count) +
                 " participants exceeds the machine's " + std::to_string(device_count) +
                 " devices");
          }
          break;
        default:
          break;
      }
    }
    if (depth != 0) fail("unclosed loop");
  }
}

}  // namespace rsd::wl
