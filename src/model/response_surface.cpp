#include "model/response_surface.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rsd::model {

ResponseSurface ResponseSurface::from_sweep(const std::vector<proxy::SweepPoint>& sweep) {
  ResponseSurface surface;
  std::map<std::int64_t, ProxyPoint> points;
  for (const auto& p : sweep) {
    surface.cells_[CellKey{p.matrix_n, p.threads}][p.slack.ns()] =
        p.normalized_runtime - 1.0;
    ProxyPoint& pt = points[p.matrix_n];
    pt.matrix_n = p.matrix_n;
    pt.kernel_us = p.result.kernel_duration.us();
    pt.transfer_mib = to_mib(p.result.matrix_bytes);
  }
  surface.points_.reserve(points.size());
  for (const auto& [n, pt] : points) surface.points_.push_back(pt);
  return surface;
}

std::vector<std::int64_t> ResponseSurface::matrix_sizes() const {
  std::vector<std::int64_t> sizes;
  sizes.reserve(points_.size());
  for (const auto& pt : points_) sizes.push_back(pt.matrix_n);
  return sizes;
}

std::vector<int> ResponseSurface::thread_counts(std::int64_t matrix_n) const {
  std::vector<int> threads;
  for (const auto& [key, curve] : cells_) {
    if (key.matrix_n == matrix_n) threads.push_back(key.threads);
  }
  return threads;
}

double ResponseSurface::penalty(std::int64_t matrix_n, int threads, SimDuration slack) const {
  if (cells_.empty()) throw Error{ErrorCode::kInvalidState, "empty response surface"};

  // Resolve the cell: exact, else nearest thread count for this size.
  auto it = cells_.find(CellKey{matrix_n, threads});
  if (it == cells_.end()) {
    const auto available = thread_counts(matrix_n);
    if (available.empty()) {
      throw Error{ErrorCode::kNotFound,
                  "matrix size " + std::to_string(matrix_n) + " not in surface"};
    }
    const int nearest = *std::min_element(
        available.begin(), available.end(),
        [threads](int a, int b) { return std::abs(a - threads) < std::abs(b - threads); });
    it = cells_.find(CellKey{matrix_n, nearest});
  }
  const auto& curve = it->second;
  RSD_ASSERT(!curve.empty());

  const std::int64_t s = slack.ns();
  auto hi = curve.lower_bound(s);
  if (hi == curve.end()) return std::prev(curve.end())->second;  // clamp high
  if (hi->first == s) return hi->second;                         // exact
  if (hi == curve.begin()) return hi->second;                    // clamp low
  const auto lo = std::prev(hi);

  // Log-linear interpolation in slack (curves live on a log-slack axis);
  // fall back to linear when the low sample is the zero-slack point.
  const double y0 = lo->second;
  const double y1 = hi->second;
  if (lo->first <= 0) {
    const double t = static_cast<double>(s - lo->first) /
                     static_cast<double>(hi->first - lo->first);
    return y0 + t * (y1 - y0);
  }
  const double lx0 = std::log(static_cast<double>(lo->first));
  const double lx1 = std::log(static_cast<double>(hi->first));
  const double lx = std::log(static_cast<double>(s));
  const double t = (lx - lx0) / (lx1 - lx0);
  return y0 + t * (y1 - y0);
}

}  // namespace rsd::model
