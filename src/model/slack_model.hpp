// The paper's slack-penalty prediction model (Section IV-D).
//
// Equation 3 maps each of an application's kernel durations / transfer
// sizes onto proxy matrix sizes and takes the count-weighted average of the
// proxy's measured penalties. Because an application value generally falls
// *between* two proxy sizes, rounding the matrix-size equivalent up gives a
// lower (optimistic) penalty bound and rounding down an upper (pessimistic)
// one — penalties shrink with matrix size.
//
// Equation 2 combines the kernel-side and memory-side penalties, weighted
// by the fraction of the traced runtime spent in kernels / transfers:
//
//   SP_total = %Runtime_Kernel * SP_Kernel + %Runtime_Memory * SP_Memory
#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "model/response_surface.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace rsd::model {

struct PenaltyBounds {
  double lower = 0.0;  ///< Matrix-size equivalents rounded up (optimistic).
  double upper = 0.0;  ///< Rounded down (pessimistic).

  /// True when `penalty` lands inside [lower - tolerance, upper + tolerance]
  /// — the paper's validation criterion (a measured penalty between the
  /// Equation 2 bounds), with an absolute widening for interpolation error.
  [[nodiscard]] constexpr bool contains(double penalty, double tolerance = 0.0) const {
    return penalty >= lower - tolerance && penalty <= upper + tolerance;
  }
};

/// Count of application elements attributed to each proxy matrix size under
/// the round-up / round-down rules (diagnostic output of Equation 3).
struct BinnedAttribution {
  std::vector<std::int64_t> matrix_sizes;      ///< Ascending.
  std::vector<std::size_t> round_up_counts;    ///< Per size, lower bound path.
  std::vector<std::size_t> round_down_counts;  ///< Per size, upper bound path.
  std::size_t total = 0;
};

struct SlackPrediction {
  SimDuration slack;
  int parallelism = 1;
  trace::RuntimeFractions fractions;  ///< Equation 2 weights.
  PenaltyBounds kernel;               ///< Equation 3 over kernel durations.
  PenaltyBounds memory;               ///< Equation 3 over transfer sizes.
  PenaltyBounds total;                ///< Equation 2.
  BinnedAttribution kernel_bins;
  BinnedAttribution memory_bins;
};

class SlackModel {
 public:
  /// `clamp_negative_penalties`: multi-thread proxy cells can show
  /// normalized runtimes below 1 (the saturated baseline's queueing is
  /// relieved once slack thins the request stream). A *starvation* penalty
  /// cannot be negative, so by default those cells contribute 0 rather
  /// than predicting speedups.
  explicit SlackModel(ResponseSurface surface, bool clamp_negative_penalties = true)
      : surface_(std::move(surface)), clamp_negative_(clamp_negative_penalties) {}

  [[nodiscard]] const ResponseSurface& surface() const { return surface_; }

  /// Predict the slack penalty an application with this trace would suffer
  /// under `slack` per CUDA call, assuming it submits GPU work with the
  /// given effective parallelism (LAMMPS: its process count; CosmoFlow: the
  /// paper derives an equivalent of 4 from its kernel-sequence queuing).
  [[nodiscard]] SlackPrediction predict(const trace::Trace& app_trace, int parallelism,
                                        SimDuration slack) const;

  /// Equation 3 for an arbitrary set of element values against proxy
  /// characteristics: `values` are application measurements (kernel us or
  /// transfer MiB) and `characteristic(point)` selects the proxy column to
  /// compare against.
  [[nodiscard]] PenaltyBounds equation3(const std::vector<double>& values,
                                        bool use_kernel_characteristic, int parallelism,
                                        SimDuration slack,
                                        BinnedAttribution* attribution = nullptr) const;

 private:
  ResponseSurface surface_;
  bool clamp_negative_;
};

}  // namespace rsd::model
