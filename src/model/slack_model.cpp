#include "model/slack_model.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rsd::model {

PenaltyBounds SlackModel::equation3(const std::vector<double>& values,
                                    bool use_kernel_characteristic, int parallelism,
                                    SimDuration slack, BinnedAttribution* attribution) const {
  const auto& points = surface_.points();
  if (points.empty()) throw Error{ErrorCode::kInvalidState, "empty response surface"};

  auto characteristic = [&](const ProxyPoint& p) {
    return use_kernel_characteristic ? p.kernel_us : p.transfer_mib;
  };

  // Per-size penalties at this (parallelism, slack).
  std::vector<double> sp(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    sp[i] = surface_.penalty(points[i].matrix_n, parallelism, slack);
    if (clamp_negative_ && sp[i] < 0.0) sp[i] = 0.0;
  }

  std::vector<std::size_t> up_counts(points.size(), 0);
  std::vector<std::size_t> down_counts(points.size(), 0);

  for (const double v : values) {
    // Index of the smallest proxy point whose characteristic >= v
    // ("round up" — the optimistic / lower-penalty attribution) and of the
    // largest point whose characteristic <= v ("round down" — pessimistic).
    std::size_t up = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (characteristic(points[i]) >= v) {
        up = i;
        break;
      }
    }
    std::size_t down = 0;
    for (std::size_t i = points.size(); i-- > 0;) {
      if (characteristic(points[i]) <= v) {
        down = i;
        break;
      }
    }
    ++up_counts[up];
    ++down_counts[down];
  }

  PenaltyBounds bounds;
  const auto total = static_cast<double>(values.size());
  if (total > 0) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      bounds.lower += sp[i] * static_cast<double>(up_counts[i]) / total;
      bounds.upper += sp[i] * static_cast<double>(down_counts[i]) / total;
    }
  }

  if (attribution != nullptr) {
    attribution->matrix_sizes = surface_.matrix_sizes();
    attribution->round_up_counts = std::move(up_counts);
    attribution->round_down_counts = std::move(down_counts);
    attribution->total = values.size();
  }
  return bounds;
}

SlackPrediction SlackModel::predict(const trace::Trace& app_trace, int parallelism,
                                    SimDuration slack) const {
  SlackPrediction prediction;
  prediction.slack = slack;
  prediction.parallelism = parallelism;
  prediction.fractions = trace::runtime_fractions(app_trace);

  std::vector<double> kernel_us;
  std::vector<double> transfer_mib;
  for (const auto& op : app_trace.ops()) {
    if (op.kind == gpu::OpKind::kKernel) {
      kernel_us.push_back(op.duration().us());
    } else {
      transfer_mib.push_back(to_mib(op.bytes));
    }
  }

  prediction.kernel = equation3(kernel_us, /*use_kernel_characteristic=*/true, parallelism,
                                slack, &prediction.kernel_bins);
  prediction.memory = equation3(transfer_mib, /*use_kernel_characteristic=*/false, parallelism,
                                slack, &prediction.memory_bins);

  // Equation 2.
  prediction.total.lower = prediction.fractions.kernel * prediction.kernel.lower +
                           prediction.fractions.memory * prediction.memory.lower;
  prediction.total.upper = prediction.fractions.kernel * prediction.kernel.upper +
                           prediction.fractions.memory * prediction.memory.upper;
  return prediction;
}

}  // namespace rsd::model
