// The proxy response surface: slack penalty as a function of
// (matrix size, parallelism, slack), built from a Figure-3 sweep.
//
// This is the lookup table the paper's prediction method interrogates: an
// application's kernel durations and transfer sizes are mapped onto proxy
// matrix sizes, and each matrix size contributes its measured penalty.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/units.hpp"
#include "proxy/proxy.hpp"

namespace rsd::model {

/// Per-matrix-size characteristics (the Table II columns the mapping uses).
struct ProxyPoint {
  std::int64_t matrix_n = 0;
  double kernel_us = 0.0;     ///< Single-kernel duration.
  double transfer_mib = 0.0;  ///< One matrix's transfer size.
};

class ResponseSurface {
 public:
  /// Build from sweep points (zero-slack points define the baselines and
  /// are not stored as penalties).
  [[nodiscard]] static ResponseSurface from_sweep(const std::vector<proxy::SweepPoint>& sweep);

  /// Slack penalty SP = normalized_runtime - 1 for the given cell.
  /// Slack values between sampled points are log-linearly interpolated;
  /// values outside the sampled range clamp to the nearest sample.
  /// `threads` must be a sampled thread count for the given size; if the
  /// exact (size, threads) cell is missing (e.g. 2^15 at 4+ threads was
  /// excluded for memory), the nearest available thread count is used.
  [[nodiscard]] double penalty(std::int64_t matrix_n, int threads, SimDuration slack) const;

  /// Matrix sizes in ascending order.
  [[nodiscard]] std::vector<std::int64_t> matrix_sizes() const;
  [[nodiscard]] std::vector<int> thread_counts(std::int64_t matrix_n) const;

  /// Proxy characteristics in ascending matrix-size order.
  [[nodiscard]] const std::vector<ProxyPoint>& points() const { return points_; }

  [[nodiscard]] bool empty() const { return cells_.empty(); }

 private:
  struct CellKey {
    std::int64_t matrix_n;
    int threads;
    auto operator<=>(const CellKey&) const = default;
  };

  /// slack (ns) -> penalty, per cell.
  std::map<CellKey, std::map<std::int64_t, double>> cells_;
  std::vector<ProxyPoint> points_;
};

}  // namespace rsd::model
