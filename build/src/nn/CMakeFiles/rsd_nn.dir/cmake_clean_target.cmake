file(REMOVE_RECURSE
  "librsd_nn.a"
)
