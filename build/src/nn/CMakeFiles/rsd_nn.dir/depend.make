# Empty dependencies file for rsd_nn.
# This may be replaced when dependencies are built.
