file(REMOVE_RECURSE
  "CMakeFiles/rsd_nn.dir/layers.cpp.o"
  "CMakeFiles/rsd_nn.dir/layers.cpp.o.d"
  "CMakeFiles/rsd_nn.dir/network.cpp.o"
  "CMakeFiles/rsd_nn.dir/network.cpp.o.d"
  "librsd_nn.a"
  "librsd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
