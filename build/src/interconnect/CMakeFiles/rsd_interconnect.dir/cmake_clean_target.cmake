file(REMOVE_RECURSE
  "librsd_interconnect.a"
)
