# Empty dependencies file for rsd_interconnect.
# This may be replaced when dependencies are built.
