file(REMOVE_RECURSE
  "CMakeFiles/rsd_interconnect.dir/link.cpp.o"
  "CMakeFiles/rsd_interconnect.dir/link.cpp.o.d"
  "librsd_interconnect.a"
  "librsd_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
