file(REMOVE_RECURSE
  "CMakeFiles/rsd_apps.dir/cosmoflow.cpp.o"
  "CMakeFiles/rsd_apps.dir/cosmoflow.cpp.o.d"
  "CMakeFiles/rsd_apps.dir/lammps.cpp.o"
  "CMakeFiles/rsd_apps.dir/lammps.cpp.o.d"
  "CMakeFiles/rsd_apps.dir/scaling.cpp.o"
  "CMakeFiles/rsd_apps.dir/scaling.cpp.o.d"
  "librsd_apps.a"
  "librsd_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
