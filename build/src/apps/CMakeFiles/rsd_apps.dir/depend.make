# Empty dependencies file for rsd_apps.
# This may be replaced when dependencies are built.
