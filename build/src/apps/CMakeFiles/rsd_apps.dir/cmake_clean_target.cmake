file(REMOVE_RECURSE
  "librsd_apps.a"
)
