file(REMOVE_RECURSE
  "CMakeFiles/rsd_trace.dir/analysis.cpp.o"
  "CMakeFiles/rsd_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/rsd_trace.dir/import.cpp.o"
  "CMakeFiles/rsd_trace.dir/import.cpp.o.d"
  "CMakeFiles/rsd_trace.dir/trace.cpp.o"
  "CMakeFiles/rsd_trace.dir/trace.cpp.o.d"
  "librsd_trace.a"
  "librsd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
