# Empty dependencies file for rsd_trace.
# This may be replaced when dependencies are built.
