file(REMOVE_RECURSE
  "librsd_trace.a"
)
