file(REMOVE_RECURSE
  "CMakeFiles/rsd_cluster.dir/composition.cpp.o"
  "CMakeFiles/rsd_cluster.dir/composition.cpp.o.d"
  "CMakeFiles/rsd_cluster.dir/scheduler.cpp.o"
  "CMakeFiles/rsd_cluster.dir/scheduler.cpp.o.d"
  "librsd_cluster.a"
  "librsd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
