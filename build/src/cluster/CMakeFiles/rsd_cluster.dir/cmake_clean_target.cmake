file(REMOVE_RECURSE
  "librsd_cluster.a"
)
