# Empty compiler generated dependencies file for rsd_cluster.
# This may be replaced when dependencies are built.
