
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/response_surface.cpp" "src/model/CMakeFiles/rsd_model.dir/response_surface.cpp.o" "gcc" "src/model/CMakeFiles/rsd_model.dir/response_surface.cpp.o.d"
  "/root/repo/src/model/slack_model.cpp" "src/model/CMakeFiles/rsd_model.dir/slack_model.cpp.o" "gcc" "src/model/CMakeFiles/rsd_model.dir/slack_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/rsd_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rsd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/rsd_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/rsd_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
