file(REMOVE_RECURSE
  "CMakeFiles/rsd_model.dir/response_surface.cpp.o"
  "CMakeFiles/rsd_model.dir/response_surface.cpp.o.d"
  "CMakeFiles/rsd_model.dir/slack_model.cpp.o"
  "CMakeFiles/rsd_model.dir/slack_model.cpp.o.d"
  "librsd_model.a"
  "librsd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
