file(REMOVE_RECURSE
  "librsd_model.a"
)
