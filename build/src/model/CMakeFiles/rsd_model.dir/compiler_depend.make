# Empty compiler generated dependencies file for rsd_model.
# This may be replaced when dependencies are built.
