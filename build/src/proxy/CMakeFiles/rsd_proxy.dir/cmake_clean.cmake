file(REMOVE_RECURSE
  "CMakeFiles/rsd_proxy.dir/proxy.cpp.o"
  "CMakeFiles/rsd_proxy.dir/proxy.cpp.o.d"
  "librsd_proxy.a"
  "librsd_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
