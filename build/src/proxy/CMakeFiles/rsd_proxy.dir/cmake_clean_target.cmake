file(REMOVE_RECURSE
  "librsd_proxy.a"
)
