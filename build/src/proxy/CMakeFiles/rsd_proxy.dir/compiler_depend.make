# Empty compiler generated dependencies file for rsd_proxy.
# This may be replaced when dependencies are built.
