file(REMOVE_RECURSE
  "librsd_core.a"
)
