file(REMOVE_RECURSE
  "CMakeFiles/rsd_core.dir/ascii_plot.cpp.o"
  "CMakeFiles/rsd_core.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/rsd_core.dir/histogram.cpp.o"
  "CMakeFiles/rsd_core.dir/histogram.cpp.o.d"
  "CMakeFiles/rsd_core.dir/log.cpp.o"
  "CMakeFiles/rsd_core.dir/log.cpp.o.d"
  "CMakeFiles/rsd_core.dir/stats.cpp.o"
  "CMakeFiles/rsd_core.dir/stats.cpp.o.d"
  "CMakeFiles/rsd_core.dir/table.cpp.o"
  "CMakeFiles/rsd_core.dir/table.cpp.o.d"
  "CMakeFiles/rsd_core.dir/units.cpp.o"
  "CMakeFiles/rsd_core.dir/units.cpp.o.d"
  "librsd_core.a"
  "librsd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
