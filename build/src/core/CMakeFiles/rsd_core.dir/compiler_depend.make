# Empty compiler generated dependencies file for rsd_core.
# This may be replaced when dependencies are built.
