file(REMOVE_RECURSE
  "CMakeFiles/rsd_gpusim.dir/chassis.cpp.o"
  "CMakeFiles/rsd_gpusim.dir/chassis.cpp.o.d"
  "CMakeFiles/rsd_gpusim.dir/context.cpp.o"
  "CMakeFiles/rsd_gpusim.dir/context.cpp.o.d"
  "CMakeFiles/rsd_gpusim.dir/device.cpp.o"
  "CMakeFiles/rsd_gpusim.dir/device.cpp.o.d"
  "librsd_gpusim.a"
  "librsd_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
