file(REMOVE_RECURSE
  "librsd_gpusim.a"
)
