# Empty dependencies file for rsd_gpusim.
# This may be replaced when dependencies are built.
