# Empty dependencies file for rsd_lj.
# This may be replaced when dependencies are built.
