file(REMOVE_RECURSE
  "librsd_lj.a"
)
