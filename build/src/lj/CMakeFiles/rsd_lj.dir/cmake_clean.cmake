file(REMOVE_RECURSE
  "CMakeFiles/rsd_lj.dir/system.cpp.o"
  "CMakeFiles/rsd_lj.dir/system.cpp.o.d"
  "librsd_lj.a"
  "librsd_lj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsd_lj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
