# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("sim")
subdirs("gpusim")
subdirs("interconnect")
subdirs("trace")
subdirs("proxy")
subdirs("model")
subdirs("lj")
subdirs("nn")
subdirs("apps")
subdirs("cluster")
