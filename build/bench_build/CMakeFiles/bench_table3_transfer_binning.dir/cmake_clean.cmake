file(REMOVE_RECURSE
  "../bench/bench_table3_transfer_binning"
  "../bench/bench_table3_transfer_binning.pdb"
  "CMakeFiles/bench_table3_transfer_binning.dir/bench_table3_transfer_binning.cpp.o"
  "CMakeFiles/bench_table3_transfer_binning.dir/bench_table3_transfer_binning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_transfer_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
