# Empty dependencies file for bench_table3_transfer_binning.
# This may be replaced when dependencies are built.
