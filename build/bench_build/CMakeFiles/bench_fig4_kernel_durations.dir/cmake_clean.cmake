file(REMOVE_RECURSE
  "../bench/bench_fig4_kernel_durations"
  "../bench/bench_fig4_kernel_durations.pdb"
  "CMakeFiles/bench_fig4_kernel_durations.dir/bench_fig4_kernel_durations.cpp.o"
  "CMakeFiles/bench_fig4_kernel_durations.dir/bench_fig4_kernel_durations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_kernel_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
