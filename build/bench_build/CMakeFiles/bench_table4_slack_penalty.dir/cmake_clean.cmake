file(REMOVE_RECURSE
  "../bench/bench_table4_slack_penalty"
  "../bench/bench_table4_slack_penalty.pdb"
  "CMakeFiles/bench_table4_slack_penalty.dir/bench_table4_slack_penalty.cpp.o"
  "CMakeFiles/bench_table4_slack_penalty.dir/bench_table4_slack_penalty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_slack_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
