# Empty dependencies file for bench_table4_slack_penalty.
# This may be replaced when dependencies are built.
