file(REMOVE_RECURSE
  "../bench/bench_discussion_composition"
  "../bench/bench_discussion_composition.pdb"
  "CMakeFiles/bench_discussion_composition.dir/bench_discussion_composition.cpp.o"
  "CMakeFiles/bench_discussion_composition.dir/bench_discussion_composition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discussion_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
