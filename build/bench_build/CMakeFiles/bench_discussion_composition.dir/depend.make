# Empty dependencies file for bench_discussion_composition.
# This may be replaced when dependencies are built.
