# Empty dependencies file for bench_ratio_cpu_affinity.
# This may be replaced when dependencies are built.
