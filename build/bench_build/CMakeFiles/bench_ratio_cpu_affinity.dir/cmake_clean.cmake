file(REMOVE_RECURSE
  "../bench/bench_ratio_cpu_affinity"
  "../bench/bench_ratio_cpu_affinity.pdb"
  "CMakeFiles/bench_ratio_cpu_affinity.dir/bench_ratio_cpu_affinity.cpp.o"
  "CMakeFiles/bench_ratio_cpu_affinity.dir/bench_ratio_cpu_affinity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratio_cpu_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
