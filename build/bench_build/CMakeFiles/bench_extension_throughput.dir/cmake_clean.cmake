file(REMOVE_RECURSE
  "../bench/bench_extension_throughput"
  "../bench/bench_extension_throughput.pdb"
  "CMakeFiles/bench_extension_throughput.dir/bench_extension_throughput.cpp.o"
  "CMakeFiles/bench_extension_throughput.dir/bench_extension_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
