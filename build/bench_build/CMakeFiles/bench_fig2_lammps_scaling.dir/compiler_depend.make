# Empty compiler generated dependencies file for bench_fig2_lammps_scaling.
# This may be replaced when dependencies are built.
