file(REMOVE_RECURSE
  "../bench/bench_extension_multigpu_cosmoflow"
  "../bench/bench_extension_multigpu_cosmoflow.pdb"
  "CMakeFiles/bench_extension_multigpu_cosmoflow.dir/bench_extension_multigpu_cosmoflow.cpp.o"
  "CMakeFiles/bench_extension_multigpu_cosmoflow.dir/bench_extension_multigpu_cosmoflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multigpu_cosmoflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
