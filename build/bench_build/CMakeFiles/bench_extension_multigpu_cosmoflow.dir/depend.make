# Empty dependencies file for bench_extension_multigpu_cosmoflow.
# This may be replaced when dependencies are built.
