file(REMOVE_RECURSE
  "../bench/bench_extension_noise_repetition"
  "../bench/bench_extension_noise_repetition.pdb"
  "CMakeFiles/bench_extension_noise_repetition.dir/bench_extension_noise_repetition.cpp.o"
  "CMakeFiles/bench_extension_noise_repetition.dir/bench_extension_noise_repetition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_noise_repetition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
