# Empty dependencies file for bench_extension_noise_repetition.
# This may be replaced when dependencies are built.
