# Empty compiler generated dependencies file for bench_fig5_memcpy_sizes.
# This may be replaced when dependencies are built.
