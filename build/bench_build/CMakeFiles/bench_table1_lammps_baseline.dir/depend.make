# Empty dependencies file for bench_table1_lammps_baseline.
# This may be replaced when dependencies are built.
