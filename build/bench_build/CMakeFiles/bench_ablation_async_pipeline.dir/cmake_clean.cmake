file(REMOVE_RECURSE
  "../bench/bench_ablation_async_pipeline"
  "../bench/bench_ablation_async_pipeline.pdb"
  "CMakeFiles/bench_ablation_async_pipeline.dir/bench_ablation_async_pipeline.cpp.o"
  "CMakeFiles/bench_ablation_async_pipeline.dir/bench_ablation_async_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
