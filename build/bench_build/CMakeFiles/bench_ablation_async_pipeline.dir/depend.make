# Empty dependencies file for bench_ablation_async_pipeline.
# This may be replaced when dependencies are built.
