# Empty dependencies file for bench_ablation_eq1.
# This may be replaced when dependencies are built.
