file(REMOVE_RECURSE
  "../bench/bench_ablation_eq1"
  "../bench/bench_ablation_eq1.pdb"
  "CMakeFiles/bench_ablation_eq1.dir/bench_ablation_eq1.cpp.o"
  "CMakeFiles/bench_ablation_eq1.dir/bench_ablation_eq1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eq1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
