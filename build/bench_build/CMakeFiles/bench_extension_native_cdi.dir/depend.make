# Empty dependencies file for bench_extension_native_cdi.
# This may be replaced when dependencies are built.
