file(REMOVE_RECURSE
  "../bench/bench_extension_native_cdi"
  "../bench/bench_extension_native_cdi.pdb"
  "CMakeFiles/bench_extension_native_cdi.dir/bench_extension_native_cdi.cpp.o"
  "CMakeFiles/bench_extension_native_cdi.dir/bench_extension_native_cdi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_native_cdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
