file(REMOVE_RECURSE
  "../bench/bench_extension_collectives"
  "../bench/bench_extension_collectives.pdb"
  "CMakeFiles/bench_extension_collectives.dir/bench_extension_collectives.cpp.o"
  "CMakeFiles/bench_extension_collectives.dir/bench_extension_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
