file(REMOVE_RECURSE
  "../bench/bench_ablation_binning"
  "../bench/bench_ablation_binning.pdb"
  "CMakeFiles/bench_ablation_binning.dir/bench_ablation_binning.cpp.o"
  "CMakeFiles/bench_ablation_binning.dir/bench_ablation_binning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
