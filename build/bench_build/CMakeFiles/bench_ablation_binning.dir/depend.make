# Empty dependencies file for bench_ablation_binning.
# This may be replaced when dependencies are built.
