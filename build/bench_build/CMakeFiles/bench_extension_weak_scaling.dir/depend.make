# Empty dependencies file for bench_extension_weak_scaling.
# This may be replaced when dependencies are built.
