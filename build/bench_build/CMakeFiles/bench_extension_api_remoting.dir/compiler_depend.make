# Empty compiler generated dependencies file for bench_extension_api_remoting.
# This may be replaced when dependencies are built.
