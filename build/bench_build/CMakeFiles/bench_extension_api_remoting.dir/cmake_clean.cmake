file(REMOVE_RECURSE
  "../bench/bench_extension_api_remoting"
  "../bench/bench_extension_api_remoting.pdb"
  "CMakeFiles/bench_extension_api_remoting.dir/bench_extension_api_remoting.cpp.o"
  "CMakeFiles/bench_extension_api_remoting.dir/bench_extension_api_remoting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_api_remoting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
