# Empty compiler generated dependencies file for bench_ablation_slack_position.
# This may be replaced when dependencies are built.
