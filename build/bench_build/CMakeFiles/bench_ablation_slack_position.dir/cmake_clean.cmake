file(REMOVE_RECURSE
  "../bench/bench_ablation_slack_position"
  "../bench/bench_ablation_slack_position.pdb"
  "CMakeFiles/bench_ablation_slack_position.dir/bench_ablation_slack_position.cpp.o"
  "CMakeFiles/bench_ablation_slack_position.dir/bench_ablation_slack_position.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slack_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
