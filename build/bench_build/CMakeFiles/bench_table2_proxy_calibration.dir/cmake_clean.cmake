file(REMOVE_RECURSE
  "../bench/bench_table2_proxy_calibration"
  "../bench/bench_table2_proxy_calibration.pdb"
  "CMakeFiles/bench_table2_proxy_calibration.dir/bench_table2_proxy_calibration.cpp.o"
  "CMakeFiles/bench_table2_proxy_calibration.dir/bench_table2_proxy_calibration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_proxy_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
