# Empty dependencies file for bench_table2_proxy_calibration.
# This may be replaced when dependencies are built.
