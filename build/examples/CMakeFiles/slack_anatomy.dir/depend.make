# Empty dependencies file for slack_anatomy.
# This may be replaced when dependencies are built.
