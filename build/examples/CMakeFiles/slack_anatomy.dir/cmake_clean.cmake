file(REMOVE_RECURSE
  "CMakeFiles/slack_anatomy.dir/slack_anatomy.cpp.o"
  "CMakeFiles/slack_anatomy.dir/slack_anatomy.cpp.o.d"
  "slack_anatomy"
  "slack_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slack_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
