# Empty compiler generated dependencies file for composition_planner.
# This may be replaced when dependencies are built.
