file(REMOVE_RECURSE
  "CMakeFiles/composition_planner.dir/composition_planner.cpp.o"
  "CMakeFiles/composition_planner.dir/composition_planner.cpp.o.d"
  "composition_planner"
  "composition_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composition_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
