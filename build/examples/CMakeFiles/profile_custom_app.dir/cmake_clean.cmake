file(REMOVE_RECURSE
  "CMakeFiles/profile_custom_app.dir/profile_custom_app.cpp.o"
  "CMakeFiles/profile_custom_app.dir/profile_custom_app.cpp.o.d"
  "profile_custom_app"
  "profile_custom_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_custom_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
