# Empty dependencies file for predict_from_trace.
# This may be replaced when dependencies are built.
