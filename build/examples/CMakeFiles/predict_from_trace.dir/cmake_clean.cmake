file(REMOVE_RECURSE
  "CMakeFiles/predict_from_trace.dir/predict_from_trace.cpp.o"
  "CMakeFiles/predict_from_trace.dir/predict_from_trace.cpp.o.d"
  "predict_from_trace"
  "predict_from_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_from_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
