file(REMOVE_RECURSE
  "CMakeFiles/apps_cosmoflow_test.dir/apps_cosmoflow_test.cpp.o"
  "CMakeFiles/apps_cosmoflow_test.dir/apps_cosmoflow_test.cpp.o.d"
  "apps_cosmoflow_test"
  "apps_cosmoflow_test.pdb"
  "apps_cosmoflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_cosmoflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
