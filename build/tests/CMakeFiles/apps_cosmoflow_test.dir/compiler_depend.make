# Empty compiler generated dependencies file for apps_cosmoflow_test.
# This may be replaced when dependencies are built.
