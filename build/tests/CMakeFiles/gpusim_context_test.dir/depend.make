# Empty dependencies file for gpusim_context_test.
# This may be replaced when dependencies are built.
