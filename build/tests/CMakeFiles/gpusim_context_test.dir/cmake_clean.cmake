file(REMOVE_RECURSE
  "CMakeFiles/gpusim_context_test.dir/gpusim_context_test.cpp.o"
  "CMakeFiles/gpusim_context_test.dir/gpusim_context_test.cpp.o.d"
  "gpusim_context_test"
  "gpusim_context_test.pdb"
  "gpusim_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
