file(REMOVE_RECURSE
  "CMakeFiles/property_physics_test.dir/property_physics_test.cpp.o"
  "CMakeFiles/property_physics_test.dir/property_physics_test.cpp.o.d"
  "property_physics_test"
  "property_physics_test.pdb"
  "property_physics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_physics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
