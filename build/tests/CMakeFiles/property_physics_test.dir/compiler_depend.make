# Empty compiler generated dependencies file for property_physics_test.
# This may be replaced when dependencies are built.
