# Empty compiler generated dependencies file for trace_import_test.
# This may be replaced when dependencies are built.
