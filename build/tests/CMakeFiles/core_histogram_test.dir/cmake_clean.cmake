file(REMOVE_RECURSE
  "CMakeFiles/core_histogram_test.dir/core_histogram_test.cpp.o"
  "CMakeFiles/core_histogram_test.dir/core_histogram_test.cpp.o.d"
  "core_histogram_test"
  "core_histogram_test.pdb"
  "core_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
