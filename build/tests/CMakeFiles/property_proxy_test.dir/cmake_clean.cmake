file(REMOVE_RECURSE
  "CMakeFiles/property_proxy_test.dir/property_proxy_test.cpp.o"
  "CMakeFiles/property_proxy_test.dir/property_proxy_test.cpp.o.d"
  "property_proxy_test"
  "property_proxy_test.pdb"
  "property_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
