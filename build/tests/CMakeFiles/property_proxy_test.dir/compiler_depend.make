# Empty compiler generated dependencies file for property_proxy_test.
# This may be replaced when dependencies are built.
