# Empty dependencies file for gpusim_chassis_test.
# This may be replaced when dependencies are built.
