file(REMOVE_RECURSE
  "CMakeFiles/gpusim_chassis_test.dir/gpusim_chassis_test.cpp.o"
  "CMakeFiles/gpusim_chassis_test.dir/gpusim_chassis_test.cpp.o.d"
  "gpusim_chassis_test"
  "gpusim_chassis_test.pdb"
  "gpusim_chassis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_chassis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
