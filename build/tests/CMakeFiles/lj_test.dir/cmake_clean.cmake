file(REMOVE_RECURSE
  "CMakeFiles/lj_test.dir/lj_test.cpp.o"
  "CMakeFiles/lj_test.dir/lj_test.cpp.o.d"
  "lj_test"
  "lj_test.pdb"
  "lj_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
