# Empty dependencies file for lj_test.
# This may be replaced when dependencies are built.
