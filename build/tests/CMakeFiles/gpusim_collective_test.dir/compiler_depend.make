# Empty compiler generated dependencies file for gpusim_collective_test.
# This may be replaced when dependencies are built.
