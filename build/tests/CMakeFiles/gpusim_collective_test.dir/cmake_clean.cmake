file(REMOVE_RECURSE
  "CMakeFiles/gpusim_collective_test.dir/gpusim_collective_test.cpp.o"
  "CMakeFiles/gpusim_collective_test.dir/gpusim_collective_test.cpp.o.d"
  "gpusim_collective_test"
  "gpusim_collective_test.pdb"
  "gpusim_collective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_collective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
