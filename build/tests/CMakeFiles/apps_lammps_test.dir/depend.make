# Empty dependencies file for apps_lammps_test.
# This may be replaced when dependencies are built.
