file(REMOVE_RECURSE
  "CMakeFiles/apps_lammps_test.dir/apps_lammps_test.cpp.o"
  "CMakeFiles/apps_lammps_test.dir/apps_lammps_test.cpp.o.d"
  "apps_lammps_test"
  "apps_lammps_test.pdb"
  "apps_lammps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_lammps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
