# Empty compiler generated dependencies file for gpusim_native_cdi_test.
# This may be replaced when dependencies are built.
