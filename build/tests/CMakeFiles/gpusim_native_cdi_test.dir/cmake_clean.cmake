file(REMOVE_RECURSE
  "CMakeFiles/gpusim_native_cdi_test.dir/gpusim_native_cdi_test.cpp.o"
  "CMakeFiles/gpusim_native_cdi_test.dir/gpusim_native_cdi_test.cpp.o.d"
  "gpusim_native_cdi_test"
  "gpusim_native_cdi_test.pdb"
  "gpusim_native_cdi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_native_cdi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
