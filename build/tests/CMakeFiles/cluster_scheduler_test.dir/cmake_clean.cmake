file(REMOVE_RECURSE
  "CMakeFiles/cluster_scheduler_test.dir/cluster_scheduler_test.cpp.o"
  "CMakeFiles/cluster_scheduler_test.dir/cluster_scheduler_test.cpp.o.d"
  "cluster_scheduler_test"
  "cluster_scheduler_test.pdb"
  "cluster_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
