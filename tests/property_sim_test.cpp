// Parameterized property suites for the DES substrate: invariants that must
// hold across a sweep of configurations, not just hand-picked examples.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rsd::sim {
namespace {

using namespace rsd::literals;

// ---------------------------------------------------------------------
// Property: N processes serialised by a unary semaphore always finish in
// exactly N * hold_time, in FIFO order, for any N.
class SemaphoreFairness : public testing::TestWithParam<int> {};

TEST_P(SemaphoreFairness, FifoAndExactSerialisation) {
  const int n = GetParam();
  Scheduler sched;
  Semaphore sem{sched, 1};
  std::vector<int> order;
  std::vector<std::int64_t> entry_ns;

  auto proc = [](Scheduler& s, Semaphore& m, std::vector<int>& ord,
                 std::vector<std::int64_t>& t, int id) -> Task<> {
    co_await m.acquire();
    ord.push_back(id);
    t.push_back(s.now().ns());
    co_await delay(7_us);
    m.release();
  };
  for (int i = 0; i < n; ++i) sched.spawn(proc(sched, sem, order, entry_ns, i));
  sched.run();

  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(entry_ns[static_cast<std::size_t>(i)], i * 7'000);
  }
  EXPECT_EQ(sched.now().ns(), n * 7'000);
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Counts, SemaphoreFairness, testing::Values(1, 2, 3, 8, 32, 100));

// ---------------------------------------------------------------------
// Property: with a counting semaphore of k permits, peak concurrency is
// exactly min(k, producers) and total time is ceil(n/k) * hold.
struct ConcurrencyParam {
  int permits;
  int procs;
};

class SemaphoreConcurrency : public testing::TestWithParam<ConcurrencyParam> {};

TEST_P(SemaphoreConcurrency, PeakAndMakespan) {
  const auto [permits, procs] = GetParam();
  Scheduler sched;
  Semaphore sem{sched, permits};
  int active = 0;
  int peak = 0;

  auto proc = [](Semaphore& m, int& act, int& pk) -> Task<> {
    co_await m.acquire();
    ++act;
    pk = std::max(pk, act);
    co_await delay(10_us);
    --act;
    m.release();
  };
  for (int i = 0; i < procs; ++i) sched.spawn(proc(sem, active, peak));
  sched.run();

  EXPECT_EQ(peak, std::min(permits, procs));
  const int waves = (procs + permits - 1) / permits;
  EXPECT_EQ(sched.now().ns(), waves * 10'000);
}

INSTANTIATE_TEST_SUITE_P(Grid, SemaphoreConcurrency,
                         testing::Values(ConcurrencyParam{1, 5}, ConcurrencyParam{2, 5},
                                         ConcurrencyParam{3, 9}, ConcurrencyParam{4, 4},
                                         ConcurrencyParam{8, 3}, ConcurrencyParam{16, 64}));

// ---------------------------------------------------------------------
// Property: channel preserves order and conserves items for any
// producer/consumer split.
struct ChannelParam {
  int producers;
  int items_each;
};

class ChannelConservation : public testing::TestWithParam<ChannelParam> {};

TEST_P(ChannelConservation, AllItemsDeliveredOnce) {
  const auto [producers, items_each] = GetParam();
  Scheduler sched;
  Channel<int> ch{sched};
  std::vector<int> received;
  const int total = producers * items_each;

  auto producer = [](Channel<int>& c, int base, int count) -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await delay(SimDuration{(base * 13 + i * 7) % 50 + 1});
      c.put(base * 1000 + i);
    }
  };
  auto consumer = [](Channel<int>& c, std::vector<int>& out, int count) -> Task<> {
    for (int i = 0; i < count; ++i) out.push_back(co_await c.get());
  };
  for (int p = 0; p < producers; ++p) sched.spawn(producer(ch, p, items_each));
  sched.spawn(consumer(ch, received, total));
  sched.run();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(total));
  std::sort(received.begin(), received.end());
  EXPECT_EQ(std::adjacent_find(received.begin(), received.end()), received.end())
      << "duplicate delivery";
  // Per-producer order preserved: values with the same base are increasing
  // in the original (pre-sort) sequence — verified via conservation + FIFO
  // channel semantics (covered by sim_sync_test); here we assert totals.
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Splits, ChannelConservation,
                         testing::Values(ChannelParam{1, 1}, ChannelParam{1, 50},
                                         ChannelParam{4, 10}, ChannelParam{10, 4},
                                         ChannelParam{16, 16}));

// ---------------------------------------------------------------------
// Property: the scheduler's clock is monotone through arbitrary workloads,
// and the same workload replays to the identical final time.
class ClockMonotonicity : public testing::TestWithParam<int> {};

TEST_P(ClockMonotonicity, MonotoneAndReplayable) {
  const int seed = GetParam();
  auto run = [seed] {
    Scheduler sched;
    std::vector<std::int64_t> stamps;
    auto proc = [](Scheduler& s, std::vector<std::int64_t>& t, int salt) -> Task<> {
      for (int i = 0; i < 20; ++i) {
        co_await delay(SimDuration{(salt * 31 + i * 17) % 97 + 1});
        t.push_back(s.now().ns());
      }
    };
    for (int p = 0; p < 8; ++p) sched.spawn(proc(sched, stamps, seed * 8 + p));
    sched.run();
    return stamps;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockMonotonicity, testing::Range(0, 6));

}  // namespace
}  // namespace rsd::sim
