// Parameterized property suites for the prediction model and trace
// analysis: invariants of Equations 2-3 and of the NSys-style metrics,
// checked across generated configurations.
#include <gtest/gtest.h>

#include "apps/lammps.hpp"
#include "core/rng.hpp"
#include "model/slack_model.hpp"
#include "trace/analysis.hpp"

namespace rsd {
namespace {

using namespace rsd::literals;

/// A synthetic monotone surface: penalty decreasing in matrix size,
/// increasing in slack — the shape a valid Figure-3 sweep always has for
/// serial submission.
std::vector<proxy::SweepPoint> monotone_sweep() {
  std::vector<proxy::SweepPoint> sweep;
  const std::int64_t sizes[] = {512, 2048, 8192, 32768};
  const double base_penalty[] = {0.8, 0.2, 0.05, 0.01};
  const SimDuration slacks[] = {SimDuration::zero(), 10_us, 100_us, 1_ms};
  for (int si = 0; si < 4; ++si) {
    for (int ki = 0; ki < 4; ++ki) {
      proxy::SweepPoint p;
      p.matrix_n = sizes[si];
      p.threads = 1;
      p.slack = slacks[ki];
      p.normalized_runtime = 1.0 + base_penalty[si] * ki;
      p.result.matrix_n = sizes[si];
      p.result.kernel_duration = duration::microseconds(10.0 * std::pow(4.0, si));
      p.result.matrix_bytes =
          static_cast<Bytes>(sizes[si]) * static_cast<Bytes>(sizes[si]) * 4;
      sweep.push_back(p);
    }
  }
  return sweep;
}

// ---------------------------------------------------------------------
// Property: for any element set, lower <= upper (on a surface whose
// penalty is monotone non-increasing in matrix size).
class BoundsOrdering : public testing::TestWithParam<int> {};  // seed

TEST_P(BoundsOrdering, LowerNeverExceedsUpper) {
  const model::SlackModel slack_model{model::ResponseSurface::from_sweep(monotone_sweep())};
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.lognormal(3.0, 2.0));
  for (const SimDuration slack : {10_us, 100_us, 1_ms}) {
    const auto kernel = slack_model.equation3(values, true, 1, slack);
    EXPECT_LE(kernel.lower, kernel.upper + 1e-12);
    const auto memory = slack_model.equation3(values, false, 1, slack);
    EXPECT_LE(memory.lower, memory.upper + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsOrdering, testing::Range(1, 8));

// ---------------------------------------------------------------------
// Property: predictions are monotone non-decreasing in slack.
class PredictionMonotonicity : public testing::TestWithParam<int> {};  // seed

TEST_P(PredictionMonotonicity, TotalBoundsNondecreasingInSlack) {
  const model::SlackModel slack_model{model::ResponseSurface::from_sweep(monotone_sweep())};
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 77};
  trace::Trace t;
  SimTime cursor = SimTime::zero();
  for (int i = 0; i < 60; ++i) {
    gpu::OpRecord op;
    const bool kernel = rng.uniform() < 0.5;
    op.kind = kernel ? gpu::OpKind::kKernel
                     : (rng.uniform() < 0.5 ? gpu::OpKind::kMemcpyH2D
                                            : gpu::OpKind::kMemcpyD2H);
    op.name = kernel ? "k" : "m";
    op.submit = cursor;
    op.start = cursor;
    const auto dur = duration::microseconds(rng.lognormal(4.0, 1.5));
    op.end = cursor + dur;
    op.bytes = kernel ? 0 : static_cast<Bytes>(rng.lognormal(14.0, 2.0));
    cursor = op.end + duration::microseconds(rng.uniform(1.0, 50.0));
    t.add_op(op);
  }
  double prev_lower = -1.0;
  double prev_upper = -1.0;
  for (const SimDuration slack : {SimDuration::zero(), 10_us, 100_us, 1_ms}) {
    const auto pred = slack_model.predict(t, 1, slack);
    EXPECT_GE(pred.total.lower, prev_lower - 1e-12);
    EXPECT_GE(pred.total.upper, prev_upper - 1e-12);
    prev_lower = pred.total.lower;
    prev_upper = pred.total.upper;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictionMonotonicity, testing::Range(1, 6));

// ---------------------------------------------------------------------
// Property: runtime fractions are in [0, 1] and attribution counts are
// conserved, on real application traces of varying shape.
struct LammpsTraceParam {
  int box;
  int procs;
};

class TraceAnalysisOnAppTraces : public testing::TestWithParam<LammpsTraceParam> {};

TEST_P(TraceAnalysisOnAppTraces, FractionsBoundedAndCountsConserved) {
  const auto [box, procs] = GetParam();
  apps::LammpsConfig cfg;
  cfg.box = box;
  cfg.procs = procs;
  cfg.steps = 20;
  cfg.capture_trace = true;
  const auto run = apps::run_lammps(cfg);

  const auto f = trace::runtime_fractions(run.trace);
  EXPECT_GE(f.kernel, 0.0);
  EXPECT_LE(f.kernel, 1.0);
  EXPECT_GE(f.memory, 0.0);
  EXPECT_LE(f.memory, 1.0);

  const auto hist = trace::bin_transfer_sizes(run.trace, {1.0, 16.0, 256.0, 4096.0});
  EXPECT_EQ(hist.total(), run.trace.memcpy_count());

  const auto violins = trace::kernel_duration_violins(run.trace, 10);
  ASSERT_FALSE(violins.empty());
  EXPECT_EQ(violins.back().label, "Total");
  EXPECT_EQ(violins.back().count, run.trace.kernel_count());
  // Per-kernel counts sum to the total (top_n covers all names here).
  std::size_t sum = 0;
  for (std::size_t i = 0; i + 1 < violins.size(); ++i) sum += violins[i].count;
  EXPECT_EQ(sum, violins.back().count);
}

INSTANTIATE_TEST_SUITE_P(Configs, TraceAnalysisOnAppTraces,
                         testing::Values(LammpsTraceParam{20, 1}, LammpsTraceParam{20, 8},
                                         LammpsTraceParam{60, 2}, LammpsTraceParam{60, 12},
                                         LammpsTraceParam{100, 4}));

// ---------------------------------------------------------------------
// Property: Eq.3 attribution counts always sum to the element count, both
// round-up and round-down, for any parallelism the surface knows.
class AttributionConservation : public testing::TestWithParam<int> {};  // element count

TEST_P(AttributionConservation, CountsSumToTotal) {
  const model::SlackModel slack_model{model::ResponseSurface::from_sweep(monotone_sweep())};
  Rng rng{99};
  std::vector<double> values;
  for (int i = 0; i < GetParam(); ++i) values.push_back(rng.lognormal(2.0, 3.0));
  model::BinnedAttribution attr;
  (void)slack_model.equation3(values, true, 1, 100_us, &attr);
  std::size_t up = 0;
  std::size_t down = 0;
  for (std::size_t i = 0; i < attr.matrix_sizes.size(); ++i) {
    up += attr.round_up_counts[i];
    down += attr.round_down_counts[i];
  }
  EXPECT_EQ(up, values.size());
  EXPECT_EQ(down, values.size());
  EXPECT_EQ(attr.total, values.size());
}

INSTANTIATE_TEST_SUITE_P(Counts, AttributionConservation, testing::Values(0, 1, 7, 500));

}  // namespace
}  // namespace rsd
