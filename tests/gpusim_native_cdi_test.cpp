// Native command-path (CommandPath) semantics: commands and completions
// crossing the network, and equivalence with the sleep-based emulation.
#include <gtest/gtest.h>

#include "gpusim/context.hpp"
#include "gpusim/device.hpp"
#include "interconnect/link.hpp"
#include "proxy/proxy.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace rsd::gpu {
namespace {

using namespace rsd::literals;

struct Fixture {
  sim::Scheduler sched;
  Device dev{sched, DeviceParams{}, interconnect::make_pcie_gen4_x16()};
};

TEST(CommandPath, LocalIsZero) {
  const CommandPath local = CommandPath::local();
  EXPECT_EQ(local.submit_latency, SimDuration::zero());
  EXPECT_EQ(local.completion_latency, SimDuration::zero());
  EXPECT_EQ(local.round_trip(), SimDuration::zero());
}

TEST(CommandPath, OverNetworkUsesSlackBothWays) {
  interconnect::CdiNetworkParams net;
  net.fibre_km = 20.0;
  const CommandPath path = CommandPath::over_network(net);
  EXPECT_EQ(path.submit_latency, net.slack());
  EXPECT_EQ(path.completion_latency, net.slack());
  EXPECT_GT(path.round_trip(), 200_us);
}

TEST(CommandPath, BlockingCallGainsRoundTrip) {
  Fixture local;
  Fixture remote;
  SimDuration local_time;
  SimDuration remote_time;

  auto run = [](Fixture& f, CommandPath path, SimDuration& out) {
    f.sched.spawn([](Fixture& fx, CommandPath p, SimDuration& o) -> sim::Task<> {
      Context ctx{fx.dev, 0, nullptr, 0, p};
      const SimTime before = fx.sched.now();
      co_await ctx.launch_sync("k", 1_ms);
      o = fx.sched.now() - before;
    }(f, path, out));
    f.sched.run();
  };
  run(local, CommandPath::local(), local_time);
  run(remote, CommandPath{100_us, 100_us}, remote_time);
  EXPECT_EQ(remote_time - local_time, 200_us);
}

TEST(CommandPath, AsyncLaunchReturnsLocally) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev, 0, nullptr, 0, CommandPath{1_ms, 1_ms}};
    const SimTime before = fx.sched.now();
    co_await ctx.launch("k", 10_ms);
    // Host returns after submit cost only; the command is still in flight.
    EXPECT_LT(fx.sched.now() - before, 100_us);
    co_await ctx.synchronize();
    // Sync sees: 1 ms submit travel + 10 ms kernel + 1 ms completion.
    EXPECT_GT(fx.sched.now() - before, 12_ms);
  }(f));
  f.sched.run();
}

TEST(CommandPath, StreamOrderPreservedOverNetwork) {
  Fixture f;
  trace::TraceRecorder rec;
  f.dev.set_record_sink(&rec);
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev, 0, nullptr, 0, CommandPath{50_us, 50_us}};
    co_await ctx.launch("k1", 1_ms);
    co_await ctx.launch("k2", 1_ms);
    co_await ctx.synchronize();
  }(f));
  f.sched.run();
  ASSERT_EQ(rec.trace().ops().size(), 2u);
  EXPECT_EQ(rec.trace().ops()[0].name, "k1");
  EXPECT_GE(rec.trace().ops()[1].start, rec.trace().ops()[0].end);
}

TEST(NativeVsEmulation, ProxyWallTimesAgree) {
  // The headline validation: sleeping 2L per call on a local device
  // reproduces the native path's wall time for the synchronous proxy.
  const proxy::ProxyRunner runner;
  for (const double one_way_us : {10.0, 100.0}) {
    const SimDuration l = duration::microseconds(one_way_us);

    proxy::ProxyConfig native;
    native.matrix_n = 1 << 11;
    native.max_iterations = 20;
    native.command_path = CommandPath{l, l};
    const auto native_result = runner.run(native);

    proxy::ProxyConfig emulated;
    emulated.matrix_n = 1 << 11;
    emulated.max_iterations = 20;
    emulated.slack = l * std::int64_t{2};
    const auto emulated_result = runner.run(emulated);

    const double ratio = emulated_result.loop_runtime / native_result.loop_runtime;
    EXPECT_NEAR(ratio, 1.0, 0.05) << "one-way " << one_way_us << " us";
  }
}

}  // namespace
}  // namespace rsd::gpu
