// Regression tests for the allocation-free simulator core:
//
//  * Root-sweep compaction: 200k short-lived root tasks must not grow the
//    scheduler's root list beyond a bounded capacity, and the adaptive
//    threshold must keep total sweep work O(total spawns), not
//    O(spawns * live).
//  * Frame arena: steady-state coroutine churn performs ZERO general-heap
//    allocations per op (this binary links the counting operator
//    new/delete from rsd_alloc_counter).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/alloc_counter.hpp"
#include "sim/arena.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace {

using namespace rsd;
using namespace rsd::literals;

sim::Task<> short_lived(int hops) {
  for (int i = 0; i < hops; ++i) co_await sim::delay(1_us);
}

/// A generator that spawns `total` short-lived roots, a few at a time, so
/// the live population stays small while the spawn count grows huge —
/// the shape of a proxy sweep's op stream.
sim::Task<> generator(sim::Scheduler& sched, int total) {
  for (int i = 0; i < total; ++i) {
    sched.spawn(short_lived(2));
    co_await sim::delay(1_us);
  }
}

sim::Task<> wait_on(std::shared_ptr<sim::Event> ev) { co_await ev->wait(); }

sim::Task<> churn_then_release(sim::Scheduler& sched, int total,
                               std::shared_ptr<sim::Event> ev) {
  for (int i = 0; i < total; ++i) {
    sched.spawn(short_lived(2));
    co_await sim::delay(1_us);
  }
  ev->trigger();
}

TEST(RootSweep, TwoHundredThousandShortLivedRootsStayBounded) {
  constexpr int kRoots = 200'000;
  sim::Scheduler sched;
  sched.spawn(generator(sched, kRoots));
  sched.run();

  EXPECT_EQ(sched.unfinished_count(), 0u);
  // The live population never exceeds a few tasks, so compaction must keep
  // the backing storage at the sweep threshold's scale, nowhere near 200k.
  EXPECT_LE(sched.root_capacity(), 16'384u);
  EXPECT_GE(sched.sweep_count(), 10u);
  // O(n) total sweep work: with a threshold of 4096 and a tiny live set,
  // scanning is ~(spawns / 4096) sweeps x ~4096 slots each. Allow 4x slack.
  EXPECT_LE(sched.sweep_scanned(), static_cast<std::uint64_t>(kRoots) * 4);
}

TEST(RootSweep, AdaptiveThresholdWithLargeLivePopulation) {
  // A long-lived fleet larger than the base threshold must not be rescanned
  // on every subsequent spawn: the threshold doubles with the live count.
  constexpr int kLive = 6'000;
  constexpr int kChurn = 50'000;
  sim::Scheduler sched;
  // Long-lived tasks: parked on an event until the whole churn has passed.
  auto done = sim::make_event(sched);
  for (int i = 0; i < kLive; ++i) sched.spawn(wait_on(done));
  sched.spawn(churn_then_release(sched, kChurn, done));
  sched.run();

  EXPECT_EQ(sched.unfinished_count(), 0u);
  // Without the adaptive threshold this would be ~kChurn sweeps of ~kLive
  // slots each (300M scanned). With it, each sweep doubles the distance to
  // the next, so total work stays within a small multiple of total spawns.
  EXPECT_LE(sched.sweep_scanned(), static_cast<std::uint64_t>(kLive + kChurn) * 8);
}

/// Steady-state op churn allocates nothing from the general heap: frames
/// come from the FrameArena free lists, events from allocate_shared over
/// the arena, and the scheduler queue/roots reuse their vectors.
TEST(FrameArena, SteadyStateChurnIsAllocationFree) {
  sim::Scheduler sched;

  auto op = [](sim::Scheduler& s) -> sim::Task<> {
    auto done = sim::make_event(s);
    s.spawn([](std::shared_ptr<sim::Event> ev) -> sim::Task<> {
      co_await sim::delay(1_us);
      ev->trigger();
    }(done));
    co_await done->wait();
  };

  // Warm-up: populate free lists, grow the event queue and root vector past
  // their high-water marks, and get past the first root sweep.
  sched.spawn([](sim::Scheduler& s, auto& body) -> sim::Task<> {
    for (int i = 0; i < 10'000; ++i) co_await body(s);
  }(sched, op));
  sched.run();

  const std::int64_t before = alloc::allocation_count();
  sched.spawn([](sim::Scheduler& s, auto& body) -> sim::Task<> {
    for (int i = 0; i < 10'000; ++i) co_await body(s);
  }(sched, op));
  sched.run();
  const std::int64_t during = alloc::allocation_count() - before;

  EXPECT_EQ(during, 0) << "steady-state simulation touched the general heap";
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

TEST(FrameArena, RecyclesFramesAndReportsStats) {
  auto& arena = sim::FrameArena::local();
  const auto before = arena.stats();

  void* a = arena.allocate(100);
  arena.deallocate(a);
  void* b = arena.allocate(100);  // same bucket: must reuse a's block
  EXPECT_EQ(a, b);
  arena.deallocate(b);

  const auto after = arena.stats();
  EXPECT_GE(after.reused, before.reused + 1);

  // Oversize blocks pass through to the heap and still round-trip.
  void* big = arena.allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  arena.deallocate(big);
  EXPECT_EQ(arena.stats().oversize, before.oversize + 1);
}

TEST(AllocCounter, CountsHeapTraffic) {
  const std::int64_t before = alloc::allocation_count();
  auto* p = new std::uint64_t{42};
  EXPECT_GT(alloc::allocation_count(), before);
  const std::int64_t frees = alloc::deallocation_count();
  delete p;
  EXPECT_GT(alloc::deallocation_count(), frees);
}

}  // namespace
