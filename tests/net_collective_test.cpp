// Event-driven collectives vs the closed-form alpha-beta models: on an
// uncontended fabric the scheduled ring/tree algorithms must reproduce
// gpu::ring_allreduce_time / gpu::tree_allreduce_time to the nanosecond —
// the analytic forms stay in the tree as this cross-check.
#include "interconnect/collective.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "gpusim/collective.hpp"
#include "interconnect/fabric.hpp"
#include "wl/program.hpp"

namespace rsd::net {
namespace {

constexpr int kGpus = 8;
constexpr Bytes kPayload = 32 * kMiB;  // divisible by kGpus: no chunk rounding

FabricParams fabric_params(FabricKind kind) {
  FabricParams params;
  params.kind = kind;
  params.gpus = kGpus;
  return params;
}

gpu::GpuInterconnect analytic_link(const FabricParams& params) {
  return gpu::GpuInterconnect{"fabric-link", params.link_bandwidth_gib_s,
                              params.link_latency};
}

TEST(NetCollective, RingMatchesClosedFormOnFullMesh) {
  const FabricParams params = fabric_params(FabricKind::kFullMesh);
  const Topology topo = build_fabric(params);
  const AllreduceReport report = measure_allreduce(topo, Algorithm::kRing, kPayload, kGpus);

  EXPECT_EQ(report.duration, gpu::ring_allreduce_time(kPayload, kGpus, analytic_link(params)));
  // 2(n-1) phases, one chunk per rank per phase, all on dedicated links.
  EXPECT_EQ(report.transfers, static_cast<std::uint64_t>(2 * (kGpus - 1) * kGpus));
  EXPECT_EQ(report.contended_transfers, 0u);
  EXPECT_EQ(report.reconfigurations, 0u);
}

TEST(NetCollective, RingMatchesClosedFormOnRingFabric) {
  // The ring algorithm only talks to ring successors, so the ring fabric
  // is just as uncontended as the full mesh and lands on the same time.
  const FabricParams params = fabric_params(FabricKind::kRing);
  const Topology topo = build_fabric(params);
  const AllreduceReport report = measure_allreduce(topo, Algorithm::kRing, kPayload, kGpus);

  EXPECT_EQ(report.duration, gpu::ring_allreduce_time(kPayload, kGpus, analytic_link(params)));
  EXPECT_EQ(report.contended_transfers, 0u);
}

TEST(NetCollective, TreeMatchesClosedFormOnFullMesh) {
  const FabricParams params = fabric_params(FabricKind::kFullMesh);
  const Topology topo = build_fabric(params);
  const AllreduceReport report = measure_allreduce(topo, Algorithm::kTree, kPayload, kGpus);

  EXPECT_EQ(report.duration, gpu::tree_allreduce_time(kPayload, kGpus, analytic_link(params)));
  // Binomial reduce + broadcast: n-1 full-payload sends each way.
  EXPECT_EQ(report.transfers, static_cast<std::uint64_t>(2 * (kGpus - 1)));
  EXPECT_EQ(report.contended_transfers, 0u);
}

TEST(NetCollective, HierarchicalSingleChassisIsRingPlusFanOut) {
  // One chassis: stage 1 is the plain ring, the leader "ring" is a
  // singleton no-op, and stage 3 fans the payload from the leader to the
  // other n-1 ranks over dedicated mesh links in one concurrent round.
  const FabricParams params = fabric_params(FabricKind::kFullMesh);
  const Topology topo = build_fabric(params);
  const AllreduceReport report =
      measure_allreduce(topo, Algorithm::kHierarchical, kPayload, kGpus);

  const gpu::GpuInterconnect link = analytic_link(params);
  const SimDuration fan_out = gpu::detail::transfer(link, static_cast<double>(kPayload));
  EXPECT_EQ(report.duration, gpu::ring_allreduce_time(kPayload, kGpus, link) + fan_out);
  EXPECT_EQ(report.contended_transfers, 0u);
}

TEST(NetCollective, SwitchedFabricsChargeTheExtraHop) {
  // Store-and-forward through the electrical switch serialises the payload
  // twice and pays the forwarding latency, so the single-hop closed form
  // is a strict lower bound there.
  const FabricParams params = fabric_params(FabricKind::kElectricalSwitch);
  const Topology topo = build_fabric(params);
  const AllreduceReport report = measure_allreduce(topo, Algorithm::kRing, kPayload, kGpus);
  EXPECT_GT(report.duration, gpu::ring_allreduce_time(kPayload, kGpus, analytic_link(params)));
}

TEST(NetCollective, OcsPaysOneReconfigurationPerIngressPort) {
  // The ring algorithm gives every GPU one fixed successor, so each
  // GPU-to-OCS ingress port is configured exactly once and then reused
  // for all 2(n-1) phases.
  const FabricParams params = fabric_params(FabricKind::kOpticalCircuit);
  const Topology ocs = build_fabric(params);
  const AllreduceReport o = measure_allreduce(ocs, Algorithm::kRing, kPayload, kGpus);
  EXPECT_EQ(o.reconfigurations, static_cast<std::uint64_t>(kGpus));

  const Topology eswitch = build_fabric(fabric_params(FabricKind::kElectricalSwitch));
  const AllreduceReport e = measure_allreduce(eswitch, Algorithm::kRing, kPayload, kGpus);
  EXPECT_EQ(e.reconfigurations, 0u);
  // Reconfiguration happens once up front; the per-phase cost is cheaper
  // than the electrical switch's forwarding, so the two fabrics must not
  // coincide.
  EXPECT_NE(o.duration, e.duration);
}

TEST(NetCollective, UsageSamplerAccountsEverySerializedNanosecond) {
  // The per-link usage buckets must tally exactly the busy time and
  // transfer count the network's cumulative counters report, and each
  // bucket is internally consistent (busy fits, queue depth sane).
  const FabricParams params = fabric_params(FabricKind::kFullMesh);
  const Topology topo = build_fabric(params);
  std::vector<LinkUsageSample> usage;
  const AllreduceReport report =
      measure_allreduce(topo, Algorithm::kRing, kPayload, kGpus, &usage);
  ASSERT_FALSE(usage.empty());

  std::int64_t busy = 0;
  std::uint64_t transfers = 0;
  for (std::size_t i = 0; i < usage.size(); ++i) {
    const LinkUsageSample& s = usage[i];
    EXPECT_GE(s.busy_ns, 0);
    EXPECT_GE(s.max_queue_depth, 0);
    busy += s.busy_ns;
    transfers += s.transfers;
    if (i > 0) {
      // Sorted by (link, bucket start), strictly: one sample per bucket.
      const LinkUsageSample& prev = usage[i - 1];
      EXPECT_TRUE(prev.link < s.link ||
                  (prev.link == s.link && prev.bucket_start_ns < s.bucket_start_ns));
    }
  }
  EXPECT_EQ(transfers, report.transfers);
  // Busy time books into the bucket where serialization began, so the
  // total equals the sum of serialization times: transfers * chunk time
  // on the uncontended mesh ring.
  EXPECT_GT(busy, 0);
}

TEST(NetCollective, SingleParticipantIsFree) {
  const Topology topo = build_fabric(fabric_params(FabricKind::kFullMesh));
  const AllreduceReport report = measure_allreduce(topo, Algorithm::kRing, kPayload, 1);
  EXPECT_EQ(report.duration, SimDuration::zero());
  EXPECT_EQ(report.transfers, 0u);
}

TEST(NetCollective, RejectsBadParticipantCounts) {
  const Topology topo = build_fabric(fabric_params(FabricKind::kFullMesh));
  EXPECT_THROW((void)measure_allreduce(topo, Algorithm::kRing, kPayload, 0), Error);
  EXPECT_THROW((void)measure_allreduce(topo, Algorithm::kRing, kPayload, kGpus + 1), Error);
}

TEST(NetCollective, ProgramValidateRejectsOversubscribedAllreduce) {
  wl::Program program;
  wl::Lane& lane = program.lanes.emplace_back();
  lane.allreduce(kPayload, 4, NameRef{"grad_exchange"});

  EXPECT_NO_THROW(program.validate());     // structural checks only
  EXPECT_NO_THROW(program.validate(4));    // exactly the machine's size
  EXPECT_THROW(program.validate(2), Error);  // 4 participants, 2 devices
}

}  // namespace
}  // namespace rsd::net
