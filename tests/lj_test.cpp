#include "lj/system.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rsd::lj {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5.0);
  EXPECT_DOUBLE_EQ(s.y, 7.0);
  EXPECT_DOUBLE_EQ(s.z, 9.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ((a * 2.0).z, 6.0);
  const Vec3 hyp{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(hyp.norm(), 5.0);
}

TEST(Lattice, FccAtomCountIsFourCellsCubed) {
  // The paper's box-size convention: box 20 <-> 4*20^3 = 32,000 atoms.
  EXPECT_EQ(System(2).atom_count(), 32);
  EXPECT_EQ(System(3).atom_count(), 108);
  EXPECT_EQ(System(5).atom_count(), 500);
}

TEST(Lattice, DensityMatchesRequest) {
  const System sys{5};
  const double volume = std::pow(sys.box_length(), 3);
  EXPECT_NEAR(static_cast<double>(sys.atom_count()) / volume, 0.8442, 1e-12);
}

TEST(Velocities, InitialTemperatureAndMomentum) {
  const System sys{5};
  EXPECT_NEAR(sys.temperature(), 1.44, 1e-9);
  const Vec3 p = sys.net_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
  EXPECT_NEAR(p.z, 0.0, 1e-9);
}

TEST(Forces, NetForceIsZero) {
  // Newton's third law: internal forces sum to zero.
  System sys{5};
  sys.run(3);  // break lattice symmetry first
  Vec3 f{};
  for (const auto& fi : sys.forces()) f += fi;
  EXPECT_NEAR(f.x, 0.0, 1e-7);
  EXPECT_NEAR(f.y, 0.0, 1e-7);
  EXPECT_NEAR(f.z, 0.0, 1e-7);
}

TEST(Forces, CellListMatchesBruteForce) {
  System sys{5};  // 500 atoms, grid >= 3 -> cell path active
  sys.run(5);     // move off the lattice
  sys.compute_forces();
  const double cell_pe = sys.potential_energy();
  const std::int64_t cell_pairs = sys.last_pair_count();
  std::vector<Vec3> cell_forces{sys.forces().begin(), sys.forces().end()};

  sys.compute_forces_reference();
  EXPECT_NEAR(sys.potential_energy(), cell_pe, 1e-8 * std::abs(cell_pe));
  EXPECT_EQ(sys.last_pair_count(), cell_pairs);
  const auto ref = sys.forces();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(ref[i].x, cell_forces[i].x, 1e-8);
    EXPECT_NEAR(ref[i].y, cell_forces[i].y, 1e-8);
    EXPECT_NEAR(ref[i].z, cell_forces[i].z, 1e-8);
  }
}

TEST(Dynamics, EnergyConservedInNve) {
  System sys{5};
  const double e0 = sys.total_energy();
  sys.run(200);
  const double e1 = sys.total_energy();
  // NVE with dt=0.005 and a shifted potential: drift well below 0.1%.
  EXPECT_NEAR(e1, e0, 1e-3 * std::abs(e0));
}

TEST(Dynamics, MomentumConservedOverRun) {
  System sys{5};
  sys.run(100);
  const Vec3 p = sys.net_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-7);
  EXPECT_NEAR(p.y, 0.0, 1e-7);
  EXPECT_NEAR(p.z, 0.0, 1e-7);
}

TEST(Dynamics, AtomsStayInBox) {
  System sys{5};
  sys.run(100);
  for (const auto& p : sys.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, sys.box_length());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, sys.box_length());
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, sys.box_length());
  }
}

TEST(Dynamics, LatticeMeltsTowardEquilibrium) {
  // From a perfect lattice at T*=1.44 the system heats/melts; the kinetic
  // and potential energy exchange while the total stays fixed.
  System sys{5};
  const double pe0 = sys.potential_energy();
  sys.run(200);
  EXPECT_GT(sys.potential_energy(), pe0);  // lattice was the PE minimum
  EXPECT_GT(sys.temperature(), 0.5);
  EXPECT_LT(sys.temperature(), 2.5);
}

TEST(Work, PairCountMatchesExpectedNeighborDensity) {
  // At rho*=0.8442 and r_c=2.5 the average neighbor count within the
  // cutoff is rho * 4/3 pi r_c^3 ~ 55; pairs ~ N * 55 / 2.
  System sys{6};  // 864 atoms
  sys.run(10);
  const double pairs_per_atom =
      2.0 * static_cast<double>(sys.last_pair_count()) / static_cast<double>(sys.atom_count());
  EXPECT_NEAR(pairs_per_atom, 55.0, 8.0);
}

TEST(Work, StepWorkAccumulates) {
  System sys{5};
  const StepWork w = sys.run(4);
  EXPECT_EQ(w.atoms, 4 * sys.atom_count());
  EXPECT_GT(w.pair_interactions, 0);
}

TEST(Determinism, SameSeedSameTrajectory) {
  System a{5};
  System b{5};
  a.run(20);
  b.run(20);
  const auto pa = a.positions();
  const auto pb = b.positions();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i].x, pb[i].x);
    EXPECT_DOUBLE_EQ(pa[i].y, pb[i].y);
    EXPECT_DOUBLE_EQ(pa[i].z, pb[i].z);
  }
}

TEST(Params, CustomTemperature) {
  LjParams p;
  p.temperature = 0.7;
  const System sys{5, p};
  EXPECT_NEAR(sys.temperature(), 0.7, 1e-9);
}

}  // namespace
}  // namespace rsd::lj
