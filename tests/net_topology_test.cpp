// Link-graph machine model: graph construction, deterministic routing,
// fabric factories, and the lookahead bound the partitioned row takes
// from the topology.
#include "interconnect/topology.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "interconnect/fabric.hpp"

namespace rsd::net {
namespace {

using rsd::duration::microseconds;

TEST(Topology, AddLinkValidatesEndpointsAndParameters) {
  Topology topo;
  const NodeId a = topo.add_node(NodeDesc{.name = "a"});
  const NodeId b = topo.add_node(NodeDesc{.name = "b"});

  EXPECT_THROW(topo.add_link(LinkDesc{a, a, LinkKind::kNvlink, 1.0, {}}), Error);
  EXPECT_THROW(topo.add_link(LinkDesc{a, 99, LinkKind::kNvlink, 1.0, {}}), Error);
  EXPECT_THROW(topo.add_link(LinkDesc{a, b, LinkKind::kNvlink, 0.0, {}}), Error);
  EXPECT_THROW(
      topo.add_link(LinkDesc{a, b, LinkKind::kNvlink, 1.0, duration::nanoseconds(-1)}),
      Error);

  topo.add_duplex(a, b, LinkKind::kNvlink, 100.0, microseconds(1.0));
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.device_count(), 2);
}

TEST(Topology, RoutePrefersLowerLatencyThenFewerHops) {
  Topology topo;
  const NodeId a = topo.add_node(NodeDesc{.name = "a"});
  const NodeId b = topo.add_node(NodeDesc{.name = "b"});
  const NodeId via = topo.add_node(NodeDesc{.name = "sw", .kind = NodeKind::kSwitch});
  // Direct link is slow (10us); the two-hop path through the switch costs
  // 2us + 2us and wins on latency.
  topo.add_link(LinkDesc{a, b, LinkKind::kNvlink, 100.0, microseconds(10.0)});
  topo.add_link(LinkDesc{a, via, LinkKind::kSwitch, 100.0, microseconds(2.0)});
  topo.add_link(LinkDesc{via, b, LinkKind::kSwitch, 100.0, microseconds(2.0)});

  const Path& p = topo.route(a, b);
  EXPECT_EQ(p.links.size(), 2u);
  EXPECT_EQ(p.latency, microseconds(4.0));

  EXPECT_THROW((void)topo.route(a, a), Error);
}

TEST(Topology, IntermediateForwardLatencyIsCharged) {
  Topology topo;
  const NodeId a = topo.add_node(NodeDesc{.name = "a"});
  const NodeId sw = topo.add_node(NodeDesc{
      .name = "sw", .kind = NodeKind::kSwitch, .forward_latency = microseconds(0.5)});
  const NodeId b = topo.add_node(NodeDesc{.name = "b"});
  topo.add_link(LinkDesc{a, sw, LinkKind::kSwitch, 100.0, microseconds(1.0)});
  topo.add_link(LinkDesc{sw, b, LinkKind::kSwitch, 100.0, microseconds(1.0)});

  // 1us + 0.5us forwarding + 1us; the endpoints forward nothing.
  EXPECT_EQ(topo.route(a, b).latency, microseconds(2.5));
}

TEST(Topology, TransferTimeUsesBottleneckBandwidth) {
  Topology topo;
  const NodeId a = topo.add_node(NodeDesc{.name = "a"});
  const NodeId m = topo.add_node(NodeDesc{.name = "m", .kind = NodeKind::kSwitch});
  const NodeId b = topo.add_node(NodeDesc{.name = "b"});
  topo.add_link(LinkDesc{a, m, LinkKind::kNvlink, 200.0, microseconds(1.0)});
  topo.add_link(LinkDesc{m, b, LinkKind::kNvlink, 50.0, microseconds(1.0)});

  const Bytes bytes = 50 * kMiB;
  const SimDuration expected =
      microseconds(2.0) +
      duration::seconds(static_cast<double>(bytes) / (50.0 * static_cast<double>(kGiB)));
  EXPECT_EQ(topo.transfer_time(a, b, bytes), expected);
  EXPECT_EQ(topo.route(a, b).bottleneck_gib_s, 50.0);
}

TEST(Topology, UnreachableRouteThrows) {
  Topology topo;
  const NodeId a = topo.add_node(NodeDesc{.name = "a"});
  const NodeId b = topo.add_node(NodeDesc{.name = "b"});
  topo.add_link(LinkDesc{a, b, LinkKind::kNvlink, 1.0, microseconds(1.0)});
  EXPECT_THROW((void)topo.route(b, a), Error);  // directed: no reverse link
}

TEST(Topology, MinDevicePathLatencyMatchesAllPairsScan) {
  FabricParams params;
  params.gpus = 8;
  for (const FabricKind kind : all_fabric_kinds()) {
    params.kind = kind;
    const Topology topo = build_fabric(params);
    SimDuration best = SimDuration::max();
    for (int i = 0; i < topo.device_count(); ++i) {
      for (int j = 0; j < topo.device_count(); ++j) {
        if (i == j) continue;
        best = std::min(best, topo.route(topo.device(i), topo.device(j)).latency);
      }
    }
    EXPECT_EQ(topo.min_device_path_latency(), best) << to_string(kind);
  }
}

TEST(Topology, MinDevicePathLatencyNeedsTwoDevices) {
  FabricParams params;
  params.gpus = 1;
  const Topology topo = build_fabric(params);
  EXPECT_THROW((void)topo.min_device_path_latency(), Error);
}

TEST(Fabric, ShapesHaveExpectedStructure) {
  FabricParams params;
  params.gpus = 8;

  params.kind = FabricKind::kRing;
  const Topology ring = build_fabric(params);
  EXPECT_EQ(ring.node_count(), 8u);
  EXPECT_EQ(ring.link_count(), 16u);  // 8 duplex neighbor pairs
  EXPECT_EQ(ring.min_device_path_latency(), params.link_latency);

  params.kind = FabricKind::kFullMesh;
  const Topology mesh = build_fabric(params);
  EXPECT_EQ(mesh.link_count(), 8u * 7u);  // every ordered pair
  EXPECT_EQ(mesh.route(mesh.device(0), mesh.device(5)).links.size(), 1u);

  params.kind = FabricKind::kElectricalSwitch;
  const Topology eswitch = build_fabric(params);
  EXPECT_EQ(eswitch.node_count(), 9u);
  const Path& via_switch = eswitch.route(eswitch.device(0), eswitch.device(7));
  EXPECT_EQ(via_switch.links.size(), 2u);
  EXPECT_EQ(via_switch.latency,
            params.link_latency + params.switch_hop_latency + params.link_latency);

  params.kind = FabricKind::kOpticalCircuit;
  const Topology ocs = build_fabric(params);
  EXPECT_EQ(ocs.route(ocs.device(0), ocs.device(7)).optical_hops, 1);
  EXPECT_EQ(ocs.ocs_reconfigure(), params.ocs_reconfigure);
  EXPECT_EQ(eswitch.route(eswitch.device(0), eswitch.device(7)).optical_hops, 0);
}

TEST(Fabric, TwoGpuRingIsOneDuplexPair) {
  FabricParams params;
  params.gpus = 2;
  params.kind = FabricKind::kRing;
  const Topology topo = build_fabric(params);
  EXPECT_EQ(topo.link_count(), 2u);
}

TEST(Fabric, ParseNamesAndAliases) {
  EXPECT_EQ(parse_fabric_kind("ring"), FabricKind::kRing);
  EXPECT_EQ(parse_fabric_kind("fullmesh"), FabricKind::kFullMesh);
  EXPECT_EQ(parse_fabric_kind("full-mesh"), FabricKind::kFullMesh);
  EXPECT_EQ(parse_fabric_kind("eswitch"), FabricKind::kElectricalSwitch);
  EXPECT_EQ(parse_fabric_kind("electrical"), FabricKind::kElectricalSwitch);
  EXPECT_EQ(parse_fabric_kind("ocs"), FabricKind::kOpticalCircuit);
  EXPECT_EQ(parse_fabric_kind("optical"), FabricKind::kOpticalCircuit);
  EXPECT_THROW((void)parse_fabric_kind("torus"), Error);
  for (const FabricKind kind : all_fabric_kinds()) {
    EXPECT_EQ(parse_fabric_kind(to_string(kind)), kind);
  }
}

TEST(Fabric, ChassisTagsFollowGpusPerChassis) {
  FabricParams params;
  params.gpus = 16;
  params.gpus_per_chassis = 4;
  const Topology topo = build_fabric(params);
  EXPECT_EQ(topo.device_chassis_tags().size(), 4u);
  EXPECT_EQ(topo.node(topo.device(0)).chassis, 0);
  EXPECT_EQ(topo.node(topo.device(15)).chassis, 3);
}

TEST(Fabric, MultiChassisEmitsNicsAndFibre) {
  FabricParams params;
  params.gpus = 16;
  params.gpus_per_chassis = 4;
  params.chassis_nics = true;
  for (const FabricKind kind : all_fabric_kinds()) {
    params.kind = kind;
    const Topology topo = build_fabric(params);
    ASSERT_EQ(topo.nic_count(), 4) << to_string(kind);
    ASSERT_EQ(topo.device_chassis_tags().size(), 4u) << to_string(kind);
    for (int c = 0; c < 4; ++c) {
      const NodeId nic = topo.chassis_nic(c);
      EXPECT_EQ(topo.node(nic).kind, NodeKind::kNic) << to_string(kind);
      EXPECT_EQ(topo.node(nic).chassis, c) << to_string(kind);
    }
    EXPECT_THROW((void)topo.chassis_nic(4), Error) << to_string(kind);

    // A chassis-crossing route must pay the NIC and fibre hops explicitly;
    // an intra-chassis route must not touch either.
    const Path& cross = topo.route(topo.device(0), topo.device(15));
    bool saw_nic = false;
    bool saw_fibre = false;
    for (const LinkId id : cross.links) {
      saw_nic = saw_nic || topo.link(id).kind == LinkKind::kNic;
      saw_fibre = saw_fibre || topo.link(id).kind == LinkKind::kFibre;
    }
    EXPECT_TRUE(saw_nic) << to_string(kind);
    EXPECT_TRUE(saw_fibre) << to_string(kind);
    // A 0.35us NIC port must never shortcut an intra-chassis route (the
    // OCS chassis legitimately uses fibre-class ports internally).
    const Path& intra = topo.route(topo.device(0), topo.device(3));
    for (const LinkId id : intra.links) {
      EXPECT_NE(topo.link(id).kind, LinkKind::kNic) << to_string(kind);
    }
  }
}

TEST(Fabric, FlatFabricHasNoNicsAndRejectsChassisNicLookup) {
  FabricParams params;
  params.gpus = 8;
  const Topology topo = build_fabric(params);
  EXPECT_EQ(topo.nic_count(), 0);
  EXPECT_THROW((void)topo.chassis_nic(0), Error);
}

TEST(Fabric, RejectsRowsExceedingMaxChassis) {
  FabricParams params;
  params.gpus = 16;
  params.gpus_per_chassis = 4;
  params.chassis_nics = true;
  params.max_chassis = 2;  // 16 GPUs at 4/chassis need 4 chassis
  try {
    (void)build_fabric(params);
    FAIL() << "expected rsd::Error for a row exceeding max_chassis";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(std::string{e.what()}.find("max_chassis"), std::string::npos);
  }
  params.max_chassis = 4;
  EXPECT_EQ(build_fabric(params).nic_count(), 4);  // exactly at the bound is fine
}

TEST(Fabric, HostEndpointRequiresChassisNics) {
  FabricParams params;
  params.gpus = 8;
  params.gpus_per_chassis = 4;
  params.host_endpoint = true;
  EXPECT_THROW((void)build_fabric(params), Error);

  params.chassis_nics = true;
  const Topology topo = build_fabric(params);
  ASSERT_EQ(topo.host_count(), 1);
  // The host attaches behind a PCIe stub into nic0, so a host->GPU route
  // starts on PCIe.
  const Path& path = topo.route(topo.host(0), topo.device(0));
  ASSERT_FALSE(path.links.empty());
  EXPECT_EQ(topo.link(path.links.front()).kind, LinkKind::kPcie);
}

}  // namespace
}  // namespace rsd::net
