// Steady-state transfers touch no general-heap memory: frames come from
// the FrameArena, routes from the dense tables, link frames and waiters
// are intrusive, and the usage sampler writes into pre-opened buckets.
// This binary links the counting operator new/delete (rsd_alloc_counter),
// so it must not share a process with tests that expect the default
// allocator.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/alloc_counter.hpp"
#include "core/units.hpp"
#include "interconnect/fabric.hpp"
#include "interconnect/network.hpp"
#include "interconnect/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace rsd::net {
namespace {

/// One round of transfer churn: every device sends a chunk to its ring
/// successor (single hop on a ring fabric — the express path) and a
/// second one two ranks over (multi-hop — the scheduled path), with the
/// same-link overlap forcing the semaphore queue to engage.
sim::Task<> churn(Network& net, int rounds) {
  const int gpus = net.topology().device_count();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < gpus; ++i) {
      co_await net.transfer_between_devices(i, (i + 1) % gpus, 256 * kKiB);
    }
    for (int i = 0; i < gpus; ++i) {
      co_await net.transfer_between_devices(i, (i + 2) % gpus, 64 * kKiB);
    }
  }
}

TEST(NetworkAlloc, SteadyStateTransferPathIsAllocationFree) {
  FabricParams params;
  params.gpus = 8;
  const Topology topo = build_fabric(params);
  sim::Scheduler sched;
  Network network{sched, topo};
  // One usage bucket per link for the whole run: bucket management is
  // warm after the first transfer, so the measured window exercises the
  // express booking, semaphore waits, and sampler updates alone.
  network.set_usage_bucket(duration::seconds(10.0));

  // Warm-up then measure inside one root task: the first churn
  // materializes routes, opens buckets, and populates the frame arena and
  // event-queue high-water marks; the second identical churn must then
  // run entirely out of recycled storage.
  std::int64_t during = -1;
  sched.spawn([](Network& net, std::int64_t* out) -> sim::Task<> {
    co_await churn(net, 50);
    const std::int64_t before = alloc::allocation_count();
    co_await churn(net, 50);
    *out = alloc::allocation_count() - before;
  }(network, &during));
  sched.run();

  ASSERT_EQ(sched.unfinished_count(), 0u);
  EXPECT_GT(network.express_transfers(), 0u);
  EXPECT_EQ(during, 0) << "steady-state transfers touched the general heap";
}

TEST(NetworkAlloc, MultiChassisNicHopsStayAllocationFree) {
  // Same discipline on a multi-chassis graph: the ring-successor chunks
  // at a chassis boundary and the two-over chunks cross NIC + fibre
  // links, so the measured window proves the cross-chassis path — NIC
  // frames, fibre semaphores, per-link busy booking — recycles storage
  // exactly like the intra-chassis one.
  FabricParams params;
  params.gpus = 8;
  params.gpus_per_chassis = 4;
  params.chassis_nics = true;
  const Topology topo = build_fabric(params);
  sim::Scheduler sched;
  Network network{sched, topo};
  network.set_usage_bucket(duration::seconds(10.0));

  std::int64_t during = -1;
  sched.spawn([](Network& net, std::int64_t* out) -> sim::Task<> {
    co_await churn(net, 50);
    const std::int64_t before = alloc::allocation_count();
    co_await churn(net, 50);
    *out = alloc::allocation_count() - before;
  }(network, &during));
  sched.run();

  ASSERT_EQ(sched.unfinished_count(), 0u);
  EXPECT_GT(network.nic_transfers(), 0u);
  EXPECT_GT(network.fibre_busy_total(), SimDuration::zero());
  EXPECT_EQ(during, 0) << "cross-chassis transfers touched the general heap";
}

}  // namespace
}  // namespace rsd::net
