#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rsd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  const Rng parent{42};
  Rng a = parent.split(1);
  Rng a2 = parent.split(1);
  Rng b = parent.split(2);
  EXPECT_EQ(a.next(), a2.next());
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{4};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng{5};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng{6};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets reached
}

TEST(Rng, UniformIndexOne) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng{8};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng{9};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, LognormalPositiveAndMedian) {
  Rng rng{10};
  std::vector<double> v;
  const int n = 50001;
  v.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal(1.0, 0.5);
    EXPECT_GT(x, 0.0);
    v.push_back(x);
  }
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  // Median of lognormal(mu, sigma) is e^mu.
  EXPECT_NEAR(v[n / 2], std::exp(1.0), 0.05);
}

TEST(Rng, WorksWithStdShuffleInterface) {
  Rng rng{11};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace rsd
