#include "exec/team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace rsd::exec {
namespace {

TEST(Team, DefaultSimThreadCountIsSequential) {
  ::unsetenv("RSD_SIM_THREADS");
  EXPECT_EQ(default_sim_thread_count(), 1);
}

TEST(Team, DefaultSimThreadCountReadsEnv) {
  ::setenv("RSD_SIM_THREADS", "6", 1);
  EXPECT_EQ(default_sim_thread_count(), 6);
  ::setenv("RSD_SIM_THREADS", "0", 1);
  EXPECT_EQ(default_sim_thread_count(), 1);
  ::setenv("RSD_SIM_THREADS", "nonsense", 1);
  EXPECT_EQ(default_sim_thread_count(), 1);
  ::unsetenv("RSD_SIM_THREADS");
}

TEST(Team, SingleThreadRunsSerially) {
  Team team{1};
  EXPECT_EQ(team.size(), 1);
  std::vector<int> hits(64, 0);
  team.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Team, EveryItemRunsExactlyOnce) {
  Team team{4};
  EXPECT_EQ(team.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  team.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, BackToBackEpochsReuseWorkers) {
  // Thousands of tiny epochs: the shape the conservative engine produces.
  // Under TSan this also exercises the epoch/retire release-acquire chain.
  Team team{4};
  std::vector<std::int64_t> data(128, 0);
  for (int epoch = 0; epoch < 2000; ++epoch) {
    team.run(data.size(), [&](std::size_t i) { ++data[i]; });
  }
  for (std::int64_t v : data) EXPECT_EQ(v, 2000);
}

TEST(Team, CallerSeesWorkerWritesAfterRun) {
  // run() returning must order every worker's plain writes before the
  // caller's reads (the engine reads partition state between epochs).
  Team team{3};
  std::vector<std::int64_t> out(256, 0);
  team.run(out.size(), [&](std::size_t i) { out[i] = static_cast<std::int64_t>(i * i); });
  std::int64_t sum = std::accumulate(out.begin(), out.end(), std::int64_t{0});
  std::int64_t expect = 0;
  for (std::size_t i = 0; i < out.size(); ++i) expect += static_cast<std::int64_t>(i * i);
  EXPECT_EQ(sum, expect);
}

TEST(Team, ItemsExceedingWidthAllExecute) {
  Team team{8};
  std::atomic<int> count{0};
  team.run(3, [&](std::size_t) { count.fetch_add(1); });  // fewer items than threads
  EXPECT_EQ(count.load(), 3);
  count.store(0);
  team.run(0, [&](std::size_t) { count.fetch_add(1); });  // empty epoch
  EXPECT_EQ(count.load(), 0);
}

TEST(Team, ClaimJitterDoesNotChangeCoverage) {
  Team team{4};
  team.set_claim_jitter(0xfeedULL);
  std::vector<std::atomic<int>> hits(512);
  for (int epoch = 0; epoch < 50; ++epoch) {
    team.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50);
}

}  // namespace
}  // namespace rsd::exec
