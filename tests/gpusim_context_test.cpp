#include "gpusim/context.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.hpp"
#include "interconnect/link.hpp"
#include "interconnect/slack.hpp"
#include "sim/scheduler.hpp"

namespace rsd::gpu {
namespace {

using namespace rsd::literals;

/// Collects records in vectors for inspection.
class VectorSink : public RecordSink {
 public:
  void on_op(const OpRecord& op) override { ops.push_back(op); }
  void on_api(const ApiRecord& api) override { apis.push_back(api); }

  std::vector<OpRecord> ops;
  std::vector<ApiRecord> apis;
};

DeviceParams test_params() {
  DeviceParams p;
  p.matmul_tflops = 100.0;
  p.wake_t0 = 500_ns;
  p.wake_alpha = 0.1;
  p.wake_max = 1_ms;
  return p;
}

struct Fixture {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  VectorSink sink;

  Fixture() { dev.set_record_sink(&sink); }
};

TEST(Context, MallocFreeTracksMemory) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    DeviceBuffer buf = co_await ctx.dmalloc(kMiB);
    EXPECT_EQ(fx.dev.memory().used(), kMiB);
    co_await ctx.dfree(buf);
    EXPECT_EQ(fx.dev.memory().used(), 0u);
    EXPECT_EQ(buf.handle, 0u);
  }(f));
  f.sched.run();
}

TEST(Context, MemcpyBlocksUntilTransferComplete) {
  Fixture f;
  SimTime done_at{-1};
  f.sched.spawn([](Fixture& fx, SimTime& out) -> sim::Task<> {
    Context ctx{fx.dev};
    DeviceBuffer buf = co_await ctx.dmalloc(24 * kMiB);
    const SimTime before = fx.sched.now();
    co_await ctx.memcpy_h2d(buf);
    out = fx.sched.now();
    // 24 MiB at 24 GiB/s ~ 0.98 ms (+ 8 us link latency + setup + submit).
    EXPECT_GT(fx.sched.now() - before, 950_us);
    EXPECT_LT(fx.sched.now() - before, 1100_us);
  }(f, done_at));
  f.sched.run();
  ASSERT_EQ(f.sink.ops.size(), 1u);
  EXPECT_EQ(f.sink.ops[0].kind, OpKind::kMemcpyH2D);
  EXPECT_EQ(f.sink.ops[0].bytes, 24 * kMiB);
}

TEST(Context, LaunchIsAsynchronous) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    const SimTime before = fx.sched.now();
    co_await ctx.launch("k", 10_ms);
    // Launch returns after submit cost only, not after the 10 ms kernel.
    EXPECT_LT(fx.sched.now() - before, 100_us);
    co_await ctx.synchronize();
    EXPECT_GT(fx.sched.now() - before, 10_ms);
  }(f));
  f.sched.run();
  ASSERT_EQ(f.sink.ops.size(), 1u);
  EXPECT_EQ(f.sink.ops[0].kind, OpKind::kKernel);
  EXPECT_EQ(f.sink.ops[0].name, "k");
}

TEST(Context, StreamOrderSerializesOps) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    DeviceBuffer buf = co_await ctx.dmalloc(kMiB);
    co_await ctx.launch("k1", 1_ms);
    co_await ctx.launch("k2", 1_ms);
    co_await ctx.memcpy_d2h(buf);
    co_await ctx.synchronize();
  }(f));
  f.sched.run();
  ASSERT_EQ(f.sink.ops.size(), 3u);
  // In-stream order on device: k1, k2, then the D2H copy.
  EXPECT_EQ(f.sink.ops[0].name, "k1");
  EXPECT_EQ(f.sink.ops[1].name, "k2");
  EXPECT_EQ(f.sink.ops[2].kind, OpKind::kMemcpyD2H);
  EXPECT_GE(f.sink.ops[1].start, f.sink.ops[0].end);
  EXPECT_GE(f.sink.ops[2].start, f.sink.ops[1].end);
}

TEST(Context, BackToBackKernelsHideSetup) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    co_await ctx.launch("k1", 1_ms);
    co_await ctx.launch("k2", 1_ms);  // submitted while k1 runs
    co_await ctx.synchronize();
  }(f));
  f.sched.run();
  ASSERT_EQ(f.sink.ops.size(), 2u);
  EXPECT_GT(f.sink.ops[0].exposed_overhead, SimDuration::zero());
  // NOTE: stream chaining dispatches k2 to the engine only after k1
  // completes, so the engine queue is empty again; exposure is therefore
  // still charged (it shows as queue delay, not execution time). This
  // matches the synchronous-pessimistic stance of the paper's proxy
  // (Section III-B).
  EXPECT_GE(f.sink.ops[1].start, f.sink.ops[0].end);
  EXPECT_LE(f.sink.ops[1].start - f.sink.ops[0].end, 10_us);
}

TEST(Context, SlackInjectedAfterEveryApiCall) {
  Fixture f;
  interconnect::SlackInjector inj{100_us};
  f.sched.spawn([](Fixture& fx, interconnect::SlackInjector& i) -> sim::Task<> {
    Context ctx{fx.dev, 0, &i};
    DeviceBuffer a = co_await ctx.dmalloc(kMiB);
    DeviceBuffer b = co_await ctx.dmalloc(kMiB);
    // The proxy's 5 delayed calls: 3 memcpys + launch + sync.
    co_await ctx.memcpy_h2d(a);
    co_await ctx.memcpy_h2d(b);
    co_await ctx.launch("mm", 10_us);
    co_await ctx.memcpy_d2h(a);
    co_await ctx.synchronize();
  }(f, inj));
  f.sched.run();
  EXPECT_EQ(inj.calls_delayed(), 5);
  EXPECT_EQ(inj.total_injected(), 500_us);
  ASSERT_EQ(f.sink.apis.size(), 5u);
  for (const auto& api : f.sink.apis) EXPECT_EQ(api.slack_after, 100_us);
}

TEST(Context, ApiCallCountExcludesAllocation) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    DeviceBuffer a = co_await ctx.dmalloc(kMiB);
    co_await ctx.memcpy_h2d(a);
    co_await ctx.synchronize();
    EXPECT_EQ(ctx.api_calls(), 2);
    co_await ctx.dfree(a);
    EXPECT_EQ(ctx.api_calls(), 2);
  }(f));
  f.sched.run();
}

TEST(Context, SlackDelaysHostTimeline) {
  Fixture f;
  interconnect::SlackInjector inj{1_ms};
  SimTime end_time{-1};
  f.sched.spawn([](Fixture& fx, interconnect::SlackInjector& i, SimTime& out) -> sim::Task<> {
    Context ctx{fx.dev, 0, &i};
    co_await ctx.launch("k", 1_us);
    co_await ctx.synchronize();
    out = fx.sched.now();
  }(f, inj, end_time));
  f.sched.run();
  // Two API calls, each followed by 1 ms slack.
  EXPECT_GT(end_time - SimTime::zero(), 2_ms);
}

TEST(Context, TwoContextsInterleaveOnDevice) {
  Fixture f;
  auto worker = [](Fixture& fx, int id) -> sim::Task<> {
    Context ctx{fx.dev, id};
    for (int i = 0; i < 3; ++i) {
      co_await ctx.launch("k" + std::to_string(id), 1_ms);
      co_await ctx.synchronize();
    }
  };
  f.sched.spawn(worker(f, 1));
  f.sched.spawn(worker(f, 2));
  f.sched.run();
  ASSERT_EQ(f.sink.ops.size(), 6u);
  // Both contexts appear in the interleaved op stream.
  int c1 = 0;
  int c2 = 0;
  for (const auto& op : f.sink.ops) {
    if (op.context_id == 1) ++c1;
    if (op.context_id == 2) ++c2;
  }
  EXPECT_EQ(c1, 3);
  EXPECT_EQ(c2, 3);
}

TEST(Context, MatmulLaunchUsesDeviceCostModel) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    co_await ctx.launch_matmul(8192);
    co_await ctx.synchronize();
  }(f));
  f.sched.run();
  ASSERT_EQ(f.sink.ops.size(), 1u);
  EXPECT_EQ(f.sink.ops[0].name, "sgemm_8192");
  // ~11 ms on the 100 TFLOP/s model (+ setup).
  EXPECT_NEAR(f.sink.ops[0].duration().ms(), 11.0, 1.0);
}

TEST(Context, AsyncMemcpyReturnsCompletionEvent) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    DeviceBuffer buf = co_await ctx.dmalloc(24 * kMiB);
    const SimTime before = fx.sched.now();
    auto ev = co_await ctx.memcpy_h2d_async(buf);
    // Returned promptly (submit cost only), transfer still in flight.
    EXPECT_LT(fx.sched.now() - before, 100_us);
    EXPECT_FALSE(ev->triggered());
    co_await ev->wait();
    // ~1 ms transfer completed.
    EXPECT_GT(fx.sched.now() - before, 900_us);
  }(f));
  f.sched.run();
  EXPECT_EQ(f.sched.unfinished_count(), 0u);
}

TEST(Context, StreamWaitOrdersAcrossContexts) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context copy_ctx{fx.dev, 0};
    Context compute_ctx{fx.dev, 1};
    DeviceBuffer buf = co_await copy_ctx.dmalloc(24 * kMiB);
    auto copied = co_await copy_ctx.memcpy_h2d_async(buf);
    co_await compute_ctx.stream_wait(copied);
    co_await compute_ctx.launch("dependent", 10_us);
    co_await compute_ctx.synchronize();
  }(f));
  f.sched.run();
  ASSERT_EQ(f.sink.ops.size(), 2u);
  const auto& copy = f.sink.ops[0].kind == OpKind::kMemcpyH2D ? f.sink.ops[0] : f.sink.ops[1];
  const auto& kernel = f.sink.ops[0].kind == OpKind::kKernel ? f.sink.ops[0] : f.sink.ops[1];
  // The kernel could not start before the other context's copy finished.
  EXPECT_GE(kernel.start, copy.end);
}

TEST(Context, RecordEventTracksTail) {
  Fixture f;
  f.sched.spawn([](Fixture& fx) -> sim::Task<> {
    Context ctx{fx.dev};
    EXPECT_EQ(ctx.record_event(), nullptr);  // nothing submitted yet
    co_await ctx.launch("k", 1_ms);
    auto ev = ctx.record_event();
    EXPECT_NE(ev, nullptr);
    if (ev != nullptr) {
      EXPECT_FALSE(ev->triggered());
      co_await ctx.synchronize();
      EXPECT_TRUE(ev->triggered());
    }
  }(f));
  f.sched.run();
}

TEST(Context, OomPropagatesAsException) {
  Fixture f;
  bool caught = false;
  f.sched.spawn([](Fixture& fx, bool& flag) -> sim::Task<> {
    Context ctx{fx.dev};
    try {
      DeviceBuffer big = co_await ctx.dmalloc(41ULL * kGiB);
      (void)big;
    } catch (const Error& e) {
      flag = (e.code() == ErrorCode::kOutOfMemory);
    }
  }(f, caught));
  f.sched.run();
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace rsd::gpu
