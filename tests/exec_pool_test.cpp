#include "exec/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/csv.hpp"
#include "proxy/proxy.hpp"

namespace rsd::exec {
namespace {

std::vector<int> iota_items(int n) {
  std::vector<int> items(static_cast<std::size_t>(n));
  std::iota(items.begin(), items.end(), 0);
  return items;
}

TEST(Pool, SizeClampsToAtLeastOne) {
  Pool pool{0};
  EXPECT_EQ(pool.size(), 1);
}

TEST(Pool, DefaultThreadCountHonorsEnv) {
  ASSERT_EQ(setenv("RSD_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3);
  ASSERT_EQ(setenv("RSD_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(default_thread_count(), 1);  // falls back to hardware concurrency
  ASSERT_EQ(unsetenv("RSD_THREADS"), 0);
}

TEST(Pool, MapIsInputOrderedOnSingleThreadPool) {
  Pool pool{1};
  const auto out = pool.parallel_map(iota_items(100), [](const int i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(Pool, MapIsInputOrderedOnManyThreadPool) {
  Pool pool{8};
  // Early items sleep longest, so completion order inverts input order —
  // the result vector must still be input-indexed.
  const auto out = pool.parallel_map(iota_items(64), [](const int i) {
    std::this_thread::sleep_for(std::chrono::microseconds((64 - i) * 20));
    return i * 10;
  });
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 10);
}

TEST(Pool, SerialAndParallelMapAgree) {
  Pool serial{1};
  Pool parallel{4};
  const auto items = iota_items(200);
  const auto f = [](const int i) { return i * 3 + 1; };
  EXPECT_EQ(serial.parallel_map(items, f), parallel.parallel_map(items, f));
}

TEST(Pool, ExceptionSurfacesWithLowestInputIndex) {
  for (const int threads : {1, 4}) {
    Pool pool{threads};
    try {
      (void)pool.parallel_map(iota_items(100), [](const int i) {
        if (i == 17 || i == 80) throw std::runtime_error{std::to_string(i)};
        return i;
      });
      FAIL() << "expected an exception (pool size " << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "17");
    }
  }
}

TEST(Pool, ParallelForCoversEveryIndexExactlyOnce) {
  Pool pool{4};
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pool, NestedParallelMapDoesNotDeadlock) {
  // More outer items than workers, each fanning out again on the same
  // pool: the submitting thread must finish its own batch even when every
  // worker is occupied.
  Pool pool{2};
  const auto sums = pool.parallel_map(iota_items(8), [&](const int outer) {
    const auto inner = pool.parallel_map(iota_items(16), [outer](const int i) {
      return outer * 100 + i;
    });
    int sum = 0;
    for (const int v : inner) sum += v;
    return sum;
  });
  ASSERT_EQ(sums.size(), 8u);
  for (int outer = 0; outer < 8; ++outer) {
    EXPECT_EQ(sums[static_cast<std::size_t>(outer)], outer * 1600 + 120);
  }
}

TEST(Pool, EmptyInputYieldsEmptyOutput) {
  Pool pool{4};
  EXPECT_TRUE(pool.parallel_map(std::vector<int>{}, [](const int i) { return i; }).empty());
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

/// Determinism regression for the hot sweep: the parallel fan-out must
/// reproduce the serial sweep byte-for-byte (this is what keeps every
/// downstream CSV identical regardless of RSD_THREADS).
TEST(SweepDeterminism, SerialAndParallelSweepsAreBitIdentical) {
  using namespace rsd::literals;
  const proxy::ProxyRunner runner;
  proxy::SweepConfig cfg;
  cfg.matrix_sizes = {1 << 9, 1 << 11, 1 << 15};
  cfg.thread_counts = {1, 2, 4};  // (2^15, 4) exercises the OOM exclusion
  cfg.slacks = {SimDuration::zero(), 1_us, 1_ms};
  cfg.target_compute = 200_ms;

  Pool serial{1};
  Pool parallel{4};
  const auto a = run_slack_sweep(runner, cfg, serial);
  const auto b = run_slack_sweep(runner, cfg, parallel);

  const auto to_csv = [](const std::vector<proxy::SweepPoint>& points) {
    CsvWriter csv;
    csv.row("matrix_n", "threads", "slack_us", "normalized_runtime");
    for (const auto& p : points) csv.row(p.matrix_n, p.threads, p.slack.us(), p.normalized_runtime);
    return csv.str();
  };
  EXPECT_EQ(to_csv(a), to_csv(b));

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.loop_runtime, b[i].result.loop_runtime);
    EXPECT_EQ(a[i].result.no_slack_time, b[i].result.no_slack_time);
    EXPECT_EQ(a[i].result.iterations, b[i].result.iterations);
    EXPECT_EQ(a[i].normalized_runtime, b[i].normalized_runtime);
  }
}

}  // namespace
}  // namespace rsd::exec
