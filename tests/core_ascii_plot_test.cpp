#include "core/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace rsd {
namespace {

TEST(AsciiPlot, EmptyInputYieldsEmptyString) {
  EXPECT_EQ(ascii_distribution({}), "");
}

TEST(AsciiPlot, SingleValueRendersOneBar) {
  const std::vector<double> v{5.0};
  const std::string plot = ascii_distribution(v);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find('1'), std::string::npos);
}

TEST(AsciiPlot, LineCountMatchesBins) {
  Rng rng{1};
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.lognormal(0.0, 1.0));
  AsciiPlotOptions opts;
  opts.bins = 8;
  const std::string plot = ascii_distribution(v, opts);
  EXPECT_EQ(std::count(plot.begin(), plot.end(), '\n'), 8);
}

TEST(AsciiPlot, CountsConserved) {
  Rng rng{2};
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.uniform(1.0, 100.0));
  AsciiPlotOptions opts;
  opts.bins = 6;
  opts.log_scale = false;
  const std::string plot = ascii_distribution(v, opts);
  // Sum the trailing counts on each line.
  std::size_t total = 0;
  std::istringstream in{plot};
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find_last_of('#');
    if (pos == std::string::npos) continue;
    total += static_cast<std::size_t>(std::stoul(line.substr(pos + 2)));
  }
  EXPECT_EQ(total, 300u);
}

TEST(AsciiPlot, UnitAppearsInLabels) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  AsciiPlotOptions opts;
  opts.unit = "us";
  const std::string plot = ascii_distribution(v, opts);
  EXPECT_NE(plot.find("us"), std::string::npos);
}

TEST(AsciiPlot, HandlesNonPositiveWithLogRequested) {
  const std::vector<double> v{0.0, 1.0, 10.0};  // falls back to linear
  const std::string plot = ascii_distribution(v);
  EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(AsciiPlot, BarLengthsProportional) {
  // 90 values in one bin, 10 in another: the big bar must be longer.
  std::vector<double> v;
  for (int i = 0; i < 90; ++i) v.push_back(1.0);
  for (int i = 0; i < 10; ++i) v.push_back(100.0);
  AsciiPlotOptions opts;
  opts.bins = 2;
  opts.log_scale = false;
  opts.bar_width = 20;
  const std::string plot = ascii_distribution(v, opts);
  std::istringstream in{plot};
  std::string first;
  std::string second;
  std::getline(in, first);
  std::getline(in, second);
  EXPECT_GT(std::count(first.begin(), first.end(), '#'),
            std::count(second.begin(), second.end(), '#'));
}

}  // namespace
}  // namespace rsd
