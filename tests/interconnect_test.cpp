#include "interconnect/link.hpp"

#include <gtest/gtest.h>

#include "interconnect/slack.hpp"

namespace rsd::interconnect {
namespace {

using namespace rsd::literals;

TEST(Link, TransferTimeIsLatencyPlusSerialisation) {
  Link link{LinkParams{.name = "t", .latency = 10_us, .bandwidth_gib_s = 1.0}};
  EXPECT_EQ(link.transfer_time(0), 10_us);
  // 1 GiB at 1 GiB/s = 1 s.
  EXPECT_EQ(link.transfer_time(kGiB), 10_us + 1_s);
  EXPECT_EQ(link.command_latency(), 10_us);
}

TEST(Link, BandwidthScalesTransferTime) {
  Link fast{LinkParams{.name = "f", .latency = SimDuration::zero(), .bandwidth_gib_s = 24.0}};
  // 24 GiB at 24 GiB/s = 1 s.
  EXPECT_NEAR(fast.transfer_time(24 * kGiB).seconds(), 1.0, 1e-9);
}

TEST(Link, PcieGen4Defaults) {
  const Link pcie = make_pcie_gen4_x16();
  EXPECT_EQ(pcie.name(), "pcie-gen4-x16");
  EXPECT_EQ(pcie.latency(), 8_us);
  // 256 MiB at 24 GiB/s ~ 10.4 ms.
  EXPECT_NEAR(pcie.transfer_time(256 * kMiB).ms(), 10.4, 0.2);
}

TEST(Fibre, SpeedOfLightConversion) {
  // The paper: 100 us of slack = 20 km of fibre.
  EXPECT_NEAR(reach_km_for_slack(100_us), 20.0, 1e-9);
  EXPECT_EQ(fibre_delay(20.0), 100_us);
  EXPECT_EQ(fibre_delay(0.0), SimDuration::zero());
}

TEST(CdiNetwork, SlackComposition) {
  CdiNetworkParams p;
  p.nic_latency = duration::microseconds(0.35);
  p.switch_hops = 2;
  p.per_hop_latency = duration::microseconds(0.12);
  p.fibre_km = 0.05;
  // 2*0.35 + 2*0.12 + 0.05*5 = 0.7 + 0.24 + 0.25 = 1.19 us.
  EXPECT_NEAR(p.slack().us(), 1.19, 1e-9);
}

TEST(CdiNetwork, RowScaleSlackIsMicrosecondScale) {
  const CdiNetworkParams row{};  // defaults: tens of metres
  EXPECT_GT(row.slack().us(), 0.5);
  EXPECT_LT(row.slack().us(), 5.0);
}

TEST(CdiNetwork, ClusterScaleAddsFibre) {
  CdiNetworkParams cluster;
  cluster.fibre_km = 20.0;
  EXPECT_GT(cluster.slack(), 100_us);
  const Link link = make_cdi_link(cluster);
  EXPECT_GT(link.latency(), 100_us);  // includes PCIe stub + network slack
}

TEST(CdiLink, LatencyIsPcieStubPlusSlack) {
  CdiNetworkParams p;
  const Link link = make_cdi_link(p);
  EXPECT_EQ(link.latency(), p.pcie_stub_latency + p.slack());
  EXPECT_EQ(link.name(), "cdi-network");
}

TEST(SlackInjector, CountsCallsAndTotals) {
  SlackInjector inj{5_us};
  EXPECT_EQ(inj.slack_per_call(), 5_us);
  EXPECT_EQ(inj.on_api_call(), 5_us);
  EXPECT_EQ(inj.on_api_call(), 5_us);
  EXPECT_EQ(inj.calls_delayed(), 2);
  EXPECT_EQ(inj.total_injected(), 10_us);
  inj.reset_counters();
  EXPECT_EQ(inj.calls_delayed(), 0);
  EXPECT_EQ(inj.total_injected(), SimDuration::zero());
}

TEST(SlackInjector, ZeroSlackStillCounts) {
  SlackInjector inj;
  EXPECT_EQ(inj.on_api_call(), SimDuration::zero());
  EXPECT_EQ(inj.calls_delayed(), 1);
}

TEST(Equation1, RemovesInjectedSlack) {
  // Time_NoSlack = Time - num_calls * slack.
  const SimDuration measured = 1_s + 500_us;
  EXPECT_EQ(equation1_no_slack_time(measured, 500, 1_us), 1_s);
  EXPECT_EQ(equation1_no_slack_time(measured, 0, 1_us), measured);
  EXPECT_EQ(equation1_no_slack_time(measured, 500, SimDuration::zero()), measured);
}

TEST(Equation1, PerSubmitterDividesCallsAcrossConcurrentSubmitters) {
  // 4 submitters running concurrently: the wall clock extends by one
  // submitter's share of the injected delay, not the total.
  const SimDuration measured = 1_s + 500_us;
  EXPECT_EQ(equation1_per_submitter(measured, 2000, 4, 1_us), 1_s);
  // One submitter degenerates to plain Equation 1.
  EXPECT_EQ(equation1_per_submitter(measured, 500, 1, 1_us),
            equation1_no_slack_time(measured, 500, 1_us));
  EXPECT_EQ(equation1_per_submitter(measured, 2000, 4, SimDuration::zero()), measured);
}

}  // namespace
}  // namespace rsd::interconnect
