// Metrics registry unit tests: counter/gauge/histogram semantics, local
// tally merging, snapshot deltas, and the manifest JSON serialization.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace {

using namespace rsd::obs;

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(Metrics, HistogramBucketIndexIsBitWidth) {
  EXPECT_EQ(HistogramData::bucket_index(-5), 0);
  EXPECT_EQ(HistogramData::bucket_index(0), 0);
  EXPECT_EQ(HistogramData::bucket_index(1), 1);
  EXPECT_EQ(HistogramData::bucket_index(2), 2);
  EXPECT_EQ(HistogramData::bucket_index(3), 2);
  EXPECT_EQ(HistogramData::bucket_index(4), 3);
  // Saturates at the last bucket.
  EXPECT_EQ(HistogramData::bucket_index(std::int64_t{1} << 62), kHistogramBuckets - 1);
}

TEST(Metrics, HistogramObserveAndMergeAgree) {
  HistogramData local;
  local.observe(1);
  local.observe(10);
  local.observe(100);
  EXPECT_EQ(local.count, 3);
  EXPECT_EQ(local.sum, 111);
  EXPECT_EQ(local.min, 1);
  EXPECT_EQ(local.max, 100);
  EXPECT_DOUBLE_EQ(local.mean(), 37.0);

  Histogram shared;
  shared.observe(1000);
  shared.merge(local);
  const HistogramData d = shared.data();
  EXPECT_EQ(d.count, 4);
  EXPECT_EQ(d.sum, 1111);
  EXPECT_EQ(d.min, 1);
  EXPECT_EQ(d.max, 1000);
}

TEST(Metrics, RegistrySnapshotIsSortedAndFindable) {
  Registry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("m.mid").set(0.5);
  reg.histogram("h.hist").observe(8);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
  const MetricSample* c = snap.find("a.first");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_EQ(c->count, 1);
  const MetricSample* h = snap.find("h.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricKind::kHistogram);
  EXPECT_EQ(h->count, 1);
  EXPECT_EQ(h->sum, 8);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Metrics, DeltaAttributesOnlyIntervalActivity) {
  Registry reg;
  reg.counter("runs").add(10);
  reg.histogram("ns").observe(100);
  const MetricsSnapshot before = reg.snapshot();

  reg.counter("runs").add(5);
  reg.histogram("ns").observe(300);
  reg.counter("born.later").add(2);
  reg.gauge("util").set(0.75);
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot delta = metrics_delta(before, after);
  EXPECT_EQ(delta.find("runs")->count, 5);
  EXPECT_EQ(delta.find("ns")->count, 1);
  EXPECT_EQ(delta.find("ns")->sum, 300);
  EXPECT_DOUBLE_EQ(delta.find("ns")->value, 300.0);
  // A metric born inside the interval keeps its full value.
  EXPECT_EQ(delta.find("born.later")->count, 2);
  // Gauges report the latest value.
  EXPECT_DOUBLE_EQ(delta.find("util")->value, 0.75);
}

TEST(Metrics, HistogramQuantilesInterpolateWithinBuckets) {
  Registry reg;
  auto& h = reg.histogram("lat");
  // 100 observations of 1..100: p50 ~ 50, p90 ~ 90, p99 ~ 99. The
  // power-of-two buckets limit resolution, so the check is loose but
  // must stay monotone and inside [min, max].
  for (int v = 1; v <= 100; ++v) h.observe(v);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("lat");
  ASSERT_NE(s, nullptr);

  const double p50 = histogram_quantile(*s, 0.50);
  const double p90 = histogram_quantile(*s, 0.90);
  const double p99 = histogram_quantile(*s, 0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Bucket [64, 128) clamps to max+1 and interpolates: p99 is near the top.
  EXPECT_GT(p99, 64.0);
  // p50 lands in bucket [32, 64).
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);

  // Extremes stay inside the observed range (midpoint interpolation
  // keeps q=0 near, not exactly at, the minimum).
  EXPECT_GE(histogram_quantile(*s, 0.0), 1.0);
  EXPECT_LT(histogram_quantile(*s, 0.0), 2.0);
  EXPECT_LE(histogram_quantile(*s, 1.0), 100.0);
}

TEST(Metrics, HistogramQuantileDegenerateCases) {
  MetricSample none;
  none.kind = MetricKind::kHistogram;
  EXPECT_DOUBLE_EQ(histogram_quantile(none, 0.5), 0.0);

  Registry reg;
  reg.histogram("one").observe(42);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("one");
  ASSERT_NE(s, nullptr);
  // A single observation answers every quantile with itself.
  EXPECT_DOUBLE_EQ(histogram_quantile(*s, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(*s, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(*s, 1.0), 42.0);

  // Counters don't have quantiles.
  reg.counter("c").add(7);
  const MetricsSnapshot snap2 = reg.snapshot();
  EXPECT_DOUBLE_EQ(histogram_quantile(*snap2.find("c"), 0.5), 0.0);
}

TEST(Metrics, JsonCarriesHistogramQuantiles) {
  Registry reg;
  for (int v = 1; v <= 16; ++v) reg.histogram("lat").observe(v);
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(Metrics, JsonSkipsZeroCountSamplesAndEscapesNames) {
  Registry reg;
  reg.counter("active").add(3);
  (void)reg.counter("idle");  // Never incremented: must not appear.
  reg.gauge("util").set(0.5);
  reg.histogram("lat").observe(7);

  const std::string json = metrics_json(reg.snapshot());
  EXPECT_NE(json.find("\"active\": 3"), std::string::npos);
  EXPECT_EQ(json.find("idle"), std::string::npos);
  EXPECT_NE(json.find("\"util\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"count\": 1, \"sum\": 7"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Metrics, EmptySnapshotSerializesToEmptyObject) {
  EXPECT_EQ(metrics_json(MetricsSnapshot{}), "{}");
}

}  // namespace
