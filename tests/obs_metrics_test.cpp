// Metrics registry unit tests: counter/gauge/histogram semantics, local
// tally merging, snapshot deltas, and the manifest JSON serialization.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace {

using namespace rsd::obs;

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(Metrics, HistogramBucketIndexIsBitWidth) {
  EXPECT_EQ(HistogramData::bucket_index(-5), 0);
  EXPECT_EQ(HistogramData::bucket_index(0), 0);
  EXPECT_EQ(HistogramData::bucket_index(1), 1);
  EXPECT_EQ(HistogramData::bucket_index(2), 2);
  EXPECT_EQ(HistogramData::bucket_index(3), 2);
  EXPECT_EQ(HistogramData::bucket_index(4), 3);
  // Saturates at the last bucket.
  EXPECT_EQ(HistogramData::bucket_index(std::int64_t{1} << 62), kHistogramBuckets - 1);
}

TEST(Metrics, HistogramObserveAndMergeAgree) {
  HistogramData local;
  local.observe(1);
  local.observe(10);
  local.observe(100);
  EXPECT_EQ(local.count, 3);
  EXPECT_EQ(local.sum, 111);
  EXPECT_EQ(local.min, 1);
  EXPECT_EQ(local.max, 100);
  EXPECT_DOUBLE_EQ(local.mean(), 37.0);

  Histogram shared;
  shared.observe(1000);
  shared.merge(local);
  const HistogramData d = shared.data();
  EXPECT_EQ(d.count, 4);
  EXPECT_EQ(d.sum, 1111);
  EXPECT_EQ(d.min, 1);
  EXPECT_EQ(d.max, 1000);
}

TEST(Metrics, RegistrySnapshotIsSortedAndFindable) {
  Registry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("m.mid").set(0.5);
  reg.histogram("h.hist").observe(8);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
  const MetricSample* c = snap.find("a.first");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_EQ(c->count, 1);
  const MetricSample* h = snap.find("h.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricKind::kHistogram);
  EXPECT_EQ(h->count, 1);
  EXPECT_EQ(h->sum, 8);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Metrics, DeltaAttributesOnlyIntervalActivity) {
  Registry reg;
  reg.counter("runs").add(10);
  reg.histogram("ns").observe(100);
  const MetricsSnapshot before = reg.snapshot();

  reg.counter("runs").add(5);
  reg.histogram("ns").observe(300);
  reg.counter("born.later").add(2);
  reg.gauge("util").set(0.75);
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot delta = metrics_delta(before, after);
  EXPECT_EQ(delta.find("runs")->count, 5);
  EXPECT_EQ(delta.find("ns")->count, 1);
  EXPECT_EQ(delta.find("ns")->sum, 300);
  EXPECT_DOUBLE_EQ(delta.find("ns")->value, 300.0);
  // A metric born inside the interval keeps its full value.
  EXPECT_EQ(delta.find("born.later")->count, 2);
  // Gauges report the latest value.
  EXPECT_DOUBLE_EQ(delta.find("util")->value, 0.75);
}

TEST(Metrics, JsonSkipsZeroCountSamplesAndEscapesNames) {
  Registry reg;
  reg.counter("active").add(3);
  (void)reg.counter("idle");  // Never incremented: must not appear.
  reg.gauge("util").set(0.5);
  reg.histogram("lat").observe(7);

  const std::string json = metrics_json(reg.snapshot());
  EXPECT_NE(json.find("\"active\": 3"), std::string::npos);
  EXPECT_EQ(json.find("idle"), std::string::npos);
  EXPECT_NE(json.find("\"util\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"count\": 1, \"sum\": 7"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Metrics, EmptySnapshotSerializesToEmptyObject) {
  EXPECT_EQ(metrics_json(MetricsSnapshot{}), "{}");
}

}  // namespace
