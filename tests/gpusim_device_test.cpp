#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "interconnect/link.hpp"
#include "sim/scheduler.hpp"

namespace rsd::gpu {
namespace {

using namespace rsd::literals;

DeviceParams test_params() {
  DeviceParams p;
  p.matmul_tflops = 100.0;
  p.kernel_base = 4_us;
  p.kernel_setup = 8_us;
  p.copy_setup = 4_us;
  p.wake_t0 = 500_ns;
  p.wake_alpha = 0.1;
  p.wake_max = 1_ms;
  p.memory_capacity = 40 * kGiB;
  return p;
}

TEST(MemoryPool, AllocateAndFree) {
  MemoryPool pool{1000};
  const auto h1 = pool.allocate(400);
  const auto h2 = pool.allocate(600);
  EXPECT_EQ(pool.used(), 1000u);
  EXPECT_EQ(pool.peak(), 1000u);
  EXPECT_EQ(pool.allocation_count(), 2u);
  pool.free(h1);
  EXPECT_EQ(pool.used(), 600u);
  EXPECT_EQ(pool.peak(), 1000u);
  pool.free(h2);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(MemoryPool, ThrowsOnOverCapacity) {
  MemoryPool pool{1000};
  (void)pool.allocate(800);
  try {
    (void)pool.allocate(300);
    FAIL() << "expected OOM";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOutOfMemory);
  }
}

TEST(MemoryPool, ExactFitSucceeds) {
  MemoryPool pool{1000};
  EXPECT_NO_THROW((void)pool.allocate(1000));
}

TEST(MemoryPool, RejectsZeroByteAndUnknownFree) {
  MemoryPool pool{1000};
  EXPECT_THROW((void)pool.allocate(0), Error);
  EXPECT_THROW(pool.free(999), Error);
}

TEST(MemoryPool, PaperExclusionThreeFourGiBMatricesTimesFourThreads) {
  // Section IV-B: 3 * 4 GiB * 4 threads > 40 GiB, so matrix size 2^15 is
  // excluded from the 4- and 8-thread sweeps.
  MemoryPool pool{40 * kGiB};
  const Bytes matrix = 4ULL * kGiB;
  std::vector<MemoryPool::Handle> handles;
  int allocated_threads = 0;
  try {
    for (int t = 0; t < 4; ++t) {
      for (int m = 0; m < 3; ++m) handles.push_back(pool.allocate(matrix));
      ++allocated_threads;
    }
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOutOfMemory);
  }
  EXPECT_EQ(allocated_threads, 3);  // 3 threads fit (36 GiB), the 4th does not
}

TEST(Device, MatmulDurationFollowsCubicCostModel) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  // 2 * 8192^3 flops at 100 TFLOP/s = ~11 ms.
  const auto d13 = dev.matmul_kernel_duration(8192);
  EXPECT_NEAR(d13.ms(), 11.0, 0.5);
  // Small kernels bottom out near kernel_base.
  const auto tiny = dev.matmul_kernel_duration(16);
  EXPECT_GE(tiny, 4_us);
  EXPECT_LT(tiny, 5_us);
  // Monotone in n.
  EXPECT_LT(dev.matmul_kernel_duration(512), dev.matmul_kernel_duration(2048));
}

TEST(Device, WakePenaltyPiecewiseShape) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  EXPECT_EQ(dev.wake_penalty(SimDuration::zero()), SimDuration::zero());
  EXPECT_EQ(dev.wake_penalty(500_ns), SimDuration::zero());  // below t0
  // Linear region: alpha * (gap - t0).
  EXPECT_NEAR(dev.wake_penalty(100_us + 500_ns).us(), 10.0, 1e-6);
  // Saturates at wake_max.
  EXPECT_EQ(dev.wake_penalty(1_s), 1_ms);
  // Monotone non-decreasing.
  SimDuration prev = SimDuration::zero();
  for (std::int64_t us = 1; us <= 100000; us *= 10) {
    const auto w = dev.wake_penalty(duration::microseconds(static_cast<double>(us)));
    EXPECT_GE(w, prev);
    prev = w;
  }
}

TEST(Engine, SingleOpPaysExposedSetupWhenIdle) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  OpRecord rec;
  rec.kind = OpKind::kKernel;
  sched.spawn([](Device& d, OpRecord& r) -> sim::Task<> {
    co_await d.compute_engine().execute(r, 100_us);
  }(dev, rec));
  sched.run();
  EXPECT_EQ(rec.exposed_overhead, 8_us);
  EXPECT_EQ(rec.wake_penalty, SimDuration::zero());  // device starts warm
  // Duration is pure execution; the exposed setup appears before `start`.
  EXPECT_EQ(rec.end - rec.start, 100_us);
  EXPECT_EQ(rec.start, SimTime::zero() + 8_us);
}

TEST(Engine, QueuedOpHidesSetup) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  OpRecord r1;
  OpRecord r2;
  auto submit = [](Device& d, OpRecord& r) -> sim::Task<> {
    co_await d.compute_engine().execute(r, 100_us);
  };
  sched.spawn(submit(dev, r1));
  sched.spawn(submit(dev, r2));  // arrives while r1 queued -> hidden setup
  sched.run();
  EXPECT_EQ(r1.exposed_overhead, 8_us);
  EXPECT_EQ(r2.exposed_overhead, SimDuration::zero());
  EXPECT_EQ(r2.end - r2.start, 100_us);
  // FIFO service.
  EXPECT_EQ(r2.start, r1.end);
}

TEST(Engine, WakePenaltyPaidAfterDeviceIdleGap) {
  sim::Scheduler sched;
  auto params = test_params();
  Device dev{sched, params, interconnect::make_pcie_gen4_x16()};
  OpRecord r1;
  OpRecord r2;
  sched.spawn([](Device& d, OpRecord& a, OpRecord& b) -> sim::Task<> {
    co_await d.compute_engine().execute(a, 10_us);
    co_await sim::delay(1_ms);  // device fully idle for 1 ms
    co_await d.compute_engine().execute(b, 10_us);
  }(dev, r1, r2));
  sched.run();
  EXPECT_EQ(r1.wake_penalty, SimDuration::zero());
  // W(1 ms) = 0.1 * (1 ms - 0.5 us) ~ 99.95 us.
  EXPECT_NEAR(r2.wake_penalty.us(), 99.95, 0.1);
  EXPECT_EQ(dev.wake_count(), 1);
  EXPECT_EQ(dev.total_wake_penalty(), r2.wake_penalty);
}

TEST(Engine, NoWakePenaltyWhenOtherEngineBusy) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  OpRecord copy;
  OpRecord kernel;
  // A long copy keeps the device busy; a kernel arriving mid-copy pays no
  // wake penalty even though the compute engine was idle.
  sched.spawn([](Device& d, OpRecord& c) -> sim::Task<> {
    co_await d.h2d_engine().execute(c, 10_ms);
  }(dev, copy));
  sched.spawn([](Device& d, OpRecord& k) -> sim::Task<> {
    co_await sim::delay(5_ms);
    co_await d.compute_engine().execute(k, 10_us);
  }(dev, kernel));
  sched.run();
  EXPECT_EQ(kernel.wake_penalty, SimDuration::zero());
}

TEST(Engine, CopyAndComputeEnginesRunInParallel) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  OpRecord copy;
  OpRecord kernel;
  sched.spawn([](Device& d, OpRecord& c) -> sim::Task<> {
    co_await d.h2d_engine().execute(c, 100_us);
  }(dev, copy));
  sched.spawn([](Device& d, OpRecord& k) -> sim::Task<> {
    co_await d.compute_engine().execute(k, 100_us);
  }(dev, kernel));
  sched.run();
  // Both execute from their own setup offsets — no serialisation across
  // engines (a serialised kernel would start only after the 100 us copy).
  EXPECT_EQ(copy.start, SimTime::zero() + 4_us);
  EXPECT_EQ(kernel.start, SimTime::zero() + 8_us);
}

TEST(Engine, BusyTimeAccumulates) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  OpRecord r1;
  OpRecord r2;
  sched.spawn([](Device& d, OpRecord& a, OpRecord& b) -> sim::Task<> {
    co_await d.compute_engine().execute(a, 50_us);
    co_await d.compute_engine().execute(b, 70_us);
  }(dev, r1, r2));
  sched.run();
  // Execution time only (setup overheads land in queue delay).
  EXPECT_EQ(dev.kernel_busy_time(), 120_us);
}

TEST(Device, BusyTimeAndEnergyAccounting) {
  sim::Scheduler sched;
  auto params = test_params();
  params.busy_watts = 400.0;
  params.idle_watts = 50.0;
  Device dev{sched, params, interconnect::make_pcie_gen4_x16()};
  sched.spawn([](Device& d) -> sim::Task<> {
    OpRecord r1;
    co_await d.compute_engine().execute(r1, 92_us);  // 8 us setup + 92 = 100 us busy
    co_await sim::delay(900_us);                      // idle
  }(dev));
  sched.run();
  const SimTime end = SimTime::zero() + 1_ms;
  EXPECT_EQ(dev.device_busy_time(end), 100_us);
  // 100 us at 400 W + 900 us at 50 W.
  EXPECT_NEAR(dev.energy_joules(end), 100e-6 * 400.0 + 900e-6 * 50.0, 1e-9);
}

TEST(Device, OverlappingEnginesCountBusyOnce) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  // Copy engine busy 0..100us (after 4us setup: 4..104), kernel overlapping.
  sched.spawn([](Device& d) -> sim::Task<> {
    OpRecord c;
    co_await d.h2d_engine().execute(c, 96_us);
  }(dev));
  sched.spawn([](Device& d) -> sim::Task<> {
    OpRecord k;
    co_await d.compute_engine().execute(k, 92_us);
  }(dev));
  sched.run();
  // Both ops span [0, 100us] wall including setups; device busy is the
  // union, not the sum.
  EXPECT_EQ(dev.device_busy_time(SimTime::zero() + 100_us), 100_us);
}

TEST(Device, EngineForDispatch) {
  sim::Scheduler sched;
  Device dev{sched, test_params(), interconnect::make_pcie_gen4_x16()};
  EXPECT_EQ(&dev.engine_for(OpKind::kKernel), &dev.compute_engine());
  EXPECT_EQ(&dev.engine_for(OpKind::kMemcpyH2D), &dev.h2d_engine());
  EXPECT_EQ(&dev.engine_for(OpKind::kMemcpyD2H), &dev.d2h_engine());
}

}  // namespace
}  // namespace rsd::gpu
