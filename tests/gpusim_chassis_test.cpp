#include "gpusim/chassis.hpp"

#include <gtest/gtest.h>

#include "gpusim/collective.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace rsd::gpu {
namespace {

using namespace rsd::literals;

TEST(Chassis, ConstructsRequestedDevices) {
  sim::Scheduler sched;
  Chassis chassis{sched, ChassisParams{.gpus = 4}};
  EXPECT_EQ(chassis.size(), 4);
  EXPECT_EQ(chassis.device(0).memory().capacity(), 40ULL * kGiB);
}

TEST(Chassis, SingleParticipantAllreduceIsFree) {
  sim::Scheduler sched;
  Chassis chassis{sched, ChassisParams{.gpus = 2}};
  sched.spawn([](Chassis& c) -> sim::Task<> {
    co_await c.ring_allreduce(kGiB, 1);
  }(chassis));
  sched.run();
  EXPECT_EQ(sched.now(), SimTime::zero());
}

TEST(Chassis, ExecutedAllreduceMatchesAnalyticModel) {
  sim::Scheduler sched;
  ChassisParams params;
  params.gpus = 8;
  Chassis chassis{sched, params};
  const Bytes bytes = 256 * kMiB;
  sched.spawn([](Chassis& c, Bytes b) -> sim::Task<> {
    co_await c.ring_allreduce(b, 8);
  }(chassis, bytes));
  sched.run();

  const SimDuration analytic = ring_allreduce_time(bytes, 8, params.fabric);
  const SimDuration executed = sched.now() - SimTime::zero();
  // The DES adds per-op engine setup; agreement within 15%.
  EXPECT_GT(executed, analytic);
  EXPECT_LT(executed.seconds(), analytic.seconds() * 1.15);
}

TEST(Chassis, PhasesAreBulkSynchronous) {
  // All devices' engines are occupied the same amount: each participant
  // sends and receives 2(k-1) chunks.
  sim::Scheduler sched;
  ChassisParams params;
  params.gpus = 4;
  Chassis chassis{sched, params};
  trace::TraceRecorder rec;
  chassis.set_record_sink(&rec);
  sched.spawn([](Chassis& c) -> sim::Task<> {
    co_await c.ring_allreduce(64 * kMiB, 4);
  }(chassis));
  sched.run();
  // 2(4-1) = 6 phases x 4 participants = 24 transfers x 2 records each.
  EXPECT_EQ(rec.trace().ops().size(), 48u);
  std::size_t sends = 0;
  std::size_t recvs = 0;
  for (const auto& op : rec.trace().ops()) {
    if (op.kind == OpKind::kMemcpyD2H) ++sends;
    if (op.kind == OpKind::kMemcpyH2D) ++recvs;
    EXPECT_EQ(op.bytes, 64 * kMiB / 4);
  }
  EXPECT_EQ(sends, 24u);
  EXPECT_EQ(recvs, 24u);
}

TEST(Chassis, ScatteredFabricIsSlower) {
  auto run = [](const GpuInterconnect& fabric) {
    sim::Scheduler sched;
    ChassisParams params;
    params.gpus = 8;
    params.fabric = fabric;
    Chassis chassis{sched, params};
    sched.spawn([](Chassis& c) -> sim::Task<> {
      co_await c.ring_allreduce(256 * kMiB, 8);
    }(chassis));
    sched.run();
    return sched.now() - SimTime::zero();
  };
  EXPECT_LT(run(make_nvlink()), run(make_scattered()));
}

TEST(Chassis, SubsetParticipation) {
  sim::Scheduler sched;
  Chassis chassis{sched, ChassisParams{.gpus = 8}};
  trace::TraceRecorder rec;
  chassis.set_record_sink(&rec);
  sched.spawn([](Chassis& c) -> sim::Task<> {
    co_await c.ring_allreduce(16 * kMiB, 3);  // only first 3 GPUs
  }(chassis));
  sched.run();
  // 2(3-1) = 4 phases x 3 transfers x 2 records = 24.
  EXPECT_EQ(rec.trace().ops().size(), 24u);
}

}  // namespace
}  // namespace rsd::gpu
