#include "proxy/sweep_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/csv.hpp"
#include "exec/pool.hpp"

namespace rsd::proxy {
namespace {

namespace fs = std::filesystem;
using namespace rsd::literals;

SweepConfig small_config() {
  SweepConfig cfg;
  cfg.matrix_sizes = {1 << 9, 1 << 11};
  cfg.thread_counts = {1, 2};
  cfg.slacks = {SimDuration::zero(), 10_us, 1_ms};
  cfg.target_compute = 100_ms;
  return cfg;
}

std::string to_csv(const std::vector<SweepPoint>& points) {
  CsvWriter csv;
  for (const auto& p : points) {
    csv.row(p.matrix_n, p.threads, p.slack.ns(), p.normalized_runtime,
            p.result.kernel_duration.ns(), p.result.matrix_bytes, p.result.iterations,
            p.result.loop_runtime.ns(), p.result.no_slack_time.ns(),
            p.result.cuda_calls_per_thread);
  }
  return csv.str();
}

struct TempDir {
  fs::path path;
  TempDir() : path(fs::temp_directory_path() / "rsd_sweep_cache_test") {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(SweepCache, MemoizesAndRoundTripsThroughDisk) {
  TempDir tmp;
  const ProxyRunner runner;
  const SweepConfig cfg = small_config();

  SweepCache cache{tmp.path};
  const auto fresh = cache.get_or_run(runner, cfg);
  EXPECT_FALSE(fresh.empty());
  EXPECT_EQ(to_csv(fresh), to_csv(run_slack_sweep(runner, cfg)));

  // In-process memoization.
  EXPECT_EQ(to_csv(cache.get_or_run(runner, cfg)), to_csv(fresh));

  // Cross-process path: a new cache on the same directory must load the
  // persisted CSV and reproduce the sweep bit-for-bit.
  SweepCache reopened{tmp.path};
  const auto loaded = reopened.get_or_run(runner, cfg);
  EXPECT_EQ(to_csv(loaded), to_csv(fresh));

  // And the entry really is on disk.
  bool found = false;
  for (const auto& e : fs::directory_iterator(tmp.path)) {
    if (e.path().extension() == ".csv") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SweepCache, FingerprintDependsOnGridAndCalibration) {
  const ProxyRunner a;
  SweepConfig cfg = small_config();
  const std::uint64_t base = SweepCache::fingerprint(a, cfg);

  SweepConfig denser = cfg;
  denser.matrix_sizes.push_back(1 << 13);
  EXPECT_NE(SweepCache::fingerprint(a, denser), base);

  SweepConfig slower = cfg;
  slower.target_compute = 200_ms;
  EXPECT_NE(SweepCache::fingerprint(a, slower), base);

  gpu::DeviceParams params;
  params.matmul_tflops *= 2.0;
  const ProxyRunner faster{params, a.link_params()};
  EXPECT_NE(SweepCache::fingerprint(faster, cfg), base);

  EXPECT_EQ(SweepCache::fingerprint(a, cfg), base);  // stable
}

TEST(SweepCache, CorruptEntryIsRebuilt) {
  TempDir tmp;
  const ProxyRunner runner;
  const SweepConfig cfg = small_config();

  SweepCache cache{tmp.path};
  const auto fresh = cache.get_or_run(runner, cfg);

  // Truncate every cache file, then force a reload from disk.
  for (const auto& e : fs::directory_iterator(tmp.path)) {
    std::ofstream out{e.path(), std::ios::trunc};
  }
  SweepCache reopened{tmp.path};
  EXPECT_EQ(to_csv(reopened.get_or_run(runner, cfg)), to_csv(fresh));
}

}  // namespace
}  // namespace rsd::proxy
