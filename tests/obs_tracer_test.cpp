// Tracer unit tests: ring-buffer semantics, snapshot ordering, span
// pairing, JSON escaping, and Chrome trace_event well-formedness.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace {

using namespace rsd::obs;

/// Every test runs against the process-wide tracer, so each one starts
/// from a clean enabled state and disables on exit.
class TracerTest : public testing::Test {
 protected:
  void SetUp() override { Tracer::instance().enable(kCapacity); }
  void TearDown() override { Tracer::instance().disable(); }

  static constexpr std::size_t kCapacity = 64;
};

Event sim_complete(std::int32_t sim, std::int32_t track, std::int64_t ts, std::int64_t dur,
                   std::string name) {
  Event e;
  e.phase = Phase::kComplete;
  e.sim_id = sim;
  e.track = track;
  e.ts_ns = ts;
  e.dur_ns = dur;
  e.category = "gpu";
  e.name = std::move(name);
  return e;
}

TEST_F(TracerTest, DisabledTracerDropsEventsSilently) {
  Tracer::instance().disable();
  EXPECT_FALSE(Tracer::enabled());
  Tracer::instance().instant("test", "ignored");
  Tracer::instance().enable(kCapacity);
  EXPECT_EQ(Tracer::instance().snapshot().events.size(), 0u);
}

TEST_F(TracerTest, CapturesInstantAndCounterEvents) {
  Tracer::instance().instant("test", "marker", {Arg::n("x", 7)});
  Tracer::instance().counter("test", "depth", 3.0);
  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.dropped, 0u);
  // Wall events are stamped with a non-decreasing wall clock.
  EXPECT_GE(snap.events[1].ts_ns, snap.events[0].ts_ns);
}

TEST_F(TracerTest, RingOverwritesOldestAndCountsDrops) {
  for (std::size_t i = 0; i < kCapacity + 10; ++i) {
    Tracer::instance().instant_sim(0, 0, static_cast<std::int64_t>(i), "test",
                                   "e" + std::to_string(i));
  }
  const auto snap = Tracer::instance().snapshot();
  EXPECT_EQ(snap.events.size(), kCapacity);
  EXPECT_EQ(snap.dropped, 10u);
  // The survivors are the newest kCapacity events.
  EXPECT_EQ(snap.events.front().name, "e10");
  EXPECT_EQ(snap.events.back().name, "e" + std::to_string(kCapacity + 9));
}

TEST_F(TracerTest, SnapshotSortsByTimelineTrackAndTime) {
  Tracer::instance().emit(sim_complete(1, 0, 500, 10, "late"));
  Tracer::instance().emit(sim_complete(0, 1, 100, 10, "copy"));
  Tracer::instance().emit(sim_complete(0, 0, 300, 10, "k2"));
  Tracer::instance().emit(sim_complete(0, 0, 200, 10, "k1"));
  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.events[0].name, "k1");
  EXPECT_EQ(snap.events[1].name, "k2");
  EXPECT_EQ(snap.events[2].name, "copy");
  EXPECT_EQ(snap.events[3].name, "late");
}

TEST_F(TracerTest, EnableResetsCapturedEventsAndSimIds) {
  Tracer::instance().instant("test", "before");
  const std::int32_t first = Tracer::instance().acquire_sim_id();
  Tracer::instance().enable(kCapacity);
  EXPECT_EQ(Tracer::instance().snapshot().events.size(), 0u);
  // Sim ids restart, so a fresh trace starts at timeline zero again.
  EXPECT_EQ(Tracer::instance().acquire_sim_id(), 0);
  (void)first;
}

TEST_F(TracerTest, SpanEmitsMatchedBeginEnd) {
  {
    Span span{"test", "phase", {Arg::s("tag", "a")}};
    Tracer::instance().instant("test", "inside");
  }
  const auto snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.events.size(), 3u);
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const Event& e : snap.events) {
    if (e.phase == Phase::kBegin) ++begins;
    if (e.phase == Phase::kEnd) ++ends;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST_F(TracerTest, SpanConstructedWhileDisabledNeverEmits) {
  Tracer::instance().disable();
  {
    Span span{"test", "phase"};
    // Re-enabling mid-span must not produce an orphan kEnd.
    Tracer::instance().enable(kCapacity);
  }
  EXPECT_EQ(Tracer::instance().snapshot().events.size(), 0u);
}

TEST(JsonEscapeObs, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("l1\nl2\tt"), "l1\\nl2\\tt");
  EXPECT_EQ(json_escape(std::string{"x\x01y"}), "x\\u0001y");
}

TEST_F(TracerTest, ChromeExportIsWellFormed) {
  Tracer::instance().emit(sim_complete(0, 0, 100, 50, "sgemm_\"quoted\""));
  Tracer::instance().counter_sim(0, 0, 150, "gpu", "compute.queue", 2.0);
  Tracer::instance().instant_sim(0, 0, 120, "gpu", "wake_penalty", {Arg::n("ns", 10)});
  {
    Span span{"harness", "experiment:test"};
  }
  const std::string json = chrome_trace_json(Tracer::instance().snapshot());

  // Envelope + metadata naming both clock domains.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("sim-0"), std::string::npos);
  EXPECT_NE(json.find("host"), std::string::npos);
  // The quoted kernel name is escaped, not raw.
  EXPECT_NE(json.find("sgemm_\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("sgemm_\"quoted\""), std::string::npos);
  // Matched B/E pairs.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos;
       ++pos) {
    ++begins;
  }
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  // Complete events carry a duration; counters carry their value.
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"compute.queue\""), std::string::npos);
}

TEST_F(TracerTest, ChromeExportSkipsOrphanEnds) {
  // An E whose B fell out of the ring (simulated by emitting E directly).
  Event orphan;
  orphan.phase = Phase::kEnd;
  orphan.category = "test";
  orphan.name = "orphan";
  Tracer::instance().emit(std::move(orphan));
  const std::string json = chrome_trace_json(Tracer::instance().snapshot());
  EXPECT_EQ(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST_F(TracerTest, ChromeExportTimestampsAreMonotonicPerTrack) {
  Tracer::instance().emit(sim_complete(0, 0, 300, 10, "b"));
  Tracer::instance().emit(sim_complete(0, 0, 100, 10, "a"));
  const auto snap = Tracer::instance().snapshot();
  // Snapshot ordering is the export ordering: per (sim, track) ts ascends.
  std::int64_t last = -1;
  for (const Event& e : snap.events) {
    EXPECT_GE(e.ts_ns, last);
    last = e.ts_ns;
  }
}

}  // namespace
