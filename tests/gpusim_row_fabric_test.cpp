// PartitionedRow under each pluggable fabric: the digest must be
// byte-identical at any worker-thread count, the ring and full-mesh
// fabrics must coincide (one hop either way for ring-successor traffic),
// and a fabric whose device paths have zero latency must be rejected —
// it cannot bound cross-partition message arrival.
#include "gpusim/row.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "interconnect/fabric.hpp"

namespace rsd::gpu {
namespace {

using namespace rsd::literals;

RowTraining small_training() {
  RowTraining training;
  training.kernels = {RowKernel{NameRef{"fwd"}, 50_us}, RowKernel{NameRef{"bwd"}, 100_us}};
  training.submit_cost = 2_us;
  training.gradient_bytes = 32 * kMiB;
  training.steps = 2;
  return training;
}

struct RowRun {
  std::uint64_t digest;
  SimTime finish;
};

RowRun run_row(net::FabricKind kind, int gpus, int threads) {
  RowParams params;
  params.gpus = gpus;
  params.fabric_kind = kind;
  params.sim_threads = threads;
  PartitionedRow row{params};
  const SimTime finish = row.run_training(small_training());
  return RowRun{row.digest(), finish};
}

TEST(RowFabric, DigestIsThreadCountInvariantPerFabric) {
  for (const net::FabricKind kind : net::all_fabric_kinds()) {
    const RowRun base = run_row(kind, 16, 1);
    for (const int threads : {2, 8}) {
      const RowRun run = run_row(kind, 16, threads);
      EXPECT_EQ(run.digest, base.digest)
          << net::to_string(kind) << " at " << threads << " threads";
      EXPECT_EQ(run.finish, base.finish) << net::to_string(kind);
    }
  }
}

TEST(RowFabric, RingAndFullMeshCoincide) {
  // Ring traffic only crosses successor links; on both fabrics that is a
  // single dedicated hop with the same latency and bandwidth.
  const RowRun ring = run_row(net::FabricKind::kRing, 16, 2);
  const RowRun mesh = run_row(net::FabricKind::kFullMesh, 16, 2);
  EXPECT_EQ(ring.digest, mesh.digest);
  EXPECT_EQ(ring.finish, mesh.finish);
}

TEST(RowFabric, SwitchedFabricsDiverge) {
  const RowRun ring = run_row(net::FabricKind::kRing, 16, 2);
  const RowRun eswitch = run_row(net::FabricKind::kElectricalSwitch, 16, 2);
  const RowRun ocs = run_row(net::FabricKind::kOpticalCircuit, 16, 2);
  // The electrical switch adds a forwarding hop to every chunk; the OCS
  // drops the forwarding cost but pays one circuit reconfiguration per
  // rank up front.
  EXPECT_GT(eswitch.finish, ring.finish);
  EXPECT_NE(ocs.digest, eswitch.digest);
  EXPECT_NE(ocs.finish, eswitch.finish);
}

TEST(RowFabric, TopologyLookaheadMatchesShortestDevicePath) {
  RowParams params;
  params.gpus = 8;
  params.fabric_kind = net::FabricKind::kElectricalSwitch;
  PartitionedRow row{params};
  EXPECT_EQ(row.topology().min_device_path_latency(),
            params.fabric.latency + duration::microseconds(0.12) + params.fabric.latency);
}

TEST(RowFabric, ZeroLatencyFabricIsRejected) {
  RowParams params;
  params.gpus = 4;
  params.fabric.latency = SimDuration::zero();
  try {
    PartitionedRow row{params};
    FAIL() << "expected rsd::Error for a zero-latency device path";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(RowFabric, MultiChassisDigestIsThreadCountInvariantAndSlowerThanFlat) {
  // With chassis NICs on, ring edges that cross a chassis boundary are
  // priced over the routed NIC + fibre path. The digest must stay
  // byte-identical at any worker-thread count, and the fibre serialisation
  // must strictly lengthen the step relative to the flat row.
  for (const net::FabricKind kind : net::all_fabric_kinds()) {
    RowParams params;
    params.gpus = 16;
    params.fabric_kind = kind;
    params.gpus_per_chassis = 4;
    params.chassis_nics = true;
    params.sim_threads = 1;
    PartitionedRow base_row{params};
    const SimTime base_finish = base_row.run_training(small_training());

    for (const int threads : {2, 8}) {
      RowParams p = params;
      p.sim_threads = threads;
      PartitionedRow row{p};
      const SimTime finish = row.run_training(small_training());
      EXPECT_EQ(row.digest(), base_row.digest())
          << net::to_string(kind) << " at " << threads << " threads";
      EXPECT_EQ(finish, base_finish) << net::to_string(kind);
    }

    const RowRun flat = run_row(kind, 16, 1);
    EXPECT_GT(base_finish, flat.finish) << net::to_string(kind);
    EXPECT_NE(base_row.digest(), flat.digest) << net::to_string(kind);
  }
}

TEST(RowFabric, SingleGpuRowStillRuns) {
  // One rank has no cross-partition traffic; the engine falls back to the
  // link latency as lookahead and the allreduce is a no-op.
  const RowRun run = run_row(net::FabricKind::kRing, 1, 1);
  EXPECT_GT(run.finish, SimTime::zero());
}

TEST(RowFabric, LookaheadMatrixMatchesGlobalLookaheadPerFabric) {
  // The per-pair lookahead matrix only widens epoch horizons; digests and
  // finish times must match the single global window on every fabric at
  // every thread count.
  for (const net::FabricKind kind : net::all_fabric_kinds()) {
    RowParams global_params;
    global_params.gpus = 16;
    global_params.fabric_kind = kind;
    global_params.sim_threads = 1;
    global_params.lookahead_matrix = false;
    PartitionedRow global_row{global_params};
    const SimTime global_finish = global_row.run_training(small_training());

    for (const int threads : {1, 2, 8}) {
      RowParams params;
      params.gpus = 16;
      params.fabric_kind = kind;
      params.sim_threads = threads;
      params.lookahead_matrix = true;
      PartitionedRow row{params};
      const SimTime finish = row.run_training(small_training());
      EXPECT_EQ(row.digest(), global_row.digest())
          << net::to_string(kind) << " at " << threads << " threads";
      EXPECT_EQ(finish, global_finish) << net::to_string(kind);
    }
  }
}

TEST(RowFabric, SharedTopologyMatchesOwned) {
  // A prebuilt fabric passed through RowParams::topology must behave
  // exactly like the row's privately built one — including when several
  // rows share it back to back (warm route tables and all).
  for (const net::FabricKind kind : net::all_fabric_kinds()) {
    const RowRun owned = run_row(kind, 16, 2);
    net::FabricParams fparams;
    fparams.kind = kind;
    fparams.gpus = 16;
    const net::Topology topo = net::build_fabric(fparams);
    for (int repeat = 0; repeat < 2; ++repeat) {
      RowParams params;
      params.gpus = 16;
      params.fabric_kind = kind;
      params.sim_threads = 2;
      params.topology = &topo;
      PartitionedRow row{params};
      const SimTime finish = row.run_training(small_training());
      EXPECT_EQ(row.digest(), owned.digest) << net::to_string(kind);
      EXPECT_EQ(finish, owned.finish) << net::to_string(kind);
    }
  }
}

}  // namespace
}  // namespace rsd::gpu
