#include "apps/lammps.hpp"

#include <gtest/gtest.h>

#include "apps/scaling.hpp"
#include "trace/analysis.hpp"

namespace rsd::apps {
namespace {

using namespace rsd::literals;

TEST(Lammps, AtomCountConvention) {
  // Paper: box 20 = 32,000 atoms; box 120 = 6,912,000.
  EXPECT_EQ(lammps_atoms(20), 32'000);
  EXPECT_EQ(lammps_atoms(80), 2'048'000);
  EXPECT_EQ(lammps_atoms(100), 4'000'000);
  EXPECT_EQ(lammps_atoms(120), 6'912'000);
}

TEST(Lammps, TableOneBaselinePerStepTimes) {
  // Paper Table I (5000 steps, 1 proc, 1 thread):
  // box 20: 5.473 s -> 1.09 ms/step ... box 120: 541.45 s -> 108.3 ms/step.
  struct Anchor {
    int box;
    double ms_per_step;
    double tolerance;
  };
  const Anchor anchors[] = {
      {20, 1.09, 0.25}, {60, 13.3, 2.5}, {80, 32.1, 4.0}, {100, 62.4, 6.0}, {120, 108.3, 8.0}};
  for (const auto& a : anchors) {
    LammpsConfig cfg;
    cfg.box = a.box;
    cfg.procs = 1;
    cfg.steps = 36;  // two reneighbor cycles
    const AppRunResult r = run_lammps(cfg);
    EXPECT_NEAR(r.runtime.ms() / cfg.steps, a.ms_per_step, a.tolerance)
        << "box " << a.box;
  }
}

TEST(Lammps, SmallBoxDegradesWithMoreProcs) {
  // Figure 2: box 20 is too small to benefit; adding ranks makes it worse.
  const auto points = lammps_proc_scaling(20, {1, 2, 8, 24}, 18);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points[0].normalized, 1.0);
  EXPECT_GT(points[1].normalized, 1.0);
  EXPECT_GT(points[2].normalized, points[1].normalized);
  EXPECT_GT(points[3].normalized, 5.0);  // dramatic at 24 ranks
}

TEST(Lammps, LargeBoxBenefitsFromManyProcs) {
  // Figure 2: box 120 sees a ~55% runtime decrease by 24 ranks, with
  // diminishing returns after 16.
  const auto points = lammps_proc_scaling(120, {1, 8, 16, 24}, 18);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_LT(points[1].normalized, 0.45);  // 8 ranks: big win
  EXPECT_LT(points[3].normalized, 0.55);  // 24 ranks still much better than 1
  EXPECT_GT(points[3].normalized, 0.25);
  // Diminishing returns: the 16 -> 24 step does not improve much (or hurts).
  EXPECT_GT(points[3].normalized, points[2].normalized - 0.02);
}

TEST(Lammps, ThreadsImproveLargeBox) {
  // Section IV-A: more OpenMP threads help the CPU-side share at 8 procs.
  const auto points = lammps_thread_scaling(120, 8, {1, 2, 4, 6}, 18);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points[0].normalized, 1.0);
  EXPECT_LT(points[1].normalized, 1.0);
  EXPECT_LT(points[3].normalized, points[1].normalized);
  EXPECT_LT(points[3].normalized, 0.85);  // >=15% gain at 6 threads
}

TEST(Lammps, FigFourConfigMatchesPaperRuntime) {
  // Section IV-C: box 120, 8 procs, 1 thread ran 173 s over 5000 steps
  // (34.6 ms/step).
  LammpsConfig cfg;
  cfg.box = 120;
  cfg.procs = 8;
  cfg.steps = 36;
  const AppRunResult r = run_lammps(cfg);
  EXPECT_NEAR(r.runtime.ms() / cfg.steps, 36.0, 6.0);
}

TEST(Lammps, TraceTransferSizesLandInTableThreeBins) {
  LammpsConfig cfg;
  cfg.box = 120;
  cfg.procs = 8;
  cfg.steps = 19;  // includes one reneighbor step
  cfg.capture_trace = true;
  const AppRunResult r = run_lammps(cfg);
  const auto hist = trace::bin_transfer_sizes(r.trace, {1.0, 16.0, 256.0, 4096.0});
  // Positions (~9.9 MiB) in <=16; forces (~19.8 MiB) in <=256; the
  // reneighbor metadata (0.5 MiB) in <=1. Nothing above 256 MiB.
  EXPECT_GT(hist.count(0), 0u);
  EXPECT_GT(hist.count(1), 0u);
  EXPECT_GT(hist.count(2), 0u);
  EXPECT_EQ(hist.count(3), 0u);
  EXPECT_EQ(hist.count(4), 0u);
  // Per-step pattern: 8 position + 8 force transfers.
  EXPECT_EQ(hist.count(1), static_cast<std::size_t>(8 * cfg.steps));
  EXPECT_EQ(hist.count(2), static_cast<std::size_t>(8 * cfg.steps));
  // Mean in the paper's ballpark (16.85 MiB).
  EXPECT_NEAR(hist.mean(), 16.85, 3.0);
}

TEST(Lammps, TraceKernelMixMatchesGpuPackage) {
  LammpsConfig cfg;
  cfg.box = 60;
  cfg.procs = 2;
  cfg.steps = 5;
  cfg.capture_trace = true;
  const AppRunResult r = run_lammps(cfg);
  // Per rank: 3 kernels per step (pack, force, unpack) + 1 neighbor build
  // on the single reneighbor step.
  EXPECT_EQ(r.trace.kernel_count(), static_cast<std::size_t>(2 * (3 * 5 + 1)));
  std::size_t force = 0;
  for (const auto& op : r.trace.ops()) {
    if (op.kind != gpu::OpKind::kKernel) continue;
    EXPECT_TRUE(op.name == "lj_force" || op.name == "pack_atoms" ||
                op.name == "unpack_forces" || op.name == "neighbor_build")
        << op.name;
    if (op.name == "lj_force") ++force;
  }
  EXPECT_EQ(force, static_cast<std::size_t>(2 * 5));
  // lj_force dominates total kernel time.
  EXPECT_GT(trace::top_kernel_time_fraction(r.trace, 1), 0.7);
}

TEST(Lammps, RanksPayProcessSwitchSingleRankDoesNot) {
  LammpsConfig cfg;
  cfg.box = 60;
  cfg.steps = 6;
  cfg.capture_trace = true;
  cfg.procs = 1;
  const AppRunResult single = run_lammps(cfg);
  for (const auto& op : single.trace.ops()) {
    EXPECT_EQ(op.switch_penalty, SimDuration::zero());
  }
  cfg.procs = 4;
  const AppRunResult multi = run_lammps(cfg);
  SimDuration total_switch = SimDuration::zero();
  for (const auto& op : multi.trace.ops()) total_switch += op.switch_penalty;
  EXPECT_GT(total_switch, SimDuration::zero());
}

TEST(Lammps, SlackInjectionCountsAndEquationOne) {
  LammpsConfig cfg;
  cfg.box = 20;
  cfg.procs = 2;
  cfg.steps = 18;  // exactly one reneighbor (step 0)
  cfg.slack = 100_us;
  const AppRunResult r = run_lammps(cfg);
  // Per rank per step: h2d + pack + force + unpack + d2h + sync = 6 calls,
  // + 2 more (h2d metadata + neighbor kernel) on the step-0 reneighbor.
  const std::int64_t expected_per_rank = 6 * cfg.steps + 2;
  EXPECT_EQ(r.cuda_calls, 2 * expected_per_rank);
  EXPECT_EQ(r.runtime - r.no_slack_runtime, 100_us * expected_per_rank);
}

TEST(Lammps, WeakScalingEfficiencyDecaysLogarithmically) {
  LammpsConfig unit;
  unit.box = 60;
  unit.procs = 4;
  unit.steps = 36;
  const auto points = lammps_weak_scaling(unit, {1, 2, 4, 16});
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
  // Efficiency decreases but stays high (log-cost collectives).
  EXPECT_LT(points[1].efficiency, 1.0);
  EXPECT_LT(points[3].efficiency, points[1].efficiency);
  EXPECT_GT(points[3].efficiency, 0.5);
  // Runtime grows with log2(units): 16 units adds 4 stages vs 1 at 2 units.
  const double delta2 = points[1].runtime.seconds() - points[0].runtime.seconds();
  const double delta16 = points[3].runtime.seconds() - points[0].runtime.seconds();
  EXPECT_GT(delta16, delta2);
  EXPECT_LT(delta16, 8.0 * delta2);  // far sub-linear
}

TEST(Lammps, WeakScalingSingleUnitMatchesStrongRun) {
  LammpsConfig unit;
  unit.box = 60;
  unit.procs = 4;
  unit.steps = 18;
  const auto points = lammps_weak_scaling(unit, {1});
  const AppRunResult direct = run_lammps(unit);
  EXPECT_EQ(points[0].runtime, direct.runtime);
}

TEST(Lammps, DeterministicRuns) {
  LammpsConfig cfg;
  cfg.box = 60;
  cfg.procs = 4;
  cfg.steps = 10;
  const AppRunResult a = run_lammps(cfg);
  const AppRunResult b = run_lammps(cfg);
  EXPECT_EQ(a.runtime, b.runtime);
}

}  // namespace
}  // namespace rsd::apps
