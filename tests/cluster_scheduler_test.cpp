#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

namespace rsd::cluster {
namespace {

using namespace rsd::literals;

SimJob job(std::string name, double arrival_s, double duration_s, int cores, int gpus) {
  return SimJob{std::move(name), duration::seconds(arrival_s), duration::seconds(duration_s),
                cores, gpus};
}

TEST(Scheduler, SingleJobRunsImmediately) {
  const auto m = schedule_traditional({job("a", 0, 10, 48, 4)}, 2, NodeShape{48, 4});
  ASSERT_EQ(m.outcomes.size(), 1u);
  EXPECT_EQ(m.outcomes[0].wait(), SimDuration::zero());
  EXPECT_EQ(m.outcomes[0].finished, SimTime::zero() + duration::seconds(10.0));
  EXPECT_EQ(m.makespan, SimTime::zero() + duration::seconds(10.0));
}

TEST(Scheduler, FifoQueuesWhenFull) {
  // One node: the second job waits for the first.
  const auto m = schedule_traditional(
      {job("a", 0, 10, 48, 0), job("b", 0, 5, 48, 0)}, 1, NodeShape{48, 4});
  EXPECT_EQ(m.outcomes[0].wait(), SimDuration::zero());
  EXPECT_EQ(m.outcomes[1].wait(), duration::seconds(10.0));
  EXPECT_EQ(m.makespan, SimTime::zero() + duration::seconds(15.0));
}

TEST(Scheduler, ParallelWhenResourcesAllow) {
  const auto m = schedule_traditional(
      {job("a", 0, 10, 48, 0), job("b", 0, 10, 48, 0)}, 2, NodeShape{48, 4});
  EXPECT_EQ(m.outcomes[1].wait(), SimDuration::zero());
  EXPECT_EQ(m.makespan, SimTime::zero() + duration::seconds(10.0));
}

TEST(Scheduler, ArrivalsRespected) {
  const auto m = schedule_traditional({job("late", 100, 5, 48, 0)}, 1, NodeShape{48, 4});
  EXPECT_EQ(m.outcomes[0].started, SimTime::zero() + duration::seconds(100.0));
}

TEST(Scheduler, CdiPacksWhatTraditionalCannot) {
  // Two jobs each wanting half a node's cores and 3 GPUs: traditional needs
  // a whole node each (serialises on 1 node); CDI packs both at once.
  const std::vector<SimJob> jobs{job("a", 0, 10, 24, 2), job("b", 0, 10, 24, 2)};
  const auto traditional = schedule_traditional(jobs, 1, NodeShape{48, 4});
  const auto cdi = schedule_cdi(jobs, 1, NodeShape{48, 4});
  EXPECT_EQ(traditional.makespan, SimTime::zero() + duration::seconds(20.0));
  EXPECT_EQ(cdi.makespan, SimTime::zero() + duration::seconds(10.0));
  EXPECT_LT(cdi.mean_wait_seconds, traditional.mean_wait_seconds);
}

TEST(Scheduler, TrappedGpusAccountedTraditionalOnly) {
  // A CPU-only job traps the node's GPUs for its whole runtime.
  const std::vector<SimJob> jobs{job("cpu_only", 0, 100, 48, 0)};
  const auto traditional = schedule_traditional(jobs, 1, NodeShape{48, 4});
  const auto cdi = schedule_cdi(jobs, 1, NodeShape{48, 4});
  EXPECT_NEAR(traditional.avg_trapped_gpus, 4.0, 1e-9);
  EXPECT_NEAR(cdi.avg_trapped_gpus, 0.0, 1e-9);
}

TEST(Scheduler, TrappedGpusBurnIdlePower) {
  const std::vector<SimJob> jobs{job("cpu_only", 0, 100, 48, 0)};
  GpuPowerModel power;
  const auto traditional = schedule_traditional(jobs, 1, NodeShape{48, 4}, power);
  const auto cdi = schedule_cdi(jobs, 1, NodeShape{48, 4}, power);
  // Traditional: 4 trapped GPUs x 55 W x 100 s; CDI: 4 pooled x 8 W x 100 s.
  EXPECT_NEAR(traditional.gpu_energy_joules, 4 * 55.0 * 100.0, 1e-6);
  EXPECT_NEAR(cdi.gpu_energy_joules, 4 * 8.0 * 100.0, 1e-6);
}

TEST(Scheduler, BusyGpusBurnBusyPowerInBoth) {
  const std::vector<SimJob> jobs{job("gpu_job", 0, 50, 4, 4)};
  const auto traditional = schedule_traditional(jobs, 1, NodeShape{48, 4});
  const auto cdi = schedule_cdi(jobs, 1, NodeShape{48, 4});
  EXPECT_NEAR(traditional.avg_busy_gpus, 4.0, 1e-9);
  EXPECT_NEAR(cdi.avg_busy_gpus, 4.0, 1e-9);
  EXPECT_NEAR(traditional.gpu_energy_joules, 4 * 400.0 * 50.0, 1e-6);
}

TEST(Scheduler, HeadOfLineBlockingIsFifo) {
  // A big job at the head blocks a small one even though it would fit —
  // strict FIFO, as documented.
  const std::vector<SimJob> jobs{
      job("running", 0, 10, 48, 0),   // occupies the only node
      job("big", 1, 10, 48, 0),       // head of queue
      job("small", 2, 1, 1, 0),       // would fit nowhere anyway (1 node)
  };
  const auto m = schedule_traditional(jobs, 1, NodeShape{48, 4});
  EXPECT_EQ(m.outcomes[1].started, SimTime::zero() + duration::seconds(10.0));
  EXPECT_EQ(m.outcomes[2].started, SimTime::zero() + duration::seconds(20.0));
}

TEST(Scheduler, MeanMetricsComputed) {
  const std::vector<SimJob> jobs{job("a", 0, 10, 48, 0), job("b", 0, 10, 48, 0)};
  const auto m = schedule_traditional(jobs, 1, NodeShape{48, 4});
  EXPECT_NEAR(m.mean_wait_seconds, 5.0, 1e-9);        // 0 and 10
  EXPECT_NEAR(m.mean_turnaround_seconds, 15.0, 1e-9); // 10 and 20
}

TEST(Scheduler, EmptyJobListIsSafe) {
  const auto m = schedule_traditional({}, 2, NodeShape{48, 4});
  EXPECT_TRUE(m.outcomes.empty());
  EXPECT_EQ(m.makespan, SimTime::zero());
  EXPECT_DOUBLE_EQ(m.gpu_energy_joules, 0.0);
}

}  // namespace
}  // namespace rsd::cluster
