#include "core/units.hpp"

#include <gtest/gtest.h>

namespace rsd {
namespace {

using namespace rsd::literals;

TEST(Units, DurationLiteralsProduceNanoseconds) {
  EXPECT_EQ((5_ns).ns(), 5);
  EXPECT_EQ((3_us).ns(), 3'000);
  EXPECT_EQ((2_ms).ns(), 2'000'000);
  EXPECT_EQ((1_s).ns(), 1'000'000'000);
}

TEST(Units, DurationConversions) {
  const SimDuration d = 1500_us;
  EXPECT_DOUBLE_EQ(d.us(), 1500.0);
  EXPECT_DOUBLE_EQ(d.ms(), 1.5);
  EXPECT_DOUBLE_EQ(d.seconds(), 0.0015);
}

TEST(Units, DurationFactoryFunctions) {
  EXPECT_EQ(duration::microseconds(2.5).ns(), 2500);
  EXPECT_EQ(duration::milliseconds(0.001).ns(), 1000);
  EXPECT_EQ(duration::seconds(1e-9).ns(), 1);
  EXPECT_EQ(duration::nanoseconds(7).ns(), 7);
}

TEST(Units, DurationArithmetic) {
  EXPECT_EQ((3_us + 2_us).ns(), 5000);
  EXPECT_EQ((3_us - 2_us).ns(), 1000);
  EXPECT_EQ((3_us * std::int64_t{4}).ns(), 12000);
  EXPECT_EQ((std::int64_t{4} * 3_us).ns(), 12000);
  EXPECT_EQ((10_us / std::int64_t{4}).ns(), 2500);
  EXPECT_DOUBLE_EQ(10_us / 4_us, 2.5);
}

TEST(Units, DurationScaleByDouble) {
  EXPECT_EQ((10_us * 0.5).ns(), 5000);
  EXPECT_EQ((0.5 * 10_us).ns(), 5000);
}

TEST(Units, DurationComparison) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_EQ(1000_ns, 1_us);
  EXPECT_GT(1_ms, 999_us);
}

TEST(Units, DurationCompoundAssignment) {
  SimDuration d = 1_us;
  d += 2_us;
  EXPECT_EQ(d, 3_us);
  d -= 1_us;
  EXPECT_EQ(d, 2_us);
}

TEST(Units, TimePlusDuration) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + 5_us;
  EXPECT_EQ(t1.ns(), 5000);
  EXPECT_EQ((t1 - t0).ns(), 5000);
  EXPECT_EQ((t1 - 2_us).ns(), 3000);
}

TEST(Units, TimeOrdering) {
  EXPECT_LT(SimTime::zero(), SimTime{1});
  EXPECT_LT(SimTime{1}, SimTime::max());
}

TEST(Units, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_DOUBLE_EQ(to_mib(16 * kMiB), 16.0);
  EXPECT_DOUBLE_EQ(to_gib(40 * kGiB), 40.0);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3 MiB");
  EXPECT_EQ(format_bytes(4 * kGiB), "4 GiB");
}

TEST(Units, FormatDurationPicksUnit) {
  EXPECT_EQ(format_duration(500_ns), "500 ns");
  EXPECT_EQ(format_duration(18_us), "18 us");
  EXPECT_EQ(format_duration(73_ms), "73 ms");
  EXPECT_EQ(format_duration(4_s), "4 s");
}

}  // namespace
}  // namespace rsd
