// Network fast path: the dense route tables must be indistinguishable
// from a fresh per-pair Dijkstra on randomized topologies, the express
// single-hop transfer path must be timing-identical to the scheduled
// acquire/serialize/release protocol on every fabric, and the topology's
// cached aggregates must survive mutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "interconnect/fabric.hpp"
#include "interconnect/network.hpp"
#include "interconnect/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace rsd::net {
namespace {

using rsd::duration::microseconds;
using rsd::duration::nanoseconds;

/// A random directed graph over GPU and switch nodes: every link latency
/// is at least 1ns (the conservative engine's requirement), bandwidths
/// and forwarding costs vary, and connectivity is whatever the dice gave
/// us — unreachable pairs must throw identically from both routers.
Topology random_topology(std::uint64_t seed) {
  Rng rng{seed};
  Topology topo;
  const int nodes = 6 + static_cast<int>(rng.uniform_index(7));
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    NodeDesc desc;
    desc.name = "n" + std::to_string(i);
    if (rng.uniform() < 0.3) {
      desc.kind = NodeKind::kSwitch;
      desc.forward_latency = nanoseconds(static_cast<double>(rng.uniform_index(500)));
    }
    ids.push_back(topo.add_node(desc));
  }
  const int links = nodes + static_cast<int>(rng.uniform_index(
                                static_cast<std::uint64_t>(2 * nodes)));
  for (int i = 0; i < links; ++i) {
    const auto a = ids[rng.uniform_index(static_cast<std::uint64_t>(nodes))];
    const auto b = ids[rng.uniform_index(static_cast<std::uint64_t>(nodes))];
    if (a == b) continue;
    topo.add_link(LinkDesc{
        a, b, LinkKind::kNvlink, rng.uniform(1.0, 400.0),
        nanoseconds(1.0 + static_cast<double>(rng.uniform_index(5'000)))});
  }
  return topo;
}

TEST(RouteTable, MatchesFreshDijkstraOnRandomTopologies) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 0xfabULL, 0xc0ffeeULL}) {
    const Topology topo = random_topology(seed);
    const int n = static_cast<int>(topo.node_count());
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        if (s == d) continue;
        const auto src = static_cast<NodeId>(s);
        const auto dst = static_cast<NodeId>(d);
        Path fresh;
        bool fresh_reachable = true;
        try {
          fresh = topo.route_dijkstra(src, dst);
        } catch (const Error&) {
          fresh_reachable = false;
        }
        if (!fresh_reachable) {
          EXPECT_THROW((void)topo.route(src, dst), Error)
              << "seed=" << seed << " " << s << "->" << d;
          continue;
        }
        const Path& table = topo.route(src, dst);
        EXPECT_EQ(table.latency, fresh.latency) << "seed=" << seed << " " << s << "->" << d;
        EXPECT_EQ(table.links, fresh.links) << "seed=" << seed << " " << s << "->" << d;
        EXPECT_EQ(table.bottleneck_gib_s, fresh.bottleneck_gib_s);
        EXPECT_EQ(table.optical_hops, fresh.optical_hops);
      }
    }
  }
}

TEST(RouteTable, MatchesFreshDijkstraOnMultiChassisFabrics) {
  // The multi-chassis graphs add NIC and fibre hops (and a host stub);
  // the dense tables must stay indistinguishable from the per-pair
  // reference search across every node pair of every fabric shape.
  for (const FabricKind kind : all_fabric_kinds()) {
    FabricParams params;
    params.kind = kind;
    params.gpus = 16;
    params.gpus_per_chassis = 4;
    params.chassis_nics = true;
    params.host_endpoint = true;
    const Topology topo = build_fabric(params);
    ASSERT_EQ(topo.nic_count(), 4) << to_string(kind);
    const int n = static_cast<int>(topo.node_count());
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        if (s == d) continue;
        const auto src = static_cast<NodeId>(s);
        const auto dst = static_cast<NodeId>(d);
        Path fresh;
        bool fresh_reachable = true;
        try {
          fresh = topo.route_dijkstra(src, dst);
        } catch (const Error&) {
          fresh_reachable = false;
        }
        if (!fresh_reachable) {
          EXPECT_THROW((void)topo.route(src, dst), Error)
              << to_string(kind) << " " << s << "->" << d;
          continue;
        }
        const Path& table = topo.route(src, dst);
        EXPECT_EQ(table.latency, fresh.latency)
            << to_string(kind) << " " << s << "->" << d;
        EXPECT_EQ(table.links, fresh.links) << to_string(kind) << " " << s << "->" << d;
        EXPECT_EQ(table.bottleneck_gib_s, fresh.bottleneck_gib_s);
        EXPECT_EQ(table.optical_hops, fresh.optical_hops);
      }
    }
  }
}

TEST(RouteTable, NicHopTieBreaksAreDeterministic) {
  // Cross-chassis routes have genuine ties (e.g. on a NIC full mesh both
  // directions around a 4-NIC ring cost the same): two independently
  // built copies of the same fabric must route every device pair over the
  // same link id sequence, and the table must agree with the reference
  // search on the tie it picked.
  FabricParams params;
  params.gpus = 16;
  params.gpus_per_chassis = 4;
  params.chassis_nics = true;
  for (const FabricKind kind : all_fabric_kinds()) {
    params.kind = kind;
    const Topology first = build_fabric(params);
    const Topology second = build_fabric(params);
    for (int s = 0; s < first.device_count(); ++s) {
      for (int d = 0; d < first.device_count(); ++d) {
        if (s == d) continue;
        const Path& a = first.route(first.device(s), first.device(d));
        const Path& b = second.route(second.device(s), second.device(d));
        EXPECT_EQ(a.links, b.links) << to_string(kind) << " " << s << "->" << d;
        EXPECT_EQ(a.links, first.route_dijkstra(first.device(s), first.device(d)).links)
            << to_string(kind) << " " << s << "->" << d;
      }
    }
  }
}

TEST(RouteTable, TransferTimeIsIntegerNsIdenticalToFreshDijkstra) {
  const Topology topo = random_topology(0x5eedULL);
  const int n = static_cast<int>(topo.node_count());
  const Bytes bytes = 3 * kMiB + 17;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto src = static_cast<NodeId>(s);
      const auto dst = static_cast<NodeId>(d);
      Path fresh;
      try {
        fresh = topo.route_dijkstra(src, dst);
      } catch (const Error&) {
        continue;
      }
      const SimDuration expected =
          fresh.latency + duration::seconds(static_cast<double>(bytes) /
                                            (fresh.bottleneck_gib_s *
                                             static_cast<double>(kGiB)));
      EXPECT_EQ(topo.transfer_time(src, dst, bytes).ns(), expected.ns())
          << s << "->" << d;
    }
  }
}

TEST(RouteTable, CountsBuildsPerSourceAndHitsPerLookup) {
  FabricParams params;
  params.gpus = 8;
  const Topology topo = build_fabric(params);
  const std::uint64_t builds0 = topo.route_table_builds();
  const std::uint64_t hits0 = topo.route_table_hits();

  (void)topo.route(topo.device(0), topo.device(1));
  (void)topo.route(topo.device(0), topo.device(2));
  EXPECT_EQ(topo.route_table_builds(), builds0 + 1);  // one Dijkstra for source 0
  (void)topo.route(topo.device(0), topo.device(1));
  (void)topo.route(topo.device(0), topo.device(1));
  EXPECT_EQ(topo.route_table_builds(), builds0 + 1);
  EXPECT_EQ(topo.route_table_hits(), hits0 + 2);  // repeat lookups hit the table
}

TEST(RouteTable, InvalidatedByTopologyMutation) {
  Topology topo;
  const NodeId a = topo.add_node(NodeDesc{.name = "a"});
  const NodeId b = topo.add_node(NodeDesc{.name = "b"});
  topo.add_link(LinkDesc{a, b, LinkKind::kNvlink, 100.0, microseconds(10.0)});
  EXPECT_EQ(topo.route(a, b).latency, microseconds(10.0));

  // A faster parallel link must displace the cached route.
  topo.add_link(LinkDesc{a, b, LinkKind::kNvlink, 100.0, microseconds(1.0)});
  EXPECT_EQ(topo.route(a, b).latency, microseconds(1.0));
}

TEST(MinDevicePathLatency, CacheInvalidatedByMutation) {
  Topology topo;
  const NodeId a = topo.add_node(NodeDesc{.name = "a"});
  const NodeId b = topo.add_node(NodeDesc{.name = "b"});
  topo.add_duplex(a, b, LinkKind::kNvlink, 100.0, microseconds(5.0));
  EXPECT_EQ(topo.min_device_path_latency(), microseconds(5.0));
  EXPECT_EQ(topo.min_device_path_latency(), microseconds(5.0));  // cached

  const NodeId c = topo.add_node(NodeDesc{.name = "c"});
  topo.add_duplex(b, c, LinkKind::kNvlink, 100.0, microseconds(2.0));
  EXPECT_EQ(topo.min_device_path_latency(), microseconds(2.0));
}

// -- Express-vs-scheduled timing parity -----------------------------------

struct TransferRecord {
  int src = 0;
  int dst = 0;
  std::int64_t finish_ns = 0;

  bool operator==(const TransferRecord&) const = default;
  bool operator<(const TransferRecord& o) const {
    return std::tie(finish_ns, src, dst) < std::tie(o.finish_ns, o.src, o.dst);
  }
};

struct ParityRun {
  std::vector<TransferRecord> records;
  std::int64_t final_ns = 0;
  std::uint64_t transfers = 0;
  std::uint64_t contended = 0;
  std::uint64_t express = 0;
  std::int64_t busy_ns = 0;
};

/// A deliberately bursty workload: ring-neighbor chunks (single hop on
/// ring/fullmesh — express candidates), long-haul transfers (multi-hop on
/// switched fabrics), and same-link pile-ups that force queueing. The
/// whole point: with the express path disabled the observable timing must
/// not move by a nanosecond.
ParityRun run_parity_workload(const Topology& topo, bool express_enabled) {
  sim::Scheduler sched;
  Network network{sched, topo};
  network.set_express_enabled(express_enabled);
  ParityRun run;

  struct Job {
    int src;
    int dst;
    Bytes bytes;
    SimDuration start;
  };
  std::vector<Job> jobs;
  const int gpus = topo.device_count();
  for (int i = 0; i < gpus; ++i) {
    jobs.push_back(Job{i, (i + 1) % gpus, 4 * kMiB, microseconds(0.5 * i)});
    jobs.push_back(Job{i, (i + gpus / 2) % gpus, 1 * kMiB, microseconds(1.0 * i)});
  }
  // Pile-up: three back-to-back bursts on the same pair.
  for (int burst = 0; burst < 3; ++burst) {
    jobs.push_back(Job{0, 1, 8 * kMiB, microseconds(0.1 * burst)});
  }

  for (const Job& job : jobs) {
    sched.spawn([](sim::Scheduler& s, Network& net, Job j,
                   std::vector<TransferRecord>* out) -> sim::Task<> {
      co_await sim::delay(j.start);
      co_await net.transfer_between_devices(j.src, j.dst, j.bytes);
      out->push_back(TransferRecord{j.src, j.dst, s.now().ns()});
    }(sched, network, job, &run.records));
  }
  sched.run();
  EXPECT_EQ(sched.unfinished_count(), 0u);

  // Same-instant completions may resume in a different internal order;
  // the multiset of (finish, src, dst) is the timing fingerprint.
  std::sort(run.records.begin(), run.records.end());
  run.final_ns = sched.now().ns();
  run.transfers = network.transfers();
  run.contended = network.contended_transfers();
  run.express = network.express_transfers();
  run.busy_ns = network.link_busy_total().ns();
  return run;
}

TEST(ExpressPath, TimingIdenticalToScheduledPathOnEveryFabric) {
  for (const FabricKind kind : all_fabric_kinds()) {
    FabricParams params;
    params.kind = kind;
    params.gpus = 8;
    const Topology topo = build_fabric(params);
    const ParityRun on = run_parity_workload(topo, /*express_enabled=*/true);
    const ParityRun off = run_parity_workload(topo, /*express_enabled=*/false);

    EXPECT_EQ(on.records, off.records) << to_string(kind);
    EXPECT_EQ(on.final_ns, off.final_ns) << to_string(kind);
    EXPECT_EQ(on.transfers, off.transfers) << to_string(kind);
    EXPECT_EQ(on.contended, off.contended) << to_string(kind);
    EXPECT_EQ(on.busy_ns, off.busy_ns) << to_string(kind);
    EXPECT_EQ(off.express, 0u) << to_string(kind);
    if (kind == FabricKind::kRing || kind == FabricKind::kFullMesh) {
      // Ring-neighbor traffic is single-hop on these fabrics, so the
      // express path must actually engage when enabled.
      EXPECT_GT(on.express, 0u) << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace rsd::net
