// Smoke test: the umbrella header compiles standalone and exposes the
// public entry points.
#include "rowscale.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, PublicEntryPointsVisible) {
  using namespace rsd;
  using namespace rsd::literals;

  EXPECT_EQ((100_us).us(), 100.0);
  EXPECT_NEAR(interconnect::reach_km_for_slack(100_us), 20.0, 1e-9);

  const proxy::ProxyRunner runner;
  proxy::ProxyConfig cfg;
  cfg.matrix_n = 1 << 9;
  cfg.max_iterations = 5;
  EXPECT_TRUE(runner.run(cfg).fits_memory);

  rsd::lj::System md{3};
  EXPECT_EQ(md.atom_count(), 108);

  cluster::CdiCluster pool{2, 24, 8};
  EXPECT_EQ(pool.free_gpus(), 8);
}

}  // namespace
