// Parameterized property suites for the computational substrates: MD
// conservation laws across system sizes and timesteps, CNN gradient
// correctness across layer shapes, and statistics invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "core/histogram.hpp"
#include "core/stats.hpp"
#include "lj/system.hpp"
#include "nn/network.hpp"

namespace rsd {
namespace {

// ---------------------------------------------------------------------
// LJ: energy and momentum conservation for several system sizes.
class LjConservation : public testing::TestWithParam<int> {};  // lattice cells

TEST_P(LjConservation, EnergyAndMomentum) {
  lj::System sys{GetParam()};
  const double e0 = sys.total_energy();
  sys.run(120);
  EXPECT_NEAR(sys.total_energy(), e0, 1e-3 * std::abs(e0));
  const lj::Vec3 p = sys.net_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-6);
  EXPECT_NEAR(p.y, 0.0, 1e-6);
  EXPECT_NEAR(p.z, 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LjConservation, testing::Values(3, 4, 5, 6, 7));

// ---------------------------------------------------------------------
// LJ: smaller timesteps conserve energy at least as well (2nd-order
// integrator: drift ~ dt^2).
class LjTimestep : public testing::TestWithParam<double> {};

TEST_P(LjTimestep, DriftBoundedByTimestep) {
  lj::LjParams params;
  params.dt = GetParam();
  lj::System sys{5, params};
  const double e0 = sys.total_energy();
  const int steps = static_cast<int>(0.5 / params.dt);  // fixed simulated span
  sys.run(steps);
  const double drift = std::abs(sys.total_energy() - e0) / std::abs(e0);
  // Generous envelope: drift scales with dt^2; at dt=0.005 it's well below
  // 1e-3 over this span.
  EXPECT_LT(drift, 40.0 * params.dt * params.dt);
}

INSTANTIATE_TEST_SUITE_P(Timesteps, LjTimestep, testing::Values(0.001, 0.002, 0.005));

// ---------------------------------------------------------------------
// CNN: analytic gradients match finite differences across layer shapes.
struct ConvShape {
  std::int64_t in_ch;
  std::int64_t out_ch;
  std::int64_t kernel;
  std::int64_t pad;
  std::int64_t volume;
};

class ConvGradients : public testing::TestWithParam<ConvShape> {};

TEST_P(ConvGradients, MatchFiniteDifferences) {
  const auto shape = GetParam();
  Rng rng{99};
  nn::Conv3d conv{shape.in_ch, shape.out_ch, shape.kernel, shape.pad, rng};

  nn::Tensor x{{1, shape.in_ch, shape.volume, shape.volume, shape.volume}};
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
  }
  const nn::Tensor y = conv.forward(x);
  nn::Tensor target{y.shape()};
  target.fill(0.1);

  conv.backward(nn::MseLoss::gradient(y, target));

  const nn::Scalar eps = 1e-5;
  for (auto view : conv.params()) {
    const std::size_t n = view.values.size();
    for (const std::size_t pi : {std::size_t{0}, n / 2, n - 1}) {
      const nn::Scalar saved = view.values[pi];
      view.values[pi] = saved + eps;
      const nn::Scalar up = nn::MseLoss::value(conv.forward(x), target);
      view.values[pi] = saved - eps;
      const nn::Scalar down = nn::MseLoss::value(conv.forward(x), target);
      view.values[pi] = saved;
      const nn::Scalar numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(view.grads[pi], numeric, 1e-5 + 1e-4 * std::abs(numeric));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvGradients,
                         testing::Values(ConvShape{1, 1, 3, 1, 4}, ConvShape{2, 3, 3, 1, 4},
                                         ConvShape{1, 2, 1, 0, 3}, ConvShape{3, 1, 3, 0, 5},
                                         ConvShape{2, 2, 3, 1, 6}));

// ---------------------------------------------------------------------
// Stats: merging any K-way split of a sample stream reproduces the
// sequential moments exactly.
class StatsMerge : public testing::TestWithParam<int> {};  // number of shards

TEST_P(StatsMerge, SplitMergeInvariance) {
  const int shards = GetParam();
  Rng rng{2024};
  StreamingStats all;
  std::vector<StreamingStats> parts(static_cast<std::size_t>(shards));
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    all.add(x);
    parts[static_cast<std::size_t>(i % shards)].add(x);
  }
  StreamingStats merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9 * std::abs(all.mean()));
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-8 * all.variance());
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

INSTANTIATE_TEST_SUITE_P(Shards, StatsMerge, testing::Values(2, 3, 7, 16, 101));

// ---------------------------------------------------------------------
// Histograms: total count conservation and bin-edge consistency for
// arbitrary edge sets.
class EdgeHistogramProperty : public testing::TestWithParam<int> {};  // seed

TEST_P(EdgeHistogramProperty, CountsConservedAndOrdered) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  EdgeHistogram hist{{1.0, 16.0, 256.0, 4096.0}};
  const int n = 2000;
  for (int i = 0; i < n; ++i) hist.add(rng.lognormal(2.0, 2.5));
  std::size_t total = 0;
  for (std::size_t b = 0; b < hist.bin_count(); ++b) total += hist.count(b);
  EXPECT_EQ(total, static_cast<std::size_t>(n));
  EXPECT_EQ(hist.total(), static_cast<std::size_t>(n));
  // bin_index is consistent with the counts: re-binning agrees.
  EXPECT_EQ(hist.bin_index(1.0), 0u);
  EXPECT_EQ(hist.bin_index(1e9), hist.bin_count() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeHistogramProperty, testing::Range(1, 6));

// ---------------------------------------------------------------------
// Quantiles: for any sorted data, quantile_sorted is monotone in q and
// bounded by min/max.
class QuantileProperty : public testing::TestWithParam<int> {};  // sample count

TEST_P(QuantileProperty, MonotoneBounded) {
  Rng rng{7};
  const int n = GetParam();
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal(0.0, 10.0);
  std::sort(v.begin(), v.end());
  double prev = -std::numeric_limits<double>::infinity();
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double val = quantile_sorted(v, q);
    EXPECT_GE(val, prev - 1e-12);
    EXPECT_GE(val, v.front());
    EXPECT_LE(val, v.back());
    prev = val;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, QuantileProperty, testing::Values(1, 2, 3, 10, 1000));

}  // namespace
}  // namespace rsd
