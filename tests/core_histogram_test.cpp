#include "core/histogram.hpp"

#include <gtest/gtest.h>

namespace rsd {
namespace {

TEST(EdgeHistogram, TableThreeBinningLayout) {
  // The paper's Table III bins transfer sizes (MiB) at 1, 16, 256, 4096.
  EdgeHistogram h{{1.0, 16.0, 256.0, 4096.0}};
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_EQ(h.bin_label(0), "<=1");
  EXPECT_EQ(h.bin_label(1), "<=16");
  EXPECT_EQ(h.bin_label(2), "<=256");
  EXPECT_EQ(h.bin_label(3), "<=4096");
  EXPECT_EQ(h.bin_label(4), ">4096");
}

TEST(EdgeHistogram, BinIndexBoundaries) {
  EdgeHistogram h{{1.0, 16.0, 256.0, 4096.0}};
  EXPECT_EQ(h.bin_index(0.5), 0u);
  EXPECT_EQ(h.bin_index(1.0), 0u);   // edges are inclusive upper bounds
  EXPECT_EQ(h.bin_index(1.0001), 1u);
  EXPECT_EQ(h.bin_index(16.0), 1u);
  EXPECT_EQ(h.bin_index(256.0), 2u);
  EXPECT_EQ(h.bin_index(4096.0), 3u);
  EXPECT_EQ(h.bin_index(5000.0), 4u);
}

TEST(EdgeHistogram, CountsAndMean) {
  EdgeHistogram h{{10.0, 100.0}};
  h.add(5.0);
  h.add(50.0);
  h.add(50.0);
  h.add(500.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), (5.0 + 50.0 + 50.0 + 500.0) / 4.0);
}

TEST(EdgeHistogram, WeightedAdd) {
  EdgeHistogram h{{10.0}};
  h.add(5.0, 3);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(EdgeHistogram, RejectsBadEdges) {
  EXPECT_THROW(EdgeHistogram{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW((EdgeHistogram{{2.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW((EdgeHistogram{{1.0, 1.0}}), std::invalid_argument);
}

TEST(LinearHistogram, BinAssignment) {
  LinearHistogram h{0.0, 10.0, 5};
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.9);   // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, ClampsOutOfRange) {
  LinearHistogram h{0.0, 10.0, 5};
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(LinearHistogram, BinEdgesConsistent) {
  LinearHistogram h{0.0, 10.0, 5};
  for (std::size_t i = 0; i < h.bins(); ++i) {
    EXPECT_DOUBLE_EQ(h.bin_hi(i) - h.bin_lo(i), 2.0);
  }
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(LinearHistogram, RejectsBadRange) {
  EXPECT_THROW((LinearHistogram{0.0, 0.0, 5}), std::invalid_argument);
  EXPECT_THROW((LinearHistogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(LogHistogram, DecadeBins) {
  LogHistogram h{1.0, 1000.0, 3};  // decades: [1,10), [10,100), [100,1000)
  h.add(2.0);
  h.add(50.0);
  h.add(500.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
}

TEST(LogHistogram, ClampsAndHandlesNonPositive) {
  LogHistogram h{1.0, 1000.0, 3};
  h.add(0.0);      // clamps to first bin
  h.add(1e9);      // clamps to last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(LogHistogram, RejectsBadRange) {
  EXPECT_THROW((LogHistogram{0.0, 10.0, 3}), std::invalid_argument);
  EXPECT_THROW((LogHistogram{10.0, 1.0, 3}), std::invalid_argument);
  EXPECT_THROW((LogHistogram{1.0, 10.0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace rsd
