#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace rsd::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t{{2, 3, 4}};
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.dim(1), 3);
  for (const auto v : t.data()) EXPECT_EQ(v, 0.0);
}

TEST(Tensor, FiveDAccessorRowMajor) {
  Tensor t{{1, 2, 2, 2, 2}};
  t.at5(0, 1, 1, 1, 1) = 7.0;
  EXPECT_EQ(t[15], 7.0);
  t.at5(0, 0, 0, 0, 1) = 3.0;
  EXPECT_EQ(t[1], 3.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t{{2, 6}};
  t[5] = 9.0;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t[5], 9.0);
}

TEST(Conv3d, IdentityKernelPassesThrough) {
  Rng rng{1};
  Conv3d conv{1, 1, 1, 0, rng};  // 1x1x1 kernel, no padding
  auto params = conv.params();
  params[0].values[0] = 1.0;  // weight = identity
  params[1].values[0] = 0.0;  // bias = 0

  Tensor x{{1, 1, 2, 2, 2}};
  for (std::int64_t i = 0; i < x.size(); ++i) x[static_cast<std::size_t>(i)] = static_cast<Scalar>(i);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Conv3d, KnownSumKernel) {
  Rng rng{1};
  Conv3d conv{1, 1, 3, 0, rng};
  auto params = conv.params();
  for (auto& w : params[0].values) w = 1.0;  // box-sum kernel
  params[1].values[0] = 0.5;

  Tensor x{{1, 1, 3, 3, 3}};
  x.fill(2.0);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.size(), 1);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 27 + 0.5);
  EXPECT_EQ(conv.forward_flops(), 2 * 27);
}

TEST(Conv3d, SamePaddingPreservesShape) {
  Rng rng{1};
  Conv3d conv{2, 4, 3, 1, rng};
  Tensor x{{2, 2, 4, 4, 4}};
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 4, 4, 4, 4}));
}

TEST(Relu, ClampsNegativesForwardAndBackward) {
  Relu relu;
  Tensor x{{1, 4}};
  x[0] = -1.0;
  x[1] = 2.0;
  x[2] = 0.0;
  x[3] = -0.5;
  const Tensor y = relu.forward(x);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  Tensor g{{1, 4}};
  g.fill(1.0);
  const Tensor gx = relu.backward(g);
  EXPECT_DOUBLE_EQ(gx[0], 0.0);
  EXPECT_DOUBLE_EQ(gx[1], 1.0);
  EXPECT_DOUBLE_EQ(gx[2], 0.0);  // gradient at 0 defined as 0
}

TEST(MaxPool3d, SelectsMaxAndRoutesGradient) {
  MaxPool3d pool;
  Tensor x{{1, 1, 2, 2, 2}};
  for (std::int64_t i = 0; i < 8; ++i) x[static_cast<std::size_t>(i)] = static_cast<Scalar>(i);
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.size(), 1);
  EXPECT_DOUBLE_EQ(y[0], 7.0);

  Tensor g{{1, 1, 1, 1, 1}};
  g[0] = 5.0;
  const Tensor gx = pool.backward(g);
  EXPECT_DOUBLE_EQ(gx[7], 5.0);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(gx[i], 0.0);
}

TEST(Dense, LinearAlgebraCorrect) {
  Rng rng{1};
  Dense dense{2, 2, rng};
  auto params = dense.params();
  // W = [[1, 2], [3, 4]], b = [10, 20].
  params[0].values[0] = 1.0;
  params[0].values[1] = 2.0;
  params[0].values[2] = 3.0;
  params[0].values[3] = 4.0;
  params[1].values[0] = 10.0;
  params[1].values[1] = 20.0;

  Tensor x{{1, 2}};
  x[0] = 1.0;
  x[1] = 1.0;
  const Tensor y = dense.forward(x);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 27.0);
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  Tensor x{{2, 1, 2, 2, 2}};
  x[9] = 4.0;
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 8}));
  const Tensor back = flat.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  EXPECT_DOUBLE_EQ(back[9], 4.0);
}

TEST(Loss, MseValueAndGradient) {
  Tensor pred{{1, 2}};
  pred[0] = 1.0;
  pred[1] = 3.0;
  Tensor target{{1, 2}};
  target[0] = 0.0;
  target[1] = 1.0;
  EXPECT_DOUBLE_EQ(MseLoss::value(pred, target), (1.0 + 4.0) / 2.0);
  const Tensor g = MseLoss::gradient(pred, target);
  EXPECT_DOUBLE_EQ(g[0], 1.0);   // 2*(1-0)/2
  EXPECT_DOUBLE_EQ(g[1], 2.0);   // 2*(3-1)/2
}

/// Central-difference gradient check of a whole network.
void check_gradients(Network& net, const Tensor& x, const Tensor& target) {
  net.zero_grads();
  const Tensor pred = net.forward(x);
  net.backward(MseLoss::gradient(pred, target));

  const Scalar eps = 1e-5;
  for (std::size_t li = 0; li < net.layer_count(); ++li) {
    for (auto view : net.layer(li).params()) {
      // Check a subset of parameters for speed: first, middle, last.
      const std::size_t n = view.values.size();
      for (const std::size_t pi : {std::size_t{0}, n / 2, n - 1}) {
        const Scalar saved = view.values[pi];
        view.values[pi] = saved + eps;
        const Scalar up = MseLoss::value(net.forward(x), target);
        view.values[pi] = saved - eps;
        const Scalar down = MseLoss::value(net.forward(x), target);
        view.values[pi] = saved;
        const Scalar numeric = (up - down) / (2 * eps);
        const Scalar analytic = view.grads[pi];
        EXPECT_NEAR(analytic, numeric, 1e-5 + 1e-4 * std::abs(numeric))
            << "layer " << net.layer(li).name() << " param " << pi;
      }
    }
  }
}

TEST(Gradients, DenseNetworkMatchesFiniteDifferences) {
  Rng rng{42};
  Network net;
  net.add(std::make_unique<Dense>(4, 8, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Dense>(8, 2, rng));

  Tensor x{{2, 4}};
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
  }
  Tensor target{{2, 2}};
  target.fill(0.3);
  check_gradients(net, x, target);
}

TEST(Gradients, ConvPoolNetworkMatchesFiniteDifferences) {
  Rng rng{43};
  Network net;
  net.add(std::make_unique<Conv3d>(1, 2, 3, 1, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<MaxPool3d>());
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Dense>(2 * 2 * 2 * 2, 2, rng));

  Tensor x{{1, 1, 4, 4, 4}};
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
  }
  Tensor target{{1, 2}};
  target[0] = 0.5;
  target[1] = -0.5;
  check_gradients(net, x, target);
}

TEST(Training, LossDecreasesOnToyRegression) {
  Rng rng{7};
  Network net;
  net.add(std::make_unique<Dense>(3, 16, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Dense>(16, 1, rng));

  // Learn y = x0 + 2*x1 - x2.
  Tensor x{{8, 3}};
  Tensor y{{8, 1}};
  for (std::int64_t i = 0; i < 8; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    const double c = rng.uniform(-1.0, 1.0);
    x.at2(i, 0) = a;
    x.at2(i, 1) = b;
    x.at2(i, 2) = c;
    y.at2(i, 0) = a + 2 * b - c;
  }

  const Scalar first = net.train_step(x, y, 0.05);
  Scalar last = first;
  for (int e = 0; e < 200; ++e) last = net.train_step(x, y, 0.05);
  EXPECT_LT(last, first * 0.05);
}

TEST(Cosmoflow, FactoryShapesAndTrainability) {
  Rng rng{11};
  Network net = make_cosmoflow_net(1, 8, 2, 4, 3, rng);
  EXPECT_GT(net.parameter_count(), 0);

  Tensor x{{2, 1, 8, 8, 8}};
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[static_cast<std::size_t>(i)] = rng.uniform(0.0, 1.0);
  }
  const Tensor out = net.forward(x);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 3}));

  // FLOP accounting is populated after a forward pass; convs dominate.
  const auto flops = net.forward_flops_by_layer();
  EXPECT_GT(net.total_forward_flops(), 0);
  EXPECT_EQ(flops.size(), net.layer_count());
  EXPECT_NE(flops[0].first.find("conv3d"), std::string::npos);

  Tensor target{{2, 3}};
  target.fill(0.1);
  const Scalar first = net.train_step(x, target, 0.01);
  Scalar last = first;
  for (int e = 0; e < 30; ++e) last = net.train_step(x, target, 0.01);
  EXPECT_LT(last, first);
}

TEST(Cosmoflow, RejectsIndivisibleVolume) {
  Rng rng{1};
  EXPECT_DEATH((void)make_cosmoflow_net(1, 6, 2, 4, 3, rng), "RSD_ASSERT");
}

}  // namespace
}  // namespace rsd::nn
