// Parameterized property suites for the slack proxy and device model:
// the invariants behind Figure 3, swept across the configuration grid.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "interconnect/link.hpp"
#include "proxy/proxy.hpp"
#include "sim/scheduler.hpp"

namespace rsd::proxy {
namespace {

using namespace rsd::literals;

ProxyConfig quick(std::int64_t n, int threads, SimDuration slack) {
  ProxyConfig cfg;
  cfg.matrix_n = n;
  cfg.threads = threads;
  cfg.slack = slack;
  cfg.max_iterations = 20;
  return cfg;
}

// ---------------------------------------------------------------------
// Property: for every (size, threads) cell that fits, the Eq.1-normalized
// runtime at slack 0 is exactly 1 and runs are deterministic.
struct CellParam {
  std::int64_t n;
  int threads;
};

class ProxyCell : public testing::TestWithParam<CellParam> {};

TEST_P(ProxyCell, BaselineNormalizesToOneAndReplays) {
  const auto [n, threads] = GetParam();
  const ProxyRunner runner;
  const ProxyResult a = runner.run(quick(n, threads, SimDuration::zero()));
  const ProxyResult b = runner.run(quick(n, threads, SimDuration::zero()));
  ASSERT_TRUE(a.fits_memory);
  EXPECT_EQ(a.no_slack_time, a.loop_runtime);
  EXPECT_EQ(a.loop_runtime, b.loop_runtime);
  EXPECT_GE(a.iterations, 5);
}

INSTANTIATE_TEST_SUITE_P(Grid, ProxyCell,
                         testing::Values(CellParam{1 << 9, 1}, CellParam{1 << 9, 4},
                                         CellParam{1 << 11, 2}, CellParam{1 << 11, 8},
                                         CellParam{1 << 13, 1}, CellParam{1 << 13, 8},
                                         CellParam{1 << 15, 2}));

// ---------------------------------------------------------------------
// Property: single-threaded penalties are monotone non-decreasing in slack
// for every matrix size (the serial case has no contention-relief effects).
class SerialMonotonicity : public testing::TestWithParam<std::int64_t> {};

TEST_P(SerialMonotonicity, PenaltyNondecreasingInSlack) {
  const std::int64_t n = GetParam();
  const ProxyRunner runner;
  const ProxyResult base = runner.run(quick(n, 1, SimDuration::zero()));
  ASSERT_TRUE(base.fits_memory);
  double prev = 1.0;
  for (const SimDuration s : {1_us, 10_us, 100_us, 1_ms, 10_ms}) {
    const ProxyResult r = runner.run(quick(n, 1, s));
    const double norm = r.no_slack_time / base.no_slack_time;
    EXPECT_GE(norm, prev - 1e-9) << "slack " << s.us() << " us";
    prev = norm;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerialMonotonicity,
                         testing::Values(1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13,
                                         1 << 15));

// ---------------------------------------------------------------------
// Property: at fixed slack, larger matrices never suffer a larger
// single-thread penalty than smaller ones.
class SizeOrdering : public testing::TestWithParam<std::int64_t> {};  // slack us

TEST_P(SizeOrdering, PenaltyNonincreasingInSize) {
  const SimDuration slack = duration::microseconds(static_cast<double>(GetParam()));
  const ProxyRunner runner;
  double prev = std::numeric_limits<double>::infinity();
  for (const std::int64_t n : {1 << 9, 1 << 11, 1 << 13, 1 << 15}) {
    const ProxyResult base = runner.run(quick(n, 1, SimDuration::zero()));
    const ProxyResult r = runner.run(quick(n, 1, slack));
    const double norm = r.no_slack_time / base.no_slack_time;
    EXPECT_LE(norm, prev + 1e-9) << "size " << n;
    prev = norm;
  }
}

INSTANTIATE_TEST_SUITE_P(Slacks, SizeOrdering, testing::Values(1, 10, 100, 1000, 10000));

// ---------------------------------------------------------------------
// Property: Equation 1 always removes exactly calls * slack, for any cell.
struct Eq1Param {
  std::int64_t n;
  int threads;
  std::int64_t slack_us;
};

class EquationOneExactness : public testing::TestWithParam<Eq1Param> {};

TEST_P(EquationOneExactness, RemovedAmountExact) {
  const auto [n, threads, slack_us] = GetParam();
  const SimDuration slack = duration::microseconds(static_cast<double>(slack_us));
  const ProxyRunner runner;
  const ProxyResult r = runner.run(quick(n, threads, slack));
  ASSERT_TRUE(r.fits_memory);
  EXPECT_EQ(r.loop_runtime - r.no_slack_time, slack * r.cuda_calls_per_thread);
}

INSTANTIATE_TEST_SUITE_P(Grid, EquationOneExactness,
                         testing::Values(Eq1Param{1 << 9, 1, 10}, Eq1Param{1 << 9, 8, 100},
                                         Eq1Param{1 << 11, 4, 1000},
                                         Eq1Param{1 << 13, 2, 100}));

// ---------------------------------------------------------------------
// Property: the device wake-penalty function is monotone, zero below t0,
// and capped at wake_max for every parameterisation.
struct WakeParam {
  double alpha;
  std::int64_t t0_us;
  std::int64_t max_us;
};

class WakePenaltyShape : public testing::TestWithParam<WakeParam> {};

TEST_P(WakePenaltyShape, PiecewiseLinearSaturating) {
  const auto [alpha, t0_us, max_us] = GetParam();
  sim::Scheduler sched;
  gpu::DeviceParams params;
  params.wake_alpha = alpha;
  params.wake_t0 = duration::microseconds(static_cast<double>(t0_us));
  params.wake_max = duration::microseconds(static_cast<double>(max_us));
  gpu::Device dev{sched, params, interconnect::make_pcie_gen4_x16()};

  EXPECT_EQ(dev.wake_penalty(params.wake_t0), SimDuration::zero());
  EXPECT_EQ(dev.wake_penalty(duration::seconds(10.0)), params.wake_max);
  SimDuration prev = SimDuration::zero();
  for (std::int64_t us = 1; us <= 1'000'000; us *= 4) {
    const auto w = dev.wake_penalty(duration::microseconds(static_cast<double>(us)));
    EXPECT_GE(w, prev);
    EXPECT_LE(w, params.wake_max);
    prev = w;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, WakePenaltyShape,
                         testing::Values(WakeParam{0.1, 1, 1500}, WakeParam{0.5, 10, 500},
                                         WakeParam{0.01, 0, 100},
                                         WakeParam{1.0, 100, 10000}));

}  // namespace
}  // namespace rsd::proxy
