// Thread-count invariance of the partitioned parallel engine at the
// system level: the tracked fig3 golden CSV and a multi-GPU CosmoFlow row
// run must be byte-identical (same fingerprint/digest) whether the
// simulation runs on 1, 2, or 8 worker threads, and regardless of worker
// wakeup order (claim jitter). sim_partition_test covers the protocol at
// the engine level; this file proves the guarantee holds through the
// harness, the env override, and a real application.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/cosmoflow.hpp"
#include "exec/team.hpp"
#include "harness/context.hpp"
#include "harness/experiment.hpp"
#include "harness/registry.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace rsd;
namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Same golden as harness_determinism_test: the fingerprint of the tracked
// bench_results/fig3_slack_sweep.csv. Running the experiment with the
// RSD_SIM_THREADS override active must not move a byte.
constexpr std::uint64_t kFig3GoldenFnv1a = 0x266090334f7d1647ULL;
constexpr std::size_t kFig3GoldenBytes = 1964;

// RAII env override so a failing ASSERT can't leak the variable into
// later tests in this binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

std::string run_fig3_csv_with_sim_threads(int sim_threads) {
  const ScopedEnv env{"RSD_SIM_THREADS", std::to_string(sim_threads)};
  const fs::path dir =
      fs::path{testing::TempDir()} / ("rsd_fig3_simthreads_" + std::to_string(sim_threads));
  fs::remove_all(dir);

  harness::ExperimentContext::Options options;
  options.results_dir = dir;
  std::ostringstream sink;
  options.out = &sink;
  harness::ExperimentContext ctx{options};
  EXPECT_EQ(ctx.sim_threads(), sim_threads);

  const harness::Experiment* fig3 = harness::Registry::global().find("fig3_slack_sweep");
  if (fig3 == nullptr) return {};
  fig3->run(ctx);
  return read_file(dir / "fig3_slack_sweep.csv");
}

TEST(ParDesDeterminism, Fig3GoldenHashHoldsAtSimThreads128) {
  for (const int sim_threads : {1, 2, 8}) {
    const std::string bytes = run_fig3_csv_with_sim_threads(sim_threads);
    ASSERT_FALSE(bytes.empty()) << "sim_threads=" << sim_threads;
    EXPECT_EQ(bytes.size(), kFig3GoldenBytes) << "sim_threads=" << sim_threads;
    EXPECT_EQ(fnv1a64(bytes), kFig3GoldenFnv1a) << "sim_threads=" << sim_threads;
  }
}

TEST(ParDesDeterminism, RowCosmoflowIsIdenticalAtSimThreads128) {
  apps::RowCosmoflowConfig config;
  config.gpus = 8;
  config.steps = 2;

  config.sim_threads = 1;
  const apps::RowCosmoflowResult reference = apps::run_cosmoflow_row(config);
  ASSERT_GT(reference.events, 0u);
  ASSERT_GT(reference.messages, 0u);
  ASSERT_GT(reference.runtime.ns(), 0);

  for (const int sim_threads : {2, 8}) {
    config.sim_threads = sim_threads;
    const apps::RowCosmoflowResult run = apps::run_cosmoflow_row(config);
    EXPECT_EQ(run.digest, reference.digest) << "sim_threads=" << sim_threads;
    EXPECT_EQ(run.runtime.ns(), reference.runtime.ns()) << "sim_threads=" << sim_threads;
    EXPECT_EQ(run.events, reference.events) << "sim_threads=" << sim_threads;
    EXPECT_EQ(run.messages, reference.messages) << "sim_threads=" << sim_threads;
  }
}

// The env override mirrors the flag: RSD_SIM_THREADS drives the engine
// width when the config leaves sim_threads at 0.
TEST(ParDesDeterminism, EnvOverrideMatchesExplicitWidth) {
  apps::RowCosmoflowConfig config;
  config.gpus = 4;
  config.steps = 1;

  config.sim_threads = 1;
  const apps::RowCosmoflowResult reference = apps::run_cosmoflow_row(config);

  const ScopedEnv env{"RSD_SIM_THREADS", "3"};
  ASSERT_EQ(exec::default_sim_thread_count(), 3);
  config.sim_threads = 0;  // defer to the env
  const apps::RowCosmoflowResult run = apps::run_cosmoflow_row(config);
  EXPECT_EQ(run.digest, reference.digest);
  EXPECT_EQ(run.runtime.ns(), reference.runtime.ns());
}

// The exported simulated-domain trace — device slices, per-link usage
// counters, and the engine's per-partition epoch timelines — is JSON-
// byte-identical at any engine width: every event carries an explicit
// sim::Scheduler timestamp and the flush order is a pure function of the
// simulation, never of which OS thread ran a partition.
TEST(ParDesDeterminism, SimulatedTraceJsonIsByteIdenticalAtSimThreads128) {
  apps::RowCosmoflowConfig config;
  config.gpus = 8;
  config.steps = 2;

  auto traced_json = [&config](int sim_threads) {
    config.sim_threads = sim_threads;
    auto& tracer = obs::Tracer::instance();
    tracer.enable();  // resets rings and sim-id allocation: a fresh timeline
    const apps::RowCosmoflowResult run = apps::run_cosmoflow_row(config);
    EXPECT_GT(run.events, 0u) << "sim_threads=" << sim_threads;
    const auto snapshot = tracer.snapshot();
    tracer.disable();
    return obs::chrome_trace_json(obs::simulated_slice(snapshot));
  };

  const std::string reference = traced_json(1);
  ASSERT_FALSE(reference.empty());
  // The engine's epoch timelines must actually be in the export, not
  // vacuously absent.
  EXPECT_NE(reference.find("epoch.executed"), std::string::npos);
  for (const int sim_threads : {2, 8}) {
    const std::string run = traced_json(sim_threads);
    EXPECT_EQ(run.size(), reference.size()) << "sim_threads=" << sim_threads;
    EXPECT_EQ(run, reference) << "sim_threads=" << sim_threads;
  }
}

// Stress: randomizing worker wakeup/claim order (seeded jitter in the
// team's claim loop) must not change the result either — the merge order
// is decided by (time, src, seq), never by which OS thread got there
// first.
TEST(ParDesDeterminism, ClaimJitterDoesNotMoveTheDigest) {
  apps::RowCosmoflowConfig config;
  config.gpus = 8;
  config.steps = 2;
  config.sim_threads = 4;

  config.jitter_seed = 0;
  const apps::RowCosmoflowResult reference = apps::run_cosmoflow_row(config);

  for (const std::uint64_t seed : {0x1ULL, 0xdecafULL, 0x9e3779b97f4a7c15ULL}) {
    config.jitter_seed = seed;
    const apps::RowCosmoflowResult run = apps::run_cosmoflow_row(config);
    EXPECT_EQ(run.digest, reference.digest) << "seed=" << seed;
    EXPECT_EQ(run.runtime.ns(), reference.runtime.ns()) << "seed=" << seed;
    EXPECT_EQ(run.events, reference.events) << "seed=" << seed;
  }
}

}  // namespace
