#include "core/table.hpp"

#include <gtest/gtest.h>

#include "core/csv.hpp"

namespace rsd {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{"Box Size", "Atoms"};
  t.add_row("20", "32k");
  t.add_row("120", "6912k");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Box Size | Atoms |"), std::string::npos);
  EXPECT_NE(s.find("| 20       | 32k   |"), std::string::npos);
  EXPECT_NE(s.find("| 120      | 6912k |"), std::string::npos);
}

TEST(Table, HeaderWiderThanCells) {
  Table t{"LongHeaderName"};
  t.add_row("x");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| x              |"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t{"a", "b"};
  t.add_row_vec({"1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1 |   |"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t{"a"};
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row("1");
  t.add_row("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableFmt, FixedAndScientific) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

TEST(TableFmt, Percent) {
  EXPECT_EQ(fmt_pct(0.172, 1), "17.2%");
  EXPECT_EQ(fmt_pct(0.005, 2), "0.50%");
}

TEST(Csv, BasicRows) {
  CsvWriter w;
  w.row("a", "b", "c");
  w.row(1, 2.5, std::string{"x"});
  EXPECT_EQ(w.str(), "a,b,c\n1,2.5,x\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter w;
  w.row("has,comma", "has\"quote", "plain");
  EXPECT_EQ(w.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Csv, SaveAndReload) {
  CsvWriter w;
  w.row("x", "y");
  w.row(1, 2);
  const std::string path = testing::TempDir() + "/rsd_csv_test.csv";
  w.save(path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

}  // namespace
}  // namespace rsd
