// End-to-end integration of the paper's full method: profile an
// application on the simulated node, predict its slack penalty from the
// proxy surface (Equations 2-3), then *actually run* the application with
// injected slack and compare the measured penalty against the prediction.
// This closes the loop the paper could only close for the proxy itself.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/cosmoflow.hpp"
#include "apps/lammps.hpp"
#include "model/slack_model.hpp"
#include "proxy/proxy.hpp"
#include "trace/analysis.hpp"
#include "trace/import.hpp"

namespace rsd {
namespace {

using namespace rsd::literals;

class EndToEnd : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    const proxy::ProxyRunner runner;
    proxy::SweepConfig cfg;
    cfg.target_compute = 2_s;  // shortened sweep: same surface shape
    surface_ = new model::ResponseSurface(
        model::ResponseSurface::from_sweep(run_slack_sweep(runner, cfg)));
  }
  static void TearDownTestSuite() {
    delete surface_;
    surface_ = nullptr;
  }

  static model::ResponseSurface* surface_;
};

model::ResponseSurface* EndToEnd::surface_ = nullptr;

TEST_F(EndToEnd, LammpsPredictionBracketsMeasurementAtModerateSlack) {
  apps::LammpsConfig cfg;
  cfg.box = 60;
  cfg.procs = 4;
  cfg.steps = 90;
  cfg.capture_trace = true;
  const auto baseline = apps::run_lammps(cfg);

  const model::SlackModel slack_model{*surface_};
  const auto pred = slack_model.predict(baseline.trace, cfg.procs, 100_us);

  cfg.capture_trace = false;
  cfg.slack = 100_us;
  const auto slacked = apps::run_lammps(cfg);
  const double measured =
      slacked.no_slack_runtime / baseline.no_slack_runtime - 1.0;

  // Paper's headline regime: at 100 us both prediction and measurement are
  // small, and the measurement does not exceed the pessimistic bound.
  EXPECT_LT(pred.total.upper, 0.02);
  EXPECT_LT(measured, pred.total.upper + 0.02);
  EXPECT_LT(std::abs(measured), 0.05);
}

TEST_F(EndToEnd, LammpsMeasuredEffectSmallAtNetworkScaleSlack) {
  // Injecting network-scale slack directly into the multi-rank application
  // barely moves its Eq.1 runtime (it can even come out slightly negative:
  // slack thins the ranks' contention on the shared device, exactly the
  // multi-thread proxy's sub-1.0 behaviour).
  apps::LammpsConfig cfg;
  cfg.box = 60;
  cfg.procs = 4;
  cfg.steps = 54;
  const auto baseline = apps::run_lammps(cfg);
  for (const SimDuration slack : {10_us, 100_us}) {
    cfg.slack = slack;
    const auto r = apps::run_lammps(cfg);
    const double penalty = r.no_slack_runtime / baseline.no_slack_runtime - 1.0;
    EXPECT_LT(std::abs(penalty), 0.05) << "slack " << slack.us();
  }
}

TEST_F(EndToEnd, CosmoflowToleratesHundredMicrosecondSlack) {
  apps::CosmoflowConfig cfg;
  cfg.epochs = 1;
  cfg.train_items = 32;
  cfg.validation_items = 0;
  cfg.batch = 4;
  const auto baseline = apps::run_cosmoflow(cfg);
  cfg.slack = 100_us;
  const auto slacked = apps::run_cosmoflow(cfg);
  const double measured =
      slacked.no_slack_runtime / baseline.no_slack_runtime - 1.0;
  // GPU-dominant with deep launch queues: essentially unaffected.
  EXPECT_LT(measured, 0.01);
  EXPECT_GT(measured, -0.05);
}

TEST_F(EndToEnd, CosmoflowPredictionAgreesItIsTolerant) {
  apps::CosmoflowConfig cfg;
  cfg.epochs = 1;
  cfg.train_items = 32;
  cfg.validation_items = 0;
  cfg.batch = 4;
  cfg.capture_trace = true;
  const auto baseline = apps::run_cosmoflow(cfg);
  const model::SlackModel slack_model{*surface_};
  const auto pred = slack_model.predict(baseline.trace, 4, 100_us);
  EXPECT_LT(pred.total.upper, 0.01);  // the paper's < 1% headline
}

TEST_F(EndToEnd, WholeMethodRunsFromImportedTrace) {
  // Profile -> export CSV -> re-import (the external-trace path) ->
  // predict. Exercises the practitioner pipeline end to end.
  apps::LammpsConfig cfg;
  cfg.box = 20;
  cfg.procs = 2;
  cfg.steps = 36;
  cfg.capture_trace = true;
  const auto run = apps::run_lammps(cfg);
  const std::string csv = run.trace.ops_to_csv();

  std::istringstream in{csv};
  const trace::Trace reloaded = trace::parse_ops_csv(in);
  ASSERT_EQ(reloaded.ops().size(), run.trace.ops().size());

  const model::SlackModel slack_model{*surface_};
  const auto direct = slack_model.predict(run.trace, 2, 100_us);
  const auto via_csv = slack_model.predict(reloaded, 2, 100_us);
  EXPECT_DOUBLE_EQ(direct.total.lower, via_csv.total.lower);
  EXPECT_DOUBLE_EQ(direct.total.upper, via_csv.total.upper);
}

TEST_F(EndToEnd, FractionsDistinguishAppClasses) {
  // The paper's taxonomy: LAMMPS is CPU-heavy (GPU busy a minority of the
  // time), CosmoFlow is GPU-dominant.
  apps::LammpsConfig lcfg;
  lcfg.box = 120;
  lcfg.procs = 8;
  lcfg.steps = 54;
  lcfg.capture_trace = true;
  const auto lammps = apps::run_lammps(lcfg);
  const auto lf = trace::runtime_fractions(lammps.trace);

  apps::CosmoflowConfig ccfg;
  ccfg.epochs = 1;
  ccfg.train_items = 32;
  ccfg.validation_items = 0;
  ccfg.batch = 4;
  ccfg.capture_trace = true;
  const auto cosmo = apps::run_cosmoflow(ccfg);
  const auto cf = trace::runtime_fractions(cosmo.trace);

  EXPECT_GT(cf.kernel, 0.85);
  EXPECT_LT(lf.kernel, 0.6);
  EXPECT_GT(cf.kernel, lf.kernel);
}

}  // namespace
}  // namespace rsd
