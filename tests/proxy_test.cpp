#include "proxy/proxy.hpp"

#include <gtest/gtest.h>

#include <map>

#include "trace/analysis.hpp"

namespace rsd::proxy {
namespace {

using namespace rsd::literals;

/// Short configs keep the simulated runs fast; the dynamics are
/// deterministic, so small N loses nothing.
ProxyConfig quick(std::int64_t n, int threads, SimDuration slack) {
  ProxyConfig cfg;
  cfg.matrix_n = n;
  cfg.threads = threads;
  cfg.slack = slack;
  cfg.max_iterations = 30;
  return cfg;
}

double normalized(const ProxyRunner& runner, std::int64_t n, int threads, SimDuration slack) {
  const ProxyResult base = runner.run(quick(n, threads, SimDuration::zero()));
  const ProxyResult run = runner.run(quick(n, threads, slack));
  EXPECT_TRUE(base.fits_memory);
  EXPECT_TRUE(run.fits_memory);
  return run.no_slack_time / base.no_slack_time;
}

TEST(Calibration, TargetOverKernelTime) {
  EXPECT_EQ(calibrate_iterations(1_s, 30_s, 5, 1000), 30);
  EXPECT_EQ(calibrate_iterations(100_ms, 30_s, 5, 1000), 300);
}

TEST(Calibration, ClampsToFloorAndCeiling) {
  // Tiny kernels hit the 1000 ceiling.
  EXPECT_EQ(calibrate_iterations(10_us, 30_s, 5, 1000), 1000);
  // Huge kernels hit the floor of 5.
  EXPECT_EQ(calibrate_iterations(10_s, 30_s, 5, 1000), 5);
}

TEST(Proxy, ZeroSlackBaselineNormalizesToOne) {
  const ProxyRunner runner;
  const ProxyResult base = runner.run(quick(1 << 9, 1, SimDuration::zero()));
  EXPECT_TRUE(base.fits_memory);
  EXPECT_EQ(base.no_slack_time, base.loop_runtime);  // nothing to subtract
  EXPECT_GT(base.loop_runtime, SimDuration::zero());
}

TEST(Proxy, ResultMetadataConsistent) {
  const ProxyRunner runner;
  const ProxyResult r = runner.run(quick(1 << 9, 2, 1_us));
  EXPECT_EQ(r.matrix_n, 1 << 9);
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.matrix_bytes, Bytes{512} * 512 * 4);  // 1 MiB
  EXPECT_EQ(r.cuda_calls_per_thread, kCudaCallsPerIteration * r.iterations);
  EXPECT_GE(r.iterations, 5);
  EXPECT_LE(r.iterations, 30);
}

TEST(Proxy, EquationOneRemovesExactlyInjectedSlack) {
  const ProxyRunner runner;
  const ProxyResult r = runner.run(quick(1 << 9, 1, 100_us));
  const SimDuration removed = r.loop_runtime - r.no_slack_time;
  EXPECT_EQ(removed, 100_us * r.cuda_calls_per_thread);
}

TEST(Proxy, SmallMatrixShowsEffectsAtOneMicrosecond) {
  // Paper (IV-B): 2^9 was the first size to show slack effects at 1 us.
  const ProxyRunner runner;
  const double n9 = normalized(runner, 1 << 9, 1, 1_us);
  EXPECT_GT(n9, 1.0005);  // measurable
  const double n11 = normalized(runner, 1 << 11, 1, 1_us);
  EXPECT_LT(n11, n9);     // larger size is less affected
  EXPECT_LT(n11, 1.001);  // effectively unaffected
}

TEST(Proxy, LargeSlackBlowsUpSmallMatrices) {
  // Figure 3a: at 10 ms of slack the small sizes degrade by an order of
  // magnitude or more once the direct delay is removed.
  const ProxyRunner runner;
  const double n = normalized(runner, 1 << 9, 1, 10_ms);
  EXPECT_GT(n, 5.0);
  EXPECT_LT(n, 100.0);
}

TEST(Proxy, MidMatrixTenMsSlackModeratePenalty) {
  // Paper: 2^13 saw its first >=10% hit at 10 ms.
  const ProxyRunner runner;
  const double n = normalized(runner, 1 << 13, 1, 10_ms);
  EXPECT_GT(n, 1.02);
  EXPECT_LT(n, 1.25);
}

TEST(Proxy, HugeMatrixToleratesOneSecondSlack) {
  // Paper: no slack value up to 1 s affected 2^15.
  const ProxyRunner runner;
  const double n = normalized(runner, 1 << 15, 1, 1_s);
  EXPECT_LT(n, 1.01);
}

TEST(Proxy, PenaltyMonotoneInSlack) {
  const ProxyRunner runner;
  double prev = 0.0;
  for (const SimDuration s : {1_us, 10_us, 100_us, 1_ms, 10_ms}) {
    const double n = normalized(runner, 1 << 9, 1, s);
    EXPECT_GE(n, prev - 1e-9);
    prev = n;
  }
}

TEST(Proxy, MoreThreadsIncreaseSlackTolerance) {
  // Figure 3(a-c): parallel kernel submission raises tolerance.
  const ProxyRunner runner;
  const double t1 = normalized(runner, 1 << 9, 1, 1_ms);
  const double t2 = normalized(runner, 1 << 9, 2, 1_ms);
  const double t8 = normalized(runner, 1 << 9, 8, 1_ms);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t8);
}

TEST(Proxy, TwoFifteenExcludedAtFourThreads) {
  // 3 matrices * 4 GiB * 4 threads = 48 GiB > 40 GiB.
  const ProxyRunner runner;
  const ProxyResult r4 = runner.run(quick(1 << 15, 4, SimDuration::zero()));
  EXPECT_FALSE(r4.fits_memory);
  const ProxyResult r8 = runner.run(quick(1 << 15, 8, SimDuration::zero()));
  EXPECT_FALSE(r8.fits_memory);
  // 1 and 2 threads fit (12, 24 GiB).
  EXPECT_TRUE(runner.run(quick(1 << 15, 1, SimDuration::zero())).fits_memory);
  EXPECT_TRUE(runner.run(quick(1 << 15, 2, SimDuration::zero())).fits_memory);
}

TEST(Proxy, CapturedTraceMatchesWorkload) {
  const ProxyRunner runner;
  ProxyConfig cfg = quick(1 << 9, 2, 10_us);
  cfg.capture_trace = true;
  const ProxyResult r = runner.run(cfg);
  ASSERT_TRUE(r.trace.has_value());
  const auto& t = *r.trace;
  // Per thread: N kernels and 3N copies.
  EXPECT_EQ(t.kernel_count(), static_cast<std::size_t>(2 * r.iterations));
  EXPECT_EQ(t.memcpy_count(), static_cast<std::size_t>(2 * 3 * r.iterations));
  // API calls: 5 per iteration per thread (+ dmalloc/dfree are not APIs).
  EXPECT_EQ(t.apis().size(), static_cast<std::size_t>(2 * 5 * r.iterations));
  // All transfers are 1 MiB matrices.
  for (const auto& op : t.ops()) {
    if (op.kind != gpu::OpKind::kKernel) {
      EXPECT_EQ(op.bytes, kMiB);
    }
  }
}

TEST(Proxy, DeterministicAcrossRuns) {
  const ProxyRunner runner;
  const ProxyResult a = runner.run(quick(1 << 11, 4, 100_us));
  const ProxyResult b = runner.run(quick(1 << 11, 4, 100_us));
  EXPECT_EQ(a.loop_runtime, b.loop_runtime);
  EXPECT_EQ(a.no_slack_time, b.no_slack_time);
}

TEST(AsyncProxy, PipelineRunsAndKeepsDeviceFed) {
  const ProxyRunner runner;
  ProxyConfig cfg = quick(1 << 11, 1, SimDuration::zero());
  cfg.async_pipeline = true;
  cfg.capture_trace = true;
  const ProxyResult r = runner.run(cfg);
  ASSERT_TRUE(r.fits_memory);
  ASSERT_TRUE(r.trace.has_value());
  // Same device work as the sync loop: N kernels, 3N copies.
  EXPECT_EQ(r.trace->kernel_count(), static_cast<std::size_t>(r.iterations));
  EXPECT_EQ(r.trace->memcpy_count(), static_cast<std::size_t>(3 * r.iterations));
  // Copies overlap kernels: wall time beats the serialized sync loop.
  const ProxyResult sync = runner.run(quick(1 << 11, 1, SimDuration::zero()));
  EXPECT_LT(r.loop_runtime, sync.loop_runtime);
}

TEST(AsyncProxy, ToleratesSlackFarBetterThanSync) {
  const ProxyRunner runner;
  using namespace rsd::literals;
  auto slowdown = [&](bool async_pipeline) {
    ProxyConfig base = quick(1 << 11, 1, SimDuration::zero());
    base.async_pipeline = async_pipeline;
    const ProxyResult baseline = runner.run(base);
    ProxyConfig cfg = base;
    cfg.slack = 1_ms;
    return runner.run(cfg).loop_runtime / baseline.loop_runtime;
  };
  const double sync_slowdown = slowdown(false);
  const double async_slowdown = slowdown(true);
  EXPECT_LT(async_slowdown, sync_slowdown);
  EXPECT_GT(sync_slowdown / async_slowdown, 1.2);
}

TEST(AsyncProxy, DoubleBufferingDoublesFootprintExclusion) {
  const ProxyRunner runner;
  // 2^15 sync fits 2 threads (24 GiB) but async double-buffers (48 GiB).
  ProxyConfig cfg = quick(1 << 15, 2, SimDuration::zero());
  EXPECT_TRUE(runner.run(cfg).fits_memory);
  cfg.async_pipeline = true;
  EXPECT_FALSE(runner.run(cfg).fits_memory);
}

TEST(Sweep, ProducesNormalizedCurvesAndExclusions) {
  const ProxyRunner runner;
  SweepConfig cfg;
  cfg.matrix_sizes = {1 << 9, 1 << 15};
  cfg.thread_counts = {1, 4};
  cfg.slacks = {SimDuration::zero(), 1_ms};
  cfg.target_compute = 1_s;
  const auto points = run_slack_sweep(runner, cfg);

  // (2^9, 1), (2^9, 4), (2^15, 1): 3 cells x 2 slacks; (2^15, 4) excluded.
  EXPECT_EQ(points.size(), 6u);
  std::map<std::pair<std::int64_t, int>, int> cells;
  for (const auto& p : points) {
    ++cells[{p.matrix_n, p.threads}];
    if (p.slack == SimDuration::zero()) {
      EXPECT_NEAR(p.normalized_runtime, 1.0, 1e-12);
    } else {
      EXPECT_GE(p.normalized_runtime, 1.0 - 1e-9);
    }
  }
  const auto excluded = std::pair<std::int64_t, int>{1 << 15, 4};
  EXPECT_EQ(cells.count(excluded), 0u);
  const auto small_single = std::pair<std::int64_t, int>{1 << 9, 1};
  EXPECT_EQ(cells[small_single], 2);
}

TEST(Sweep, SlackSensitivityOrderedBySize) {
  const ProxyRunner runner;
  SweepConfig cfg;
  cfg.matrix_sizes = {1 << 9, 1 << 11, 1 << 13};
  cfg.thread_counts = {1};
  cfg.slacks = {SimDuration::zero(), 10_ms};
  cfg.target_compute = 200_ms;
  const auto points = run_slack_sweep(runner, cfg);
  std::map<std::int64_t, double> at_10ms;
  for (const auto& p : points) {
    if (p.slack == 10_ms) at_10ms[p.matrix_n] = p.normalized_runtime;
  }
  EXPECT_GT(at_10ms[1 << 9], at_10ms[1 << 11]);
  EXPECT_GT(at_10ms[1 << 11], at_10ms[1 << 13]);
}

}  // namespace
}  // namespace rsd::proxy
