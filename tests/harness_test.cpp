// Harness tests: glob matching, registry registration/selection rules, the
// global fleet's invariants, manifest JSON, and the rsd_bench CLI driven
// in-process with captured streams.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/error.hpp"
#include "harness/cli.hpp"
#include "harness/context.hpp"
#include "harness/experiment.hpp"
#include "harness/manifest.hpp"
#include "harness/registry.hpp"

namespace {

using namespace rsd::harness;
namespace fs = std::filesystem;

void noop_run(ExperimentContext&) {}

std::unique_ptr<FunctionExperiment> make_experiment(std::string name,
                                                    const std::string& tags = "test") {
  return std::make_unique<FunctionExperiment>(std::move(name), tags, "a test experiment",
                                              &noop_run);
}

int cli(std::vector<std::string> args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv{"rsd_bench"};
  for (const auto& a : args) argv.push_back(a.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

fs::path fresh_temp_dir(const std::string& name) {
  const fs::path dir = fs::path{testing::TempDir()} / name;
  fs::remove_all(dir);
  return dir;
}

TEST(GlobMatch, LiteralAndWildcards) {
  EXPECT_TRUE(glob_match("fig3_slack_sweep", "fig3_slack_sweep"));
  EXPECT_FALSE(glob_match("fig3_slack_sweep", "fig3_slack_swee"));
  EXPECT_TRUE(glob_match("fig*", "fig3_slack_sweep"));
  EXPECT_TRUE(glob_match("*sweep", "fig3_slack_sweep"));
  EXPECT_TRUE(glob_match("*slack*", "fig3_slack_sweep"));
  EXPECT_TRUE(glob_match("fig?_slack_sweep", "fig3_slack_sweep"));
  EXPECT_FALSE(glob_match("fig?_slack_sweep", "fig33_slack_sweep"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_FALSE(glob_match("?", ""));
  // Multiple stars force the backtracking path.
  EXPECT_TRUE(glob_match("*a*b*", "xxaxxbxx"));
  EXPECT_FALSE(glob_match("*a*b*", "xxbxxaxx"));
}

TEST(Registry, KeepsExperimentsSortedByName) {
  Registry registry;
  EXPECT_TRUE(registry.add(make_experiment("zeta")));
  EXPECT_TRUE(registry.add(make_experiment("alpha")));
  EXPECT_TRUE(registry.add(make_experiment("mid")));
  ASSERT_EQ(registry.experiments().size(), 3u);
  EXPECT_EQ(registry.experiments()[0]->name(), "alpha");
  EXPECT_EQ(registry.experiments()[1]->name(), "mid");
  EXPECT_EQ(registry.experiments()[2]->name(), "zeta");
}

TEST(Registry, RejectsDuplicateNames) {
  Registry registry;
  EXPECT_TRUE(registry.add(make_experiment("dup")));
  EXPECT_FALSE(registry.add(make_experiment("dup")));
  EXPECT_EQ(registry.experiments().size(), 1u);
  ASSERT_EQ(registry.errors().size(), 1u);
  EXPECT_NE(registry.errors()[0].find("dup"), std::string::npos);
}

TEST(Registry, FindAndSelect) {
  Registry registry;
  ASSERT_TRUE(registry.add(make_experiment("fig1_thing", "figure")));
  ASSERT_TRUE(registry.add(make_experiment("fig2_other", "figure")));
  ASSERT_TRUE(registry.add(make_experiment("table1_thing", "table")));

  EXPECT_NE(registry.find("fig1_thing"), nullptr);
  EXPECT_EQ(registry.find("missing"), nullptr);

  // No selectors = the whole fleet.
  EXPECT_EQ(registry.select({}, {}).size(), 3u);
  // Glob over names.
  EXPECT_EQ(registry.select({"fig*"}, {}).size(), 2u);
  // Tag filter.
  ASSERT_EQ(registry.select({}, {"table"}).size(), 1u);
  EXPECT_EQ(registry.select({}, {"table"})[0]->name(), "table1_thing");
  // Pattern AND tag must both hold.
  EXPECT_EQ(registry.select({"fig*"}, {"table"}).size(), 0u);
  // Pre-harness binary names (leading bench_) keep selecting.
  ASSERT_EQ(registry.select({"bench_fig1_thing"}, {}).size(), 1u);
  EXPECT_EQ(registry.select({"bench_fig1_thing"}, {})[0]->name(), "fig1_thing");
}

TEST(Registry, TagsCsvSplitsIntoMultipleTags) {
  Registry registry;
  ASSERT_TRUE(registry.add(make_experiment("multi", "figure,proxy")));
  EXPECT_EQ(registry.select({}, {"proxy"}).size(), 1u);
  EXPECT_EQ(registry.select({}, {"figure"}).size(), 1u);
  EXPECT_EQ(registry.select({}, {"table"}).size(), 0u);
}

// The statically-registered fleet: the whole paper reproduction.
TEST(GlobalRegistry, FleetIsCompleteAndWellFormed) {
  const Registry& registry = Registry::global();
  EXPECT_TRUE(registry.errors().empty());
  EXPECT_GE(registry.experiments().size(), 26u);

  const std::vector<std::string> known_tags{"figure", "table",     "text",
                                            "ablation", "extension", "micro"};
  std::string prev;
  for (const auto& e : registry.experiments()) {
    EXPECT_LT(prev, e->name());  // strictly sorted = unique
    prev = e->name();
    EXPECT_FALSE(e->description().empty());
    ASSERT_FALSE(e->tags().empty());
    for (const auto& tag : e->tags()) {
      EXPECT_NE(std::find(known_tags.begin(), known_tags.end(), tag), known_tags.end())
          << e->name() << " carries unknown tag " << tag;
    }
  }

  // Every paper artifact the roadmap promises is registered.
  for (const char* name :
       {"table1_lammps_baseline", "fig2_lammps_scaling", "fig3_slack_sweep",
        "fig4_kernel_durations", "fig5_memcpy_sizes", "table2_proxy_calibration",
        "table3_transfer_binning", "table4_slack_penalty", "model_validation",
        "micro_substrates"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("a\tb\rc\bd\fe"), "a\\tb\\rc\\bd\\fe");
  EXPECT_EQ(json_escape(std::string{"x\x01y"}), "x\\u0001y");
  EXPECT_EQ(json_escape(std::string{"\x1f"}), "\\u001f");
}

TEST(Manifest, RecordsOutcomesAndOmitsNonFiniteWallClock) {
  RunSummary summary;
  summary.threads = 2;
  summary.results_dir = "/tmp/results";

  ExperimentOutcome ok;
  ok.name = "good";
  ok.tags = {"figure"};
  ok.ok = true;
  ok.wall_s = 1.25;
  ok.csv_paths = {"/tmp/results/good.csv"};
  summary.outcomes.push_back(ok);

  ExperimentOutcome bad;
  bad.name = "broken";
  bad.tags = {"table"};
  bad.ok = false;
  bad.error = "exploded:\n\"badly\"";
  bad.wall_s = std::nan("");
  summary.outcomes.push_back(bad);

  EXPECT_FALSE(summary.all_ok());
  const std::string json = manifest_json(summary);
  EXPECT_NE(json.find("\"schema\": \"rsd-bench-manifest-v4\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"good\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  // The failed outcome's NaN wall clock must not appear anywhere.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  // Its error is escaped, not raw.
  EXPECT_NE(json.find("exploded:\\n\\\"badly\\\""), std::string::npos);

  // v2 additions: every experiment entry carries a metrics object, and
  // trace_dir appears only when the tracer was on.
  EXPECT_NE(json.find("\"metrics\": {}"), std::string::npos);
  EXPECT_EQ(json.find("\"trace_dir\""), std::string::npos);
  summary.trace_dir = "/tmp/trace";
  EXPECT_NE(manifest_json(summary).find("\"trace_dir\": \"/tmp/trace\""), std::string::npos);

  // v3/v4 additions: the attribution block appears only when an experiment
  // recorded one, with the seven components (v4 adds nic_ns) and the
  // optional Eq 2-3 band.
  EXPECT_EQ(json.find("\"attribution\""), std::string::npos);
  AttributionEntry entry;
  entry.label = "ocs/slacked";
  entry.makespan_ns = 100;
  entry.compute_ns = 60;
  entry.fabric_ns = 30;
  entry.idle_ns = 10;
  entry.has_band = true;
  entry.slack_share = 0.025;
  entry.band_lower = 0.0;
  entry.band_upper = 0.05;
  summary.outcomes.front().attribution.push_back(entry);
  const std::string with_attr = manifest_json(summary);
  EXPECT_NE(with_attr.find("\"attribution\": [{\"label\": \"ocs/slacked\""),
            std::string::npos);
  EXPECT_NE(with_attr.find("\"makespan_ns\": 100"), std::string::npos);
  EXPECT_NE(with_attr.find("\"compute_ns\": 60"), std::string::npos);
  EXPECT_NE(with_attr.find("\"nic_ns\": 0"), std::string::npos);
  EXPECT_NE(with_attr.find("\"slack_share\": 0.025"), std::string::npos);
  EXPECT_NE(with_attr.find("\"band\": [0, 0.05]"), std::string::npos);

  summary.outcomes.pop_back();
  EXPECT_TRUE(summary.all_ok());
}

TEST(Cli, ListIsStableAndEnumeratesTheFleet) {
  std::string first;
  std::string second;
  EXPECT_EQ(cli({"--list"}, &first), 0);
  EXPECT_EQ(cli({"--list"}, &second), 0);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("fig3_slack_sweep"), std::string::npos);
  EXPECT_NE(first.find("table4_slack_penalty"), std::string::npos);
  EXPECT_NE(first.find("micro_substrates"), std::string::npos);
  EXPECT_NE(first.find("experiment(s)"), std::string::npos);
}

TEST(Cli, ListHonoursTagAndPatternSelection) {
  std::string text;
  EXPECT_EQ(cli({"--list", "--tags", "table"}, &text), 0);
  EXPECT_NE(text.find("table1_lammps_baseline"), std::string::npos);
  EXPECT_EQ(text.find("fig3_slack_sweep"), std::string::npos);

  // The pre-harness binary name still selects its experiment.
  EXPECT_EQ(cli({"--list", "bench_fig3_slack_sweep"}, &text), 0);
  EXPECT_NE(text.find("fig3_slack_sweep"), std::string::npos);
  EXPECT_NE(text.find("1 experiment(s)"), std::string::npos);
}

TEST(Cli, UnknownNameIsACleanError) {
  std::string out;
  std::string err;
  EXPECT_EQ(cli({"no_such_experiment"}, &out, &err), 2);
  EXPECT_NE(err.find("no_such_experiment"), std::string::npos);
  EXPECT_NE(err.find("--list"), std::string::npos);
}

TEST(Cli, UnknownFlagIsAUsageError) {
  std::string out;
  std::string err;
  EXPECT_EQ(cli({"--frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("--frobnicate"), std::string::npos);
}

TEST(Cli, RunsAnExperimentEndToEnd) {
  const fs::path dir = fresh_temp_dir("rsd_cli_e2e");
  std::string out;
  EXPECT_EQ(cli({"discussion_composition", "--results-dir", dir.string(), "--threads", "1"},
                &out),
            0);
  EXPECT_NE(out.find("=== discussion_composition ==="), std::string::npos);
  EXPECT_TRUE(fs::exists(dir / "discussion_composition.csv"));
  ASSERT_TRUE(fs::exists(dir / "run_manifest.json"));

  std::ifstream in{dir / "run_manifest.json"};
  std::stringstream manifest;
  manifest << in.rdbuf();
  EXPECT_NE(manifest.str().find("\"name\": \"discussion_composition\""), std::string::npos);
  EXPECT_NE(manifest.str().find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(manifest.str().find("discussion_composition.csv"), std::string::npos);
}

TEST(Cli, TraceFlagExportsTimelineAndMetrics) {
  const fs::path dir = fresh_temp_dir("rsd_cli_trace");
  const fs::path trace_dir = dir / "trace";
  std::string out;
  EXPECT_EQ(cli({"table2_proxy_calibration", "--results-dir", dir.string(), "--threads", "1",
                 "--trace", trace_dir.string()},
                &out),
            0);

  // Chrome trace: well-formed enough to end in the traceEvents envelope and
  // name the simulator's engine tracks.
  ASSERT_TRUE(fs::exists(trace_dir / "trace.json"));
  std::ifstream jin{trace_dir / "trace.json"};
  std::stringstream json;
  json << jin.rdbuf();
  EXPECT_NE(json.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.str().find("\"compute\""), std::string::npos);

  // NSys-style ops CSV with the trace::import schema.
  ASSERT_TRUE(fs::exists(trace_dir / "trace_ops.csv"));
  std::ifstream cin{trace_dir / "trace_ops.csv"};
  std::string header;
  ASSERT_TRUE(std::getline(cin, header));
  EXPECT_NE(header.find("kind"), std::string::npos);
  EXPECT_NE(header.find("submit_us"), std::string::npos);

  // Manifest v4 records the trace dir and per-experiment gpusim metrics.
  std::ifstream min{dir / "run_manifest.json"};
  std::stringstream manifest;
  manifest << min.rdbuf();
  EXPECT_NE(manifest.str().find("\"schema\": \"rsd-bench-manifest-v4\""), std::string::npos);
  EXPECT_NE(manifest.str().find("\"trace_dir\""), std::string::npos);
  EXPECT_NE(manifest.str().find("\"gpusim.ops\""), std::string::npos);
}

// RAII guard: restores RSD_GPUS_PER_CHASSIS (or its absence) on scope exit
// so the knob tests cannot leak environment into the rest of the binary.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

ExperimentContext::Options quiet_options(const fs::path& dir, std::ostream* out) {
  ExperimentContext::Options options;
  options.results_dir = dir;
  options.threads = 1;
  options.out = out;
  return options;
}

TEST(Context, GpusPerChassisFlagBeatsEnvBeatsDefault) {
  const fs::path dir = fresh_temp_dir("rsd_gpc_precedence");
  std::ostringstream sink;
  ScopedEnv env{"RSD_GPUS_PER_CHASSIS"};

  env.unset();
  EXPECT_EQ(ExperimentContext{quiet_options(dir, &sink)}.gpus_per_chassis(), 0);

  env.set("4");
  EXPECT_EQ(ExperimentContext{quiet_options(dir, &sink)}.gpus_per_chassis(), 4);

  auto options = quiet_options(dir, &sink);
  options.gpus_per_chassis = 8;  // the flag wins over the environment
  EXPECT_EQ(ExperimentContext{options}.gpus_per_chassis(), 8);
}

TEST(Context, GpusPerChassisEnvRejectsNonPositiveAndGarbage) {
  const fs::path dir = fresh_temp_dir("rsd_gpc_reject");
  std::ostringstream sink;
  ScopedEnv env{"RSD_GPUS_PER_CHASSIS"};

  for (const char* bad : {"0", "-3", "abc", "4x"}) {
    env.set(bad);
    try {
      ExperimentContext ctx{quiet_options(dir, &sink)};
      FAIL() << "expected rsd::Error for RSD_GPUS_PER_CHASSIS=" << bad;
    } catch (const rsd::Error& e) {
      EXPECT_EQ(e.code(), rsd::ErrorCode::kInvalidArgument) << bad;
      EXPECT_NE(std::string{e.what()}.find("RSD_GPUS_PER_CHASSIS"), std::string::npos)
          << bad;
    }
  }
}

TEST(Cli, GpusPerChassisFlagRejectsNonPositive) {
  std::string out;
  std::string err;
  EXPECT_EQ(cli({"--gpus-per-chassis", "0"}, &out, &err), 2);
  EXPECT_NE(err.find("--gpus-per-chassis"), std::string::npos);
  EXPECT_NE(err.find(">= 1"), std::string::npos);
}

// The tentpole's perf claim: every consumer of the Figure-3 response
// surface inside one invocation shares one computation.
TEST(Context, SurfaceComputedOncePerInvocation) {
  const fs::path dir = fresh_temp_dir("rsd_shared_surface");
  ExperimentContext::Options options;
  options.results_dir = dir;
  options.threads = 1;
  std::ostringstream sink;
  options.out = &sink;
  ExperimentContext ctx{options};

  const Registry& registry = Registry::global();
  const Experiment* fig3 = registry.find("fig3_slack_sweep");
  const Experiment* table4 = registry.find("table4_slack_penalty");
  ASSERT_NE(fig3, nullptr);
  ASSERT_NE(table4, nullptr);

  fig3->run(ctx);
  EXPECT_EQ(ctx.sweep_cache().sweeps_computed(), 1u);
  table4->run(ctx);  // same default sweep grid -> memory hit, no recompute
  EXPECT_EQ(ctx.sweep_cache().sweeps_computed(), 1u);
  EXPECT_GE(ctx.sweep_cache().memory_hits(), 1u);
  EXPECT_EQ(ctx.sweep_cache().disk_loads(), 0u);
}

}  // namespace
