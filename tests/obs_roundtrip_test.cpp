// The closed loop of the observability design (ISSUE 3 acceptance): run a
// fig3-style proxy simulation with the obs tracer on, rebuild an NSys-style
// ops CSV from the simulator's *own emitted timeline*, re-import it through
// `trace::import`, and push it through the paper's Eq. 1–3 cross-analysis
// model. The prediction must match the penalty the simulator actually
// exhibits within the model's established validation band (Section IV-D:
// single-thread lower bound within 0.005 of measured).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "model/slack_model.hpp"
#include "obs/tracer.hpp"
#include "proxy/proxy.hpp"
#include "trace/import.hpp"
#include "trace/timeline.hpp"

namespace {

using namespace rsd;
using namespace rsd::proxy;

TEST(ObsRoundtrip, TimelineRebuildsTheDirectTrace) {
  const ProxyRunner runner;
  ProxyConfig cfg;
  cfg.matrix_n = 1 << 11;
  cfg.threads = 1;
  cfg.capture_trace = true;

  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  const ProxyResult baseline = runner.run(cfg);
  const auto snapshot = tracer.snapshot();
  tracer.disable();
  ASSERT_TRUE(baseline.fits_memory);
  ASSERT_TRUE(baseline.trace.has_value());

  // One traced simulation per device; pick the one matching the run by op
  // count (the run's calibration pass uses a separate device).
  const auto sim_ids = trace::timeline_sim_ids(snapshot);
  ASSERT_FALSE(sim_ids.empty());
  trace::Trace rebuilt;
  for (const std::int32_t id : sim_ids) {
    trace::Trace t = trace::from_timeline(snapshot, id);
    if (t.ops().size() == baseline.trace->ops().size()) {
      rebuilt = std::move(t);
      break;
    }
  }
  ASSERT_EQ(rebuilt.ops().size(), baseline.trace->ops().size());

  // The rebuilt ops are the direct sink's records, field for field.
  for (std::size_t i = 0; i < rebuilt.ops().size(); ++i) {
    const gpu::OpRecord& a = rebuilt.ops()[i];
    const gpu::OpRecord& b = baseline.trace->ops()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.context_id, b.context_id);
    EXPECT_EQ(a.submit.ns(), b.submit.ns());
    EXPECT_EQ(a.start.ns(), b.start.ns());
    EXPECT_EQ(a.end.ns(), b.end.ns());
    EXPECT_EQ(a.bytes, b.bytes);
  }
  EXPECT_EQ(rebuilt.apis().size(), baseline.trace->apis().size());
}

TEST(ObsRoundtrip, EmittedTracePredictsSimulatedPenaltyWithinBand) {
  const ProxyRunner runner;

  // Small single-thread response surface bracketing the test point.
  SweepConfig sweep_cfg;
  sweep_cfg.matrix_sizes = {1 << 9, 1 << 11, 1 << 13};
  sweep_cfg.thread_counts = {1};
  sweep_cfg.slacks = {SimDuration::zero(), duration::microseconds(100.0)};
  const auto sweep = run_slack_sweep(runner, sweep_cfg);
  const model::SlackModel slack_model{model::ResponseSurface::from_sweep(sweep)};

  // Traced baseline run at the paper's validated single-thread point.
  ProxyConfig cfg;
  cfg.matrix_n = 1 << 11;
  cfg.threads = 1;
  cfg.capture_trace = true;
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  const ProxyResult baseline = runner.run(cfg);
  const auto snapshot = tracer.snapshot();
  tracer.disable();
  ASSERT_TRUE(baseline.fits_memory);

  // Measured penalty: same config under 100 us slack, Eq. 1 applied.
  cfg.capture_trace = false;
  cfg.slack = duration::microseconds(100.0);
  const ProxyResult slacked = runner.run(cfg);
  const double measured = slacked.no_slack_time / baseline.no_slack_time - 1.0;

  // Closed loop: obs timeline -> NSys-style CSV -> trace::import -> Eq 1-3.
  const auto sim_ids = trace::timeline_sim_ids(snapshot);
  ASSERT_FALSE(sim_ids.empty());
  trace::Trace emitted;
  for (const std::int32_t id : sim_ids) {
    trace::Trace t = trace::from_timeline(snapshot, id);
    if (t.ops().size() == baseline.trace->ops().size()) {
      emitted = std::move(t);
      break;
    }
  }
  ASSERT_FALSE(emitted.ops().empty());
  std::istringstream csv{emitted.ops_to_csv()};
  const trace::Trace imported = trace::parse_ops_csv(csv);
  ASSERT_EQ(imported.ops().size(), emitted.ops().size());

  const auto prediction = slack_model.predict(imported, 1, cfg.slack);

  // The simulator's own emitted trace predicts the penalty the simulator
  // exhibits, within the Section IV-D single-thread validation band.
  EXPECT_LT(std::abs(prediction.total.lower - measured), 0.005);
  EXPECT_GE(prediction.total.upper + 1e-12, prediction.total.lower);

  // And the emitted-timeline route agrees with the direct-sink route pushed
  // through the same NSys-style export: the observability layer is a
  // faithful witness, not a second model.
  EXPECT_EQ(emitted.ops_to_csv(), baseline.trace->ops_to_csv());
  std::istringstream direct_csv{baseline.trace->ops_to_csv()};
  const auto direct = slack_model.predict(trace::parse_ops_csv(direct_csv), 1, cfg.slack);
  EXPECT_NEAR(prediction.total.lower, direct.total.lower, 1e-12);
  EXPECT_NEAR(prediction.total.upper, direct.total.upper, 1e-12);
}

}  // namespace
