// Concurrency tests for the obs layer (run under TSan via the `exec`
// ctest label): many threads emitting into per-thread rings while the main
// thread snapshots, and concurrent registry updates totalling correctly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/log.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace rsd::obs;

TEST(ObsConcurrency, ConcurrentWritersAreAllAccounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  constexpr std::size_t kCapacity = 1024;  // Forces overwrites: drops must count.

  auto& tracer = Tracer::instance();
  tracer.enable(kCapacity);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Tracer::instance().instant_sim(t, 0, i, "test", "e");
      }
    });
  }
  // Snapshot while writers are live: must be safe, no torn events.
  for (int i = 0; i < 20; ++i) {
    const auto live = tracer.snapshot();
    for (const Event& e : live.events) EXPECT_EQ(e.name, "e");
  }
  for (auto& th : threads) th.join();

  const auto snap = tracer.snapshot();
  tracer.disable();
  // Every emitted event was either captured or counted as dropped.
  EXPECT_EQ(snap.events.size() + snap.dropped,
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_LE(snap.events.size(), static_cast<std::size_t>(kThreads) * kCapacity);
}

TEST(ObsConcurrency, SpansFromManyThreadsStayPaired) {
  auto& tracer = Tracer::instance();
  tracer.enable(1u << 12);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        Span span{"test", "work"};
        Tracer::instance().counter("test", "i", static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = tracer.snapshot();
  tracer.disable();

  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const Event& e : snap.events) {
    if (e.phase == Phase::kBegin) ++begins;
    if (e.phase == Phase::kEnd) ++ends;
  }
  EXPECT_EQ(begins, 400u);
  EXPECT_EQ(ends, 400u);
}

TEST(ObsConcurrency, RegistryTotalsUnderConcurrentUpdates) {
  Registry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      auto& runs = reg.counter("runs");
      auto& lat = reg.histogram("lat");
      HistogramData local;
      for (int i = 0; i < kPerThread; ++i) {
        runs.add(1);
        local.observe(i % 64);
      }
      lat.merge(local);
      reg.gauge("util").set(1.0);
    });
  }
  for (auto& th : threads) th.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("runs")->count, kThreads * kPerThread);
  EXPECT_EQ(snap.find("lat")->count, kThreads * kPerThread);
  EXPECT_EQ(snap.find("lat")->min, 0);
  EXPECT_EQ(snap.find("lat")->max, 63);
  EXPECT_DOUBLE_EQ(snap.find("util")->value, 1.0);
}

TEST(ObsConcurrency, LoggerLevelRacesAreBenign) {
  // set_level from one thread while others query/write: the level is
  // atomic and stderr writes are serialized (TSan validates).
  auto& tracer = Tracer::instance();
  tracer.enable(1u << 10);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        rsd::Logger::instance().set_level(i % 2 == 0 ? rsd::LogLevel::kWarn
                                                     : rsd::LogLevel::kError);
        (void)rsd::Logger::instance().enabled(rsd::LogLevel::kError);
      }
    });
  }
  threads.emplace_back([] {
    for (int i = 0; i < 50; ++i) {
      rsd::Logger::instance().write(rsd::LogLevel::kDebug, "suppressed");  // Below level.
    }
  });
  for (auto& th : threads) th.join();
  tracer.disable();
}

}  // namespace
