#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace rsd {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  const StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  Rng rng{123};
  StreamingStats all;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.add(1.0);
  a.add(3.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  StreamingStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Quantile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(one, 1.0), 7.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 2.0);
}

TEST(Violin, SummaryFields) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const ViolinSummary s = summarize_violin("k", v);
  EXPECT_EQ(s.label, "k");
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.total, 15.0);
}

TEST(Violin, EmptySummary) {
  const ViolinSummary s = summarize_violin("empty", {});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SampleSet, QuantilesAndStats) {
  SampleSet set;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) set.add(x);
  EXPECT_EQ(set.size(), 5u);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 9.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(set.mean(), 5.0);
  EXPECT_DOUBLE_EQ(set.sum(), 25.0);
}

TEST(SampleSet, AddAfterQuery) {
  SampleSet set;
  set.add(2.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.5), 2.0);
  set.add(1.0);
  set.add(3.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
}

TEST(SampleSet, ViolinDelegation) {
  SampleSet set;
  set.add(1.0);
  set.add(2.0);
  const auto v = set.violin("x");
  EXPECT_EQ(v.count, 2u);
  EXPECT_DOUBLE_EQ(v.mean, 1.5);
}

TEST(P2Quantile, ExactForSmallStreams) {
  P2Quantile p50{0.5};
  for (const double x : {3.0, 1.0, 2.0}) p50.add(x);
  EXPECT_DOUBLE_EQ(p50.estimate(), 2.0);
  EXPECT_EQ(p50.count(), 3u);
}

TEST(P2Quantile, EmptyEstimateIsZero) {
  const P2Quantile p{0.9};
  EXPECT_DOUBLE_EQ(p.estimate(), 0.0);
}

TEST(P2Quantile, MedianOfUniformStream) {
  Rng rng{31};
  P2Quantile p50{0.5};
  for (int i = 0; i < 50000; ++i) p50.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(p50.estimate(), 50.0, 1.0);
}

TEST(P2Quantile, TailQuantileOfNormalStream) {
  Rng rng{32};
  P2Quantile p95{0.95};
  for (int i = 0; i < 100000; ++i) p95.add(rng.normal(0.0, 1.0));
  // True 95th percentile of N(0,1) is ~1.645.
  EXPECT_NEAR(p95.estimate(), 1.645, 0.08);
}

TEST(P2Quantile, TracksExactQuantileOnSkewedData) {
  Rng rng{33};
  P2Quantile p90{0.9};
  SampleSet exact;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    p90.add(x);
    exact.add(x);
  }
  const double truth = exact.quantile(0.9);
  EXPECT_NEAR(p90.estimate(), truth, 0.05 * truth);
}

// Property: for normal samples, streaming mean/stddev track the
// distribution parameters.
TEST(StreamingStats, NormalSamplingProperty) {
  Rng rng{7};
  StreamingStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

}  // namespace
}  // namespace rsd
