#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace rsd::sim {
namespace {

using namespace rsd::literals;

TEST(Event, WaitersResumeOnTrigger) {
  Scheduler sched;
  Event ev{sched};
  std::vector<int> order;

  auto waiter = [](Event& e, std::vector<int>& ord, int id) -> Task<> {
    co_await e.wait();
    ord.push_back(id);
  };
  sched.spawn(waiter(ev, order, 1));
  sched.spawn(waiter(ev, order, 2));
  sched.spawn([](Event& e, std::vector<int>& ord) -> Task<> {
    co_await delay(5_us);
    ord.push_back(0);
    e.trigger();
  }(ev, order));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

TEST(Event, WaitAfterTriggerDoesNotBlock) {
  Scheduler sched;
  Event ev{sched};
  SimTime when{-1};
  sched.spawn([](Event& e) -> Task<> {
    e.trigger();
    co_return;
  }(ev));
  sched.spawn([](Scheduler& s, Event& e, SimTime& out) -> Task<> {
    co_await delay(3_us);
    co_await e.wait();
    out = s.now();
  }(sched, ev, when));
  sched.run();
  EXPECT_EQ(when, SimTime::zero() + 3_us);
}

TEST(Event, DoubleTriggerIsIdempotent) {
  Scheduler sched;
  Event ev{sched};
  ev.trigger();
  ev.trigger();
  EXPECT_TRUE(ev.triggered());
}

TEST(Semaphore, MutualExclusionSerializes) {
  Scheduler sched;
  Semaphore sem{sched, 1};
  std::vector<std::pair<int, std::int64_t>> log;

  auto proc = [](Scheduler& s, Semaphore& m, std::vector<std::pair<int, std::int64_t>>& lg,
                 int id) -> Task<> {
    co_await m.acquire();
    lg.emplace_back(id, s.now().ns());
    co_await delay(10_us);
    m.release();
  };
  for (int i = 0; i < 3; ++i) sched.spawn(proc(sched, sem, log, i));
  sched.run();

  ASSERT_EQ(log.size(), 3u);
  // FIFO order, each entering 10us after the previous.
  EXPECT_EQ(log[0], (std::pair<int, std::int64_t>{0, 0}));
  EXPECT_EQ(log[1], (std::pair<int, std::int64_t>{1, 10'000}));
  EXPECT_EQ(log[2], (std::pair<int, std::int64_t>{2, 20'000}));
}

TEST(Semaphore, CountingAllowsConcurrency) {
  Scheduler sched;
  Semaphore sem{sched, 2};
  std::vector<std::int64_t> entry_times;

  auto proc = [](Scheduler& s, Semaphore& m, std::vector<std::int64_t>& t) -> Task<> {
    co_await m.acquire();
    t.push_back(s.now().ns());
    co_await delay(10_us);
    m.release();
  };
  for (int i = 0; i < 4; ++i) sched.spawn(proc(sched, sem, entry_times));
  sched.run();

  ASSERT_EQ(entry_times.size(), 4u);
  EXPECT_EQ(entry_times[0], 0);
  EXPECT_EQ(entry_times[1], 0);
  EXPECT_EQ(entry_times[2], 10'000);
  EXPECT_EQ(entry_times[3], 10'000);
}

TEST(Semaphore, ReleaseWithoutWaitersIncrementsCount) {
  Scheduler sched;
  Semaphore sem{sched, 0};
  sem.release();
  EXPECT_EQ(sem.available(), 1);
  SimTime when{-1};
  sched.spawn([](Scheduler& s, Semaphore& m, SimTime& out) -> Task<> {
    co_await m.acquire();
    out = s.now();
  }(sched, sem, when));
  sched.run();
  EXPECT_EQ(when, SimTime::zero());
  EXPECT_EQ(sem.available(), 0);
}

TEST(Semaphore, PermitNotStolenByLateArriver) {
  // A process that calls acquire() at the same instant a permit is handed
  // to a queued waiter must not jump the queue.
  Scheduler sched;
  Semaphore sem{sched, 1};
  std::vector<int> order;

  auto holder = [](Semaphore& m) -> Task<> {
    co_await m.acquire();
    co_await delay(10_us);
    m.release();
  };
  auto queued = [](Semaphore& m, std::vector<int>& ord) -> Task<> {
    co_await yield();  // arrive second
    co_await m.acquire();
    ord.push_back(1);
    m.release();
  };
  auto late = [](Semaphore& m, std::vector<int>& ord) -> Task<> {
    co_await delay(10_us);  // arrives exactly when the release happens
    co_await m.acquire();
    ord.push_back(2);
    m.release();
  };
  sched.spawn(holder(sem));
  sched.spawn(queued(sem, order));
  sched.spawn(late(sem, order));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

TEST(SemaphoreGuard, ReleasesOnScopeExit) {
  Scheduler sched;
  Semaphore sem{sched, 1};
  std::vector<std::int64_t> times;

  auto proc = [](Scheduler& s, Semaphore& m, std::vector<std::int64_t>& t) -> Task<> {
    co_await m.acquire();
    {
      SemaphoreGuard g{m};
      t.push_back(s.now().ns());
      co_await delay(5_us);
    }
  };
  sched.spawn(proc(sched, sem, times));
  sched.spawn(proc(sched, sem, times));
  sched.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[1], 5'000);
}

TEST(WaitGroup, WaitsForAll) {
  Scheduler sched;
  WaitGroup wg{sched};
  SimTime finished{-1};

  auto worker = [](WaitGroup& w, SimDuration d) -> Task<> {
    co_await delay(d);
    w.done();
  };
  wg.add(3);
  sched.spawn(worker(wg, 10_us));
  sched.spawn(worker(wg, 30_us));
  sched.spawn(worker(wg, 20_us));
  sched.spawn([](Scheduler& s, WaitGroup& w, SimTime& out) -> Task<> {
    co_await w.wait();
    out = s.now();
  }(sched, wg, finished));
  sched.run();
  EXPECT_EQ(finished, SimTime::zero() + 30_us);
}

TEST(WaitGroup, ZeroCountWaitReturnsOnlyAfterTrigger) {
  Scheduler sched;
  WaitGroup wg{sched};
  wg.add(1);
  wg.done();
  SimTime when{-1};
  sched.spawn([](Scheduler& s, WaitGroup& w, SimTime& out) -> Task<> {
    co_await w.wait();
    out = s.now();
  }(sched, wg, when));
  sched.run();
  EXPECT_EQ(when, SimTime::zero());
}

TEST(Barrier, AllPartiesLeaveTogether) {
  Scheduler sched;
  Barrier barrier{sched, 3};
  std::vector<std::int64_t> leave_times;
  auto proc = [](Scheduler& s, Barrier& b, std::vector<std::int64_t>& t,
                 SimDuration arrive_after) -> Task<> {
    co_await delay(arrive_after);
    co_await b.arrive_and_wait();
    t.push_back(s.now().ns());
  };
  sched.spawn(proc(sched, barrier, leave_times, 5_us));
  sched.spawn(proc(sched, barrier, leave_times, 20_us));
  sched.spawn(proc(sched, barrier, leave_times, 12_us));
  sched.run();
  ASSERT_EQ(leave_times.size(), 3u);
  for (const auto t : leave_times) EXPECT_EQ(t, 20'000);  // the last arriver
  EXPECT_EQ(barrier.generation(), 1);
}

TEST(Barrier, ReusableAcrossGenerations) {
  Scheduler sched;
  Barrier barrier{sched, 2};
  std::vector<std::int64_t> times;
  auto proc = [](Scheduler& s, Barrier& b, std::vector<std::int64_t>& t,
                 SimDuration step) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await delay(step);
      co_await b.arrive_and_wait();
      t.push_back(s.now().ns());
    }
  };
  sched.spawn(proc(sched, barrier, times, 10_us));
  sched.spawn(proc(sched, barrier, times, 25_us));
  sched.run();
  ASSERT_EQ(times.size(), 6u);
  // Each generation releases at the slower party's arrival: 25, 50, 75 us.
  std::sort(times.begin(), times.end());
  EXPECT_EQ(times[0], 25'000);
  EXPECT_EQ(times[1], 25'000);
  EXPECT_EQ(times[2], 50'000);
  EXPECT_EQ(times[4], 75'000);
  EXPECT_EQ(barrier.generation(), 3);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Scheduler sched;
  Barrier barrier{sched, 1};
  SimTime when{-1};
  sched.spawn([](Scheduler& s, Barrier& b, SimTime& out) -> Task<> {
    co_await b.arrive_and_wait();
    co_await b.arrive_and_wait();
    out = s.now();
  }(sched, barrier, when));
  sched.run();
  EXPECT_EQ(when, SimTime::zero());
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

TEST(Channel, PutThenGet) {
  Scheduler sched;
  Channel<int> ch{sched};
  int got = 0;
  ch.put(7);
  sched.spawn([](Channel<int>& c, int& out) -> Task<> {
    out = co_await c.get();
  }(ch, got));
  sched.run();
  EXPECT_EQ(got, 7);
}

TEST(Channel, GetBlocksUntilPut) {
  Scheduler sched;
  Channel<std::string> ch{sched};
  std::string got;
  SimTime when{-1};
  sched.spawn([](Scheduler& s, Channel<std::string>& c, std::string& out, SimTime& t) -> Task<> {
    out = co_await c.get();
    t = s.now();
  }(sched, ch, got, when));
  sched.spawn([](Channel<std::string>& c) -> Task<> {
    co_await delay(25_us);
    c.put("hello");
  }(ch));
  sched.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(when, SimTime::zero() + 25_us);
}

TEST(Channel, FifoOrderAcrossManyItems) {
  Scheduler sched;
  Channel<int> ch{sched};
  std::vector<int> got;
  sched.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 5; ++i) out.push_back(co_await c.get());
  }(ch, got));
  sched.spawn([](Channel<int>& c) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await delay(1_us);
      c.put(i);
    }
  }(ch));
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, MultipleGettersServedFifo) {
  Scheduler sched;
  Channel<int> ch{sched};
  std::vector<std::pair<int, int>> received;  // (getter id, value)

  auto getter = [](Channel<int>& c, std::vector<std::pair<int, int>>& out, int id) -> Task<> {
    const int v = co_await c.get();
    out.emplace_back(id, v);
  };
  sched.spawn(getter(ch, received, 0));
  sched.spawn(getter(ch, received, 1));
  sched.spawn([](Channel<int>& c) -> Task<> {
    co_await delay(1_us);
    c.put(100);
    c.put(200);
  }(ch));
  sched.run();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(received[1], (std::pair<int, int>{1, 200}));
}

TEST(Channel, SizeTracksBufferedItems) {
  Scheduler sched;
  Channel<int> ch{sched};
  EXPECT_TRUE(ch.empty());
  ch.put(1);
  ch.put(2);
  EXPECT_EQ(ch.size(), 2u);
}

}  // namespace
}  // namespace rsd::sim
