// TimedQueue (4-ary indexed heap) against the scheduler's previous
// std::priority_queue-based binary heap: for any push/pop interleaving the
// pop order must be IDENTICAL, because the (time, seq) key is a total
// order. This is the property that makes swapping the queue implementation
// invisible to every experiment CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace rsd;
using sim::TimedQueue;

/// The pre-PR implementation, kept here as the reference oracle: a binary
/// max-heap (std::priority_queue) inverted by the comparator, exactly as
/// Scheduler's QueueItem used to define it.
class ReferenceQueue {
 public:
  struct Item {
    SimTime at;
    std::uint64_t seq = 0;
    int payload = 0;

    bool operator>(const Item& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void push(SimTime at, std::uint64_t seq, int payload) { q_.push(Item{at, seq, payload}); }
  [[nodiscard]] const Item& top() const { return q_.top(); }
  void pop() { q_.pop(); }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  std::priority_queue<Item, std::vector<Item>, std::greater<>> q_;
};

TEST(TimedQueue, PopsInTimeOrder) {
  TimedQueue<int> q;
  q.push(SimTime{30}, 0, 3);
  q.push(SimTime{10}, 1, 1);
  q.push(SimTime{20}, 2, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.top().payload, 1);
  q.pop();
  EXPECT_EQ(q.top().payload, 2);
  q.pop();
  EXPECT_EQ(q.top().payload, 3);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(TimedQueue, SeqBreaksTiesFifo) {
  TimedQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(SimTime{42}, static_cast<std::uint64_t>(i), i);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.top().payload, i);
    EXPECT_EQ(q.top().seq, static_cast<std::uint64_t>(i));
    q.pop();
  }
}

TEST(TimedQueue, BinaryHeapArityMatchesDefault) {
  // The template arity only changes layout, never order.
  TimedQueue<int, 2> binary;
  TimedQueue<int, 4> quad;
  Rng rng{7};
  std::uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime t{static_cast<std::int64_t>(rng.uniform_index(50))};
    binary.push(t, seq, static_cast<int>(seq));
    quad.push(t, seq, static_cast<int>(seq));
    ++seq;
  }
  while (!binary.empty()) {
    ASSERT_FALSE(quad.empty());
    EXPECT_EQ(binary.top().payload, quad.top().payload);
    binary.pop();
    quad.pop();
  }
  EXPECT_TRUE(quad.empty());
}

/// Randomized stress: feed the identical (time, seq) stream to the old
/// binary heap and the new 4-ary queue, interleaving pushes and pops with
/// near-monotonic times (the scheduler's actual access pattern: events
/// schedule at now + small delay). Pop order must match element for element.
TEST(TimedQueue, StressIdenticalPopOrderVsReferenceHeap) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 0xDEADBEEFULL}) {
    TimedQueue<int> ours;
    ReferenceQueue ref;
    Rng rng{seed};
    std::uint64_t seq = 0;
    std::int64_t now = 0;

    for (int round = 0; round < 20000; ++round) {
      const bool do_push = ours.empty() || rng.uniform(0.0, 1.0) < 0.55;
      if (do_push) {
        // Mostly near-future events, occasional far-future and frequent
        // exact ties (delay 0 == sim::yield()).
        std::int64_t delay = 0;
        const double r = rng.uniform(0.0, 1.0);
        if (r < 0.3) {
          delay = 0;
        } else if (r < 0.95) {
          delay = 1 + static_cast<std::int64_t>(rng.uniform_index(1000));
        } else {
          delay = 1000 + static_cast<std::int64_t>(rng.uniform_index(999000));
        }
        const SimTime t{now + delay};
        ours.push(t, seq, static_cast<int>(seq));
        ref.push(t, seq, static_cast<int>(seq));
        ++seq;
      } else {
        ASSERT_EQ(ours.size(), ref.size());
        ASSERT_EQ(ours.top().at, ref.top().at);
        ASSERT_EQ(ours.top().seq, ref.top().seq);
        ASSERT_EQ(ours.top().payload, ref.top().payload);
        now = ours.top().at.ns();  // clock advances like Scheduler::step
        ours.pop();
        ref.pop();
      }
    }
    while (!ours.empty()) {
      ASSERT_FALSE(ref.empty());
      ASSERT_EQ(ours.top().seq, ref.top().seq);
      ours.pop();
      ref.pop();
    }
    EXPECT_TRUE(ref.empty());
  }
}

}  // namespace
