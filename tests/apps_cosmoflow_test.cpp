#include "apps/cosmoflow.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apps/scaling.hpp"
#include "trace/analysis.hpp"

namespace rsd::apps {
namespace {

using namespace rsd::literals;

CosmoflowConfig quick() {
  CosmoflowConfig cfg;
  cfg.epochs = 1;
  cfg.train_items = 32;
  cfg.validation_items = 32;
  cfg.batch = 4;
  return cfg;
}

TEST(Cosmoflow, StepKernelSequenceShape) {
  const auto kernels = cosmoflow_step_kernels(CosmoflowCalibration{}, 4);
  // 7 conv stages x 4 kernels + dense fwd/bwd + loss + sgd + 4 allreduce.
  EXPECT_EQ(kernels.size(), 7u * 4 + 2 + 1 + 1 + 4);
  for (const auto& k : kernels) EXPECT_GT(k.duration, SimDuration::zero());
  // conv2 is the heaviest stage (64 x 64^3 x 32 dominates).
  const auto heaviest = std::max_element(
      kernels.begin(), kernels.end(),
      [](const auto& a, const auto& b) { return a.duration < b.duration; });
  EXPECT_NE(heaviest->name.find("conv2"), std::string::npos);
}

TEST(Cosmoflow, PerStepRuntimeMatchesPaperScale) {
  // Paper: 705 s over 5 epochs x (1024+1024)/4 steps = ~275 ms/step.
  const AppRunResult r = run_cosmoflow(quick());
  const double ms_per_step = r.runtime.ms() / static_cast<double>(r.steps);
  EXPECT_NEAR(ms_per_step, 275.0, 60.0);
}

TEST(Cosmoflow, GpuDominantRuntimeFractions) {
  CosmoflowConfig cfg = quick();
  cfg.capture_trace = true;
  const AppRunResult r = run_cosmoflow(cfg);
  const auto f = trace::runtime_fractions(r.trace);
  EXPECT_GT(f.kernel, 0.6);   // the GPU is busy most of the time
  EXPECT_LT(f.memory, 0.35);  // transfers are a small share
}

TEST(Cosmoflow, TraceHasManyDistinctKernels) {
  CosmoflowConfig cfg = quick();
  cfg.capture_trace = true;
  const AppRunResult r = run_cosmoflow(cfg);
  std::set<std::string> names;
  for (const auto& op : r.trace.ops()) {
    if (op.kind == gpu::OpKind::kKernel) names.insert(op.name.str());
  }
  // The paper: CosmoFlow executes dozens of different kernels.
  EXPECT_GE(names.size(), 30u);
}

TEST(Cosmoflow, TopFiveKernelsRoughlyHalfOfRuntime) {
  // Paper: the top five kernels cover 49.9% of total kernel time.
  CosmoflowConfig cfg = quick();
  cfg.capture_trace = true;
  const AppRunResult r = run_cosmoflow(cfg);
  const double frac = trace::top_kernel_time_fraction(r.trace, 5);
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.80);
}

TEST(Cosmoflow, TransferBinsSpanTableThreeLayout) {
  CosmoflowConfig cfg = quick();
  cfg.capture_trace = true;
  // Scale the per-epoch sync/checkpoint cadence down in proportion to the
  // shortened epoch (8 train steps instead of 256).
  CosmoflowCalibration cal;
  cal.weight_syncs_per_epoch = 4;
  cal.checkpoint_transfers_per_epoch = 2;
  const AppRunResult r = run_cosmoflow(cfg, cal);
  const auto hist = trace::bin_transfer_sizes(r.trace, {1.0, 16.0, 256.0, 4096.0});
  // Small control transfers dominate by count; prefetch chunks land in the
  // <=4096 MiB bin; weight syncs in <=16; checkpoints in <=256.
  EXPECT_GT(hist.count(0), hist.count(1));
  EXPECT_GT(hist.count(0), hist.count(3));
  EXPECT_GT(hist.count(1), 0u);
  EXPECT_GT(hist.count(2), 0u);
  EXPECT_GT(hist.count(3), 0u);
  EXPECT_EQ(hist.count(4), 0u);
}

TEST(Cosmoflow, MeanTransferSizeNearPaper) {
  // Paper Table III: CosmoFlow mean 34.4 MiB.
  CosmoflowConfig cfg = quick();
  cfg.capture_trace = true;
  const AppRunResult r = run_cosmoflow(cfg);
  const auto hist = trace::bin_transfer_sizes(r.trace, {1.0, 16.0, 256.0, 4096.0});
  EXPECT_GT(hist.mean(), 15.0);
  EXPECT_LT(hist.mean(), 70.0);
}

TEST(Cosmoflow, TwoCoresSufficeMoreAddNothing) {
  // Section IV-A: CosmoFlow needs 2 cores; extra cores show no benefit.
  const auto points = cosmoflow_core_scaling({1, 2, 4, 8}, quick());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_GT(points[0].normalized, 1.1);              // starved at 1 core
  EXPECT_NEAR(points[1].normalized, 1.0, 1e-9);      // 2 cores = full speed
  EXPECT_NEAR(points[2].normalized, 1.0, 1e-9);
  EXPECT_NEAR(points[3].normalized, 1.0, 1e-9);
}

TEST(Cosmoflow, SlackAccounting) {
  CosmoflowConfig cfg = quick();
  cfg.slack = 10_us;
  const AppRunResult r = run_cosmoflow(cfg);
  EXPECT_GT(r.cuda_calls, 0);
  EXPECT_EQ(r.runtime - r.no_slack_runtime, 10_us * r.cuda_calls);
}

TEST(CosmoflowMultiGpu, DataParallelSpeedsUpTraining) {
  MultiGpuCosmoflowConfig cfg;
  cfg.base.epochs = 1;
  cfg.base.train_items = 64;
  cfg.base.validation_items = 0;
  cfg.base.batch = 4;
  cfg.gpus = 1;
  const auto one = run_cosmoflow_multi_gpu(cfg);
  cfg.gpus = 4;
  const auto four = run_cosmoflow_multi_gpu(cfg);
  // 4 GPUs do 1/4 the steps each; allreduce overhead keeps it sub-linear.
  EXPECT_LT(four.runtime, one.runtime);
  EXPECT_GT(four.runtime.seconds(), one.runtime.seconds() / 4.0);
}

TEST(CosmoflowMultiGpu, ChassisFabricBeatsScattered) {
  MultiGpuCosmoflowConfig cfg;
  cfg.base.epochs = 1;
  cfg.base.train_items = 32;
  cfg.base.validation_items = 0;
  cfg.base.batch = 4;
  cfg.gpus = 8;
  cfg.gradient_bytes = 256 * kMiB;  // heavy exchange accentuates the fabric
  cfg.fabric = gpu::make_nvlink();
  const auto chassis = run_cosmoflow_multi_gpu(cfg);
  cfg.fabric = gpu::make_scattered();
  const auto scattered = run_cosmoflow_multi_gpu(cfg);
  EXPECT_LT(chassis.runtime, scattered.runtime);
}

TEST(CosmoflowMultiGpu, TraceCapturesAllRanks) {
  MultiGpuCosmoflowConfig cfg;
  cfg.base.epochs = 1;
  cfg.base.train_items = 16;
  cfg.base.validation_items = 0;
  cfg.base.batch = 4;
  cfg.base.capture_trace = true;
  cfg.gpus = 2;
  const auto r = run_cosmoflow_multi_gpu(cfg);
  ASSERT_TRUE(!r.trace.ops().empty());
  bool saw_allreduce = false;
  std::set<int> ranks;
  for (const auto& op : r.trace.ops()) {
    ranks.insert(op.context_id);
    if (op.name.view().find("horovod_allreduce") != std::string_view::npos) saw_allreduce = true;
  }
  EXPECT_TRUE(saw_allreduce);
  EXPECT_GE(ranks.size(), 2u);
}

TEST(Cosmoflow, DeterministicRuns) {
  const AppRunResult a = run_cosmoflow(quick());
  const AppRunResult b = run_cosmoflow(quick());
  EXPECT_EQ(a.runtime, b.runtime);
}

}  // namespace
}  // namespace rsd::apps
