#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/task.hpp"

namespace rsd::sim {
namespace {

using namespace rsd::literals;

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), SimTime::zero());
}

TEST(Scheduler, DelayAdvancesClock) {
  Scheduler sched;
  SimTime observed{-1};
  sched.spawn([](Scheduler& s, SimTime& out) -> Task<> {
    co_await delay(10_us);
    out = s.now();
  }(sched, observed));
  sched.run();
  EXPECT_EQ(observed, SimTime::zero() + 10_us);
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

TEST(Scheduler, SequentialDelaysAccumulate) {
  Scheduler sched;
  std::vector<std::int64_t> times;
  sched.spawn([](Scheduler& s, std::vector<std::int64_t>& t) -> Task<> {
    co_await delay(1_us);
    t.push_back(s.now().ns());
    co_await delay(2_us);
    t.push_back(s.now().ns());
    co_await delay(3_us);
    t.push_back(s.now().ns());
  }(sched, times));
  sched.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{1000, 3000, 6000}));
}

TEST(Scheduler, MultipleProcessesInterleaveByTime) {
  Scheduler sched;
  std::vector<int> order;
  auto proc = [](std::vector<int>& ord, int id, SimDuration d) -> Task<> {
    co_await delay(d);
    ord.push_back(id);
  };
  sched.spawn(proc(order, 3, 30_us));
  sched.spawn(proc(order, 1, 10_us));
  sched.spawn(proc(order, 2, 20_us));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TieBrokenByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  auto proc = [](std::vector<int>& ord, int id) -> Task<> {
    co_await delay(5_us);
    ord.push_back(id);
  };
  for (int i = 0; i < 5; ++i) sched.spawn(proc(order, i));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ZeroDelayYieldsButRunsSameInstant) {
  Scheduler sched;
  SimTime when{-1};
  sched.spawn([](Scheduler& s, SimTime& out) -> Task<> {
    co_await yield();
    out = s.now();
  }(sched, when));
  sched.run();
  EXPECT_EQ(when, SimTime::zero());
}

TEST(Scheduler, SubTaskAwaitPropagatesResult) {
  Scheduler sched;
  int result = 0;
  auto child = []() -> Task<int> {
    co_await delay(2_us);
    co_return 42;
  };
  sched.spawn([](decltype(child)& c, int& out) -> Task<> {
    out = co_await c();
  }(child, result));
  sched.run();
  EXPECT_EQ(result, 42);
}

TEST(Scheduler, SubTaskAdvancesParentClock) {
  Scheduler sched;
  SimTime after{-1};
  auto child = []() -> Task<> { co_await delay(7_us); };
  sched.spawn([](Scheduler& s, decltype(child)& c, SimTime& out) -> Task<> {
    co_await c();
    out = s.now();
  }(sched, child, after));
  sched.run();
  EXPECT_EQ(after, SimTime::zero() + 7_us);
}

TEST(Scheduler, NestedSubTasks) {
  Scheduler sched;
  int depth_sum = 0;
  auto leaf = []() -> Task<int> {
    co_await delay(1_us);
    co_return 1;
  };
  auto mid = [&leaf]() -> Task<int> {
    const int a = co_await leaf();
    const int b = co_await leaf();
    co_return a + b + 10;
  };
  sched.spawn([](decltype(mid)& m, int& out) -> Task<> {
    out = co_await m();
  }(mid, depth_sum));
  sched.run();
  EXPECT_EQ(depth_sum, 12);
}

TEST(Scheduler, ExceptionInRootPropagatesFromRun) {
  Scheduler sched;
  sched.spawn([]() -> Task<> {
    co_await delay(1_us);
    throw std::runtime_error{"boom"};
  }());
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, ExceptionInChildPropagatesToParent) {
  Scheduler sched;
  bool caught = false;
  auto child = []() -> Task<> {
    co_await delay(1_us);
    throw std::runtime_error{"child failed"};
  };
  sched.spawn([](decltype(child)& c, bool& flag) -> Task<> {
    try {
      co_await c();
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(child, caught));
  sched.run();
  EXPECT_TRUE(caught);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int progressed = 0;
  sched.spawn([](int& p) -> Task<> {
    co_await delay(10_us);
    p = 1;
    co_await delay(10_us);
    p = 2;
  }(progressed));
  sched.run_until(SimTime::zero() + 15_us);
  EXPECT_EQ(progressed, 1);
  EXPECT_EQ(sched.now(), SimTime::zero() + 15_us);
  sched.run();
  EXPECT_EQ(progressed, 2);
}

TEST(Scheduler, UnfinishedCountDetectsPendingRoots) {
  Scheduler sched;
  sched.spawn([]() -> Task<> { co_await delay(100_us); }());
  sched.run_until(SimTime::zero() + 1_us);
  EXPECT_EQ(sched.unfinished_count(), 1u);
  sched.run();
  EXPECT_EQ(sched.unfinished_count(), 0u);
}

TEST(Scheduler, CurrentSchedulerAwaitable) {
  Scheduler sched;
  Scheduler* seen = nullptr;
  sched.spawn([](Scheduler** out) -> Task<> {
    *out = co_await current_scheduler();
  }(&seen));
  sched.run();
  EXPECT_EQ(seen, &sched);
}

TEST(Scheduler, ManyEventsStressDeterminism) {
  auto run_once = [] {
    Scheduler sched;
    std::vector<int> order;
    auto proc = [](std::vector<int>& ord, int id) -> Task<> {
      for (int i = 0; i < 10; ++i) co_await delay(SimDuration{(id * 7 + i * 13) % 50 + 1});
      ord.push_back(id);
    };
    for (int i = 0; i < 50; ++i) sched.spawn(proc(order, i));
    sched.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace rsd::sim
