#include "trace/import.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/error.hpp"
#include "trace/trace.hpp"

namespace rsd::trace {
namespace {

Trace sample_trace() {
  Trace t;
  gpu::OpRecord k;
  k.kind = gpu::OpKind::kKernel;
  k.name = "sgemm";
  k.context_id = 2;
  k.submit = SimTime{1'000};
  k.start = SimTime{2'000};
  k.end = SimTime{52'000};
  t.add_op(k);
  gpu::OpRecord m;
  m.kind = gpu::OpKind::kMemcpyH2D;
  m.name = "h2d_A";
  m.context_id = 2;
  m.submit = SimTime{60'000};
  m.start = SimTime{61'000};
  m.end = SimTime{161'000};
  m.bytes = 4 * kMiB;
  m.process_id = 1;
  t.add_op(m);
  return t;
}

TEST(TraceImport, RoundTripThroughCsv) {
  const Trace original = sample_trace();
  std::istringstream in{original.ops_to_csv()};
  const Trace parsed = parse_ops_csv(in);

  ASSERT_EQ(parsed.ops().size(), original.ops().size());
  for (std::size_t i = 0; i < parsed.ops().size(); ++i) {
    const auto& a = original.ops()[i];
    const auto& b = parsed.ops()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.context_id, b.context_id);
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.process_id, b.process_id);
  }
}

TEST(TraceImport, CrlfLineEndings) {
  std::istringstream in{
      "kind,name,context,submit_us,start_us,end_us,bytes\r\n"
      "kernel,k,0,0,1,11,0\r\n"
      "memcpy_h2d,copy,1,20,21,30,512\r\n"};
  const Trace t = parse_ops_csv(in);
  ASSERT_EQ(t.ops().size(), 2u);
  // The '\r' must not leak into the last cell of any row.
  EXPECT_EQ(t.ops()[0].bytes, Bytes{0});
  EXPECT_EQ(t.ops()[1].bytes, Bytes{512});
}

TEST(TraceImport, ProcessColumnIsOptional) {
  {
    std::istringstream in{
        "kind,name,context,process,submit_us,start_us,end_us,bytes\n"
        "kernel,k,2,7,0,1,11,0\n"};
    const Trace t = parse_ops_csv(in);
    ASSERT_EQ(t.ops().size(), 1u);
    EXPECT_EQ(t.ops()[0].context_id, 2);
    EXPECT_EQ(t.ops()[0].process_id, 7);
  }
  {
    // Pre-submitter-identity exports have no process column: default 0.
    std::istringstream in{
        "kind,name,context,submit_us,start_us,end_us,bytes\n"
        "kernel,k,2,0,1,11,0\n"};
    const Trace t = parse_ops_csv(in);
    ASSERT_EQ(t.ops().size(), 1u);
    EXPECT_EQ(t.ops()[0].process_id, 0);
  }
}

TEST(TraceImport, TruncatedLineReportsLineNumber) {
  std::istringstream in{
      "kind,name,context,submit_us,start_us,end_us,bytes\n"
      "kernel,k,0,0,1,11,0\n"
      "kernel,k,0,0\n"};  // truncated mid-row
  try {
    (void)parse_ops_csv(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos) << e.what();
  }
}

TEST(TraceImport, NonNumericFieldNamesFieldAndLine) {
  std::istringstream in{
      "kind,name,context,submit_us,start_us,end_us,bytes\n"
      "kernel,k,0,0,nope,2,0\n"};
  try {
    (void)parse_ops_csv(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("start_us"), std::string::npos) << what;
  }
}

TEST(TraceImport, ToleratesExtraColumnsAndBlankLines) {
  std::istringstream in{
      "kind,name,context,submit_us,start_us,end_us,bytes,extra\n"
      "kernel,k1,0,0,1,11,0,whatever\n"
      "\n"
      "memcpy_d2h,copy,1,20,21,30,1048576,x\n"};
  const Trace t = parse_ops_csv(in);
  ASSERT_EQ(t.ops().size(), 2u);
  EXPECT_EQ(t.ops()[0].name, "k1");
  EXPECT_EQ(t.ops()[1].kind, gpu::OpKind::kMemcpyD2H);
  EXPECT_EQ(t.ops()[1].bytes, kMiB);
}

TEST(TraceImport, ReordersColumnsByHeader) {
  std::istringstream in{
      "name,kind,bytes,context,end_us,start_us,submit_us\n"
      "k,kernel,0,3,10,5,4\n"};
  const Trace t = parse_ops_csv(in);
  ASSERT_EQ(t.ops().size(), 1u);
  EXPECT_EQ(t.ops()[0].context_id, 3);
  EXPECT_EQ(t.ops()[0].start, SimTime{5'000});
  EXPECT_EQ(t.ops()[0].end, SimTime{10'000});
}

TEST(TraceImport, QuotedNamesWithCommas) {
  std::istringstream in{
      "kind,name,context,submit_us,start_us,end_us,bytes\n"
      "kernel,\"conv<3,3,3>\",0,0,1,2,0\n"};
  const Trace t = parse_ops_csv(in);
  ASSERT_EQ(t.ops().size(), 1u);
  EXPECT_EQ(t.ops()[0].name, "conv<3,3,3>");
}

TEST(TraceImport, ErrorsAreSpecific) {
  {
    std::istringstream in{""};
    EXPECT_THROW((void)parse_ops_csv(in), Error);
  }
  {
    std::istringstream in{"kind,name\nkernel,k\n"};  // missing columns
    EXPECT_THROW((void)parse_ops_csv(in), Error);
  }
  {
    std::istringstream in{
        "kind,name,context,submit_us,start_us,end_us,bytes\n"
        "warp,k,0,0,1,2,0\n"};  // bad kind
    EXPECT_THROW((void)parse_ops_csv(in), Error);
  }
  {
    std::istringstream in{
        "kind,name,context,submit_us,start_us,end_us,bytes\n"
        "kernel,k,0,0,nope,2,0\n"};  // bad number
    EXPECT_THROW((void)parse_ops_csv(in), Error);
  }
  {
    std::istringstream in{
        "kind,name,context,submit_us,start_us,end_us,bytes\n"
        "kernel,k,0,0,5,2,0\n"};  // end before start
    EXPECT_THROW((void)parse_ops_csv(in), Error);
  }
}

TEST(TraceImport, LoadFromMissingFileThrows) {
  EXPECT_THROW((void)load_ops_csv("/nonexistent/path/trace.csv"), Error);
}

TEST(TraceImport, SaveLoadFileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = testing::TempDir() + "/rsd_trace_roundtrip.csv";
  {
    std::ofstream out{path};
    out << original.ops_to_csv();
  }
  const Trace loaded = load_ops_csv(path);
  EXPECT_EQ(loaded.ops().size(), 2u);
  EXPECT_EQ(loaded.kernel_count(), 1u);
}

}  // namespace
}  // namespace rsd::trace
