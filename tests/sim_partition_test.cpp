#include "sim/conservative.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/partition.hpp"
#include "sim/task.hpp"

namespace rsd::sim {
namespace {

using namespace rsd::literals;

// Per-partition event log: (simulated ns, tag). Partitions only ever touch
// their own log, so logging is race-free inside parallel epochs and the
// full set of logs is a deterministic fingerprint of the simulation.
struct Log {
  std::vector<std::pair<std::int64_t, int>> entries;
};

TEST(CrossCall, InvokesInlinePayload) {
  int hits = 0;
  int* p = &hits;
  CrossCall call{[p] { ++*p; }};
  EXPECT_TRUE(static_cast<bool>(call));
  call();
  call();
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(CrossCall{}));
}

TEST(ParallelEngine, EmptyRunTerminates) {
  ParallelEngine eng{4};
  eng.run();
  EXPECT_EQ(eng.epochs(), 0u);
  EXPECT_EQ(eng.executed_events(), 0u);
  EXPECT_EQ(eng.unfinished_count(), 0u);
}

TEST(ParallelEngine, LocalWorkRunsWithoutMessages) {
  ParallelEngine eng{2, {.threads = 2, .lookahead = 1_us}};
  std::int64_t done_at = -1;
  eng.partition(0).spawn([&] {
    return [](std::int64_t& out) -> Task<> {
      co_await delay(5_us);
      co_await delay(5_us);
      auto* s = co_await current_scheduler();
      out = s->now().ns();
    }(done_at);
  });
  eng.run();
  EXPECT_EQ(done_at, 10'000);
  EXPECT_EQ(eng.executed_events(), 3u);
  EXPECT_EQ(eng.unfinished_count(), 0u);
  EXPECT_GE(eng.epochs(), 1u);
}

TEST(ParallelEngine, CrossPartitionPingPong) {
  ParallelEngine eng{2, {.threads = 2, .lookahead = 1_us}};
  Log logs[2];
  Partition* p0 = &eng.partition(0);
  Partition* p1 = &eng.partition(1);
  Log* l0 = &logs[0];
  Log* l1 = &logs[1];

  // Self-referencing hop chain via an explicit payload struct: each hop
  // logs in the partition it lands in, then sends the next hop onward.
  struct Hop {
    Partition* here;
    Partition* peer;
    Log* here_log;
    Log* peer_log;
    int remaining;

    void operator()() const {
      here_log->entries.emplace_back(here->scheduler().now().ns(), remaining);
      if (remaining > 0) {
        here->send(peer->id(), SimDuration{2'000},
                   Hop{peer, here, peer_log, here_log, remaining - 1});
      }
    }
  };

  p0->post(SimDuration{0}, Hop{p0, p1, l0, l1, 6});
  eng.run();

  EXPECT_EQ(eng.unfinished_count(), 0u);
  EXPECT_EQ(eng.messages_delivered(), 6u);
  // Hops land at 0, 2us, 4us, ... alternating partitions.
  ASSERT_EQ(logs[0].entries.size(), 4u);
  ASSERT_EQ(logs[1].entries.size(), 3u);
  EXPECT_EQ(logs[0].entries[0], (std::pair<std::int64_t, int>{0, 6}));
  EXPECT_EQ(logs[1].entries[0], (std::pair<std::int64_t, int>{2'000, 5}));
  EXPECT_EQ(logs[0].entries[3], (std::pair<std::int64_t, int>{12'000, 0}));
}

TEST(ParallelEngine, SamePartitionSendSkipsLookaheadFloor) {
  ParallelEngine eng{2, {.threads = 2, .lookahead = 10_us}};
  Log log;
  Partition* p0 = &eng.partition(0);
  Log* lp = &log;
  // delay far below lookahead: legal because it never crosses partitions.
  p0->post(SimDuration{0}, CrossCall{[p0, lp] {
             p0->send(p0->id(), SimDuration{5}, CrossCall{[p0, lp] {
                        lp->entries.emplace_back(p0->scheduler().now().ns(), 1);
                      }});
           }});
  eng.run();
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_EQ(log.entries[0].first, 5);
  EXPECT_EQ(eng.messages_delivered(), 0u);  // local fast path, no RemoteMsg
}

TEST(ParallelEngine, SimultaneousArrivalsMergeBySourceThenSeq) {
  // Partitions 1..4 each send two messages to partition 0, all arriving at
  // the same instant. The deterministic merge key (at, src, seq) fixes the
  // delivery order regardless of which worker ran which sender.
  for (const int threads : {1, 2, 4}) {
    ParallelEngine eng{5, {.threads = threads, .lookahead = 1_us}};
    Log log;
    Partition* dst = &eng.partition(0);
    Log* lp = &log;
    for (PartitionId src = 1; src <= 4; ++src) {
      Partition* sp = &eng.partition(src);
      const int tag_base = static_cast<int>(src) * 10;
      sp->post(SimDuration{0}, CrossCall{[sp, dst, lp, tag_base] {
                 // Arrival time 2us for every message from every source.
                 sp->send(dst->id(), SimDuration{2'000}, CrossCall{[dst, lp, tag_base] {
                            lp->entries.emplace_back(dst->scheduler().now().ns(), tag_base);
                          }});
                 sp->send(dst->id(), SimDuration{2'000}, CrossCall{[dst, lp, tag_base] {
                            lp->entries.emplace_back(dst->scheduler().now().ns(), tag_base + 1);
                          }});
               }});
    }
    eng.run();
    ASSERT_EQ(log.entries.size(), 8u) << "threads=" << threads;
    std::vector<int> tags;
    for (const auto& [at, tag] : log.entries) {
      EXPECT_EQ(at, 2'000);
      tags.push_back(tag);
    }
    EXPECT_EQ(tags, (std::vector<int>{10, 11, 20, 21, 30, 31, 40, 41}))
        << "threads=" << threads;
  }
}

TEST(ParallelEngine, StallAccountingIsDeterministic) {
  // Partition 0 ticks every 1us for 32us; partition 1 holds a single far
  // event. Partition 1 retires nothing for many epochs while its queue is
  // non-empty — exactly the lookahead-stall definition.
  std::vector<std::uint64_t> stalls;
  for (const int threads : {1, 2}) {
    ParallelEngine eng{2, {.threads = threads, .lookahead = 1_us}};
    eng.partition(0).spawn([] {
      return []() -> Task<> {
        for (int i = 0; i < 32; ++i) co_await delay(1_us);
      }();
    });
    eng.partition(1).spawn([] {
      return []() -> Task<> { co_await delay(100_us); }();
    });
    eng.run();
    EXPECT_EQ(eng.unfinished_count(), 0u);
    EXPECT_GT(eng.stalled_partition_epochs(), 0u);
    stalls.push_back(eng.stalled_partition_epochs());
  }
  EXPECT_EQ(stalls[0], stalls[1]);
}

TEST(ParallelEngine, TaskFailureRethrownAfterDrain) {
  ParallelEngine eng{3, {.threads = 2, .lookahead = 1_us}};
  eng.partition(2).spawn([] {
    return []() -> Task<> {
      co_await delay(3_us);
      throw std::runtime_error("partition failure");
    }();
  });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

// -- Whole-simulation determinism fingerprints ----------------------------

/// Engine-side statistics of one run_ring execution, for the matrix-mode
/// comparisons below (the fingerprint alone proves timing equality).
struct RingStats {
  std::uint64_t epochs = 0;
  std::uint64_t stalled = 0;
  std::uint64_t horizon_gain_ns = 0;
};

/// Ring workload: `n` partitions, each running a local delay loop and
/// forwarding a token around the ring every 2us. Returns the concatenated
/// logs as the fingerprint. With `matrix` set, the ring's lookahead-edge
/// graph (successor edges at the true 2us forwarding delay) replaces the
/// 1us global window.
std::vector<std::pair<std::int64_t, int>> run_ring(int partitions, int threads,
                                                   std::uint64_t jitter_seed,
                                                   bool matrix = false,
                                                   RingStats* stats = nullptr) {
  ParallelEngine eng{partitions,
                     {.threads = threads, .lookahead = 1_us, .jitter_seed = jitter_seed}};
  if (matrix) {
    std::vector<LookaheadEdge> edges;
    for (int p = 0; p < partitions; ++p) {
      edges.push_back(LookaheadEdge{static_cast<PartitionId>(p),
                                    static_cast<PartitionId>((p + 1) % partitions),
                                    SimDuration{2'000}});
    }
    eng.set_lookahead_edges(edges);
  }
  std::vector<Log> logs(static_cast<std::size_t>(partitions));

  struct Token {
    ParallelEngine* eng;
    Log* logs;
    int partitions;
    int remaining;

    void operator()() const {
      Partition* here = nullptr;
      // Identify the running partition via the token's hop count.
      const int hop_total = partitions * 8;
      const int hop_index = hop_total - remaining;
      const PartitionId id = static_cast<PartitionId>(hop_index % partitions);
      here = &eng->partition(id);
      logs[id].entries.emplace_back(here->scheduler().now().ns(), remaining);
      if (remaining > 0) {
        const PartitionId next = static_cast<PartitionId>((id + 1) % partitions);
        here->send(next, SimDuration{2'000},
                   Token{eng, logs, partitions, remaining - 1});
      }
    }
  };

  for (PartitionId id = 0; id < static_cast<PartitionId>(partitions); ++id) {
    eng.partition(id).spawn([] {
      return []() -> Task<> {
        for (int i = 0; i < 16; ++i) co_await delay(1'500_ns);
      }();
    });
  }
  eng.partition(0).post(SimDuration{0},
                        Token{&eng, logs.data(), partitions, partitions * 8});
  eng.run();
  EXPECT_EQ(eng.unfinished_count(), 0u);
  if (stats != nullptr) {
    stats->epochs = eng.epochs();
    stats->stalled = eng.stalled_partition_epochs();
    stats->horizon_gain_ns = eng.horizon_gain_ns();
  }

  std::vector<std::pair<std::int64_t, int>> fingerprint;
  for (const Log& log : logs) {
    fingerprint.emplace_back(-1, static_cast<int>(log.entries.size()));
    fingerprint.insert(fingerprint.end(), log.entries.begin(), log.entries.end());
  }
  return fingerprint;
}

TEST(ParallelEngine, RingIsIdenticalAtAnyThreadCount) {
  const auto baseline = run_ring(8, 1, 0);
  EXPECT_FALSE(baseline.empty());
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(run_ring(8, threads, 0), baseline) << "threads=" << threads;
  }
}

TEST(ParallelEngine, RingIsIdenticalUnderClaimJitter) {
  // Seeded wakeup jitter scrambles the partition -> worker assignment
  // between runs; the simulation fingerprint must not notice.
  const auto baseline = run_ring(8, 1, 0);
  for (const std::uint64_t seed : {0x1ULL, 0xdecafULL, 0x9e3779b97f4a7c15ULL}) {
    EXPECT_EQ(run_ring(8, 4, seed), baseline) << "seed=" << seed;
  }
}

TEST(ParallelEngine, LookaheadMatrixPreservesFingerprint) {
  // The matrix only widens epoch horizons; it must never change simulated
  // timing, at any thread count.
  const auto baseline = run_ring(8, 1, 0, /*matrix=*/false);
  for (const int threads : {1, 2, 8}) {
    EXPECT_EQ(run_ring(8, threads, 0, /*matrix=*/true), baseline)
        << "threads=" << threads;
  }
}

TEST(ParallelEngine, LookaheadMatrixReducesEpochsAndReportsGain) {
  RingStats global;
  RingStats matrix;
  const auto base = run_ring(8, 1, 0, /*matrix=*/false, &global);
  EXPECT_EQ(run_ring(8, 1, 0, /*matrix=*/true, &matrix), base);
  // Distance-aware horizons only let partitions run further per epoch, so
  // the barrier count drops and the accumulated horizon gain (widening
  // over the uniform floor) is strictly positive. Stalled partition-epochs
  // are NOT compared: a partition that raced ahead under its wide private
  // horizon books a "stall" while it waits for upstream — a state the
  // global window never reaches because nobody gets ahead of t_min + L.
  // The token-ring bench (bench_perf_par_des) covers the stall drop on a
  // workload where the global window genuinely convoys.
  EXPECT_LE(matrix.epochs, global.epochs);
  EXPECT_EQ(global.horizon_gain_ns, 0u);  // global mode reports no gain
  EXPECT_GT(matrix.horizon_gain_ns, 0u);
}

TEST(ParallelEngine, MatrixMinSendDelayIsPerEdge) {
  ParallelEngine eng{3, {.threads = 1, .lookahead = 1_us}};
  eng.set_lookahead_edges({LookaheadEdge{0, 1, SimDuration{2'000}},
                           LookaheadEdge{1, 2, SimDuration{5'000}},
                           LookaheadEdge{0, 1, SimDuration{3'000}}});
  EXPECT_TRUE(eng.lookahead_matrix());
  // Duplicate declarations keep the minimum; undeclared pairs are
  // unreachable and reject sends outright.
  EXPECT_EQ(eng.min_send_delay(0, 1), SimDuration{2'000});
  EXPECT_EQ(eng.min_send_delay(1, 2), SimDuration{5'000});
  EXPECT_GT(eng.min_send_delay(2, 0), SimDuration{1'000'000'000});
}

}  // namespace
}  // namespace rsd::sim
