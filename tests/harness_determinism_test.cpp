// Determinism regression for the harness port: the fig3_slack_sweep
// experiment running inside the registry/CLI machinery must produce a CSV
// byte-identical to the pre-harness standalone computation (same fixed
// seed and grid, any pool width). This is the guarantee that let the
// refactor keep every tracked bench_results/*.csv unchanged.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/csv.hpp"
#include "exec/pool.hpp"
#include "harness/context.hpp"
#include "harness/experiment.hpp"
#include "harness/registry.hpp"
#include "proxy/proxy.hpp"

namespace {

using namespace rsd;
namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// What bench_fig3_slack_sweep computed as a standalone main() before the
// harness existed: the default sweep, serialized row-per-point.
std::string standalone_fig3_csv() {
  const proxy::ProxyRunner runner;
  const proxy::SweepConfig cfg;
  exec::Pool pool{1};
  const auto points = proxy::run_slack_sweep(runner, cfg, pool);
  CsvWriter csv;
  csv.row("matrix_n", "threads", "slack_us", "normalized_runtime");
  for (const auto& p : points) {
    csv.row(p.matrix_n, p.threads, p.slack.us(), p.normalized_runtime);
  }
  return csv.str();
}

std::string run_fig3_csv(int threads) {
  const fs::path dir = fs::path{testing::TempDir()} / "rsd_fig3_golden";
  fs::remove_all(dir);

  harness::ExperimentContext::Options options;
  options.results_dir = dir;
  options.threads = threads;
  std::ostringstream sink;
  options.out = &sink;
  harness::ExperimentContext ctx{options};

  const harness::Experiment* fig3 = harness::Registry::global().find("fig3_slack_sweep");
  if (fig3 == nullptr) return {};
  fig3->run(ctx);
  return read_file(dir / "fig3_slack_sweep.csv");
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Golden fingerprint of bench_results/fig3_slack_sweep.csv as produced by
// the seed implementation (std::priority_queue scheduler, std::string op
// names, std::map memory pool). The allocation-free core must reproduce it
// byte for byte at every pool width; any drift means the perf work changed
// observable schedule order and must be rejected, not re-goldened blindly.
constexpr std::uint64_t kFig3GoldenFnv1a = 0x266090334f7d1647ULL;
constexpr std::size_t kFig3GoldenBytes = 1964;

TEST(HarnessDeterminism, Fig3CsvMatchesGoldenHashAtAnyPoolWidth) {
  for (const int threads : {1, 3}) {
    const std::string bytes = run_fig3_csv(threads);
    ASSERT_FALSE(bytes.empty()) << "fig3_slack_sweep produced no CSV";
    EXPECT_EQ(bytes.size(), kFig3GoldenBytes) << "threads=" << threads;
    EXPECT_EQ(fnv1a64(bytes), kFig3GoldenFnv1a) << "threads=" << threads;
  }
}

// The trace-replay loop (capture -> CSV export -> import -> reconstruct ->
// replay) is pure DES end to end, so its CSV must also be pool-width
// invariant: any drift means an IR or import stage picked up schedule- or
// thread-order dependence.
TEST(HarnessDeterminism, TraceReplayCsvIsPoolWidthInvariant) {
  const harness::Experiment* replay = harness::Registry::global().find("extension_trace_replay");
  ASSERT_NE(replay, nullptr);

  std::string reference;
  for (const int threads : {1, 3}) {
    const fs::path dir =
        fs::path{testing::TempDir()} / ("rsd_trace_replay_w" + std::to_string(threads));
    fs::remove_all(dir);

    harness::ExperimentContext::Options options;
    options.results_dir = dir;
    options.threads = threads;
    std::ostringstream sink;
    options.out = &sink;
    harness::ExperimentContext ctx{options};
    replay->run(ctx);

    const std::string bytes = read_file(dir / "extension_trace_replay.csv");
    ASSERT_FALSE(bytes.empty()) << "threads=" << threads;
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
  }
}

TEST(HarnessDeterminism, Fig3CsvMatchesStandaloneComputation) {
  const fs::path dir = fs::path{testing::TempDir()} / "rsd_fig3_determinism";
  fs::remove_all(dir);

  harness::ExperimentContext::Options options;
  options.results_dir = dir;
  options.threads = 2;  // byte-identity must hold at any pool width
  std::ostringstream sink;
  options.out = &sink;
  harness::ExperimentContext ctx{options};

  const harness::Experiment* fig3 = harness::Registry::global().find("fig3_slack_sweep");
  ASSERT_NE(fig3, nullptr);
  fig3->run(ctx);

  const fs::path csv_path = dir / "fig3_slack_sweep.csv";
  ASSERT_TRUE(fs::exists(csv_path));
  EXPECT_EQ(read_file(csv_path), standalone_fig3_csv());
}

}  // namespace
