#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "interconnect/slack.hpp"
#include "proxy/proxy.hpp"

namespace rsd {
namespace {

using namespace rsd::literals;

TEST(RepeatRuns, SingleRunIsExact) {
  const auto r = repeat_runs(1, [](std::uint64_t) { return 42.0; });
  EXPECT_EQ(r.runs, 1u);
  EXPECT_DOUBLE_EQ(r.mean, 42.0);
  EXPECT_DOUBLE_EQ(r.stddev, 0.0);
}

TEST(RepeatRuns, SeedsAreDistinctAndSequential) {
  std::vector<std::uint64_t> seen;
  (void)repeat_runs(
      5,
      [&seen](std::uint64_t seed) {
        seen.push_back(seed);
        return 0.0;
      },
      100);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
}

TEST(RepeatRuns, StatisticsOverNoisyMeasurement) {
  const auto r = repeat_runs(200, [](std::uint64_t seed) {
    Rng rng{seed};
    return rng.normal(10.0, 2.0);
  });
  EXPECT_EQ(r.runs, 200u);
  EXPECT_NEAR(r.mean, 10.0, 0.5);
  EXPECT_NEAR(r.stddev, 2.0, 0.5);
  EXPECT_LE(r.min, r.mean);
  EXPECT_GE(r.max, r.mean);
}

TEST(RepeatRunsParallel, MatchesSerialStatisticsBitForBit) {
  exec::Pool pool{4};
  auto measure = [](std::uint64_t seed) {
    Rng rng{seed};
    return rng.normal(10.0, 2.0);
  };
  const auto serial = repeat_runs(50, measure, 7);
  const auto parallel = repeat_runs_parallel(50, measure, pool, 7);
  EXPECT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.mean, serial.mean);
  EXPECT_EQ(parallel.stddev, serial.stddev);
  EXPECT_EQ(parallel.min, serial.min);
  EXPECT_EQ(parallel.max, serial.max);
}

TEST(RepeatRunsParallel, SerialPoolSeesSequentialSeeds) {
  exec::Pool pool{1};
  std::vector<std::uint64_t> seen;
  (void)repeat_runs_parallel(
      5,
      [&seen](std::uint64_t seed) {
        seen.push_back(seed);
        return 0.0;
      },
      pool, 100);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
}

TEST(SlackNoise, ZeroSigmaIsDeterministic) {
  interconnect::SlackInjector inj{100_us, 0.0, 7};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(inj.on_api_call(), 100_us);
  EXPECT_EQ(inj.total_injected(), 1_ms);
}

TEST(SlackNoise, OvershootIsRightSkewed) {
  // lognormal(0, sigma) has mean exp(sigma^2/2) > 1: real sleeps overshoot.
  interconnect::SlackInjector inj{100_us, 0.3, 11};
  SimDuration total = SimDuration::zero();
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += inj.on_api_call();
  const double mean_us = total.us() / n;
  EXPECT_NEAR(mean_us, 100.0 * std::exp(0.3 * 0.3 / 2.0), 1.5);
  EXPECT_GT(mean_us, 100.0);
}

TEST(SlackNoise, ProxyRunsVaryBySeedAndAverageNearDeterministic) {
  const proxy::ProxyRunner runner;
  auto measure = [&runner](std::uint64_t seed, double sigma) {
    proxy::ProxyConfig cfg;
    cfg.matrix_n = 1 << 11;
    cfg.max_iterations = 20;
    cfg.slack = 100_us;
    cfg.host_noise_sigma = sigma;
    cfg.seed = seed;
    return runner.run(cfg).loop_runtime.seconds();
  };
  const double deterministic = measure(1, 0.0);
  const auto noisy = repeat_runs(5, [&](std::uint64_t s) { return measure(s, 0.1); });
  EXPECT_GT(noisy.stddev, 0.0);
  // Overshoot makes the noisy mean slightly above deterministic; well
  // within a percent at sigma = 0.1.
  EXPECT_NEAR(noisy.mean, deterministic, 0.01 * deterministic);
  EXPECT_GE(noisy.mean, deterministic * 0.999);
}

TEST(SlackNoise, EquationOneUsesNominalSlack) {
  const proxy::ProxyRunner runner;
  proxy::ProxyConfig cfg;
  cfg.matrix_n = 1 << 11;
  cfg.max_iterations = 20;
  cfg.slack = 100_us;
  cfg.host_noise_sigma = 0.2;
  const auto r = runner.run(cfg);
  // loop - no_slack == nominal * calls, regardless of the actual overshoot.
  EXPECT_EQ(r.loop_runtime - r.no_slack_time, 100_us * r.cuda_calls_per_thread);
}

}  // namespace
}  // namespace rsd
