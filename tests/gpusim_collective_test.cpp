#include "gpusim/collective.hpp"

#include <gtest/gtest.h>

namespace rsd::gpu {
namespace {

using namespace rsd::literals;

TEST(Collective, SingleGpuIsFree) {
  EXPECT_EQ(ring_allreduce_time(kGiB, 1, make_nvlink()), SimDuration::zero());
  EXPECT_EQ(tree_allreduce_time(kGiB, 1, make_nvlink()), SimDuration::zero());
}

TEST(Collective, RingFormula) {
  // 2 GPUs, 2 GiB at 1 GiB/s, zero latency: 2*(2-1) steps of 1 GiB = 2 s.
  const GpuInterconnect link{"t", 1.0, SimDuration::zero()};
  EXPECT_NEAR(ring_allreduce_time(2 * kGiB, 2, link).seconds(), 2.0, 1e-9);
  // 4 GPUs: 6 steps of 0.5 GiB = 3 s.
  EXPECT_NEAR(ring_allreduce_time(2 * kGiB, 4, link).seconds(), 3.0, 1e-9);
}

TEST(Collective, TreeFormula) {
  const GpuInterconnect link{"t", 1.0, SimDuration::zero()};
  // 4 GPUs: 2*log2(4) = 4 steps of the full 1 GiB = 4 s.
  EXPECT_NEAR(tree_allreduce_time(kGiB, 4, link).seconds(), 4.0, 1e-9);
}

TEST(Collective, RingBandwidthOptimalForLargeMessages) {
  const auto link = make_nvlink();
  EXPECT_LT(ring_allreduce_time(kGiB, 8, link), tree_allreduce_time(kGiB, 8, link));
}

TEST(Collective, TreeLatencyOptimalForTinyMessages) {
  const auto link = make_scattered();  // high latency path
  EXPECT_LT(tree_allreduce_time(4 * kKiB, 16, link),
            ring_allreduce_time(4 * kKiB, 16, link));
}

TEST(Collective, BestPicksMinimum) {
  const auto link = make_nvlink();
  for (const Bytes b : {Bytes{4 * kKiB}, Bytes{16 * kMiB}, Bytes{kGiB}}) {
    const auto best = best_allreduce_time(b, 16, link);
    EXPECT_LE(best, ring_allreduce_time(b, 16, link));
    EXPECT_LE(best, tree_allreduce_time(b, 16, link));
  }
}

TEST(Collective, ChassisBeatsScatteredAtEveryScale) {
  // The Discussion's claim: chassis-coupled GPUs accelerate collectives.
  const auto chassis = make_nvlink();
  interconnect::CdiNetworkParams row;
  const auto scattered = make_scattered(row);
  for (const int gpus : {2, 4, 8, 16, 24}) {
    for (const Bytes b : {Bytes{kMiB}, Bytes{64 * kMiB}, Bytes{kGiB}}) {
      EXPECT_LT(best_allreduce_time(b, gpus, chassis),
                best_allreduce_time(b, gpus, scattered))
          << gpus << " GPUs, " << format_bytes(b);
    }
  }
}

TEST(Collective, MonotoneInBytes) {
  const auto link = make_pcie_p2p();
  SimDuration prev = SimDuration::zero();
  for (Bytes b = kMiB; b <= kGiB; b *= 4) {
    const auto t = ring_allreduce_time(b, 8, link);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Collective, FactoriesHaveExpectedOrdering) {
  EXPECT_GT(make_nvlink().bandwidth_gib_s, make_pcie_p2p().bandwidth_gib_s);
  EXPECT_GT(make_scattered().latency, make_nvlink().latency);
}

}  // namespace
}  // namespace rsd::gpu
